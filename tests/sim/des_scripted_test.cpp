// Exact timing verification of the discrete-event executor using a scripted
// fake engine: a fixed DAG of work units with known costs, so makespan,
// idle time and lock waits can be computed by hand.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "gametree/game.hpp"
#include "sim/executor.hpp"

namespace ers::sim {
namespace {

/// A fake problem-heap engine: `plan[i]` lists the units released when unit
/// i commits (unit 0 is available at start; the engine is done when the
/// designated final unit commits).  Unit costs are expressed through the
/// SearchStats charged by compute().
class ScriptedEngine {
 public:
  struct Item {
    int unit;
  };
  struct Result {
    SearchStats stats;
  };

  ScriptedEngine(std::vector<std::vector<int>> releases,
                 std::vector<std::uint64_t> costs, int final_unit)
      : releases_(std::move(releases)), costs_(std::move(costs)),
        final_unit_(final_unit) {
    ready_.push_back(0);
  }

  std::optional<Item> acquire() {
    if (ready_.empty()) return std::nullopt;
    const int u = ready_.front();
    ready_.erase(ready_.begin());
    return Item{u};
  }

  Result compute(const Item& item) const {
    Result r;
    // per_leaf = 1 below, so leaves_evaluated encodes the unit cost minus
    // the per-unit base of 0.
    r.stats.leaves_evaluated = costs_[item.unit];
    return r;
  }

  void commit(const Item& item, Result&&) {
    for (int next : releases_[item.unit]) ready_.push_back(next);
    if (item.unit == final_unit_) done_ = true;
  }

  [[nodiscard]] bool done() const { return done_; }

 private:
  std::vector<std::vector<int>> releases_;
  std::vector<std::uint64_t> costs_;
  int final_unit_;
  std::vector<int> ready_;
  bool done_ = false;
};

CostModel unit_cost_model() {
  CostModel m;
  m.per_interior = 0;
  m.per_leaf = 1;
  m.per_sort_eval = 0;
  m.per_unit_base = 0;
  m.per_heap_acquire = 0;  // timing tests add heap costs back explicitly
  m.per_heap_commit = 0;
  return m;
}

TEST(DesScripted, SingleChainIsSequential) {
  // 0 -> 1 -> 2, costs 5, 7, 9: no parallelism possible.
  ScriptedEngine e({{1}, {2}, {}}, {5, 7, 9}, 2);
  SimExecutor<ScriptedEngine> exec(4, unit_cost_model());
  const auto m = exec.run(e);
  EXPECT_EQ(m.makespan, 21u);
  EXPECT_EQ(m.units, 3u);
  EXPECT_EQ(m.lock_wait_time, 0u);
}

TEST(DesScripted, FanOutRunsInParallel) {
  // 0 releases 1,2,3 (costs 10 each); 3 is final.  With 3+ processors the
  // fan-out runs concurrently: makespan = 2 + 10 + 10 = 22?  cost(0)=2.
  ScriptedEngine e({{1, 2, 3}, {}, {}, {}}, {2, 10, 10, 10}, 3);
  SimExecutor<ScriptedEngine> exec(3, unit_cost_model());
  const auto m = exec.run(e);
  EXPECT_EQ(m.makespan, 12u);
  EXPECT_EQ(m.units, 4u);
  EXPECT_GT(m.idle_time, 0u) << "two processors idle during unit 0";
}

TEST(DesScripted, TwoProcessorsSerializeThreeUnits) {
  // Fan-out of three cost-10 units on two processors: 0 finishes at 2, two
  // units run [2,12], the third runs [12,22].
  ScriptedEngine e({{1, 2, 3}, {}, {}, {}}, {2, 10, 10, 10}, 3);
  SimExecutor<ScriptedEngine> exec(2, unit_cost_model());
  const auto m = exec.run(e);
  EXPECT_EQ(m.makespan, 22u);
}

TEST(DesScripted, QueueOpCostSerializesOnTheLock) {
  // Same fan-out, but every acquire/commit costs 1 on the shared lock.
  // Exact makespan is fiddly; assert the lock made things strictly slower
  // and lock_wait_time is visible.
  auto cost = unit_cost_model();
  cost.per_heap_acquire = 1;
  cost.per_heap_commit = 1;
  ScriptedEngine a({{1, 2, 3}, {}, {}, {}}, {2, 10, 10, 10}, 3);
  SimExecutor<ScriptedEngine> exec(3, cost);
  const auto with_lock = exec.run(a);

  ScriptedEngine b({{1, 2, 3}, {}, {}, {}}, {2, 10, 10, 10}, 3);
  SimExecutor<ScriptedEngine> exec0(3, unit_cost_model());
  const auto without = exec0.run(b);

  EXPECT_GT(with_lock.makespan, without.makespan);
}

TEST(DesScripted, ShardsRemoveLockSerialization) {
  auto cost = unit_cost_model();
  cost.per_heap_acquire = 5;  // brutal lock
  cost.per_heap_commit = 5;
  // Wide fan-out of cheap units: lock-bound with one shard.
  std::vector<std::vector<int>> rel(9);
  for (int i = 1; i <= 8; ++i) rel[0].push_back(i);
  ScriptedEngine a(rel, {1, 1, 1, 1, 1, 1, 1, 1, 1}, 8);
  SimExecutor<ScriptedEngine> one(8, cost, 1);
  const auto m1 = one.run(a);

  ScriptedEngine b(rel, {1, 1, 1, 1, 1, 1, 1, 1, 1}, 8);
  SimExecutor<ScriptedEngine> eight(8, cost, 8);
  const auto m8 = eight.run(b);

  EXPECT_LT(m8.lock_wait_time, m1.lock_wait_time);
  EXPECT_LE(m8.makespan, m1.makespan);
}

TEST(DesScripted, EarlyDoneAbandonsInflightWork) {
  // Unit 0 releases a cheap final unit 1 (cost 1) and an expensive unit 2
  // (cost 100).  When 1 commits the engine is done; the executor must not
  // wait for 2.
  ScriptedEngine e({{1, 2}, {}, {}}, {1, 1, 100}, 1);
  SimExecutor<ScriptedEngine> exec(2, unit_cost_model());
  const auto m = exec.run(e);
  EXPECT_LT(m.makespan, 10u);
  EXPECT_EQ(m.units, 2u) << "only units 0 and 1 commit";
}

}  // namespace
}  // namespace ers::sim
