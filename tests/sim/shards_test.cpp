// The sharded problem-heap model (paper §8's "distribute work to reduce
// processor interaction"): shards change timing only, never results.

#include <gtest/gtest.h>

#include "core/parallel_er.hpp"
#include "randomtree/random_tree.hpp"
#include "search/negmax.hpp"

namespace ers {
namespace {

core::EngineConfig fine_grained() {
  core::EngineConfig cfg;
  cfg.search_depth = 5;
  cfg.serial_depth = 5;  // every leaf its own unit: contention-bound
  return cfg;
}

TEST(Shards, ResultIndependentOfShardCount) {
  const UniformRandomTree g(4, 5, 5, -100, 100);
  const Value oracle = negmax_search(g, 5).value;
  for (int shards : {1, 2, 4, 16}) {
    const auto r = parallel_er_sim(g, fine_grained(), 16, {}, shards);
    EXPECT_EQ(r.value, oracle) << "shards=" << shards;
  }
}

TEST(Shards, MoreShardsReduceLockWait) {
  const UniformRandomTree g(4, 5, 5, -100, 100);
  const auto one = parallel_er_sim(g, fine_grained(), 16, {}, 1);
  const auto many = parallel_er_sim(g, fine_grained(), 16, {}, 16);
  EXPECT_GT(one.metrics.lock_wait_time, 0u)
      << "fine-grained units on one lock must contend";
  EXPECT_LT(many.metrics.lock_wait_time, one.metrics.lock_wait_time);
  EXPECT_LE(many.metrics.makespan, one.metrics.makespan);
}

TEST(Shards, SingleProcessorUnaffected) {
  const UniformRandomTree g(3, 4, 9, -50, 50);
  const auto a = parallel_er_sim(g, fine_grained(), 1, {}, 1);
  const auto b = parallel_er_sim(g, fine_grained(), 1, {}, 8);
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan)
      << "one processor never waits for a lock, sharded or not";
}

TEST(Shards, Deterministic) {
  const UniformRandomTree g(4, 5, 11, -100, 100);
  const auto a = parallel_er_sim(g, fine_grained(), 12, {}, 4);
  const auto b = parallel_er_sim(g, fine_grained(), 12, {}, 4);
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.metrics.lock_wait_time, b.metrics.lock_wait_time);
}

}  // namespace
}  // namespace ers
