// Determinism and metric sanity for the discrete-event simulated executor.

#include "sim/executor.hpp"

#include <gtest/gtest.h>

#include "core/parallel_er.hpp"
#include "randomtree/random_tree.hpp"
#include "search/er_serial.hpp"

namespace ers {
namespace {

core::EngineConfig cfg(int depth, int serial) {
  core::EngineConfig c;
  c.search_depth = depth;
  c.serial_depth = serial;
  return c;
}

TEST(Sim, BitReproducible) {
  const UniformRandomTree g(4, 5, 123, -100, 100);
  const auto a = parallel_er_sim(g, cfg(5, 3), 8);
  const auto b = parallel_er_sim(g, cfg(5, 3), 8);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.metrics.busy_time, b.metrics.busy_time);
  EXPECT_EQ(a.metrics.idle_time, b.metrics.idle_time);
  EXPECT_EQ(a.engine.search.nodes_generated(), b.engine.search.nodes_generated());
  EXPECT_EQ(a.engine.units_processed, b.engine.units_processed);
}

TEST(Sim, DifferentSeedsDifferentSchedules) {
  const UniformRandomTree g1(4, 5, 1, -100, 100);
  const UniformRandomTree g2(4, 5, 2, -100, 100);
  const auto a = parallel_er_sim(g1, cfg(5, 3), 8);
  const auto b = parallel_er_sim(g2, cfg(5, 3), 8);
  EXPECT_NE(a.metrics.makespan, b.metrics.makespan);
}

TEST(Sim, OneProcessorHasNoIdleTime) {
  const UniformRandomTree g(3, 4, 5, -50, 50);
  const auto r = parallel_er_sim(g, cfg(4, 2), 1);
  EXPECT_EQ(r.metrics.idle_time, 0u);
  EXPECT_EQ(r.metrics.lock_wait_time, 0u) << "one processor never contends";
  EXPECT_EQ(r.metrics.processors, 1);
}

TEST(Sim, ManyProcessorsStarveOnTinyTree) {
  const UniformRandomTree g(2, 2, 5, -50, 50);
  const auto r = parallel_er_sim(g, cfg(2, 1), 16);
  EXPECT_GT(r.metrics.idle_time, 0u) << "16 processors cannot all stay busy";
}

TEST(Sim, MakespanBoundedByTotalWork) {
  // P processors cannot be slower than... the makespan must at least cover
  // busy_time / P, and cannot exceed busy+idle+lock ranges.
  const UniformRandomTree g(4, 5, 17, -100, 100);
  for (int p : {1, 2, 4, 8}) {
    const auto r = parallel_er_sim(g, cfg(5, 3), p);
    EXPECT_GE(static_cast<double>(r.metrics.makespan) * p,
              static_cast<double>(r.metrics.busy_time))
        << "p=" << p;
    EXPECT_LE(r.metrics.busy_time + r.metrics.idle_time,
              static_cast<std::uint64_t>(r.metrics.makespan) * p +
                  r.metrics.makespan)
        << "p=" << p;
  }
}

TEST(Sim, UtilizationInUnitRange) {
  const UniformRandomTree g(4, 5, 29, -100, 100);
  for (int p : {1, 4, 16}) {
    const auto r = parallel_er_sim(g, cfg(5, 3), p);
    EXPECT_GT(r.metrics.utilization(), 0.0);
    EXPECT_LE(r.metrics.utilization(), 1.0 + 1e-9);
  }
}

TEST(Sim, HigherQueueCostIncreasesMakespan) {
  // The interference knob must actually model contention.
  const UniformRandomTree g(4, 5, 31, -100, 100);
  sim::CostModel cheap;
  cheap.per_heap_acquire = 0;
  cheap.per_heap_commit = 0;
  sim::CostModel pricey;
  pricey.per_heap_acquire = 10;
  pricey.per_heap_commit = 10;
  const auto a = parallel_er_sim(g, cfg(5, 3), 8, cheap);
  const auto b = parallel_er_sim(g, cfg(5, 3), 8, pricey);
  EXPECT_LT(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.value, b.value) << "cost model must never affect the result";
}

TEST(Sim, BatchedScheduleStaysExactAndDeterministic) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const UniformRandomTree g(4, 5, seed, -100, 100);
    const auto k1 = parallel_er_sim(g, cfg(5, 3), 8);
    for (const int batch : {2, 4, 8}) {
      const auto a = parallel_er_sim(g, cfg(5, 3), 8, {}, 1, batch);
      const auto b = parallel_er_sim(g, cfg(5, 3), 8, {}, 1, batch);
      EXPECT_EQ(a.value, k1.value) << "seed=" << seed << " batch=" << batch;
      EXPECT_EQ(a.metrics.makespan, b.metrics.makespan)
          << "batched schedule must stay bit-reproducible";
    }
  }
}

TEST(Sim, BatchingReducesHeapAccesses) {
  // The whole point: k units per serialized heap access instead of one.
  const UniformRandomTree g(4, 5, 9, -100, 100);
  const auto k1 = parallel_er_sim(g, cfg(5, 3), 8);
  const auto k4 = parallel_er_sim(g, cfg(5, 3), 8, {}, 1, 4);
  EXPECT_LT(k4.metrics.heap_accesses, k1.metrics.heap_accesses);
}

TEST(Sim, BatchingReducesLockWaitUnderContention) {
  // Pricey heap + many processors: the contention-bound regime the paper
  // reports.  Batching must cut the share of time lost to the lock.
  sim::CostModel pricey;
  pricey.per_heap_acquire = 8;
  pricey.per_heap_commit = 8;
  const UniformRandomTree g(4, 5, 11, -100, 100);
  const auto k1 = parallel_er_sim(g, cfg(5, 4), 16, pricey);
  const auto k8 = parallel_er_sim(g, cfg(5, 4), 16, pricey, 1, 8);
  EXPECT_GT(k1.metrics.lock_wait_time, 0u) << "baseline must actually contend";
  EXPECT_LT(static_cast<double>(k8.metrics.lock_wait_time) /
                static_cast<double>(k8.metrics.makespan * 16),
            static_cast<double>(k1.metrics.lock_wait_time) /
                static_cast<double>(k1.metrics.makespan * 16));
}

TEST(Sim, ShardCountNeverChangesResult) {
  // Sharding moves serialization delays, which at P > 1 feeds back into
  // *when* processors dispatch and hence which speculative work runs — but
  // the combine protocol makes the root value schedule-independent, so the
  // value must hold at every shards × processors × batch point.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const UniformRandomTree g(4, 5, seed + 70, -100, 100);
    for (const int procs : {1, 4, 8}) {
      for (const int batch : {1, 4}) {
        const auto base = parallel_er_sim(g, cfg(5, 3), procs, {}, 1, batch);
        for (const int shards : {2, 4, 8}) {
          const auto r =
              parallel_er_sim(g, cfg(5, 3), procs, {}, shards, batch);
          EXPECT_EQ(r.value, base.value)
              << "seed=" << seed << " shards=" << shards << " procs=" << procs
              << " batch=" << batch;
        }
      }
    }
  }
}

TEST(Sim, PopOrderIsShardInvariantWithoutTimingFeedback) {
  // The tentpole invariant, isolated from timing: at P = 1 the sim's
  // schedule is exactly the engine's global pop order (acquire → compute →
  // commit, strictly alternating), and the global pop is the maximum over
  // shard tops under one total-order comparator — so node counts and unit
  // counts must be bit-identical at every shard count.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const UniformRandomTree g(4, 5, seed + 70, -100, 100);
    for (const int batch : {1, 4}) {
      const auto base = parallel_er_sim(g, cfg(5, 3), 1, {}, 1, batch);
      for (const int shards : {2, 4, 8}) {
        const auto r = parallel_er_sim(g, cfg(5, 3), 1, {}, shards, batch);
        EXPECT_EQ(r.value, base.value)
            << "seed=" << seed << " shards=" << shards << " batch=" << batch;
        EXPECT_EQ(r.engine.search.nodes_generated(),
                  base.engine.search.nodes_generated())
            << "sharding must not change which nodes are expanded";
        EXPECT_EQ(r.engine.units_processed, base.engine.units_processed);
      }
    }
  }
}

TEST(Sim, RoutedShardAccessesSumToHeapAccesses) {
  const UniformRandomTree g(4, 5, 13, -100, 100);
  const auto r = parallel_er_sim(g, cfg(5, 3), 8, {}, 4, 2);
  ASSERT_EQ(r.metrics.shard_accesses.size(), 4u);
  std::uint64_t sum = 0;
  for (const std::uint64_t a : r.metrics.shard_accesses) sum += a;
  EXPECT_EQ(sum, r.metrics.heap_accesses);
  // Parent-owner routing puts the root's children on shard 0; every shard
  // profile starts non-degenerate only when the tree fans out, but shard 0
  // must always see traffic.
  EXPECT_GT(r.metrics.shard_accesses[0], 0u);
}

TEST(Sim, CostModelOfCountsAllComponents) {
  sim::CostModel m;
  m.per_interior = 3;
  m.per_leaf = 5;
  m.per_sort_eval = 7;
  m.per_unit_base = 11;
  SearchStats s;
  s.interior_expanded = 2;
  s.leaves_evaluated = 4;
  s.sort_evals = 1;
  EXPECT_EQ(m.of(s), 11u + 6u + 20u + 7u);
}

}  // namespace
}  // namespace ers
