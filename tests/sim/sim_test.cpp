// Determinism and metric sanity for the discrete-event simulated executor.

#include "sim/executor.hpp"

#include <gtest/gtest.h>

#include "core/parallel_er.hpp"
#include "randomtree/random_tree.hpp"
#include "search/er_serial.hpp"

namespace ers {
namespace {

core::EngineConfig cfg(int depth, int serial) {
  core::EngineConfig c;
  c.search_depth = depth;
  c.serial_depth = serial;
  return c;
}

TEST(Sim, BitReproducible) {
  const UniformRandomTree g(4, 5, 123, -100, 100);
  const auto a = parallel_er_sim(g, cfg(5, 3), 8);
  const auto b = parallel_er_sim(g, cfg(5, 3), 8);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.metrics.busy_time, b.metrics.busy_time);
  EXPECT_EQ(a.metrics.idle_time, b.metrics.idle_time);
  EXPECT_EQ(a.engine.search.nodes_generated(), b.engine.search.nodes_generated());
  EXPECT_EQ(a.engine.units_processed, b.engine.units_processed);
}

TEST(Sim, DifferentSeedsDifferentSchedules) {
  const UniformRandomTree g1(4, 5, 1, -100, 100);
  const UniformRandomTree g2(4, 5, 2, -100, 100);
  const auto a = parallel_er_sim(g1, cfg(5, 3), 8);
  const auto b = parallel_er_sim(g2, cfg(5, 3), 8);
  EXPECT_NE(a.metrics.makespan, b.metrics.makespan);
}

TEST(Sim, OneProcessorHasNoIdleTime) {
  const UniformRandomTree g(3, 4, 5, -50, 50);
  const auto r = parallel_er_sim(g, cfg(4, 2), 1);
  EXPECT_EQ(r.metrics.idle_time, 0u);
  EXPECT_EQ(r.metrics.lock_wait_time, 0u) << "one processor never contends";
  EXPECT_EQ(r.metrics.processors, 1);
}

TEST(Sim, ManyProcessorsStarveOnTinyTree) {
  const UniformRandomTree g(2, 2, 5, -50, 50);
  const auto r = parallel_er_sim(g, cfg(2, 1), 16);
  EXPECT_GT(r.metrics.idle_time, 0u) << "16 processors cannot all stay busy";
}

TEST(Sim, MakespanBoundedByTotalWork) {
  // P processors cannot be slower than... the makespan must at least cover
  // busy_time / P, and cannot exceed busy+idle+lock ranges.
  const UniformRandomTree g(4, 5, 17, -100, 100);
  for (int p : {1, 2, 4, 8}) {
    const auto r = parallel_er_sim(g, cfg(5, 3), p);
    EXPECT_GE(static_cast<double>(r.metrics.makespan) * p,
              static_cast<double>(r.metrics.busy_time))
        << "p=" << p;
    EXPECT_LE(r.metrics.busy_time + r.metrics.idle_time,
              static_cast<std::uint64_t>(r.metrics.makespan) * p +
                  r.metrics.makespan)
        << "p=" << p;
  }
}

TEST(Sim, UtilizationInUnitRange) {
  const UniformRandomTree g(4, 5, 29, -100, 100);
  for (int p : {1, 4, 16}) {
    const auto r = parallel_er_sim(g, cfg(5, 3), p);
    EXPECT_GT(r.metrics.utilization(), 0.0);
    EXPECT_LE(r.metrics.utilization(), 1.0 + 1e-9);
  }
}

TEST(Sim, HigherQueueCostIncreasesMakespan) {
  // The interference knob must actually model contention.
  const UniformRandomTree g(4, 5, 31, -100, 100);
  sim::CostModel cheap;
  cheap.per_queue_op = 0;
  sim::CostModel pricey;
  pricey.per_queue_op = 10;
  const auto a = parallel_er_sim(g, cfg(5, 3), 8, cheap);
  const auto b = parallel_er_sim(g, cfg(5, 3), 8, pricey);
  EXPECT_LT(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.value, b.value) << "cost model must never affect the result";
}

TEST(Sim, CostModelOfCountsAllComponents) {
  sim::CostModel m;
  m.per_interior = 3;
  m.per_leaf = 5;
  m.per_sort_eval = 7;
  m.per_unit_base = 11;
  SearchStats s;
  s.interior_expanded = 2;
  s.leaves_evaluated = 4;
  s.sort_evals = 1;
  EXPECT_EQ(m.of(s), 11u + 6u + 20u + 7u);
}

}  // namespace
}  // namespace ers
