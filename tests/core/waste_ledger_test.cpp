// The wasted-work attribution ledger (DESIGN.md §16): Engine counters that
// charge each cancelled subtree's already-committed compute to a (cause,
// ply-band) cell, reconciled here against an independent replay of the
// trace stream.  The ledger charges at kill time from per-node subtree
// tallies; the replay attributes each traced kUnitCommit to its nearest
// cancelled ancestor.  The two must agree exactly — same cancels, same
// unit counts, same nanoseconds — on any schedule, which is the strongest
// correctness statement available for attribution code (a double count or
// a missed charge breaks the equality on some run).

#include <gtest/gtest.h>

#include <cstdint>
#include <variant>

#include "core/engine.hpp"
#include "core/parallel_er.hpp"
#include "core/types.hpp"
#include "harness/tree_registry.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "randomtree/random_tree.hpp"

namespace ers {
namespace {

using core::WasteCause;

void expect_reconciles(const core::EngineWasteStats& w,
                       const obs::TraceReport& rep, bool check_ns) {
  EXPECT_EQ(rep.waste.bound_change.cancels,
            w.cause_cancels(WasteCause::kBoundChange));
  EXPECT_EQ(rep.waste.bound_change.units,
            w.cause_units(WasteCause::kBoundChange));
  EXPECT_EQ(rep.waste.sibling_resolution.cancels,
            w.cause_cancels(WasteCause::kSiblingResolution));
  EXPECT_EQ(rep.waste.sibling_resolution.units,
            w.cause_units(WasteCause::kSiblingResolution));
  EXPECT_EQ(rep.waste.dead_drops, w.cause_cancels(WasteCause::kDeadDrop));
  // Dead queue-entry drops never ran, so the ledger holds no units or ns
  // for them by construction.
  EXPECT_EQ(w.cause_units(WasteCause::kDeadDrop), 0u);
  EXPECT_EQ(w.cause_ns(WasteCause::kDeadDrop), 0u);
  if (check_ns) {
    EXPECT_EQ(rep.waste.bound_change.compute_ns,
              w.cause_ns(WasteCause::kBoundChange));
    EXPECT_EQ(rep.waste.sibling_resolution.compute_ns,
              w.cause_ns(WasteCause::kSiblingResolution));
    EXPECT_EQ(rep.waste.total_ns(), w.total_ns());
  }
}

TEST(WasteLedger, ReconcilesWithTraceOnO2SpeculationWorkload) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  // O2 (Table 3), scaled down for test time, simulated at 8 processors with
  // every speculation mechanism on: bound-change and sibling-resolution
  // kills both occur, and the simulator stamps exact per-unit durations, so
  // the ns totals must match to the nanosecond.
  const auto tree = harness::tree_by_name("O2", /*scale_depth=*/3);
  obs::TraceSession session;
  std::visit(
      [&](const auto& game) {
        const auto r = parallel_er_sim(game, tree.engine, /*processors=*/8,
                                       /*cost=*/{}, /*queue_shards=*/1,
                                       /*batch=*/1, &session);
        ASSERT_EQ(session.total_dropped(), 0u)
            << "ring overflow would make the replay a strict subset";
        const obs::TraceReport rep = obs::analyze_trace(session.merged());
        EXPECT_EQ(rep.units, r.engine.units_processed);
        EXPECT_GT(r.waste.total_cancels(), 0u)
            << "workload produced no speculation waste; the reconciliation "
               "below would be vacuous";
        expect_reconciles(r.waste, rep, /*check_ns=*/true);
      },
      tree.game);
}

TEST(WasteLedger, ReconcilesAcrossProcessorCountsAndShards) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  const UniformRandomTree g(4, 5, 123, -100, 100);
  core::EngineConfig cfg;
  cfg.search_depth = 5;
  cfg.serial_depth = 3;
  for (const int p : {2, 8}) {
    for (const int shards : {1, 4}) {
      obs::TraceSession session;
      const auto r =
          parallel_er_sim(g, cfg, p, {}, shards, /*batch=*/1, &session);
      ASSERT_EQ(session.total_dropped(), 0u);
      const obs::TraceReport rep = obs::analyze_trace(session.merged());
      expect_reconciles(r.waste, rep, /*check_ns=*/true);
    }
  }
}

TEST(WasteLedger, ThreadRuntimeReconcilesUnitCountsAndTracedNs) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  // Real threads, nondeterministic schedule: the equality must hold on
  // every run.  The traced thread executor stamps each result with the
  // same measured duration it mirrors onto the kUnitCommit event, so even
  // the ns totals reconcile exactly here.
  const UniformRandomTree g(4, 5, 29, -100, 100);
  core::EngineConfig cfg;
  cfg.search_depth = 5;
  cfg.serial_depth = 3;
  for (int run = 0; run < 3; ++run) {
    obs::TraceSession session;
    const auto r = parallel_er_threads(g, cfg, /*threads=*/4, /*batch=*/2,
                                       /*shards=*/1, &session);
    if (session.total_dropped() != 0) continue;  // replay would be partial
    const obs::TraceReport rep = obs::analyze_trace(session.merged());
    expect_reconciles(r.waste, rep, /*check_ns=*/true);
    EXPECT_EQ(r.waste.total_units(), r.report.waste.total_units());
  }
}

TEST(WasteLedger, UntracedRunsCountUnitsButNoThreadNs) {
  // Untraced thread workers never read the clock: unit counts stay exact,
  // ns stays zero (types.hpp documents this contract on EngineWasteStats).
  const UniformRandomTree g(4, 5, 29, -100, 100);
  core::EngineConfig cfg;
  cfg.search_depth = 5;
  cfg.serial_depth = 3;
  const auto r = parallel_er_threads(g, cfg, /*threads=*/4, /*batch=*/2);
  EXPECT_EQ(r.waste.total_ns(), 0u);
  // The sim path on the same tree charges real (virtual) nanoseconds.
  const auto s = parallel_er_sim(g, cfg, 8);
  if (s.waste.total_units() > 0) EXPECT_GT(s.waste.total_ns(), 0u);
}

TEST(WasteLedger, BandsAndCausesFoldIntoTotals) {
  core::EngineWasteStats w;
  w.cancels[0][0] = 1;
  w.cancels[1][3] = 2;
  w.cancels[2][1] = 4;
  w.cancels[3][2] = 8;
  w.cancels[4][0] = 16;
  w.units[0][0] = 10;
  w.units[1][3] = 20;
  w.compute_ns[0][0] = 100;
  w.compute_ns[1][3] = 200;
  EXPECT_EQ(w.cause_cancels(WasteCause::kBoundChange), 1u);
  EXPECT_EQ(w.cause_cancels(WasteCause::kSiblingResolution), 2u);
  EXPECT_EQ(w.cause_cancels(WasteCause::kDeadDrop), 4u);
  EXPECT_EQ(w.cause_cancels(WasteCause::kSpecDemoted), 8u);
  EXPECT_EQ(w.cause_cancels(WasteCause::kSpecRewindowed), 16u);
  EXPECT_EQ(w.total_cancels(), 31u);
  EXPECT_EQ(w.total_units(), 30u);
  EXPECT_EQ(w.total_ns(), 300u);
  EXPECT_STREQ(core::waste_cause_name(WasteCause::kBoundChange),
               "bound_change");
  EXPECT_STREQ(core::waste_cause_name(WasteCause::kSiblingResolution),
               "sibling_resolution");
  EXPECT_STREQ(core::waste_cause_name(WasteCause::kDeadDrop), "dead_drop");
  EXPECT_STREQ(core::waste_cause_name(WasteCause::kSpecDemoted),
               "spec_demoted");
  EXPECT_STREQ(core::waste_cause_name(WasteCause::kSpecRewindowed),
               "spec_rewindowed");
  EXPECT_EQ(core::waste_band_of(0), 0u);
  EXPECT_EQ(core::waste_band_of(2), 2u);
  EXPECT_EQ(core::waste_band_of(9), core::kWastePlyBands - 1);
}

TEST(WasteLedger, ReconcilesWithSpeculationControlOn) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  // With §17 pop-time demotion live the committed-work attribution (causes
  // 0-2) must reconcile exactly as before, and the two new entry-level rows
  // must mirror the engine's demote/re-window counters with no units or ns
  // (nothing had run when the entry was re-pushed).  The trace replay counts
  // the same events from the kSpecDemote/kSpecRewindow stream.
  const UniformRandomTree g(5, 7, 41, -1000, 1000);
  core::EngineConfig cfg;
  cfg.search_depth = 7;
  cfg.serial_depth = 5;
  cfg.spec_rank = core::SpecRankPolicy::kStealAware;
  cfg.spec_control.bound_demote = true;
  for (const int p : {8, 16}) {
    obs::TraceSession session;
    const auto r = parallel_er_sim(g, cfg, p, {}, /*queue_shards=*/2,
                                   /*batch=*/1, &session);
    ASSERT_EQ(session.total_dropped(), 0u);
    const obs::TraceReport rep = obs::analyze_trace(session.merged());
    expect_reconciles(r.waste, rep, /*check_ns=*/true);
    EXPECT_EQ(r.waste.cause_cancels(WasteCause::kSpecDemoted),
              r.engine.spec_demotions);
    EXPECT_EQ(r.waste.cause_cancels(WasteCause::kSpecRewindowed),
              r.engine.spec_rewindows);
    EXPECT_EQ(rep.waste.demotions, r.engine.spec_demotions);
    EXPECT_EQ(rep.waste.rewindows, r.engine.spec_rewindows);
    EXPECT_EQ(r.waste.cause_units(WasteCause::kSpecDemoted), 0u);
    EXPECT_EQ(r.waste.cause_ns(WasteCause::kSpecDemoted), 0u);
    EXPECT_EQ(r.waste.cause_units(WasteCause::kSpecRewindowed), 0u);
    EXPECT_EQ(r.waste.cause_ns(WasteCause::kSpecRewindowed), 0u);
  }
}

}  // namespace
}  // namespace ers
