// Correctness of the parallel ER problem-heap engine: for every tree, every
// processor count, every serial-depth cutover and every speculation setting,
// the root value must equal serial negmax.

#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <deque>
#include <string>
#include <tuple>
#include <vector>

#include "core/parallel_er.hpp"
#include "gametree/explicit_tree.hpp"
#include "randomtree/random_tree.hpp"
#include "randomtree/strongly_ordered.hpp"
#include "search/negmax.hpp"
#include "tictactoe/tictactoe.hpp"

namespace ers {
namespace {

core::EngineConfig config_for(int depth, int serial_depth) {
  core::EngineConfig cfg;
  cfg.search_depth = depth;
  cfg.serial_depth = serial_depth;
  return cfg;
}

TEST(Engine, SingleLeafTree) {
  ExplicitTree t;
  t.set_value(0, 13);
  const auto r = parallel_er_sim(t, config_for(5, 2), 4);
  EXPECT_EQ(r.value, 13);
}

TEST(Engine, FullySerialCutover) {
  // serial_depth == 0: the root itself is one serial unit.
  const UniformRandomTree g(3, 4, 9);
  const auto r = parallel_er_sim(g, config_for(4, 0), 8);
  EXPECT_EQ(r.value, negmax_search(g, 4).value);
  EXPECT_EQ(r.engine.serial_units, 1u);
}

TEST(Engine, FullyParallelNoCutover) {
  // serial_depth == search_depth: every horizon leaf is its own unit.
  const UniformRandomTree g(3, 3, 10);
  const auto r = parallel_er_sim(g, config_for(3, 3), 4);
  EXPECT_EQ(r.value, negmax_search(g, 3).value);
}

TEST(Engine, UnaryChain) {
  ExplicitTree t;
  auto a = t.add_child(0);
  auto b = t.add_child(a);
  t.add_child(b, 21);
  for (int p : {1, 3}) {
    const auto r = parallel_er_sim(t, config_for(10, 2), p);
    EXPECT_EQ(r.value, -21) << "p=" << p;
  }
}

TEST(Engine, TerminalsAboveCutover) {
  // A tree whose branches end before both the horizon and the cutover.
  ExplicitTree t;
  t.add_child(0, 5);                     // leaf at ply 1
  const auto deep = t.add_child(0);      // interior
  t.add_child(deep, 7);
  t.add_child(deep, -2);
  const auto r = parallel_er_sim(t, config_for(8, 6), 4);
  EXPECT_EQ(r.value, t.negmax_value());
}

struct EngineCase {
  int degree;
  int height;
  Value range;
  int serial_depth;
  int processors;
};

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<EngineCase, std::uint64_t>> {};

TEST_P(EngineEquivalence, SimMatchesNegmax) {
  const auto& [c, seed] = GetParam();
  const UniformRandomTree g(c.degree, c.height, seed, -c.range, c.range);
  const Value oracle = negmax_search(g, c.height).value;
  const auto r = parallel_er_sim(g, config_for(c.height, c.serial_depth),
                                 c.processors);
  EXPECT_EQ(r.value, oracle);
}

std::string engine_case_name(
    const ::testing::TestParamInfo<EngineEquivalence::ParamType>& info) {
  const auto& [c, seed] = info.param;
  return "d" + std::to_string(c.degree) + "h" + std::to_string(c.height) +
         "sd" + std::to_string(c.serial_depth) + "p" +
         std::to_string(c.processors) + "s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineEquivalence,
    ::testing::Combine(::testing::Values(EngineCase{3, 4, 30, 2, 1},
                                         EngineCase{3, 4, 30, 2, 4},
                                         EngineCase{3, 4, 30, 2, 16},
                                         EngineCase{3, 5, 30, 3, 8},
                                         EngineCase{4, 4, 5, 2, 8},   // ties
                                         EngineCase{2, 7, 100, 4, 8},
                                         EngineCase{5, 3, 1000, 1, 8},
                                         EngineCase{4, 4, 30, 4, 8},
                                         EngineCase{4, 4, 30, 0, 8},
                                         EngineCase{1, 5, 9, 2, 4}),   // unary
                       ::testing::Range<std::uint64_t>(0, 10)),
    engine_case_name);

class SpeculationAblation : public ::testing::TestWithParam<int> {};

TEST_P(SpeculationAblation, AllTogglesStayExact) {
  const int mask = GetParam();
  core::EngineConfig cfg = config_for(5, 2);
  cfg.speculation.parallel_refutation = (mask & 1) != 0;
  cfg.speculation.multiple_e_children = (mask & 2) != 0;
  cfg.speculation.early_e_child_choice = (mask & 4) != 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const UniformRandomTree g(3, 5, seed, -40, 40);
    const Value oracle = negmax_search(g, 5).value;
    for (int p : {1, 4, 12}) {
      const auto r = parallel_er_sim(g, cfg, p);
      EXPECT_EQ(r.value, oracle) << "mask=" << mask << " seed=" << seed
                                 << " p=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMasks, SpeculationAblation, ::testing::Range(0, 8));

TEST(Engine, VaryingDegreeTrees) {
  StronglyOrderedTree::Config c;
  c.min_degree = 1;
  c.max_degree = 6;
  c.height = 5;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    c.seed = seed + 900;
    const StronglyOrderedTree g(c);
    const Value oracle = negmax_search(g, 5).value;
    const auto r = parallel_er_sim(g, config_for(5, 3), 8);
    EXPECT_EQ(r.value, oracle) << "seed=" << c.seed;
  }
}

TEST(Engine, TicTacToeIsDraw) {
  const TicTacToe g;
  const auto r = parallel_er_sim(g, config_for(9, 4), 8);
  EXPECT_EQ(r.value, 0);
}

TEST(Engine, OrderingPolicyKeepsExactness) {
  core::EngineConfig cfg = config_for(5, 3);
  cfg.ordering = OrderingPolicy{.sort_by_static_value = true, .max_sort_ply = 5};
  for (std::uint64_t seed = 20; seed < 28; ++seed) {
    const UniformRandomTree g(4, 5, seed, -60, 60);
    EXPECT_EQ(parallel_er_sim(g, cfg, 6).value, negmax_search(g, 5).value)
        << "seed=" << seed;
  }
}

TEST(Engine, SpeculativePromotionsHappenOnWideTrees) {
  const UniformRandomTree g(6, 4, 77, -100, 100);
  const auto r = parallel_er_sim(g, config_for(4, 2), 16);
  EXPECT_GT(r.engine.promotions_speculative, 0u)
      << "16 processors on a wide tree must exercise the speculative queue";
  // The first e-child selection happens either via Table 2 row 2 (mandatory)
  // or earlier through the speculative queue; both count as selections.
  EXPECT_GT(r.engine.promotions_mandatory + r.engine.promotions_speculative, 0u);
}

TEST(Engine, NoSpeculativePromotionsWhenDisabled) {
  core::EngineConfig cfg = config_for(4, 2);
  cfg.speculation.multiple_e_children = false;
  cfg.speculation.early_e_child_choice = false;
  const UniformRandomTree g(6, 4, 77, -100, 100);
  const auto r = parallel_er_sim(g, cfg, 16);
  EXPECT_EQ(r.engine.promotions_speculative, 0u);
}

TEST(Engine, MoreProcessorsExamineAtLeastAsManyNodesUsually) {
  // Speculative loss: parallel runs examine more nodes than P=1 (this is
  // Figure 12/13's phenomenon).  Deterministic for fixed seeds.
  const UniformRandomTree g(4, 6, 3, -100, 100);
  const auto p1 = parallel_er_sim(g, config_for(6, 3), 1);
  const auto p8 = parallel_er_sim(g, config_for(6, 3), 8);
  EXPECT_GE(p8.engine.search.nodes_generated(),
            p1.engine.search.nodes_generated());
}

TEST(Engine, ParallelTimeNotWorseThanSerialTimeOnBigTree) {
  const UniformRandomTree g(4, 6, 5, -100, 100);
  const auto p1 = parallel_er_sim(g, config_for(6, 3), 1);
  const auto p8 = parallel_er_sim(g, config_for(6, 3), 8);
  EXPECT_LT(p8.metrics.makespan, p1.metrics.makespan)
      << "8 simulated processors should beat 1 on a 4^6 tree";
}

TEST(Engine, StatsAreInternallyConsistent) {
  const UniformRandomTree g(4, 5, 6, -50, 50);
  const auto r = parallel_er_sim(g, config_for(5, 3), 4);
  EXPECT_GT(r.engine.units_processed, 0u);
  EXPECT_GT(r.engine.serial_units, 0u);
  EXPECT_GT(r.engine.search.leaves_evaluated, 0u);
  EXPECT_EQ(r.metrics.units, r.engine.units_processed);
}

// --- batched executor protocol -------------------------------------------

TEST(EngineBatch, AcquireBatchRespectsLimitAndOrder) {
  const UniformRandomTree g(4, 4, 21, -50, 50);
  using EngineT = core::Engine<UniformRandomTree>;
  EngineT engine(g, config_for(4, 2));
  std::vector<core::WorkItem> batch;
  const std::size_t got = engine.acquire_batch(3, batch);
  EXPECT_LE(got, 3u);
  EXPECT_EQ(got, batch.size());
  // The batch must coincide with what repeated single acquires would have
  // popped: commit nothing, so a fresh engine's single pops reproduce it.
  EngineT engine2(g, config_for(4, 2));
  for (const core::WorkItem& item : batch) {
    const auto single = engine2.acquire();
    ASSERT_TRUE(single.has_value());
    EXPECT_EQ(single->node, item.node);
    EXPECT_EQ(single->kind, item.kind);
  }
}

TEST(EngineBatch, BatchDriverMatchesNegmax) {
  // Drive the engine to completion through the batch forms only, at several
  // batch sizes: the root value must equal serial negmax every time.
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const UniformRandomTree g(3, 5, seed, -60, 60);
      using EngineT = core::Engine<UniformRandomTree>;
      EngineT engine(g, config_for(5, 3));
      std::vector<core::WorkItem> items;
      std::vector<EngineT::CommitEntry> batch;
      while (!engine.done()) {
        items.clear();
        batch.clear();
        const std::size_t got = engine.acquire_batch(k, items);
        if (got == 0) break;  // acquire can combine to the root
        EXPECT_LE(got, k);
        for (const core::WorkItem& item : items)
          batch.push_back({item, engine.compute(item)});
        engine.commit_batch(batch);
      }
      ASSERT_TRUE(engine.done()) << "k=" << k << " seed=" << seed;
      EXPECT_EQ(engine.root_value(), negmax_search(g, 5).value)
          << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(EngineBatch, SingleItemCallsAreUnchangedWrappers) {
  // A k=1 batch driver and the classic acquire/commit driver must walk the
  // identical schedule: same unit count, same nodes, same value.
  const UniformRandomTree g(4, 4, 33, -80, 80);
  using EngineT = core::Engine<UniformRandomTree>;
  EngineT a(g, config_for(4, 2));
  while (!a.done()) {
    auto item = a.acquire();
    if (!item) break;
    a.commit(*item, a.compute(*item));
  }
  EngineT b(g, config_for(4, 2));
  std::vector<core::WorkItem> items;
  std::vector<EngineT::CommitEntry> batch;
  while (!b.done()) {
    items.clear();
    batch.clear();
    if (b.acquire_batch(1, items) == 0) break;
    batch.push_back({items[0], b.compute(items[0])});
    b.commit_batch(batch);
  }
  EXPECT_EQ(a.root_value(), b.root_value());
  EXPECT_EQ(a.stats().units_processed, b.stats().units_processed);
  EXPECT_EQ(a.stats().search.nodes_generated(), b.stats().search.nodes_generated());
}

TEST(EngineBatch, QueuedCountReflectsQueues) {
  const UniformRandomTree g(4, 4, 5, -50, 50);
  core::Engine<UniformRandomTree> engine(g, config_for(4, 2));
  EXPECT_GE(engine.queued_count(), 1u) << "the root starts queued";
  std::vector<core::WorkItem> items;
  engine.acquire_batch(64, items);
  EXPECT_EQ(engine.queued_count(), 0u) << "a huge batch drains the queues";
}

// --- sharded heap ---------------------------------------------------------

core::EngineConfig sharded_config(int depth, int serial_depth, int shards) {
  core::EngineConfig cfg = config_for(depth, serial_depth);
  cfg.heap_shards = shards;
  return cfg;
}

TEST(EngineShards, GlobalPopOrderIsShardInvariant) {
  // The load-bearing claim of the sharded heap: the global acquire walks
  // the identical schedule at every shard count, because the maximum over
  // shard tops under one total-order comparator is the single-heap maximum.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const UniformRandomTree g(4, 4, seed + 40, -80, 80);
    using EngineT = core::Engine<UniformRandomTree>;
    EngineT base(g, sharded_config(4, 2, 1));
    std::vector<std::uint32_t> base_order;
    while (!base.done()) {
      auto item = base.acquire();
      if (!item) break;
      base_order.push_back(item->node);
      base.commit(*item, base.compute(*item));
    }
    for (const int shards : {2, 4, 8}) {
      EngineT e(g, sharded_config(4, 2, shards));
      std::vector<std::uint32_t> order;
      while (!e.done()) {
        auto item = e.acquire();
        if (!item) break;
        order.push_back(item->node);
        e.commit(*item, e.compute(*item));
      }
      EXPECT_EQ(order, base_order) << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(e.root_value(), base.root_value());
      EXPECT_EQ(e.stats().search.nodes_generated(),
                base.stats().search.nodes_generated());
    }
  }
}

TEST(EngineShards, HomeShardRoutesByParent) {
  const UniformRandomTree g(4, 4, 7, -50, 50);
  core::Engine<UniformRandomTree> engine(g, sharded_config(4, 2, 4));
  EXPECT_EQ(engine.shard_count(), 4u);
  // Node 0 is the root; it has no parent, so it homes on shard 0.
  EXPECT_EQ(engine.home_shard(0), 0u) << "the root homes on 0";
}

TEST(EngineShards, ShardLocalAcquireDrainsOnlyThatShard) {
  // Pop every unit shard by shard: each item must be homed where it was
  // popped, and the union must cover exactly what a global drain yields.
  const UniformRandomTree g(4, 4, 19, -50, 50);
  using EngineT = core::Engine<UniformRandomTree>;
  const std::size_t S = 4;
  EngineT engine(g, sharded_config(4, 2, static_cast<int>(S)));
  // Expand a few levels first so several shards hold work.
  for (int rounds = 0; rounds < 8 && !engine.done(); ++rounds) {
    auto item = engine.acquire();
    if (!item) break;
    engine.commit(*item, engine.compute(*item));
  }
  std::size_t drained = 0;
  for (std::size_t s = 0; s < S; ++s) {
    std::vector<core::WorkItem> items;
    const std::size_t got = engine.acquire_batch_shard(s, 64, items);
    EXPECT_EQ(got, items.size());
    for (const core::WorkItem& item : items)
      EXPECT_EQ(engine.home_shard(item.node), s)
          << "shard-local pop returned a foreign node";
    drained += got;
  }
  EXPECT_EQ(engine.queued_count(), 0u)
      << "draining every shard empties the heap";
  (void)drained;
}

TEST(EngineShards, ShardedBatchDriverMatchesNegmax) {
  // Round-robin shard-local batches (the stealing scheduler's refill
  // pattern, serialized): the value must still equal negmax.
  for (const int shards : {2, 4}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const UniformRandomTree g(3, 5, seed, -60, 60);
      using EngineT = core::Engine<UniformRandomTree>;
      EngineT engine(g, sharded_config(5, 3, shards));
      std::vector<core::WorkItem> items;
      std::vector<EngineT::CommitEntry> batch;
      std::size_t next = 0;
      while (!engine.done()) {
        items.clear();
        batch.clear();
        std::size_t got = 0;
        for (std::size_t probe = 0; probe < static_cast<std::size_t>(shards);
             ++probe) {
          got = engine.acquire_batch_shard(
              (next + probe) % static_cast<std::size_t>(shards), 4, items);
          if (got > 0) {
            next = (next + probe + 1) % static_cast<std::size_t>(shards);
            break;
          }
        }
        if (got == 0) break;
        for (const core::WorkItem& item : items)
          batch.push_back({item, engine.compute(item)});
        engine.commit_batch(batch);
      }
      ASSERT_TRUE(engine.done()) << "shards=" << shards << " seed=" << seed;
      EXPECT_EQ(engine.root_value(), negmax_search(g, 5).value)
          << "shards=" << shards << " seed=" << seed;
    }
  }
}

// --- flat-combining commit path -------------------------------------------

TEST(EngineCombine, CombinedCommitsMatchSequentialCommits) {
  // The soundness claim of flat combining (DESIGN.md §12): a combiner
  // applying N published records in one drain round must leave the engine
  // in exactly the state N sequential commit_batch calls (same records,
  // same order) would.  Twin engines, identical up to a set of uncommitted
  // batches; one publishes them all and combines once, the other commits
  // them one by one.  Every observable — the complete remaining pop order,
  // the root value, the tree, the stats block — must coincide.
  for (const int shards : {1, 4}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const UniformRandomTree g(4, 5, seed + 60, -80, 80);
      using EngineT = core::Engine<UniformRandomTree>;
      EngineT combined(g, sharded_config(5, 3, shards));
      EngineT sequential(g, sharded_config(5, 3, shards));
      // Walk both engines through the same prefix so several units are
      // ready and ancestor chains span shards.
      for (int r = 0; r < 6; ++r) {
        auto a = combined.acquire();
        auto b = sequential.acquire();
        ASSERT_EQ(a.has_value(), b.has_value());
        if (!a.has_value()) break;
        ASSERT_EQ(a->node, b->node);
        combined.commit(*a, combined.compute(*a));
        sequential.commit(*b, sequential.compute(*b));
      }
      // Pull the same uncommitted units from each twin, computed but held.
      constexpr std::size_t kPer = 2;
      std::vector<core::WorkItem> ca, sa;
      combined.acquire_batch(6, ca);
      sequential.acquire_batch(6, sa);
      ASSERT_EQ(ca.size(), sa.size());
      std::vector<std::vector<EngineT::CommitEntry>> cbatches, sbatches;
      for (std::size_t i = 0; i < ca.size(); i += kPer) {
        cbatches.emplace_back();
        sbatches.emplace_back();
        for (std::size_t j = i; j < std::min(i + kPer, ca.size()); ++j) {
          ASSERT_EQ(ca[j].node, sa[j].node);
          cbatches.back().push_back({ca[j], combined.compute(ca[j])});
          sbatches.back().push_back({sa[j], sequential.compute(sa[j])});
        }
      }
      // Publish every record first, then apply them all in one combiner
      // drain round; the twin commits the identical records sequentially.
      std::deque<EngineT::PendingCommit> pending(cbatches.size());
      for (std::size_t i = 0; i < cbatches.size(); ++i)
        combined.publish_commit(cbatches[i], pending[i]);
      combined.combine_published();
      for (EngineT::PendingCommit& pc : pending)
        EXPECT_TRUE(pc.applied.load()) << "combiner left a record behind";
      for (std::vector<EngineT::CommitEntry>& b : sbatches)
        sequential.commit_batch(b);
      // From here the engines must be indistinguishable: drain both to
      // completion and compare every observable.
      std::vector<std::uint32_t> corder, sorder;
      while (!combined.done()) {
        auto item = combined.acquire();
        if (!item.has_value()) break;
        corder.push_back(item->node);
        combined.commit(*item, combined.compute(*item));
      }
      while (!sequential.done()) {
        auto item = sequential.acquire();
        if (!item.has_value()) break;
        sorder.push_back(item->node);
        sequential.commit(*item, sequential.compute(*item));
      }
      EXPECT_EQ(corder, sorder) << "shards=" << shards << " seed=" << seed;
      ASSERT_TRUE(combined.done());
      ASSERT_TRUE(sequential.done());
      EXPECT_EQ(combined.root_value(), sequential.root_value());
      EXPECT_EQ(combined.root_value(), negmax_search(g, 5).value);
      EXPECT_EQ(combined.tree_size(), sequential.tree_size());
      const core::EngineStats cs = combined.stats();
      const core::EngineStats ss = sequential.stats();
      EXPECT_EQ(cs.units_processed, ss.units_processed);
      EXPECT_EQ(cs.search.nodes_generated(), ss.search.nodes_generated());
      EXPECT_EQ(cs.search.leaves_evaluated, ss.search.leaves_evaluated);
      EXPECT_EQ(cs.promotions_mandatory, ss.promotions_mandatory);
      EXPECT_EQ(cs.promotions_speculative, ss.promotions_speculative);
      EXPECT_EQ(cs.refutations_dispatched, ss.refutations_dispatched);
      EXPECT_EQ(cs.cutoffs_at_pop, ss.cutoffs_at_pop);
      const core::EngineLockStats ls = combined.lock_stats();
      EXPECT_GE(ls.combine_records, cbatches.size())
          << "published records must be accounted as combined";
    }
  }
}

// --- epoch publication + frontier truncation (DESIGN.md §13) ---------------

core::EngineConfig frontier_config(int depth, int serial_depth, int shards,
                                   int frontier,
                                   core::PlacementMode placement =
                                       core::PlacementMode::kParentMod) {
  core::EngineConfig cfg = sharded_config(depth, serial_depth, shards);
  cfg.publish_frontier = frontier;
  cfg.placement = placement;
  return cfg;
}

TEST(EngineFrontier, EpochPathIsByteIdenticalToFullLock) {
  // The determinism claim of the truncated-commit path: with the publish
  // frontier on, every commit runs through truncated touch sets, deferred
  // backups and epoch publication — yet the *committed-state sequence*
  // (popped node, root value, tree size, units processed, after every
  // single commit) must be byte-identical to the PR 5 full-lock path.
  // Twin engines, frontier 0 vs 4, driven in lockstep.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const UniformRandomTree g(4, 6, seed + 90, -90, 90);
    using EngineT = core::Engine<UniformRandomTree>;
    EngineT full(g, frontier_config(6, 4, 4, 0));
    EngineT truncated(g, frontier_config(6, 4, 4, 4));
    while (!full.done() || !truncated.done()) {
      ASSERT_EQ(full.done(), truncated.done()) << "seed=" << seed;
      auto a = full.acquire();
      auto b = truncated.acquire();
      ASSERT_EQ(a.has_value(), b.has_value()) << "seed=" << seed;
      if (!a.has_value()) break;
      ASSERT_EQ(a->node, b->node) << "seed=" << seed;
      ASSERT_EQ(static_cast<int>(a->kind), static_cast<int>(b->kind));
      full.commit(*a, full.compute(*a));
      truncated.commit(*b, truncated.compute(*b));
      // Committed state must coincide after *every* commit, not just at
      // the end — truncation may not even transiently reorder backups.
      ASSERT_EQ(full.root_value(), truncated.root_value()) << "seed=" << seed;
      ASSERT_EQ(full.tree_size(), truncated.tree_size()) << "seed=" << seed;
      ASSERT_EQ(full.stats().units_processed,
                truncated.stats().units_processed);
    }
    ASSERT_TRUE(full.done());
    ASSERT_TRUE(truncated.done());
    EXPECT_EQ(full.root_value(), negmax_search(g, 6).value);
    const core::EngineStats fs = full.stats();
    const core::EngineStats ts = truncated.stats();
    EXPECT_EQ(fs.search.nodes_generated(), ts.search.nodes_generated());
    EXPECT_EQ(fs.promotions_speculative, ts.promotions_speculative);
    EXPECT_EQ(fs.refutations_dispatched, ts.refutations_dispatched);
    EXPECT_EQ(fs.cutoffs_at_pop, ts.cutoffs_at_pop);
    // The truncated twin must actually have exercised the new path.
    EXPECT_GT(truncated.lock_stats().truncated_records, 0u)
        << "frontier 4 on a depth-6 tree must truncate some commits";
    EXPECT_EQ(full.lock_stats().truncated_records, 0u)
        << "frontier 0 must never truncate";
  }
}

TEST(EngineFrontier, FrontierSweepKeepsNegmax) {
  // Any frontier depth — including degenerate ones above the serial
  // cutover and below every commit — must leave the result exact.
  const UniformRandomTree g(4, 5, 23, -70, 70);
  const Value oracle = negmax_search(g, 5).value;
  for (const int frontier : {1, 2, 3, 5, 9}) {
    using EngineT = core::Engine<UniformRandomTree>;
    EngineT engine(g, frontier_config(5, 3, 4, frontier));
    while (!engine.done()) {
      auto item = engine.acquire();
      if (!item) break;
      engine.commit(*item, engine.compute(*item));
    }
    ASSERT_TRUE(engine.done()) << "frontier=" << frontier;
    EXPECT_EQ(engine.root_value(), oracle) << "frontier=" << frontier;
  }
}

TEST(EngineFrontier, TruncatedTouchSetsLeaveRootShardOut) {
  // The point of the tentpole: under subtree-affinity placement a deep
  // commit's truncated touch set must not contain shard 0 (the root's
  // home), while the full-chain set of the frontier-off twin always does.
  // Lockstep twins; the truncated set must also always be a subset of the
  // full set (truncation only ever removes shards).
  const UniformRandomTree g(4, 6, 31, -90, 90);
  using EngineT = core::Engine<UniformRandomTree>;
  const auto mode = core::PlacementMode::kSubtreeAffinity;
  EngineT full(g, frontier_config(6, 4, 8, 0, mode));
  EngineT truncated(g, frontier_config(6, 4, 8, 4, mode));
  std::size_t root_free = 0;
  std::size_t commits = 0;
  while (!full.done()) {
    auto a = full.acquire();
    auto b = truncated.acquire();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    ASSERT_EQ(a->node, b->node);
    std::vector<std::uint32_t> fset, tset;
    full.commit_touch_shards(a->node, fset);
    truncated.commit_touch_shards(b->node, tset);
    for (const std::uint32_t s : tset)
      EXPECT_NE(std::find(fset.begin(), fset.end(), s), fset.end())
          << "truncation invented a shard";
    const bool full_has_root =
        std::find(fset.begin(), fset.end(), 0u) != fset.end();
    const bool trunc_has_root =
        std::find(tset.begin(), tset.end(), 0u) != tset.end();
    if (full_has_root && !trunc_has_root) ++root_free;
    ++commits;
    full.commit(*a, full.compute(*a));
    truncated.commit(*b, truncated.compute(*b));
  }
  ASSERT_TRUE(truncated.done());
  EXPECT_EQ(full.root_value(), truncated.root_value());
  EXPECT_GT(commits, 0u);
  EXPECT_GT(root_free, 0u)
      << "no commit ever dropped the root shard: truncation is not engaging";
}

TEST(EngineFrontier, AdaptiveDerivationFormula) {
  // kAdaptiveFrontier resolution (core/shard_policy.hpp): 0 at one shard,
  // 2 + log2(S) otherwise, capped at serial_depth - 1 and search_depth.
  EXPECT_EQ(core::derived_publish_frontier(7, 5, 1), 0);
  EXPECT_EQ(core::derived_publish_frontier(7, 5, 2), 3);
  EXPECT_EQ(core::derived_publish_frontier(7, 5, 4), 4);  // historical default
  EXPECT_EQ(core::derived_publish_frontier(7, 5, 8), 4);  // capped at serial-1
  EXPECT_EQ(core::derived_publish_frontier(10, 7, 8), 5);
  EXPECT_EQ(core::derived_publish_frontier(7, 5, 16), 4);
  EXPECT_EQ(core::derived_publish_frontier(5, 0, 4), 0);  // degenerate cutover
  EXPECT_EQ(core::derived_publish_frontier(2, 2, 64), 1);  // search_depth floor
}

TEST(EngineFrontier, AdaptiveDefaultResolvesAtConstruction) {
  const UniformRandomTree g(4, 5, 11, -60, 60);
  using EngineT = core::Engine<UniformRandomTree>;
  core::EngineConfig cfg = sharded_config(5, 3, 4);
  ASSERT_EQ(cfg.publish_frontier, core::kAdaptiveFrontier)
      << "the config default must be the adaptive sentinel";
  EngineT adaptive(g, cfg);
  EXPECT_EQ(adaptive.publish_frontier(),
            core::derived_publish_frontier(5, 3, 4));
  // An explicit value is an override, never re-derived.
  cfg.publish_frontier = 2;
  EngineT pinned(g, cfg);
  EXPECT_EQ(pinned.publish_frontier(), 2);
}

TEST(EngineFrontier, AdaptiveValuesAreByteIdenticalToFullLock) {
  // Bit-identity twin test at each *derived* frontier value: for every
  // shard count the adaptive default may pick, the epoch/truncation path it
  // enables must produce the same committed-state sequence as the full-lock
  // twin (frontier 0), commit by commit — the same guarantee
  // EpochPathIsByteIdenticalToFullLock pins for the historical fixed 4.
  for (const int shards : {2, 4, 8}) {
    const UniformRandomTree g(4, 6, 57 + static_cast<std::uint64_t>(shards),
                              -90, 90);
    using EngineT = core::Engine<UniformRandomTree>;
    EngineT full(g, frontier_config(6, 4, shards, 0));
    EngineT adaptive(g, frontier_config(6, 4, shards, core::kAdaptiveFrontier));
    EXPECT_EQ(adaptive.publish_frontier(),
              core::derived_publish_frontier(6, 4, shards));
    EXPECT_GT(adaptive.publish_frontier(), 0) << "shards=" << shards;
    while (!full.done() || !adaptive.done()) {
      ASSERT_EQ(full.done(), adaptive.done()) << "shards=" << shards;
      auto a = full.acquire();
      auto b = adaptive.acquire();
      ASSERT_EQ(a.has_value(), b.has_value()) << "shards=" << shards;
      if (!a.has_value()) break;
      ASSERT_EQ(a->node, b->node) << "shards=" << shards;
      full.commit(*a, full.compute(*a));
      adaptive.commit(*b, adaptive.compute(*b));
      ASSERT_EQ(full.root_value(), adaptive.root_value()) << "shards=" << shards;
      ASSERT_EQ(full.tree_size(), adaptive.tree_size()) << "shards=" << shards;
    }
    ASSERT_TRUE(full.done());
    ASSERT_TRUE(adaptive.done());
    EXPECT_EQ(full.root_value(), negmax_search(g, 6).value);
    EXPECT_EQ(full.stats().search.nodes_generated(),
              adaptive.stats().search.nodes_generated());
    EXPECT_GT(adaptive.lock_stats().truncated_records, 0u)
        << "derived frontier " << adaptive.publish_frontier()
        << " must actually truncate at " << shards << " shards";
  }
}

TEST(EngineShards, SubtreePlacementPopOrderInvariant) {
  // Placement moves queue entries between shards; it must never move the
  // schedule.  The single-heap pop order is the oracle for both placement
  // modes at every shard count.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const UniformRandomTree g(4, 4, seed + 40, -80, 80);
    using EngineT = core::Engine<UniformRandomTree>;
    EngineT base(g, sharded_config(4, 2, 1));
    std::vector<std::uint32_t> base_order;
    while (!base.done()) {
      auto item = base.acquire();
      if (!item) break;
      base_order.push_back(item->node);
      base.commit(*item, base.compute(*item));
    }
    for (const int shards : {2, 4, 8}) {
      EngineT e(g, frontier_config(4, 2, shards, 4,
                                   core::PlacementMode::kSubtreeAffinity));
      std::vector<std::uint32_t> order;
      while (!e.done()) {
        auto item = e.acquire();
        if (!item) break;
        order.push_back(item->node);
        e.commit(*item, e.compute(*item));
      }
      EXPECT_EQ(order, base_order) << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(e.root_value(), base.root_value());
    }
  }
}

TEST(EngineShards, SubtreeAffinityHomesFollowRootChildren) {
  // The root's children (ids 1..degree after the root expansion) carry
  // distinct subtree tags 0..degree-1, so with S == degree their homes are
  // a permutation of every shard — disjoint subtrees never share a home —
  // and the root itself stays on shard 0.
  const UniformRandomTree g(4, 4, 7, -50, 50);
  using EngineT = core::Engine<UniformRandomTree>;
  EngineT engine(g, frontier_config(4, 2, 4, 4,
                                    core::PlacementMode::kSubtreeAffinity));
  // Expand the root so its children exist.
  auto item = engine.acquire();
  ASSERT_TRUE(item.has_value());
  ASSERT_EQ(item->node, 0u);
  engine.commit(*item, engine.compute(*item));
  EXPECT_EQ(engine.home_shard(0), 0u);
  std::vector<std::size_t> homes;
  for (std::uint32_t c = 1; c <= 4; ++c)
    homes.push_back(engine.home_shard(c));
  std::sort(homes.begin(), homes.end());
  EXPECT_EQ(homes, (std::vector<std::size_t>{0, 1, 2, 3}))
      << "root subtrees must spread over all shards, one each";
}

}  // namespace
}  // namespace ers
