// Steal-aware speculation control (DESIGN.md §17) and the shared ordering
// tables: correctness, determinism, and the concurrency hammers.  Own test
// binary so the thread-runtime hammers ride the tsan lane (ctest -L tsan)
// without dragging the serial engine sweeps along.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/parallel_er.hpp"
#include "randomtree/random_tree.hpp"
#include "search/negmax.hpp"
#include "search/ordering.hpp"

namespace ers {
namespace {

/// Deep parallel region (serial cutover at the horizon): heavy speculative
/// traffic, the regime the §17 controller exists for.
core::EngineConfig deep_cfg(core::SpecRankPolicy policy) {
  core::EngineConfig cfg;
  cfg.search_depth = 6;
  cfg.serial_depth = 3;
  cfg.spec_rank = policy;
  return cfg;
}

// ---------------------------------------------------------------------------
// Satellite regression: the global pop order — primary and speculative pops
// alike — is bit-identical at every shard count when the controller is off.
// The referee is the same single-threaded protocol drive the node-storage
// oracle uses: one driver popping the sharded heap in global order, so the
// sequence has no timing component to hide behind.
// ---------------------------------------------------------------------------

using EngineT = core::Engine<UniformRandomTree>;

/// Single-threaded protocol drive to completion; returns the pop order.
/// Batched acquires drain past the primary queue into the speculative one
/// (a batch of 8 outruns the fresh mandatory work each commit creates), so
/// the recorded order covers spec pops, not just primary ones.
std::vector<std::uint32_t> drive(EngineT& engine) {
  std::vector<std::uint32_t> order;
  std::vector<core::WorkItem> items;
  std::vector<EngineT::CommitEntry> batch;
  while (!engine.done()) {
    items.clear();
    batch.clear();
    if (engine.acquire_batch(8, items) == 0) break;
    for (const core::WorkItem& item : items) {
      order.push_back(item.node);
      batch.push_back({item, engine.compute(item)});
    }
    engine.commit_batch(batch);
  }
  return order;
}

TEST(SpecPopOrder, BitIdenticalAcrossShardCounts) {
  for (const auto policy : {core::SpecRankPolicy::kFewestEChildren,
                            core::SpecRankPolicy::kStealAware}) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const UniformRandomTree g(5, 7, seed + 27, -1000, 1000);
      auto cfg = deep_cfg(policy);
      cfg.search_depth = 7;
      cfg.serial_depth = 5;
      cfg.heap_shards = 1;
      EngineT base(g, cfg);
      const std::vector<std::uint32_t> base_order = drive(base);
      ASSERT_GT(base.stats().promotions_speculative, 0u)
          << "workload popped no speculative entries; the regression below "
             "would be vacuous";
      for (const int shards : {2, 4, 8}) {
        cfg.heap_shards = shards;
        EngineT e(g, cfg);
        EXPECT_EQ(drive(e), base_order)
            << "policy=" << static_cast<int>(policy) << " seed=" << seed
            << " shards=" << shards;
        EXPECT_EQ(e.root_value(), base.root_value());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Exactness and determinism with the controller on (sim).
// ---------------------------------------------------------------------------

std::vector<core::SpecControlConfig> control_points() {
  core::SpecControlConfig demote;
  demote.bound_demote = true;
  core::SpecControlConfig budget = demote;
  budget.budget = true;
  budget.budget_max = 2;  // tight: force deferrals, not just bookkeeping
  return {demote, budget};
}

TEST(SpecControl, ExactOnRandomTreesUnderEveryControl) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const UniformRandomTree g(4, 6, seed, -70, 70);
    const Value oracle = negmax_search(g, 6).value;
    for (const auto& control : control_points()) {
      for (int p : {1, 8, 16}) {
        auto cfg = deep_cfg(core::SpecRankPolicy::kStealAware);
        cfg.spec_control = control;
        const auto r = parallel_er_sim(g, cfg, p);
        EXPECT_EQ(r.value, oracle) << "seed=" << seed << " p=" << p;
      }
    }
  }
}

TEST(SpecControl, ExactWithOrderingTablesAttached) {
  OrderingTables tables;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const UniformRandomTree g(4, 6, seed, -90, 90);
    const Value oracle = negmax_search(g, 6).value;
    auto cfg = deep_cfg(core::SpecRankPolicy::kStealAware);
    cfg.spec_control = control_points().back();
    cfg.ordering.sort_by_static_value = true;
    cfg.order_tables = &tables;
    tables.new_search();
    for (int p : {1, 16}) {
      const auto r = parallel_er_sim(g, cfg, p);
      EXPECT_EQ(r.value, oracle) << "seed=" << seed << " p=" << p;
    }
  }
}

TEST(SpecControl, DeterministicUnderControl) {
  const UniformRandomTree g(5, 5, 19, -100, 100);
  auto cfg = deep_cfg(core::SpecRankPolicy::kStealAware);
  cfg.spec_control = control_points().back();
  const auto a = parallel_er_sim(g, cfg, 16);
  const auto b = parallel_er_sim(g, cfg, 16);
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.engine.search.nodes_generated(),
            b.engine.search.nodes_generated());
  EXPECT_EQ(a.engine.spec_demotions, b.engine.spec_demotions);
  EXPECT_EQ(a.engine.spec_rewindows, b.engine.spec_rewindows);
  EXPECT_EQ(a.engine.spec_budget_deferrals, b.engine.spec_budget_deferrals);
}

TEST(SpecControl, ControllerActuallyEngagesSomewhere) {
  // A controller that never demotes, re-windows, or defers on any of 20
  // speculative-heavy trees is not wired in.
  std::uint64_t demoted = 0, deferred = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const UniformRandomTree g(5, 7, seed, -1000, 1000);
    auto cfg = deep_cfg(core::SpecRankPolicy::kStealAware);
    cfg.search_depth = 7;
    cfg.serial_depth = 5;
    cfg.spec_control = control_points().back();
    cfg.spec_control.budget_max = 1;
    const auto r = parallel_er_sim(g, cfg, 16);
    demoted += r.engine.spec_demotions + r.engine.spec_rewindows;
    deferred += r.engine.spec_budget_deferrals;
  }
  EXPECT_GT(demoted, 0u);
  EXPECT_GT(deferred, 0u);
}

TEST(SpecControl, DemotionsReconcileWithWasteLedger) {
  // Entry-level events: each demote/re-window is one cancel in its ledger
  // row, with no units or compute time attached (nothing had run yet).
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const UniformRandomTree g(5, 7, seed, -1000, 1000);
    auto cfg = deep_cfg(core::SpecRankPolicy::kStealAware);
    cfg.search_depth = 7;
    cfg.serial_depth = 5;
    cfg.spec_control.bound_demote = true;
    const auto r = parallel_er_sim(g, cfg, 16);
    EXPECT_EQ(r.waste.cause_cancels(core::WasteCause::kSpecDemoted),
              r.engine.spec_demotions);
    EXPECT_EQ(r.waste.cause_cancels(core::WasteCause::kSpecRewindowed),
              r.engine.spec_rewindows);
    EXPECT_EQ(r.waste.cause_units(core::WasteCause::kSpecDemoted), 0u);
    EXPECT_EQ(r.waste.cause_ns(core::WasteCause::kSpecRewindowed), 0u);
  }
}

// ---------------------------------------------------------------------------
// Thread-runtime sweeps and hammers (the tsan targets).
// ---------------------------------------------------------------------------

TEST(SpecControlThreads, SweepThreadsShardsPolicies) {
  // Determinism-of-result sweep: every (threads, shards, control) point must
  // report the serial root value — demotion/cancel and the budget gate may
  // only reschedule work, never lose or duplicate a result.
  core::SpecControlConfig full;
  full.bound_demote = true;
  full.steal_feedback = true;
  full.budget = true;
  full.budget_max = 2;
  auto points = control_points();
  points.push_back(full);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const UniformRandomTree g(4, 6, seed, -80, 80);
    const Value oracle = negmax_search(g, 6).value;
    for (const auto& control : points) {
      for (int threads : {2, 8}) {
        for (int shards : {1, 4}) {
          auto cfg = deep_cfg(core::SpecRankPolicy::kStealAware);
          cfg.spec_control = control;
          const auto r = parallel_er_threads(g, cfg, threads, 1, shards);
          EXPECT_EQ(r.value, oracle) << "seed=" << seed << " t=" << threads
                                     << " s=" << shards;
        }
      }
    }
  }
}

TEST(SpecControlThreads, DemoteCancelHammer) {
  // Stress the pop-time demotion path and note_steal feedback under real
  // contention: stealing scheduler (4 shards), tight budget, many repeats.
  core::SpecControlConfig full;
  full.bound_demote = true;
  full.steal_feedback = true;
  full.budget = true;
  full.budget_max = 1;
  const UniformRandomTree g(5, 6, 7, -500, 500);
  const Value oracle = negmax_search(g, 6).value;
  auto cfg = deep_cfg(core::SpecRankPolicy::kStealAware);
  cfg.spec_control = full;
  for (int rep = 0; rep < 8; ++rep) {
    const auto r = parallel_er_threads(g, cfg, 8, 1, 4);
    ASSERT_EQ(r.value, oracle) << "rep=" << rep;
  }
}

TEST(OrderingTablesHammer, ConcurrentHistoryAndKillers) {
  // 8 writers race add/probe/record/is_killer plus periodic new_search on
  // one shared table set; all ops are relaxed atomics — tsan must stay
  // silent and counters must respect their packing invariants.
  OrderingTables tables;
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&tables, &go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      std::uint64_t key = 0x9e3779b97f4a7c15ull * static_cast<unsigned>(t + 1);
      for (int i = 0; i < 50000; ++i) {
        key = key * 6364136223846793005ull + 1442695040888963407ull;
        tables.history.add(key, static_cast<std::uint32_t>(i % 97) + 1);
        (void)tables.history.probe(key ^ 0xff);
        tables.killers.record(i % KillerTable::kMaxPlies, key | 1);
        (void)tables.killers.is_killer((i + 1) % KillerTable::kMaxPlies, key);
        if (i % 8192 == 0 && t == 0) tables.new_search();
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  // Saturating 24-bit counters: nothing probes above the cap.
  std::uint64_t key = 1;
  for (int i = 0; i < 1000; ++i) {
    key = key * 6364136223846793005ull + 1442695040888963407ull;
    EXPECT_LE(tables.history.probe(key), 0x00ffffffu);
  }
}

TEST(OrderingTables, HistoryAgesOutOnNewSearch) {
  HistoryTable h(6);
  h.add(42, 100);
  h.add(42, 50);
  EXPECT_EQ(h.probe(42), 150u);
  h.new_search();
  EXPECT_EQ(h.probe(42), 0u);
  h.add(42, 7);
  EXPECT_EQ(h.probe(42), 7u);
}

TEST(OrderingTables, KillerSlotsKeepLastTwoDistinct) {
  KillerTable k;
  k.record(3, 0xaa);
  k.record(3, 0xbb);
  EXPECT_TRUE(k.is_killer(3, 0xaa));
  EXPECT_TRUE(k.is_killer(3, 0xbb));
  k.record(3, 0xcc);  // evicts 0xaa (second slot now 0xbb)
  EXPECT_TRUE(k.is_killer(3, 0xcc));
  EXPECT_TRUE(k.is_killer(3, 0xbb));
  EXPECT_FALSE(k.is_killer(3, 0xaa));
  EXPECT_FALSE(k.is_killer(4, 0xcc)) << "plies are independent";
  k.record(3, 0xcc);  // re-recording the front slot must not duplicate it
  EXPECT_TRUE(k.is_killer(3, 0xbb));
  k.clear();
  EXPECT_FALSE(k.is_killer(3, 0xcc));
}

}  // namespace
}  // namespace ers
