// The speculative-queue ranking policies (paper §8 future work) must all
// preserve exactness and determinism; they may only change schedules.

#include <gtest/gtest.h>

#include "core/parallel_er.hpp"
#include "randomtree/random_tree.hpp"
#include "search/negmax.hpp"

namespace ers {
namespace {

core::EngineConfig cfg_with(core::SpecRankPolicy policy) {
  core::EngineConfig cfg;
  cfg.search_depth = 5;
  cfg.serial_depth = 2;
  cfg.spec_rank = policy;
  return cfg;
}

class SpecPolicy : public ::testing::TestWithParam<core::SpecRankPolicy> {};

TEST_P(SpecPolicy, ExactOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const UniformRandomTree g(4, 5, seed, -70, 70);
    const Value oracle = negmax_search(g, 5).value;
    for (int p : {1, 8, 16}) {
      const auto r = parallel_er_sim(g, cfg_with(GetParam()), p);
      EXPECT_EQ(r.value, oracle) << "seed=" << seed << " p=" << p;
    }
  }
}

TEST_P(SpecPolicy, Deterministic) {
  const UniformRandomTree g(5, 4, 77, -100, 100);
  const auto a = parallel_er_sim(g, cfg_with(GetParam()), 16);
  const auto b = parallel_er_sim(g, cfg_with(GetParam()), 16);
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.engine.search.nodes_generated(), b.engine.search.nodes_generated());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SpecPolicy,
    ::testing::Values(core::SpecRankPolicy::kFewestEChildren,
                      core::SpecRankPolicy::kBestBound,
                      core::SpecRankPolicy::kFifo,
                      core::SpecRankPolicy::kStealAware),
    [](const auto& param_info) {
      switch (param_info.param) {
        case core::SpecRankPolicy::kFewestEChildren: return "FewestEChildren";
        case core::SpecRankPolicy::kBestBound: return "BestBound";
        case core::SpecRankPolicy::kFifo: return "Fifo";
        case core::SpecRankPolicy::kStealAware: return "StealAware";
      }
      return "Unknown";
    });

TEST(SpecPolicy, PoliciesProduceDifferentSchedulesSomewhere) {
  // Different rankings must (deterministically) schedule differently on at
  // least some trees; identical schedules on every seed would indicate the
  // policy is not wired in.  Individual seeds may legitimately coincide
  // when the speculative queue never holds two entries at once.
  int differing = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const UniformRandomTree g(5, 7, seed, -1000, 1000);
    core::EngineConfig base = cfg_with(core::SpecRankPolicy::kFewestEChildren);
    base.search_depth = 7;
    base.serial_depth = 5;  // deep parallel region: heavy speculative traffic
    const auto a = parallel_er_sim(g, base, 16);
    base.spec_rank = core::SpecRankPolicy::kBestBound;
    const auto b = parallel_er_sim(g, base, 16);
    base.spec_rank = core::SpecRankPolicy::kFifo;
    const auto c = parallel_er_sim(g, base, 16);
    if (a.metrics.makespan != b.metrics.makespan ||
        b.metrics.makespan != c.metrics.makespan ||
        a.engine.units_processed != c.engine.units_processed)
      ++differing;
  }
  EXPECT_GT(differing, 0);
}

}  // namespace
}  // namespace ers
