// Two-tier node storage (DESIGN.md §15): occupancy gauges, dead-subtree
// reclamation, pop-order invariance with reclamation active, a concurrent
// reclamation hammer for the ThreadSanitizer lane, and the poison check
// that turns a cold-record use-after-reclaim into an ERS_DCHECK failure.

#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/parallel_er.hpp"
#include "othello/game.hpp"
#include "othello/positions.hpp"
#include "randomtree/random_tree.hpp"
#include "search/negmax.hpp"

namespace ers {
namespace {

using EngineT = core::Engine<UniformRandomTree>;

core::EngineConfig storage_config(int depth, int serial_depth,
                                  int shards = 1) {
  core::EngineConfig cfg;
  cfg.search_depth = depth;
  cfg.serial_depth = serial_depth;
  cfg.heap_shards = shards;
  return cfg;
}

/// Single-threaded protocol drive to completion; returns the pop order.
std::vector<std::uint32_t> drive(EngineT& engine) {
  std::vector<std::uint32_t> order;
  while (!engine.done()) {
    auto item = engine.acquire();
    if (!item) break;
    order.push_back(item->node);
    engine.commit(*item, engine.compute(*item));
  }
  return order;
}

/// The conservation law of the cold-record counters: every allocation is
/// either still live or has been reclaimed, never both, never neither.
void expect_cold_accounting(const core::EngineMemStats& m) {
  EXPECT_EQ(m.cold_allocated, m.cold_live + m.cold_reclaimed);
  EXPECT_EQ(m.peak_bytes, m.hot_bytes + m.position_bytes + m.slab_bytes);
}

TEST(NodeStorage, GaugesAccountAllocationsAndReclaims) {
  const UniformRandomTree g(4, 6, 31, -90, 90);
  EngineT engine(g, storage_config(6, 4));
  drive(engine);
  ASSERT_TRUE(engine.done());
  const core::EngineMemStats m = engine.mem_stats();
  EXPECT_GT(m.live_nodes, 0u);
  EXPECT_GT(m.hot_bytes, 0u);
  EXPECT_GT(m.position_bytes, 0u);
  EXPECT_GT(m.cold_allocated, 0u);
  EXPECT_GT(m.slab_bytes, 0u);
  expect_cold_accounting(m);
  // Finish-time reclamation alone recycles almost everything: a completed
  // search holds no expansion state beyond what in-flight refusal pinned.
  EXPECT_GT(m.cold_reclaimed, 0u);
  EXPECT_LT(m.cold_live, m.cold_allocated);
}

TEST(NodeStorage, SpeculationWorkloadReclaimsDeadSubtrees) {
  // Wide tree, deep speculation (all toggles on by default): spec
  // cancellations and ancestor cutoffs kill subtrees mid-flight, so the
  // dead-drop reclaim path fires, not just the finish-time sweep.  The
  // acceptance gauge of the overhaul: cold_reclaimed > 0 on a speculative
  // workload, with the root value still exact.
  const UniformRandomTree g(5, 6, 23, -100, 100);
  const Value oracle = negmax_search(g, 6).value;
  const auto r = parallel_er_sim(g, storage_config(6, 4), 8);
  EXPECT_EQ(r.value, oracle);
  EXPECT_GT(r.mem.cold_reclaimed, 0u);
  expect_cold_accounting(r.mem);
}

TEST(NodeStorage, OthelloSpeculationWorkloadReclaims) {
  // The acceptance workload: the Figure 10 O2 position with speculation on
  // (the engine default).  Othello's varying branching exercises several
  // slab size classes, and the midgame position drives enough speculative
  // expansion that cancelled subtrees return records well before the
  // finish-time sweep.
  const othello::OthelloGame g(othello::paper_position(2));
  const auto r = parallel_er_sim(g, storage_config(6, 4), 8);
  EXPECT_EQ(r.value, negmax_search(g, 6).value);
  EXPECT_GT(r.mem.cold_reclaimed, 0u);
  expect_cold_accounting(r.mem);
}

TEST(NodeStorage, PopOrderUnchangedByReclamation) {
  // Reclamation runs inside commits, so the referee for "no behavior
  // change" is the same one the sharded heap answers to: the pop order is
  // bit-identical at every shard count, while every shard count reclaims.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const UniformRandomTree g(4, 5, seed + 70, -80, 80);
    EngineT base(g, storage_config(5, 3, 1));
    const std::vector<std::uint32_t> base_order = drive(base);
    EXPECT_GT(base.mem_stats().cold_reclaimed, 0u);
    for (const int shards : {2, 4, 8}) {
      EngineT e(g, storage_config(5, 3, shards));
      const std::vector<std::uint32_t> order = drive(e);
      EXPECT_EQ(order, base_order) << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(e.root_value(), base.root_value());
      const core::EngineMemStats m = e.mem_stats();
      EXPECT_GT(m.cold_reclaimed, 0u) << "shards=" << shards;
      expect_cold_accounting(m);
    }
  }
}

TEST(NodeStorage, ReclamationHammer) {
  // tsan target: many raw protocol drivers race batch commits on a sharded
  // heap while reclamation recycles cold records through the freelists —
  // the full alloc/dead-drop/finish/reuse cycle under contention.  Any
  // touch-set hole (a reclaim outside the lock covering a concurrent
  // reader) shows up as a data race here, and the counter conservation law
  // catches double reclaims that happen to race cleanly.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const UniformRandomTree g(4, 6, seed + 50, -100, 100);
    const Value oracle = negmax_search(g, 6).value;
    EngineT engine(g, storage_config(6, 4, 4));
    std::vector<std::thread> drivers;
    for (int t = 0; t < 8; ++t) {
      drivers.emplace_back([&engine] {
        std::vector<core::WorkItem> items;
        std::vector<EngineT::CommitEntry> batch;
        while (!engine.done()) {
          items.clear();
          batch.clear();
          if (engine.acquire_batch(4, items) == 0) {
            std::this_thread::yield();
            continue;
          }
          for (const core::WorkItem& item : items)
            batch.push_back({item, engine.compute(item)});
          engine.commit_batch(batch);
        }
      });
    }
    for (std::thread& t : drivers) t.join();
    ASSERT_TRUE(engine.done()) << "seed=" << seed;
    EXPECT_EQ(engine.root_value(), oracle) << "seed=" << seed;
    const core::EngineMemStats m = engine.mem_stats();
    EXPECT_GT(m.cold_reclaimed, 0u);
    expect_cold_accounting(m);
  }
}

#if !defined(NDEBUG) && GTEST_HAS_DEATH_TEST
TEST(NodeStorageDeathTest, UseAfterReclaimTripsPoisonCheck) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const UniformRandomTree g(4, 5, 41, -70, 70);
  EngineT engine(g, storage_config(5, 3));
  // Capture the root's cold record while it is live: the check passes.
  const void* live = nullptr;
  while (!engine.done() && live == nullptr) {
    auto item = engine.acquire();
    ASSERT_TRUE(item.has_value());
    engine.commit(*item, engine.compute(*item));
    live = engine.debug_cold_ptr(0);
  }
  ASSERT_NE(live, nullptr) << "root never expanded";
  EngineT::debug_assert_cold_live(live);  // live record: no death
  drive(engine);
  ASSERT_TRUE(engine.done());
  // The finished root's record was reclaimed (pointer cleared, block
  // poisoned in the freelist); re-checking the stale pointer must trip the
  // same ERS_DCHECK the engine's checked_cold accessor uses.
  ASSERT_EQ(engine.debug_cold_ptr(0), nullptr);
  EXPECT_DEATH(EngineT::debug_assert_cold_live(live), "ERS_CHECK failed");
}
#endif

}  // namespace
}  // namespace ers
