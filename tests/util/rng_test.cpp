#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace ers {
namespace {

TEST(SplitMix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(0), splitmix64(1));
}

TEST(SplitMix64, StatefulFirstOutputMatchesFreeFunction) {
  // The stateful stream's first output must equal the one-shot mixer.
  for (std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
    SplitMix64 sm(seed);
    EXPECT_EQ(sm(), splitmix64(seed)) << "seed=" << seed;
  }
}

TEST(SplitMix64, StreamDiffersBySeed) {
  SplitMix64 a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 16; ++i)
    if (a() != b()) ++diff;
  EXPECT_EQ(diff, 16);
}

TEST(HashCombine, OrderSensitive) {
  const auto ab = hash_combine(hash_combine(7, 1), 2);
  const auto ba = hash_combine(hash_combine(7, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashCombine, NoTrivialCollisionsAmongSiblings) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(hash_combine(99, i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Xoshiro, ReproducibleBySeed) {
  Xoshiro256StarStar a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256StarStar rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
  }
}

TEST(Xoshiro, BelowCoversAllResidues) {
  Xoshiro256StarStar rng(11);
  std::array<int, 5> hits{};
  for (int i = 0; i < 5000; ++i) ++hits[rng.below(5)];
  for (int h : hits) EXPECT_GT(h, 0);
}

TEST(Xoshiro, BetweenInclusiveBounds) {
  Xoshiro256StarStar rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, Uniform01InHalfOpenInterval) {
  Xoshiro256StarStar rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace ers
