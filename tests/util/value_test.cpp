#include "util/value.hpp"

#include <gtest/gtest.h>

namespace ers {
namespace {

TEST(Value, NegationIsTotalOnDomain) {
  EXPECT_EQ(negate(kValueInf), -kValueInf);
  EXPECT_EQ(negate(-kValueInf), kValueInf);
  EXPECT_EQ(negate(kValueMax), -kValueMax);
  EXPECT_EQ(negate(0), 0);
  EXPECT_EQ(negate(negate(12345)), 12345);
}

TEST(Value, InfStrictlyDominatesEvaluatorRange) {
  EXPECT_GT(kValueInf, kValueMax);
  EXPECT_LT(-kValueInf, -kValueMax);
  EXPECT_TRUE(is_valid_value(kValueMax));
  EXPECT_TRUE(is_valid_value(-kValueMax));
  EXPECT_FALSE(is_valid_value(kValueInf));
  EXPECT_FALSE(is_valid_value(-kValueInf));
}

TEST(Window, FullWindowIsOpenAndNeverCuts) {
  const Window w = full_window();
  EXPECT_TRUE(w.is_open());
  EXPECT_FALSE(w.cuts(kValueMax));
  EXPECT_TRUE(w.cuts(kValueInf));
}

TEST(Window, FlippedSwapsAndNegatesBounds) {
  const Window w{-3, 17};
  const Window f = w.flipped();
  EXPECT_EQ(f.alpha, -17);
  EXPECT_EQ(f.beta, 3);
  // Flipping twice restores the window.
  EXPECT_EQ(f.flipped().alpha, w.alpha);
  EXPECT_EQ(f.flipped().beta, w.beta);
}

TEST(Window, RaisedOnlyRaises) {
  const Window w{5, 20};
  EXPECT_EQ(w.raised(3).alpha, 5);
  EXPECT_EQ(w.raised(10).alpha, 10);
  EXPECT_EQ(w.raised(10).beta, 20);
}

TEST(Window, CutsAtOrAboveBeta) {
  const Window w{0, 10};
  EXPECT_FALSE(w.cuts(9));
  EXPECT_TRUE(w.cuts(10));
  EXPECT_TRUE(w.cuts(11));
}

TEST(Value, ToStringRendersInfinitiesSymbolically) {
  EXPECT_EQ(value_to_string(kValueInf), "+inf");
  EXPECT_EQ(value_to_string(-kValueInf), "-inf");
  EXPECT_EQ(value_to_string(42), "42");
  EXPECT_EQ(value_to_string(-42), "-42");
}

}  // namespace
}  // namespace ers
