#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace ers {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, SpaceSeparatedValue) {
  const auto a = make({"--depth", "7"});
  EXPECT_EQ(a.get_int("depth", 0), 7);
}

TEST(CliArgs, EqualsSeparatedValue) {
  const auto a = make({"--depth=9"});
  EXPECT_EQ(a.get_int("depth", 0), 9);
}

TEST(CliArgs, BooleanFlag) {
  const auto a = make({"--verbose"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_FALSE(a.has("quiet"));
}

TEST(CliArgs, BooleanFlagFollowedByAnotherFlag) {
  const auto a = make({"--verbose", "--depth", "3"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get_int("depth", 0), 3);
}

TEST(CliArgs, DefaultsWhenMissing) {
  const auto a = make({});
  EXPECT_EQ(a.get("tree", "R1"), "R1");
  EXPECT_EQ(a.get_int("procs", 16), 16);
  EXPECT_DOUBLE_EQ(a.get_double("scale", 1.5), 1.5);
}

TEST(CliArgs, PositionalArguments) {
  const auto a = make({"input.txt", "--depth", "2", "more"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "input.txt");
  EXPECT_EQ(a.positional()[1], "more");
}

TEST(CliArgs, DoubleParsing) {
  const auto a = make({"--scale=2.25"});
  EXPECT_DOUBLE_EQ(a.get_double("scale", 0.0), 2.25);
}

}  // namespace
}  // namespace ers
