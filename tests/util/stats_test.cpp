#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace ers {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with Bessel correction: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-10.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 1.0), 3.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

}  // namespace
}  // namespace ers
