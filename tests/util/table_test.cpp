#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ers {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer-name"), std::string::npos);
  // Every line has the same width.
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "line: " << line;
  }
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(1.0, 2), "1.00");
  EXPECT_EQ(TextTable::num(0.666666, 3), "0.667");
  EXPECT_EQ(TextTable::num(-2.5, 1), "-2.5");
}

TEST(TextTable, ShortRowsPadWithEmptyCells) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| 1"), std::string::npos);
}

}  // namespace
}  // namespace ers
