#include "randomtree/random_tree.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace ers {
namespace {

TEST(UniformRandomTree, RootIsDeterministic) {
  const UniformRandomTree a(4, 10, 42), b(4, 10, 42);
  EXPECT_EQ(a.root(), b.root());
  const UniformRandomTree c(4, 10, 43);
  EXPECT_NE(a.root().hash, c.root().hash);
}

TEST(UniformRandomTree, DegreeAndHeightRespected) {
  const UniformRandomTree g(5, 2, 1);
  std::vector<UniformRandomTree::Position> kids;
  g.generate_children(g.root(), kids);
  ASSERT_EQ(kids.size(), 5u);
  for (const auto& k : kids) EXPECT_EQ(k.depth, 1);

  std::vector<UniformRandomTree::Position> grand;
  g.generate_children(kids[0], grand);
  ASSERT_EQ(grand.size(), 5u);

  std::vector<UniformRandomTree::Position> beyond;
  g.generate_children(grand[0], beyond);
  EXPECT_TRUE(beyond.empty()) << "height-2 tree must stop at depth 2";
}

TEST(UniformRandomTree, SiblingsHaveDistinctSubtrees) {
  const UniformRandomTree g(8, 3, 7);
  std::vector<UniformRandomTree::Position> kids;
  g.generate_children(g.root(), kids);
  std::set<std::uint64_t> hashes;
  for (const auto& k : kids) hashes.insert(k.hash);
  EXPECT_EQ(hashes.size(), kids.size());
}

TEST(UniformRandomTree, ValuesWithinConfiguredRange) {
  const UniformRandomTree g(4, 1, 99, -50, 50);
  std::vector<UniformRandomTree::Position> kids;
  g.generate_children(g.root(), kids);
  for (const auto& k : kids) {
    const Value v = g.evaluate(k);
    EXPECT_GE(v, -50);
    EXPECT_LE(v, 50);
  }
}

TEST(UniformRandomTree, ValuesApproximatelyUniform) {
  // Bucket leaf values of a wide tree and check rough uniformity.
  const UniformRandomTree g(1000, 1, 12345, 0, 9);
  std::vector<UniformRandomTree::Position> kids;
  g.generate_children(g.root(), kids);
  std::map<Value, int> hist;
  for (const auto& k : kids) ++hist[g.evaluate(k)];
  ASSERT_EQ(hist.size(), 10u);
  for (const auto& [v, n] : hist) {
    EXPECT_GT(n, 50) << "value " << v;
    EXPECT_LT(n, 200) << "value " << v;
  }
}

TEST(UniformRandomTree, RevisitedPositionGivesSameChildren) {
  // The problem-heap engines revisit positions; the implicit tree must be
  // stable under re-generation.
  const UniformRandomTree g(4, 6, 2024);
  std::vector<UniformRandomTree::Position> a, b;
  g.generate_children(g.root(), a);
  g.generate_children(g.root(), b);
  EXPECT_EQ(a, b);
  std::vector<UniformRandomTree::Position> ga, gb;
  g.generate_children(a[2], ga);
  g.generate_children(b[2], gb);
  EXPECT_EQ(ga, gb);
}

TEST(UniformRandomTree, HeightZeroRootIsLeaf) {
  const UniformRandomTree g(4, 0, 5);
  std::vector<UniformRandomTree::Position> kids;
  g.generate_children(g.root(), kids);
  EXPECT_TRUE(kids.empty());
  EXPECT_TRUE(is_valid_value(g.evaluate(g.root())));
}

}  // namespace
}  // namespace ers
