#include "randomtree/strongly_ordered.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ers {
namespace {

StronglyOrderedTree::Config base_config() {
  StronglyOrderedTree::Config c;
  c.min_degree = 4;
  c.max_degree = 4;
  c.height = 5;
  c.bias = 40;
  c.noise = 100;
  c.seed = 77;
  return c;
}

// Exact negmax on the implicit tree.
Value negmax_of(const StronglyOrderedTree& g,
                const StronglyOrderedTree::Position& p) {
  std::vector<StronglyOrderedTree::Position> kids;
  g.generate_children(p, kids);
  if (kids.empty()) return g.evaluate(p);
  Value m = -kValueInf;
  for (const auto& k : kids) m = std::max(m, negate(negmax_of(g, k)));
  return m;
}

TEST(StronglyOrderedTree, Deterministic) {
  const StronglyOrderedTree a(base_config()), b(base_config());
  std::vector<StronglyOrderedTree::Position> ka, kb;
  a.generate_children(a.root(), ka);
  b.generate_children(b.root(), kb);
  EXPECT_EQ(ka, kb);
}

TEST(StronglyOrderedTree, DegreeVariesWithinBounds) {
  auto c = base_config();
  c.min_degree = 3;
  c.max_degree = 9;
  const StronglyOrderedTree g(c);
  std::vector<StronglyOrderedTree::Position> kids;
  g.generate_children(g.root(), kids);
  EXPECT_GE(kids.size(), 3u);
  EXPECT_LE(kids.size(), 9u);
}

TEST(StronglyOrderedTree, FirstChildIsBestMostOfTheTime) {
  // Marsland's "strongly ordered": first branch best >= 70% of the time.
  // Check over many interior nodes at ply 1.
  auto c = base_config();
  c.height = 3;
  int first_best = 0, total = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    c.seed = seed;
    const StronglyOrderedTree g(c);
    std::vector<StronglyOrderedTree::Position> kids;
    g.generate_children(g.root(), kids);
    // The best child minimizes its own negmax value.
    Value best = kValueInf;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < kids.size(); ++i) {
      const Value v = negmax_of(g, kids[i]);
      if (v < best) {
        best = v;
        best_idx = i;
      }
    }
    ++total;
    if (best_idx == 0) ++first_best;
  }
  EXPECT_GE(first_best * 100, 70 * total)
      << first_best << "/" << total << " roots had the first child best";
}

TEST(StronglyOrderedTree, StaticValuePredictsSearchValue) {
  // The static score of a child should correlate with its negmax value:
  // the statically-best child should rarely be the search-worst one.
  auto c = base_config();
  c.height = 3;
  int inversions = 0, total = 0;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    c.seed = seed;
    const StronglyOrderedTree g(c);
    std::vector<StronglyOrderedTree::Position> kids;
    g.generate_children(g.root(), kids);
    auto static_best = std::min_element(
        kids.begin(), kids.end(), [&](const auto& x, const auto& y) {
          return g.evaluate(x) < g.evaluate(y);
        });
    Value worst = -kValueInf;
    std::size_t worst_idx = 0;
    for (std::size_t i = 0; i < kids.size(); ++i) {
      const Value v = negmax_of(g, kids[i]);
      if (v > worst) {
        worst = v;
        worst_idx = i;
      }
    }
    ++total;
    if (static_cast<std::size_t>(static_best - kids.begin()) == worst_idx)
      ++inversions;
  }
  EXPECT_LT(inversions * 4, total);  // < 25% gross misprediction
}

TEST(StronglyOrderedTree, ScoreIsAntisymmetricAcrossPly) {
  // score(child) from the child's perspective = -score(parent) + cost.
  const StronglyOrderedTree g(base_config());
  const auto root = g.root();
  std::vector<StronglyOrderedTree::Position> kids;
  g.generate_children(root, kids);
  for (const auto& k : kids)
    EXPECT_GE(k.score, negate(root.score)) << "edge costs are nonnegative";
}

TEST(StronglyOrderedTree, HeightRespected) {
  auto c = base_config();
  c.height = 2;
  const StronglyOrderedTree g(c);
  std::vector<StronglyOrderedTree::Position> kids, grand, beyond;
  g.generate_children(g.root(), kids);
  g.generate_children(kids[0], grand);
  g.generate_children(grand[0], beyond);
  EXPECT_FALSE(kids.empty());
  EXPECT_FALSE(grand.empty());
  EXPECT_TRUE(beyond.empty());
}

}  // namespace
}  // namespace ers
