// The consolidated JSON emitter (obs/json.hpp), the metrics registry, and
// the adapters that flatten the runtime/sim/engine stats structs.  The
// emitter tests pin the exact bytes the benches used to produce from their
// hand-rolled copies in bench/common.hpp, so the dedupe is provably
// byte-compatible.

#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/json_read.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_adapters.hpp"

namespace ers::obs {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("R1 othello"), "R1 othello");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(json_escape(std::string("x\x01y")), "x\\u0001y");
}

TEST(JsonObject, EmitsInsertionOrderedFlatObject) {
  // The exact format the bench summaries have always used: %.6g doubles,
  // unquoted integers, quoted escaped strings.
  const std::string s = JsonObject()
                            .field("tree", "R1")
                            .field("procs", 16)
                            .field("speedup", 3.25)
                            .field("units", std::uint64_t{123456789012})
                            .str();
  EXPECT_EQ(s,
            "{\"tree\":\"R1\",\"procs\":16,\"speedup\":3.25,"
            "\"units\":123456789012}");
  EXPECT_EQ(JsonObject().str(), "{}");
  EXPECT_EQ(JsonObject().raw("args", "{\"node\":7}").str(),
            "{\"args\":{\"node\":7}}");
}

TEST(WriteBenchJson, StampsEveryLineAndSplicesAfterBrace) {
  const std::string path = "BENCH_json_test.json";
  write_bench_json("json_test", 2,
                   {JsonObject().field("tree", "R1").field("speedup", 3.25).str(),
                    "{}"});
  std::string text;
  ASSERT_TRUE(read_file(path, text));
  std::remove(path.c_str());
  EXPECT_EQ(text,
            "{\"bench\":\"json_test\",\"reps\":2,\"tree\":\"R1\","
            "\"speedup\":3.25}\n"
            "{\"bench\":\"json_test\",\"reps\":2}\n");
}

TEST(MetricsRegistry, SetOverwritesInPlaceKeepingOrder) {
  MetricsRegistry reg;
  reg.set("bench", "spec_policy");
  reg.set("units", std::uint64_t{10});
  reg.set("speedup", 2.5);
  reg.set("units", std::uint64_t{20});  // overwrite, not append
  ASSERT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.counter("units"), 20u);
  EXPECT_EQ(reg.gauge("speedup"), 2.5);
  EXPECT_TRUE(reg.has("bench"));
  EXPECT_FALSE(reg.has("missing"));
  EXPECT_EQ(reg.to_json(),
            "{\"bench\":\"spec_policy\",\"units\":20,\"speedup\":2.5}");
}

TEST(MetricsRegistry, AddAccumulatesFromZero) {
  MetricsRegistry reg;
  reg.add("tt.probes", 5);
  reg.add("tt.probes", 7);
  EXPECT_EQ(reg.counter("tt.probes"), 12u);
}

TEST(MetricsRegistry, NegativeIntRoundTripsSigned) {
  // Regression: set(int) used to cast straight to uint64, so -3 serialized
  // as 18446744073709551613.  Negative ints now store as a signed entry and
  // survive the JSON round trip.
  MetricsRegistry reg;
  reg.set("frontier", -3);
  reg.set("shards", 4);
  EXPECT_EQ(reg.to_json(), "{\"frontier\":-3,\"shards\":4}");
  JsonValue v;
  ASSERT_TRUE(parse_json(reg.to_json(), v));
  EXPECT_EQ(static_cast<std::int64_t>(v.find("frontier")->as_double()), -3);
  EXPECT_EQ(v.find("shards")->as_uint64(), 4u);
}

TEST(MetricsRegistry, SnapshotRoundTripsThroughTheReader) {
  MetricsRegistry reg;
  reg.set("tree", "O1 \"deep\"");
  reg.set("units", std::uint64_t{42});
  reg.set("efficiency", 0.875);
  JsonValue v;
  ASSERT_TRUE(parse_json(reg.to_json(), v));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("tree")->text, "O1 \"deep\"");
  EXPECT_EQ(v.find("units")->as_uint64(), 42u);
  EXPECT_DOUBLE_EQ(v.find("efficiency")->as_double(), 0.875);
}

// --- adapters --------------------------------------------------------------

TEST(MetricsAdapters, SchedulerStatsFlattensUnderPrefix) {
  runtime::SchedulerStats s;
  s.lock_acquisitions = 9;
  s.lock_wait_ns = 100;
  s.units = 12;
  s.record_batch(3);
  s.record_batch(9);
  s.steal_attempts = 5;
  s.steal_hits = 2;
  MetricsRegistry reg;
  register_scheduler_stats(reg, s);
  EXPECT_EQ(reg.counter("sched.lock_acquisitions"), 9u);
  EXPECT_EQ(reg.counter("sched.units"), 12u);
  EXPECT_EQ(reg.counter("sched.batches"), 2u);
  EXPECT_EQ(reg.gauge("sched.mean_batch"), 6.0);
  EXPECT_EQ(reg.counter("sched.steal_misses"), 3u);
}

TEST(SchedulerStats, StealMissesClampInsteadOfWrapping) {
  // A partially merged block can transiently carry hits from a worker whose
  // attempts were not folded in yet; the derived count must not wrap.
  runtime::SchedulerStats s;
  s.steal_hits = 4;
  s.steal_attempts = 1;
  EXPECT_EQ(s.steal_misses(), 0u);
  s.steal_attempts = 10;
  EXPECT_EQ(s.steal_misses(), 6u);
}

TEST(SchedulerStats, MergeFoldsEveryField) {
  runtime::SchedulerStats a, b;
  a.lock_wait_ns = 5;
  a.compute_ns = 100;
  a.record_batch(1);
  b.lock_wait_ns = 7;
  b.compute_ns = 200;
  b.record_batch(1);
  b.steal_attempts = 3;
  b.global_refills = 1;
  a.merge(b);
  EXPECT_EQ(a.lock_wait_ns, 12u);
  EXPECT_EQ(a.compute_ns, 300u);
  EXPECT_EQ(a.batches, 2u);
  EXPECT_EQ(a.batch_hist.count(), 2u);
  EXPECT_EQ(a.batch_hist.bucket(obs::Histogram::bucket_of(1)), 2u);
  EXPECT_EQ(a.steal_attempts, 3u);
  EXPECT_EQ(a.global_refills, 1u);
}

TEST(MetricsAdapters, ThreadReportIncludesTtAndNestedScheduler) {
  runtime::ThreadRunReport r;
  r.threads = 4;
  r.shards = 2;
  r.units = 99;
  r.elapsed_ns = 1000;
  r.tt_probes = 10;
  r.tt_hits = 4;
  r.sched.lock_wait_ns = 400;
  MetricsRegistry reg;
  register_thread_report(reg, r);
  EXPECT_EQ(reg.counter("run.threads"), 4u);
  EXPECT_EQ(reg.counter("run.units"), 99u);
  EXPECT_DOUBLE_EQ(reg.gauge("tt.hit_rate"), 0.4);
  // lock_wait_share = 400 / (1000 * 4)
  EXPECT_DOUBLE_EQ(reg.gauge("run.lock_wait_share"), 0.1);
  EXPECT_EQ(reg.counter("sched.lock_wait_ns"), 400u);
}

TEST(MetricsAdapters, SimMetricsIncludesPerShardAccesses) {
  sim::SimMetrics m;
  m.processors = 8;
  m.makespan = 100;
  m.busy_time = 400;
  m.shard_accesses = {30, 12};
  MetricsRegistry reg;
  register_sim_metrics(reg, m);
  EXPECT_EQ(reg.counter("sim.processors"), 8u);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.utilization"), 0.5);
  EXPECT_EQ(reg.counter("sim.shard_accesses.0"), 30u);
  EXPECT_EQ(reg.counter("sim.shard_accesses.1"), 12u);
}

// --- the reader itself -----------------------------------------------------

TEST(JsonReader, ParsesNestedStructures) {
  JsonValue v;
  ASSERT_TRUE(parse_json(
      R"({"a": [1, 2.5, "x"], "b": {"c": true, "d": null}, "e": -3})", v));
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_EQ(a->items[0].as_uint64(), 1u);
  EXPECT_DOUBLE_EQ(a->items[1].as_double(), 2.5);
  EXPECT_EQ(a->items[2].text, "x");
  const JsonValue* c = v.find("b")->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->boolean);
  EXPECT_DOUBLE_EQ(v.find("e")->as_double(), -3.0);
}

TEST(JsonReader, DecodesEscapesIncludingUnicode) {
  JsonValue v;
  ASSERT_TRUE(parse_json(R"({"s": "a\"b\\c\nA"})", v));
  EXPECT_EQ(v.find("s")->text, "a\"b\\c\nA");
}

TEST(JsonReader, RejectsMalformedInput) {
  JsonValue v;
  EXPECT_FALSE(parse_json("{", v));
  EXPECT_FALSE(parse_json("{\"a\":}", v));
  EXPECT_FALSE(parse_json("[1, 2] trailing", v));
  EXPECT_FALSE(parse_json("", v));
}

TEST(JsonReader, MicrosecondTokenToNsIsExact) {
  EXPECT_EQ(us_token_to_ns("12.345"), 12345u);
  EXPECT_EQ(us_token_to_ns("7"), 7000u);
  EXPECT_EQ(us_token_to_ns("0.001"), 1u);
  EXPECT_EQ(us_token_to_ns("3.5"), 3500u);
  EXPECT_EQ(us_token_to_ns("0.000"), 0u);
  // A large timestamp that would lose precision through a double.
  EXPECT_EQ(us_token_to_ns("9007199254740.993"), 9007199254740993u);
}

}  // namespace
}  // namespace ers::obs
