// Ring-buffer accounting, session merging, and the simulator's trace
// determinism guarantee (same engine + config => identical event stream).

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "core/parallel_er.hpp"
#include "randomtree/random_tree.hpp"

namespace ers::obs {
namespace {

TEST(Tracer, RecordsEventsWithWorkerStamp) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  Tracer t(3, 8);
  t.span(EventKind::kComputeSpan, 100, 250, /*node=*/7);
  t.instant(EventKind::kAcquireBatch, 250, kNoTraceNode, /*arg=*/4,
            /*shard=*/2);
  ASSERT_EQ(t.size(), 2u);
  const TraceEvent& s = t.events()[0];
  EXPECT_EQ(s.kind, EventKind::kComputeSpan);
  EXPECT_EQ(s.ts, 100u);
  EXPECT_EQ(s.dur, 150u);
  EXPECT_EQ(s.node, 7u);
  EXPECT_EQ(s.worker, 3u);
  const TraceEvent& i = t.events()[1];
  EXPECT_EQ(i.dur, 0u);
  EXPECT_EQ(i.arg, 4u);
  EXPECT_EQ(i.shard, 2u);
}

TEST(Tracer, FullRingDropsAndCounts) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  Tracer t(0, 4);
  for (std::uint64_t k = 0; k < 10; ++k)
    t.instant(EventKind::kWakeup, k * 10);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // The record stays a prefix of the truth: the first 4 events, in order.
  for (std::size_t k = 0; k < 4; ++k) EXPECT_EQ(t.events()[k].ts, k * 10);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  t.instant(EventKind::kWakeup, 1);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Tracer, SpanClampsReversedInterval) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  Tracer t(0, 4);
  t.span(EventKind::kLockWaitSpan, 500, 400);  // to < from
  EXPECT_EQ(t.events()[0].dur, 0u);
}

TEST(TraceSession, MergesSortedByTimeThenWorker) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  TraceSession s(2, 16);
  s.worker(1).instant(EventKind::kWakeup, 50);
  s.worker(0).instant(EventKind::kWakeup, 50);
  s.worker(0).span(EventKind::kComputeSpan, 10, 20);
  s.engine_tracer().instant(EventKind::kUnitCommit, 30, 1, 2);
  const auto merged = s.merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].ts, 10u);
  EXPECT_EQ(merged[1].ts, 30u);
  EXPECT_EQ(merged[2].ts, 50u);
  EXPECT_EQ(merged[2].worker, 0u);  // ties break by worker id
  EXPECT_EQ(merged[3].worker, 1u);
}

TEST(TraceSession, TotalDroppedSumsAllRings) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  TraceSession s(2, 2);
  for (int k = 0; k < 5; ++k) {
    s.worker(0).instant(EventKind::kWakeup, 1);
    s.engine_tracer().instant(EventKind::kUnitCommit, 1);
  }
  EXPECT_EQ(s.total_dropped(), 6u);  // 3 dropped in each full ring
}

TEST(TraceSession, VirtualClockOverridesSteady) {
  TraceSession s;
  s.use_virtual_clock();
  s.set_virtual_now(12345);
  EXPECT_EQ(s.now_ns(), 12345u);
  s.set_virtual_now(777);
  EXPECT_EQ(s.now_ns(), 777u);
}

TEST(TraceSession, EnsureWorkersGrowsButNeverShrinks) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  TraceSession s(2, 16);
  s.ensure_workers(4);
  EXPECT_EQ(s.worker_count(), 4);
  s.worker(3).instant(EventKind::kWakeup, 1);
  s.ensure_workers(1);
  EXPECT_EQ(s.worker_count(), 4);
  EXPECT_EQ(s.worker(3).size(), 1u);
}

// --- simulator determinism ------------------------------------------------

core::EngineConfig cfg(int depth, int serial) {
  core::EngineConfig c;
  c.search_depth = depth;
  c.serial_depth = serial;
  return c;
}

TEST(SimTraceDeterminism, SameSeedAndConfigSameEventStream) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  const UniformRandomTree g(4, 5, 99, -100, 100);
  TraceSession a, b;
  const auto ra = parallel_er_sim(g, cfg(5, 3), 4, {}, 2, 2, &a);
  const auto rb = parallel_er_sim(g, cfg(5, 3), 4, {}, 2, 2, &b);
  EXPECT_EQ(ra.value, rb.value);
  const auto ea = a.merged();
  const auto eb = b.merged();
  ASSERT_GT(ea.size(), 0u);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t k = 0; k < ea.size(); ++k)
    ASSERT_EQ(ea[k], eb[k]) << "first divergence at event " << k;
  EXPECT_EQ(a.total_dropped(), b.total_dropped());
}

TEST(SimTraceDeterminism, DifferentProcessorCountDifferentSchedule) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  const UniformRandomTree g(4, 5, 99, -100, 100);
  TraceSession a, b;
  (void)parallel_er_sim(g, cfg(5, 3), 2, {}, 1, 1, &a);
  (void)parallel_er_sim(g, cfg(5, 3), 8, {}, 1, 1, &b);
  EXPECT_NE(a.merged(), b.merged());
}

TEST(SimTrace, SpanTotalsMatchSimMetrics) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  // The simulator's trace is exact (one span per charged interval), so the
  // per-kind totals must reproduce SimMetrics' aggregate counters whenever
  // nothing was dropped.
  const UniformRandomTree g(4, 5, 5, -100, 100);
  TraceSession s(0, std::size_t{1} << 20);
  const auto r = parallel_er_sim(g, cfg(5, 3), 4, {}, 2, 2, &s);
  ASSERT_EQ(s.total_dropped(), 0u);
  std::uint64_t lock_wait = 0, idle = 0, commits = 0, acquires = 0;
  for (const TraceEvent& e : s.merged()) {
    if (e.kind == EventKind::kLockWaitSpan) lock_wait += e.dur;
    if (e.kind == EventKind::kSleepSpan) idle += e.dur;
    if (e.kind == EventKind::kCommitBatch) ++commits;
    if (e.kind == EventKind::kAcquireBatch) ++acquires;
  }
  EXPECT_EQ(lock_wait, r.metrics.lock_wait_time);
  EXPECT_EQ(idle, r.metrics.idle_time);
  // Acquire + commit events = serialized heap accesses.
  EXPECT_EQ(acquires + commits, r.metrics.heap_accesses);
}

}  // namespace
}  // namespace ers::obs
