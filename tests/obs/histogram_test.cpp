// The mergeable log-bucketed histogram (obs/histogram.hpp, DESIGN.md §16):
// bucket placement, merge additivity, and the percentile goldens the
// scheduler summaries and the Prometheus exposition both build on.

#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace ers::obs {
namespace {

TEST(Histogram, EmptyIsAllZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.max_bucket(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p99(), 0u);
}

TEST(Histogram, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(Histogram, BucketUpperIsInclusiveBound) {
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(10), 1023u);
  EXPECT_EQ(Histogram::bucket_upper(64), ~std::uint64_t{0});
  // Every value's bucket bound covers the value: v <= upper(bucket_of(v)).
  for (const std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 1000ull, 123456789ull})
    EXPECT_GE(Histogram::bucket_upper(Histogram::bucket_of(v)), v);
}

TEST(Histogram, RecordFillsCountSumAndBucket) {
  Histogram h;
  h.record(0);
  h.record(5);
  h.record(5);
  h.record(300);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 310u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucket_of(5)), 2u);
  EXPECT_EQ(h.bucket(Histogram::bucket_of(300)), 1u);
  EXPECT_EQ(h.max_bucket(), Histogram::bucket_of(300));
  EXPECT_DOUBLE_EQ(h.mean(), 77.5);
}

TEST(Histogram, PercentileGoldens) {
  // 100 samples: 50 ones, 40 tens, 10 thousands.  Ranks: p50 -> sample 50
  // (a one), p90 -> sample 90 (a ten), p99 -> sample 99 (a thousand).  The
  // reported value is the holding bucket's inclusive upper bound.
  Histogram h;
  for (int i = 0; i < 50; ++i) h.record(1);
  for (int i = 0; i < 40; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(1000);
  EXPECT_EQ(h.p50(), Histogram::bucket_upper(Histogram::bucket_of(1)));   // 1
  EXPECT_EQ(h.p90(), Histogram::bucket_upper(Histogram::bucket_of(10)));  // 15
  EXPECT_EQ(h.p99(),
            Histogram::bucket_upper(Histogram::bucket_of(1000)));  // 1023
  EXPECT_EQ(h.p50(), 1u);
  EXPECT_EQ(h.p90(), 15u);
  EXPECT_EQ(h.p99(), 1023u);
}

TEST(Histogram, PercentileEdgeQuantiles) {
  Histogram h;
  h.record(4);
  h.record(1000);
  EXPECT_EQ(h.percentile(0.0), 7u);      // first non-empty bucket's bound
  EXPECT_EQ(h.percentile(1.0), 1023u);   // last
  EXPECT_EQ(h.percentile(-1.0), 7u);     // clamped
  EXPECT_EQ(h.percentile(2.0), 1023u);   // clamped
}

TEST(Histogram, MergeIsElementwiseAndEquivalentToUnionFill) {
  // merge(a, b) must be indistinguishable from recording both streams into
  // one histogram — the property the per-worker single-writer scheme rests
  // on (SchedulerStats::merge after the pool joins).
  Histogram a, b, u;
  for (const std::uint64_t v : {1ull, 2ull, 64ull, 0ull}) {
    a.record(v);
    u.record(v);
  }
  for (const std::uint64_t v : {3ull, 900ull, 900ull}) {
    b.record(v);
    u.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a, u);
  EXPECT_EQ(a.count(), 7u);
  EXPECT_EQ(a.sum(), 1870u);
  EXPECT_EQ(a.p99(), u.p99());
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.record(42);
  const Histogram before = a;
  a.merge(Histogram{});
  EXPECT_EQ(a, before);
  Histogram e;
  e.merge(a);
  EXPECT_EQ(e, before);
}

}  // namespace
}  // namespace ers::obs
