// The acceptance check of DESIGN.md §11: a traced thread-runtime run's
// per-worker span totals must agree with the executor's own ThreadRunReport
// — exactly when nothing was dropped, since spans and stats are computed
// from the same clock readings.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/parallel_er.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "randomtree/random_tree.hpp"
#include "search/negmax.hpp"

namespace ers {
namespace {

core::EngineConfig cfg(int depth, int serial) {
  core::EngineConfig c;
  c.search_depth = depth;
  c.serial_depth = serial;
  return c;
}

TEST(ThreadTrace, SpanTotalsAgreeWithRunReport) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  const UniformRandomTree g(4, 6, 11, -100, 100);
  const Value oracle = negmax_search(g, 6).value;
  // 4 threads over 4 heap shards — the stealing scheduler, the richest
  // event mix.  A generous ring keeps the comparison exact (no drops).
  obs::TraceSession session(0, std::size_t{1} << 20);
  const auto r =
      parallel_er_threads(g, cfg(6, 3), /*threads=*/4, /*batch=*/2,
                          /*shards=*/4, &session);
  EXPECT_EQ(r.value, oracle);
  EXPECT_EQ(r.report.threads, 4);
  EXPECT_EQ(r.report.shards, 4);
  ASSERT_EQ(session.total_dropped(), 0u)
      << "raise the ring capacity: the exact comparison needs a full record";

  std::uint64_t compute = 0, lock_wait = 0, lock_hold = 0, spans = 0,
                batches = 0, committed = 0;
  for (int w = 0; w < session.worker_count(); ++w) {
    for (const obs::TraceEvent& e : session.worker(w).events()) {
      switch (e.kind) {
        case obs::EventKind::kComputeSpan:
          compute += e.dur;
          ++spans;
          break;
        case obs::EventKind::kLockWaitSpan: lock_wait += e.dur; break;
        case obs::EventKind::kLockHoldSpan: lock_hold += e.dur; break;
        // record_batch pairs with kAcquireBatch on the single-heap path and
        // with the refill instants on the sharded/stealing path.
        case obs::EventKind::kAcquireBatch:
        case obs::EventKind::kRefillHome:
        case obs::EventKind::kRefillGlobal: ++batches; break;
        case obs::EventKind::kCommitBatch: committed += e.arg; break;
        default: break;
      }
    }
  }
  // Spans and SchedulerStats use the same Clock::now() readings, so the
  // totals are identical, not merely close.
  EXPECT_EQ(compute, r.report.sched.compute_ns);
  EXPECT_EQ(lock_wait, r.report.sched.lock_wait_ns);
  EXPECT_EQ(lock_hold, r.report.sched.lock_hold_ns);
  // Every computed unit is committed before its worker exits.
  EXPECT_EQ(spans, r.report.sched.units);
  EXPECT_EQ(spans, r.report.units);
  EXPECT_EQ(committed, r.report.units);
  EXPECT_EQ(batches, r.report.sched.batches);
}

TEST(ThreadTrace, AnalyzerSeesTheWholeRun) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  const UniformRandomTree g(4, 5, 23, -100, 100);
  obs::TraceSession session(0, std::size_t{1} << 20);
  const auto r = parallel_er_threads(g, cfg(5, 2), 4, 2, 4, &session);
  ASSERT_EQ(session.total_dropped(), 0u);
  const obs::TraceReport rep = obs::analyze_trace(session.merged());
  ASSERT_EQ(rep.workers.size(), 4u);
  std::uint64_t units = 0;
  for (const obs::WorkerTimeline& w : rep.workers) units += w.units;
  EXPECT_EQ(units, r.report.units);
  // Each parallel unit commits under the engine lock with its parent edge,
  // so the analyzer can always recover the dependency graph and a non-empty
  // critical path.
  EXPECT_EQ(rep.units, r.report.units);
  EXPECT_GT(rep.critical_path_ns, 0u);
  EXPECT_GE(rep.span_end, rep.critical_path_ns);
}

TEST(ThreadTrace, UntracedRunReportsNoComputeTimeline) {
  // compute_ns is measured only under a trace session — the untraced hot
  // path takes no per-unit clock readings.
  const UniformRandomTree g(4, 5, 11, -100, 100);
  const auto r = parallel_er_threads(g, cfg(5, 3), 2);
  EXPECT_EQ(r.report.sched.compute_ns, 0u);
  EXPECT_GT(r.report.units, 0u);
}

TEST(ThreadTrace, SessionReusableAcrossRuns) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  // bench sweeps clear() the session between points; a cleared session must
  // record the next run from scratch.
  const UniformRandomTree g(3, 4, 2, -50, 50);
  obs::TraceSession session(0, std::size_t{1} << 18);
  (void)parallel_er_threads(g, cfg(4, 2), 2, 1, 1, &session);
  const auto first = session.merged().size();
  ASSERT_GT(first, 0u);
  session.clear();
  EXPECT_EQ(session.merged().size(), 0u);
  (void)parallel_er_threads(g, cfg(4, 2), 2, 1, 1, &session);
  EXPECT_GT(session.merged().size(), 0u);
}

}  // namespace
}  // namespace ers
