// The Perfetto (Chrome trace-event) exporter: schema guarantees every
// event carries, the exact golden format of a span line, and the
// parse_perfetto round trip the offline analyzer depends on.

#include "obs/trace_writer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json_read.hpp"
#include "obs/trace_analysis.hpp"

namespace ers::obs {
namespace {

/// A small session exercising every corner of the schema: spans, instants,
/// node/shard payloads, the sentinel omissions, and the engine track.
TraceSession make_session() {
  TraceSession s(2, 64);
  s.worker(0).span(EventKind::kComputeSpan, 1000, 2500, /*node=*/42);
  s.worker(0).instant(EventKind::kAcquireBatch, 900, 42, /*arg=*/3,
                      /*shard=*/1);
  s.worker(1).span(EventKind::kLockWaitSpan, 0, 450);
  s.worker(1).instant(EventKind::kStealHit, 500, 7, /*arg=*/0);
  s.engine_tracer().instant(EventKind::kUnitCommit, 2600, 42, 17);
  return s;
}

TEST(PerfettoWriter, EveryEventCarriesTheRequiredKeys) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  const TraceSession s = make_session();
  JsonValue root;
  ASSERT_TRUE(parse_json(perfetto_json(s), root));
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 5 recorded events + process_name + 2 worker thread_names + engine track.
  EXPECT_EQ(events->items.size(), 9u);
  for (const JsonValue& e : events->items) {
    ASSERT_TRUE(e.is_object());
    for (const char* key : {"ph", "pid", "tid", "name"})
      EXPECT_NE(e.find(key), nullptr) << "missing " << key;
    const std::string& ph = e.find("ph")->text;
    if (ph == "M") continue;  // metadata rows carry no timestamp
    EXPECT_NE(e.find("ts"), nullptr);
    if (ph == "X") {
      EXPECT_NE(e.find("dur"), nullptr);
    } else {
      ASSERT_EQ(ph, "i");
      ASSERT_NE(e.find("s"), nullptr);
      EXPECT_EQ(e.find("s")->text, "t");  // thread-scoped instant
    }
    EXPECT_NE(e.find("args"), nullptr);
  }
  EXPECT_EQ(root.find("displayTimeUnit")->text, "ns");
}

TEST(PerfettoWriter, GoldenSpanLine) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  // A span [1000 ns, 2500 ns) is written as microseconds with the
  // nanosecond remainder in the fraction — the format Perfetto renders at
  // full precision.
  const TraceSession s = make_session();
  const std::string json = perfetto_json(s);
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":1.000,\"pid\":1,\"tid\":0,"
                      "\"name\":\"compute\",\"dur\":1.500,"
                      "\"args\":{\"node\":42,\"arg\":0}"),
            std::string::npos)
      << json;
  // Instants keep the shard payload and the thread scope.
  EXPECT_NE(json.find("\"name\":\"acquire_batch\",\"s\":\"t\","
                      "\"args\":{\"node\":42,\"arg\":3,\"shard\":1}"),
            std::string::npos)
      << json;
  // The engine track is named.
  EXPECT_NE(json.find("\"name\":\"engine (serialized)\""), std::string::npos);
}

TEST(PerfettoWriter, ParseRoundTripsToTheMergedStream) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  const TraceSession s = make_session();
  std::vector<TraceEvent> back;
  ASSERT_TRUE(parse_perfetto(perfetto_json(s), back));
  const std::vector<TraceEvent> expect = s.merged();
  ASSERT_EQ(back.size(), expect.size());
  for (std::size_t k = 0; k < back.size(); ++k)
    EXPECT_EQ(back[k], expect[k]) << "event " << k;
}

TEST(PerfettoWriter, MultiSessionSelectsByPid) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  const TraceSession a = make_session();
  TraceSession b(1, 16);
  b.worker(0).span(EventKind::kComputeSpan, 10, 20, 5);
  const std::string json =
      perfetto_json_multi({{&a, "threads"}, {&b, "simulated"}});
  std::vector<TraceEvent> first, second, def;
  ASSERT_TRUE(parse_perfetto(json, first, 1));
  ASSERT_TRUE(parse_perfetto(json, second, 2));
  ASSERT_TRUE(parse_perfetto(json, def));  // -1 = first session seen
  EXPECT_EQ(first, a.merged());
  EXPECT_EQ(second, b.merged());
  EXPECT_EQ(def, first);
}

TEST(PerfettoWriter, WriteAndLoadFileRoundTrip) {
  if (!kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  const TraceSession s = make_session();
  const std::string path = "perfetto_test_trace.json";
  ASSERT_TRUE(write_perfetto(path, s, "unit-test"));
  std::vector<TraceEvent> back;
  ASSERT_TRUE(load_trace_file(path, back));
  std::remove(path.c_str());
  EXPECT_EQ(back, s.merged());
}

}  // namespace
}  // namespace ers::obs
