// The offline trace analyzer behind tools/trace_report: per-worker
// timelines, the steal-migration matrix, and the critical path through the
// unit dependency graph — all on synthetic event streams with known
// answers.

#include "obs/trace_analysis.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ers::obs {
namespace {

TraceEvent span(EventKind k, std::uint64_t from, std::uint64_t to,
                std::uint16_t worker, std::uint32_t node = kNoTraceNode) {
  TraceEvent e;
  e.kind = k;
  e.ts = from;
  e.dur = to - from;
  e.worker = worker;
  e.node = node;
  return e;
}

TraceEvent instant(EventKind k, std::uint64_t ts, std::uint16_t worker,
                   std::uint32_t node = kNoTraceNode, std::uint32_t arg = 0) {
  TraceEvent e;
  e.kind = k;
  e.ts = ts;
  e.worker = worker;
  e.node = node;
  e.arg = arg;
  return e;
}

TEST(TraceAnalysis, PerWorkerTimelineTotals) {
  std::vector<TraceEvent> ev;
  ev.push_back(span(EventKind::kComputeSpan, 0, 60, 0, 1));
  ev.push_back(span(EventKind::kComputeSpan, 70, 100, 0, 2));
  ev.push_back(span(EventKind::kLockWaitSpan, 60, 65, 0));
  ev.push_back(span(EventKind::kLockHoldSpan, 65, 70, 0));
  ev.push_back(span(EventKind::kSleepSpan, 0, 40, 1));
  ev.push_back(span(EventKind::kComputeSpan, 40, 90, 1, 3));
  const TraceReport rep = analyze_trace(ev);
  ASSERT_EQ(rep.workers.size(), 2u);
  EXPECT_EQ(rep.workers[0].compute_ns, 90u);
  EXPECT_EQ(rep.workers[0].lock_wait_ns, 5u);
  EXPECT_EQ(rep.workers[0].lock_hold_ns, 5u);
  EXPECT_EQ(rep.workers[0].units, 2u);
  EXPECT_EQ(rep.workers[0].extent(), 100u);
  EXPECT_DOUBLE_EQ(rep.workers[0].utilization(), 0.9);
  EXPECT_EQ(rep.workers[1].sleep_ns, 40u);
  EXPECT_EQ(rep.workers[1].compute_ns, 50u);
  EXPECT_EQ(rep.span_end, 100u);
  EXPECT_EQ(rep.counts[static_cast<std::size_t>(EventKind::kComputeSpan)], 3u);
}

TEST(TraceAnalysis, ExtentIsRelativeToTheFirstEvent) {
  // A thread session's epoch starts at construction, long before the traced
  // run; the report's extent must not include that dead offset.
  std::vector<TraceEvent> ev;
  ev.push_back(span(EventKind::kComputeSpan, 5000, 5600, 0, 1));
  ev.push_back(span(EventKind::kLockHoldSpan, 5600, 5650, 0));
  const TraceReport rep = analyze_trace(ev);
  EXPECT_EQ(rep.span_begin, 5000u);
  EXPECT_EQ(rep.span_end, 5650u);
  EXPECT_EQ(rep.extent(), 650u);
}

TEST(TraceAnalysis, EngineTrackExcludedFromWorkerTable) {
  std::vector<TraceEvent> ev;
  ev.push_back(span(EventKind::kComputeSpan, 0, 10, 0, 1));
  ev.push_back(
      instant(EventKind::kUnitCommit, 12, TraceSession::kEngineWorker, 1, 0));
  const TraceReport rep = analyze_trace(ev);
  EXPECT_EQ(rep.workers.size(), 1u);  // no 65534-row table
  EXPECT_EQ(rep.units, 1u);
}

TEST(TraceAnalysis, StealMatrixAndCounters) {
  std::vector<TraceEvent> ev;
  // Keep the worker-count discovery honest: tracks 0..2 exist.
  for (std::uint16_t w = 0; w < 3; ++w)
    ev.push_back(span(EventKind::kComputeSpan, 0, 10, w, w + 1));
  ev.push_back(instant(EventKind::kStealProbe, 1, 2, kNoTraceNode, 0));
  ev.push_back(instant(EventKind::kStealHit, 2, 2, 9, /*victim=*/0));
  ev.push_back(instant(EventKind::kStealHit, 3, 2, 10, /*victim=*/0));
  ev.push_back(instant(EventKind::kStealHit, 4, 1, 11, /*victim=*/0));
  ev.push_back(instant(EventKind::kStealMiss, 5, 1, kNoTraceNode, 2));
  const TraceReport rep = analyze_trace(ev);
  EXPECT_EQ(rep.steal_probes, 1u);
  EXPECT_EQ(rep.steal_hits, 3u);
  EXPECT_EQ(rep.steal_misses, 1u);
  ASSERT_EQ(rep.steal_matrix.size(), 3u);
  EXPECT_EQ(rep.steal_matrix[2][0], 2u);
  EXPECT_EQ(rep.steal_matrix[1][0], 1u);
  EXPECT_EQ(rep.steal_matrix[0][0], 0u);
}

TEST(TraceAnalysis, CriticalPathThroughCommitGraph) {
  // Dependency graph (kUnitCommit: node, arg = parent):
  //   1 <- 2, 1 <- 3, 2 <- 4; compute durations 10 / 20 / 5 / 7.
  // Longest chain is 1 -> 2 -> 4 with cost 10 + 20 + 7 = 37; total compute
  // is 42, so the dependency graph bounds speedup at 42/37.
  std::vector<TraceEvent> ev;
  ev.push_back(span(EventKind::kComputeSpan, 0, 10, 0, 1));
  ev.push_back(span(EventKind::kComputeSpan, 0, 20, 1, 2));
  ev.push_back(span(EventKind::kComputeSpan, 0, 5, 2, 3));
  ev.push_back(span(EventKind::kComputeSpan, 20, 27, 1, 4));
  const auto eng = TraceSession::kEngineWorker;
  ev.push_back(instant(EventKind::kUnitCommit, 30, eng, 1, kNoTraceNode));
  ev.push_back(instant(EventKind::kUnitCommit, 31, eng, 2, 1));
  ev.push_back(instant(EventKind::kUnitCommit, 32, eng, 3, 1));
  ev.push_back(instant(EventKind::kUnitCommit, 33, eng, 4, 2));
  const TraceReport rep = analyze_trace(ev);
  EXPECT_EQ(rep.units, 4u);
  EXPECT_EQ(rep.critical_path_ns, 37u);
  ASSERT_EQ(rep.critical_path.size(), 3u);
  EXPECT_EQ(rep.critical_path[0].node, 1u);
  EXPECT_EQ(rep.critical_path[1].node, 2u);
  EXPECT_EQ(rep.critical_path[2].node, 4u);
  EXPECT_EQ(rep.critical_path[2].compute_ns, 7u);
  EXPECT_DOUBLE_EQ(rep.parallelism_bound(), 42.0 / 37.0);
}

TEST(TraceAnalysis, SelfAndSentinelCommitEdgesAreIgnored) {
  std::vector<TraceEvent> ev;
  const auto eng = TraceSession::kEngineWorker;
  ev.push_back(span(EventKind::kComputeSpan, 0, 10, 0, 1));
  ev.push_back(instant(EventKind::kUnitCommit, 1, eng, 1, 1));  // self edge
  ev.push_back(
      instant(EventKind::kUnitCommit, 2, eng, kNoTraceNode, 1));  // no node
  const TraceReport rep = analyze_trace(ev);
  EXPECT_EQ(rep.units, 2u);
  EXPECT_EQ(rep.critical_path_ns, 0u);  // no usable edges -> no path
  EXPECT_TRUE(rep.critical_path.empty());
}

TEST(TraceAnalysis, EmptyStreamYieldsEmptyReport) {
  const TraceReport rep = analyze_trace({});
  EXPECT_TRUE(rep.workers.empty());
  EXPECT_EQ(rep.span_end, 0u);
  EXPECT_EQ(rep.critical_path_ns, 0u);
  EXPECT_DOUBLE_EQ(rep.parallelism_bound(), 0.0);
}

TEST(TraceAnalysis, KindFromNameInvertsEventName) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    EventKind back{};
    ASSERT_TRUE(kind_from_name(event_name(kind), back));
    EXPECT_EQ(back, kind);
  }
  EventKind ignored{};
  EXPECT_FALSE(kind_from_name("process_name", ignored));
  EXPECT_FALSE(kind_from_name("", ignored));
}

TEST(TraceAnalysis, RenderReportMentionsEverySection) {
  std::vector<TraceEvent> ev;
  ev.push_back(span(EventKind::kComputeSpan, 0, 10, 0, 1));
  ev.push_back(span(EventKind::kComputeSpan, 10, 15, 0, 2));
  ev.push_back(instant(EventKind::kStealHit, 2, 0, 2, 0));
  const auto eng = TraceSession::kEngineWorker;
  ev.push_back(instant(EventKind::kUnitCommit, 16, eng, 2, 1));
  const std::string text = render_report(analyze_trace(ev));
  EXPECT_NE(text.find("per-worker timeline"), std::string::npos);
  EXPECT_NE(text.find("steal migration"), std::string::npos);
  EXPECT_NE(text.find("scheduling events"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("parallelism bound"), std::string::npos);
}

TEST(TraceAnalysis, FormatNsPicksReadableUnits) {
  EXPECT_EQ(format_ns(999), "999 ns");
  EXPECT_EQ(format_ns(1500), "1.500 us");
  EXPECT_EQ(format_ns(2500000), "2.500 ms");
}

}  // namespace
}  // namespace ers::obs
