// Prometheus text exposition (obs/prometheus.hpp, DESIGN.md §16).  The
// golden test pins the exact bytes: the exposition is consumed by external
// scrapers and linted in CI by tools/check_prom_format.py, so its format is
// a wire contract, not an implementation detail.

#include "obs/prometheus.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace ers::obs {
namespace {

TEST(PromName, PrefixesAndFoldsSeparators) {
  EXPECT_EQ(prom_name("engine.waste.total_ns"), "ers_engine_waste_total_ns");
  EXPECT_EQ(prom_name("sched.shard_lock_wait_ns.0"),
            "ers_sched_shard_lock_wait_ns_0");
  EXPECT_EQ(prom_name("units/sec"), "ers_units_sec");
}

TEST(PromLabelEscape, EscapesSpecials) {
  EXPECT_EQ(prom_label_escape("O1 \"deep\""), "O1 \\\"deep\\\"");
  EXPECT_EQ(prom_label_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_label_escape("a\nb"), "a\\nb");
}

TEST(Prometheus, EmptyRegistryIsEmptyText) {
  EXPECT_EQ(prometheus_text(MetricsRegistry{}), "");
}

TEST(Prometheus, ExpositionGolden) {
  // Exact-bytes golden: run-info labels first, then numeric gauges in
  // insertion order (uint64, int64, double spellings), then the histogram's
  // cumulative le series trimmed after the last non-empty bucket.
  MetricsRegistry reg;
  reg.set("bench", "scheduler");
  reg.set("tree", "O1");
  reg.set("units", std::uint64_t{12});
  reg.set("frontier", -2);
  reg.set("efficiency", 0.875);
  Histogram h;
  h.record(1);   // bucket 1, upper 1
  h.record(3);   // bucket 2, upper 3
  h.record(3);
  reg.put_histogram("sched.batch_size", h);

  const std::string expected =
      "# HELP ers_run_info string-valued registry entries as labels\n"
      "# TYPE ers_run_info gauge\n"
      "ers_run_info{bench=\"scheduler\",tree=\"O1\"} 1\n"
      "# HELP ers_units registry entry units\n"
      "# TYPE ers_units gauge\n"
      "ers_units 12\n"
      "# HELP ers_frontier registry entry frontier\n"
      "# TYPE ers_frontier gauge\n"
      "ers_frontier -2\n"
      "# HELP ers_efficiency registry entry efficiency\n"
      "# TYPE ers_efficiency gauge\n"
      "ers_efficiency 0.875\n"
      "# HELP ers_sched_batch_size registry histogram sched.batch_size\n"
      "# TYPE ers_sched_batch_size histogram\n"
      "ers_sched_batch_size_bucket{le=\"0\"} 0\n"
      "ers_sched_batch_size_bucket{le=\"1\"} 1\n"
      "ers_sched_batch_size_bucket{le=\"3\"} 3\n"
      "ers_sched_batch_size_bucket{le=\"+Inf\"} 3\n"
      "ers_sched_batch_size_sum 7\n"
      "ers_sched_batch_size_count 3\n";
  EXPECT_EQ(prometheus_text(reg), expected);
}

TEST(Prometheus, CumulativeBucketsEndAtCount) {
  // The le series is cumulative and its +Inf line must equal _count — the
  // invariant scrapers aggregate on (and the lint checks).
  MetricsRegistry reg;
  Histogram h;
  for (std::uint64_t v = 0; v < 100; ++v) h.record(v * v);
  reg.put_histogram("x", h);
  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("ers_x_bucket{le=\"+Inf\"} 100\n"), std::string::npos);
  EXPECT_NE(text.find("ers_x_count 100\n"), std::string::npos);
  // Trimmed: bit width of 99*99 = 9801 is 14, so no le lines past 2^14 - 1.
  EXPECT_NE(text.find("le=\"16383\""), std::string::npos);
  EXPECT_EQ(text.find("le=\"32767\""), std::string::npos);
}

TEST(Prometheus, InfoOnlyRegistryHasJustRunInfo) {
  MetricsRegistry reg;
  reg.set("tree", "R1");
  EXPECT_EQ(prometheus_text(reg),
            "# HELP ers_run_info string-valued registry entries as labels\n"
            "# TYPE ers_run_info gauge\n"
            "ers_run_info{tree=\"R1\"} 1\n");
}

}  // namespace
}  // namespace ers::obs
