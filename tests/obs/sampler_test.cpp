// Live search-health sampling (obs/sampler.hpp, DESIGN.md §16).
//
// Virtual-clock mode is the deterministic contract: SimExecutor polls the
// sampler at every retired event, so the same tree + config must yield the
// same time series bit for bit.  The unit tests cover the ring mechanics
// (tick schedule, drop-on-full, JSON shape); the sim tests drive the whole
// probe-over-a-live-engine path.

#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "obs/json_read.hpp"
#include "randomtree/random_tree.hpp"
#include "sim/executor.hpp"

namespace ers {
namespace {

TEST(Sampler, PollFiresEveryDueTickWithScheduledTimestamps) {
  std::uint64_t calls = 0;
  obs::Sampler s([&calls] {
    obs::SampleRow r;
    r.units = ++calls;
    return r;
  }, /*interval_ns=*/100);
  s.poll(50);  // nothing due yet
  EXPECT_EQ(s.rows().size(), 0u);
  s.poll(100);  // exactly the first tick
  ASSERT_EQ(s.rows().size(), 1u);
  EXPECT_EQ(s.rows()[0].ts_ns, 100u);
  s.poll(499);  // ticks 200, 300, 400 all due (virtual time can jump)
  ASSERT_EQ(s.rows().size(), 4u);
  EXPECT_EQ(s.rows()[3].ts_ns, 400u);
  // Timestamps are the scheduled due times, observations are cumulative.
  for (std::size_t i = 0; i < s.rows().size(); ++i) {
    EXPECT_EQ(s.rows()[i].ts_ns, (i + 1) * 100);
    EXPECT_EQ(s.rows()[i].units, i + 1);
  }
  // A poll at an already-passed time fires nothing (next_due only advances).
  s.poll(400);
  EXPECT_EQ(s.rows().size(), 4u);
}

TEST(Sampler, FullRingDropsAndCounts) {
  obs::Sampler s([] { return obs::SampleRow{}; }, /*interval_ns=*/1,
                 /*capacity=*/3);
  s.poll(10);
  EXPECT_EQ(s.rows().size(), 3u);
  EXPECT_EQ(s.dropped(), 7u);
}

TEST(Sampler, JsonShapeParsesWithSchemaFields) {
  obs::Sampler s([] {
    obs::SampleRow r;
    r.units = 5;
    r.tt_probes = 2;
    return r;
  }, /*interval_ns=*/10);
  s.poll(20);
  obs::JsonValue v;
  ASSERT_TRUE(obs::parse_json(s.to_json(), v));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("interval_ns")->as_uint64(), 10u);
  EXPECT_EQ(v.find("dropped")->as_uint64(), 0u);
  const obs::JsonValue* samples = v.find("samples");
  ASSERT_TRUE(samples != nullptr && samples->is_array());
  ASSERT_EQ(samples->items.size(), 2u);
  for (const char* key : {"ts_ns", "units", "nodes", "live_nodes", "queued",
                          "waste_units", "waste_ns", "tt_probes", "tt_hits"})
    EXPECT_NE(samples->items[0].find(key), nullptr) << key;
  EXPECT_EQ(samples->items[1].find("units")->as_uint64(), 5u);
}

// --- deterministic series under the simulator's virtual clock -------------

core::EngineConfig cfg(int depth, int serial) {
  core::EngineConfig c;
  c.search_depth = depth;
  c.serial_depth = serial;
  return c;
}

/// One simulated run with a sampler polling on the virtual clock; returns
/// the sampled rows.
std::vector<obs::SampleRow> sampled_run(const UniformRandomTree& g,
                                        std::uint64_t interval) {
  core::Engine<UniformRandomTree> engine(g, cfg(5, 3));
  obs::Sampler sampler(
      [&engine] {
        obs::SampleRow row;
        const auto st = engine.stats();
        const auto w = engine.waste_stats();
        row.units = st.units_processed;
        row.nodes = st.search.nodes_generated();
        row.live_nodes = engine.mem_stats().live_nodes;
        row.queued = engine.queued_count();
        row.waste_units = w.total_units();
        row.waste_ns = w.total_ns();
        row.tt_probes = st.search.tt_probes;
        row.tt_hits = st.search.tt_hits;
        return row;
      },
      interval);
  sim::SimExecutor<core::Engine<UniformRandomTree>> exec(4, {}, 1, 1);
  exec.with_sampler(&sampler);
  const auto m = exec.run(engine);
  EXPECT_GT(m.makespan, 0u);
  // The final poll at the makespan pins the series length to the virtual
  // duration, independent of host speed.
  EXPECT_EQ(sampler.rows().size() + sampler.dropped(), m.makespan / interval);
  return sampler.rows();
}

TEST(Sampler, SimSeriesIsDeterministic) {
  const UniformRandomTree g(4, 5, 123, -100, 100);
  const auto a = sampled_run(g, 50);
  const auto b = sampled_run(g, 50);
  ASSERT_FALSE(a.empty()) << "interval too coarse: no ticks inside the run";
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "row " << i << " diverged";
}

TEST(Sampler, SimSeriesIsCumulativeAndEndsAtFinalTotals) {
  const UniformRandomTree g(4, 5, 123, -100, 100);
  const auto rows = sampled_run(g, 50);
  ASSERT_FALSE(rows.empty());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].units, rows[i - 1].units);
    EXPECT_GE(rows[i].nodes, rows[i - 1].nodes);
    EXPECT_GE(rows[i].waste_units, rows[i - 1].waste_units);
  }
}

}  // namespace
}  // namespace ers
