#include "connect4/connect4.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/parallel_er.hpp"
#include "search/alpha_beta.hpp"
#include "search/er_serial.hpp"
#include "search/negmax.hpp"

namespace ers::connect4 {
namespace {

// Full search from a mid-game position (wraps it as a Game rooted there).
Value negmax_search_from(const Connect4&, const Connect4::Position& p) {
  struct Sub {
    using Position = Connect4::Position;
    Position start;
    Position root() const { return start; }
    void generate_children(const Position& q, std::vector<Position>& out) const {
      Connect4{}.generate_children(q, out);
    }
    Value evaluate(const Position& q) const { return Connect4{}.evaluate(q); }
  };
  return ers::alpha_beta_search(Sub{p}, 4).value;
}

Connect4::Position play(std::initializer_list<int> columns) {
  const Connect4 g;
  Connect4::Position p = g.root();
  for (const int col : columns) {
    std::vector<Connect4::Position> kids;
    g.generate_children(p, kids);
    bool moved = false;
    for (const auto& k : kids) {
      if (Connect4::move_column(p, k) == col) {
        p = k;
        moved = true;
        break;
      }
    }
    EXPECT_TRUE(moved) << "illegal column " << col;
  }
  return p;
}

TEST(Connect4, RootHasSevenMoves) {
  const Connect4 g;
  std::vector<Connect4::Position> kids;
  g.generate_children(g.root(), kids);
  EXPECT_EQ(kids.size(), 7u);
}

TEST(Connect4, FullColumnRemovesMove) {
  // Fill column 0 with six alternating discs.
  const auto p = play({0, 0, 0, 0, 0, 0});
  const Connect4 g;
  std::vector<Connect4::Position> kids;
  g.generate_children(p, kids);
  EXPECT_EQ(kids.size(), 6u);
  for (const auto& k : kids) EXPECT_NE(Connect4::move_column(p, k), 0);
}

TEST(Connect4, VerticalWinDetected) {
  // First player stacks column 3; second player wastes moves in column 0.
  const auto p = play({3, 0, 3, 0, 3, 0, 3});
  EXPECT_TRUE(has_four(p.theirs)) << "four in a row vertically";
  const Connect4 g;
  std::vector<Connect4::Position> kids;
  g.generate_children(p, kids);
  EXPECT_TRUE(kids.empty()) << "a won game is terminal";
  EXPECT_EQ(g.evaluate(p), -Connect4::kWin);
}

TEST(Connect4, HorizontalWinDetected) {
  const auto p = play({0, 0, 1, 1, 2, 2, 3});
  EXPECT_TRUE(has_four(p.theirs));
}

TEST(Connect4, DiagonalWinDetected) {
  // Classic staircase: X at (0,0),(1,1),(2,2),(3,3).
  const auto p = play({0, 1, 1, 2, 2, 3, 2, 3, 3, 0, 3});
  EXPECT_TRUE(has_four(p.theirs));
}

TEST(Connect4, NoWrapAcrossColumns) {
  // Discs at the top of column c and bottom of column c+1 must not form a
  // "vertical" run through the sentinel row.
  Bitboard b = 0;
  for (int r = 3; r < 6; ++r) b |= Bitboard{1} << (0 * 7 + r);
  b |= Bitboard{1} << (1 * 7 + 0);
  EXPECT_FALSE(has_four(b));
}

TEST(Connect4, ImmediateWinFound) {
  // Side to move has three in a column and the fourth cell open.
  const auto p = play({3, 0, 3, 0, 3, 0});
  const Connect4 g;
  EXPECT_EQ(negmax_search_from(g, p), Connect4::kWin);
}

TEST(Connect4, MustBlockOpponent) {
  // Opponent threatens a vertical four; any non-blocking move loses.  A
  // depth-2 search must see the loss after a bad move.
  const auto p = play({3, 0, 3, 0, 3});  // mover must answer column 3
  const Connect4 g;
  std::vector<Connect4::Position> kids;
  g.generate_children(p, kids);
  for (const auto& k : kids) {
    // After the reply k it is the first player's turn again; if k did not
    // block column 3, the first player wins immediately.
    std::vector<Connect4::Position> grand;
    g.generate_children(k, grand);
    bool first_can_win = false;
    for (const auto& gk : grand)
      if (has_four(gk.theirs)) first_can_win = true;
    if (Connect4::move_column(p, k) == 3) {
      EXPECT_FALSE(first_can_win);
    } else {
      EXPECT_TRUE(first_can_win)
          << "column " << Connect4::move_column(p, k) << " fails to block";
    }
  }
}

TEST(Connect4, AlgorithmsAgreeAtDepth6) {
  const Connect4 g;
  for (int depth : {1, 2, 3, 4, 5, 6}) {
    const Value oracle = negmax_search(g, depth).value;
    EXPECT_EQ(alpha_beta_search(g, depth).value, oracle) << depth;
    EXPECT_EQ(er_serial_search(g, depth).value, oracle) << depth;
  }
}

TEST(Connect4, ParallelErAgrees) {
  const Connect4 g;
  core::EngineConfig cfg;
  cfg.search_depth = 7;
  cfg.serial_depth = 4;
  const Value oracle = alpha_beta_search(g, 7).value;
  EXPECT_EQ(parallel_er_sim(g, cfg, 8).value, oracle);
  EXPECT_EQ(parallel_er_threads(g, cfg, 4).value, oracle);
}

TEST(Connect4, HeuristicIsAntisymmetric) {
  const auto p = play({3, 2, 3, 4, 0, 3});
  const Connect4 g;
  const Connect4::Position swapped{p.theirs, p.mine};
  EXPECT_EQ(g.evaluate(p), negate(g.evaluate(swapped)));
}

TEST(Connect4, MoveColumnRoundTrips) {
  const Connect4 g;
  Connect4::Position p = g.root();
  for (int col : {6, 0, 3, 3, 5}) {
    std::vector<Connect4::Position> kids;
    g.generate_children(p, kids);
    bool found = false;
    for (const auto& k : kids) {
      if (Connect4::move_column(p, k) == col) {
        p = k;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << col;
  }
  EXPECT_EQ(std::popcount(p.mine | p.theirs), 5);
}

}  // namespace
}  // namespace ers::connect4
