#include "baselines/tree_splitting.hpp"

#include <gtest/gtest.h>

#include "randomtree/random_tree.hpp"
#include "randomtree/strongly_ordered.hpp"
#include "search/negmax.hpp"

namespace ers::baselines {
namespace {

TEST(TreeSplitting, ExactOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const UniformRandomTree g(3, 5, seed, -80, 80);
    const Value oracle = negmax_search(g, 5).value;
    for (const ProcessorTree procs :
         {ProcessorTree{2, 1}, ProcessorTree{2, 2}, ProcessorTree{4, 1},
          ProcessorTree{3, 2}}) {
      const auto r = tree_splitting_search(g, 5, procs);
      EXPECT_EQ(r.value, oracle)
          << "seed=" << seed << " procs=" << procs.branching << "^"
          << procs.height;
    }
  }
}

TEST(TreeSplitting, SingleLeafProcessorEqualsSerialAlphaBeta) {
  const UniformRandomTree g(4, 4, 5, -100, 100);
  const auto r = tree_splitting_search(g, 4, ProcessorTree{2, 0});
  const auto ab = alpha_beta_search(g, 4);
  EXPECT_EQ(r.value, ab.value);
  EXPECT_EQ(r.stats.nodes_generated(), ab.stats.nodes_generated());
}

TEST(TreeSplitting, ProcessorTreeLeafCount) {
  EXPECT_EQ((ProcessorTree{2, 2}.total_leaf_processors()), 4);
  EXPECT_EQ((ProcessorTree{3, 2}.total_leaf_processors()), 9);
  EXPECT_EQ((ProcessorTree{2, 4}.total_leaf_processors()), 16);
  EXPECT_EQ((ProcessorTree{5, 0}.total_leaf_processors()), 1);
}

TEST(TreeSplitting, ParallelIsFasterOnUnorderedTrees) {
  // Fishburn: on poorly ordered trees tree-splitting approaches linear
  // speedup; at minimum it must beat one processor.
  const UniformRandomTree g(4, 6, 9, -1000, 1000);
  const auto serial = tree_splitting_search(g, 6, ProcessorTree{2, 0});
  const auto par = tree_splitting_search(g, 6, ProcessorTree{2, 4});
  EXPECT_EQ(serial.value, par.value);
  EXPECT_LT(par.finish, serial.finish);
}

TEST(TreeSplitting, MissesCutoffsOnOrderedTrees) {
  // The speculative loss story (§4.3/§4.4): on a strongly ordered tree,
  // slaves started in parallel miss cutoffs serial alpha-beta would get, so
  // tree splitting examines more nodes.
  StronglyOrderedTree::Config c;
  c.height = 6;
  c.bias = 60;
  c.noise = 50;
  c.seed = 3;
  const StronglyOrderedTree g(c);
  OrderingPolicy ordered{.sort_by_static_value = true, .max_sort_ply = 99};
  const auto serial = alpha_beta_search(g, 6, ordered);
  const auto par = tree_splitting_search(g, 6, ProcessorTree{2, 3}, ordered);
  EXPECT_EQ(par.value, serial.value);
  EXPECT_GT(par.stats.nodes_generated(), serial.stats.nodes_generated());
}

TEST(TreeSplitting, SublinearOnOrderedTrees) {
  // Fishburn's bound: ~O(1/sqrt(k)) efficiency relative to alpha-beta on a
  // best-first-ordered tree.  With 16 leaf processors the speedup must be
  // well below 16 and also below k^0.5 * 2 (loose sanity band).
  StronglyOrderedTree::Config c;
  c.height = 8;
  c.min_degree = c.max_degree = 3;
  c.bias = 80;
  c.noise = 40;
  c.seed = 11;
  const StronglyOrderedTree g(c);
  OrderingPolicy ordered{.sort_by_static_value = true, .max_sort_ply = 99};
  const sim::CostModel cost;
  const auto serial = alpha_beta_search(g, 8, ordered);
  const auto par = tree_splitting_search(g, 8, ProcessorTree{2, 4}, ordered, cost);
  const double speedup =
      static_cast<double>(cost.of(serial.stats)) / static_cast<double>(par.finish);
  EXPECT_LT(speedup, 9.0) << "16 processors cannot get near-linear speedup "
                             "on a strongly ordered tree";
}

TEST(TreeSplitting, DegenerateUnaryChain) {
  const UniformRandomTree g(1, 6, 2, -9, 9);
  const auto r = tree_splitting_search(g, 6, ProcessorTree{2, 2});
  EXPECT_EQ(r.value, negmax_search(g, 6).value);
}

TEST(TreeSplitting, DepthZeroRoot) {
  const UniformRandomTree g(4, 4, 2, -9, 9);
  const auto r = tree_splitting_search(g, 0, ProcessorTree{2, 2});
  EXPECT_EQ(r.value, g.evaluate(g.root()));
}

}  // namespace
}  // namespace ers::baselines
