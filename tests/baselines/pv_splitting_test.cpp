#include "baselines/pv_splitting.hpp"

#include <gtest/gtest.h>

#include "baselines/tree_splitting.hpp"
#include "randomtree/random_tree.hpp"
#include "randomtree/strongly_ordered.hpp"
#include "search/negmax.hpp"

namespace ers::baselines {
namespace {

TEST(PvSplitting, ExactOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const UniformRandomTree g(3, 5, seed, -80, 80);
    const Value oracle = negmax_search(g, 5).value;
    for (const ProcessorTree procs : {ProcessorTree{2, 1}, ProcessorTree{2, 2},
                                      ProcessorTree{3, 1}}) {
      const auto r = pv_splitting_search(g, 5, procs);
      EXPECT_EQ(r.value, oracle) << "seed=" << seed;
    }
  }
}

TEST(PvSplitting, ExactOnVaryingDegreeTrees) {
  StronglyOrderedTree::Config c;
  c.min_degree = 1;
  c.max_degree = 5;
  c.height = 6;
  for (std::uint64_t seed = 40; seed < 50; ++seed) {
    c.seed = seed;
    const StronglyOrderedTree g(c);
    EXPECT_EQ(pv_splitting_search(g, 6, ProcessorTree{2, 2}).value,
              negmax_search(g, 6).value)
        << "seed=" << seed;
  }
}

TEST(PvSplitting, FewerNodesThanTreeSplittingOnOrderedTrees) {
  // The whole point of PV-splitting (§4.4): establishing the PV child's
  // bound before splitting slashes speculative loss on ordered trees.
  StronglyOrderedTree::Config c;
  c.height = 7;
  c.bias = 60;
  c.noise = 50;
  c.seed = 5;
  const StronglyOrderedTree g(c);
  OrderingPolicy ordered{.sort_by_static_value = true, .max_sort_ply = 99};
  const auto ts = tree_splitting_search(g, 7, ProcessorTree{2, 3}, ordered);
  const auto pv = pv_splitting_search(g, 7, ProcessorTree{2, 3}, ordered);
  EXPECT_EQ(ts.value, pv.value);
  EXPECT_LT(pv.stats.nodes_generated(), ts.stats.nodes_generated());
}

TEST(PvSplitting, CloseToSerialNodeCountOnOrderedTrees) {
  // Marsland's observation: pv-splitting with few processors examines only
  // modestly more nodes than serial alpha-beta (5% on his strongly ordered
  // chess trees; our synthetic trees are less well ordered, so the band
  // here is 2x — still far below tree-splitting's blowup).
  StronglyOrderedTree::Config c;
  c.height = 7;
  c.bias = 80;
  c.noise = 40;
  c.seed = 7;
  const StronglyOrderedTree g(c);
  OrderingPolicy ordered{.sort_by_static_value = true, .max_sort_ply = 99};
  const auto serial = alpha_beta_search(g, 7, ordered);
  const auto pv = pv_splitting_search(g, 7, ProcessorTree{2, 2}, ordered);
  EXPECT_EQ(serial.value, pv.value);
  EXPECT_LT(static_cast<double>(pv.stats.nodes_generated()),
            2.0 * static_cast<double>(serial.stats.nodes_generated()));
}

TEST(PvSplitting, DegenerateShallowTree) {
  // Tree shallower than the processor tree: pure tree-splitting kicks in.
  const UniformRandomTree g(3, 2, 3, -10, 10);
  const auto r = pv_splitting_search(g, 2, ProcessorTree{2, 3});
  EXPECT_EQ(r.value, negmax_search(g, 2).value);
}

TEST(PvSplitting, UnaryChain) {
  const UniformRandomTree g(1, 7, 4, -9, 9);
  const auto r = pv_splitting_search(g, 7, ProcessorTree{2, 2});
  EXPECT_EQ(r.value, negmax_search(g, 7).value);
}

}  // namespace
}  // namespace ers::baselines
