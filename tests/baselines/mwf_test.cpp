#include "baselines/mwf.hpp"

#include <gtest/gtest.h>

#include "randomtree/random_tree.hpp"
#include "randomtree/strongly_ordered.hpp"
#include "search/negmax.hpp"
#include "sim/executor.hpp"

namespace ers::baselines {
namespace {

template <Game G>
struct MwfRun {
  Value value;
  MwfStats stats;
  sim::SimMetrics metrics;
};

template <Game G>
MwfRun<G> run_mwf(const G& game, int depth, int serial_depth, int processors) {
  typename MwfEngine<G>::Config cfg;
  cfg.search_depth = depth;
  cfg.serial_depth = serial_depth;
  MwfEngine<G> engine(game, cfg);
  sim::SimExecutor<MwfEngine<G>> exec(processors);
  const auto metrics = exec.run(engine);
  return MwfRun<G>{engine.root_value(), engine.stats(), metrics};
}

TEST(Mwf, ExactOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const UniformRandomTree g(3, 5, seed, -60, 60);
    const Value oracle = negmax_search(g, 5).value;
    for (int p : {1, 4, 16}) {
      const auto r = run_mwf(g, 5, 3, p);
      EXPECT_EQ(r.value, oracle) << "seed=" << seed << " p=" << p;
    }
  }
}

TEST(Mwf, ExactAcrossSerialDepths) {
  const UniformRandomTree g(4, 5, 31, -100, 100);
  const Value oracle = negmax_search(g, 5).value;
  for (int sd = 0; sd <= 5; ++sd) {
    const auto r = run_mwf(g, 5, sd, 8);
    EXPECT_EQ(r.value, oracle) << "sd=" << sd;
  }
}

TEST(Mwf, ExactOnVaryingDegreeTrees) {
  StronglyOrderedTree::Config c;
  c.min_degree = 1;
  c.max_degree = 5;
  c.height = 5;
  for (std::uint64_t seed = 70; seed < 80; ++seed) {
    c.seed = seed;
    const StronglyOrderedTree g(c);
    const auto r = run_mwf(g, 5, 3, 8);
    EXPECT_EQ(r.value, negmax_search(g, 5).value) << "seed=" << seed;
  }
}

TEST(Mwf, SpeculativeUnitsAppearWhenRefutationsFail) {
  // Random trees are poorly ordered, so many 2-node first children fail to
  // refute and the gated right children must run.
  const UniformRandomTree g(4, 6, 3, -100, 100);
  const auto r = run_mwf(g, 6, 4, 8);
  EXPECT_GT(r.stats.speculative_units, 0u);
}

TEST(Mwf, SpeedupPlateaus) {
  // Akl's finding (§4.2): speedup rises for the first processors, then
  // plateaus near 5-6; extra processors only starve.
  const UniformRandomTree g(4, 6, 13, -1000, 1000);
  const auto p1 = run_mwf(g, 6, 4, 1);
  const auto p8 = run_mwf(g, 6, 4, 8);
  const auto p32 = run_mwf(g, 6, 4, 32);
  EXPECT_LT(p8.metrics.makespan, p1.metrics.makespan);
  // Doubling 8 -> 32 processors must give much less than 2x.
  EXPECT_GT(static_cast<double>(p32.metrics.makespan) * 2.0,
            static_cast<double>(p8.metrics.makespan));
}

TEST(Mwf, NodesPlateauWithProcessors) {
  // "the number of nodes examined by MWF increases moderately, but rapidly
  // reaches a plateau as the number of processors is increased."
  const UniformRandomTree g(4, 6, 17, -1000, 1000);
  const auto p1 = run_mwf(g, 6, 4, 1);
  const auto p16 = run_mwf(g, 6, 4, 16);
  const auto p32 = run_mwf(g, 6, 4, 32);
  EXPECT_GE(p16.stats.search.nodes_generated(),
            p1.stats.search.nodes_generated());
  // 16 -> 32 processors: nodes grow by at most a few percent.
  EXPECT_LT(static_cast<double>(p32.stats.search.nodes_generated()),
            1.10 * static_cast<double>(p16.stats.search.nodes_generated()));
}

TEST(Mwf, UnaryChain) {
  const UniformRandomTree g(1, 6, 5, -9, 9);
  const auto r = run_mwf(g, 6, 3, 4);
  EXPECT_EQ(r.value, negmax_search(g, 6).value);
}

TEST(Mwf, DepthZero) {
  const UniformRandomTree g(3, 3, 5, -9, 9);
  const auto r = run_mwf(g, 0, 0, 4);
  EXPECT_EQ(r.value, g.evaluate(g.root()));
}

TEST(Mwf, TiesEverywhere) {
  const UniformRandomTree g(4, 5, 9, 0, 0);  // all leaves equal
  const auto r = run_mwf(g, 5, 3, 8);
  EXPECT_EQ(r.value, negmax_search(g, 5).value);
}

}  // namespace
}  // namespace ers::baselines
