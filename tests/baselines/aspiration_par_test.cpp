#include "baselines/aspiration_par.hpp"

#include <gtest/gtest.h>

#include "randomtree/random_tree.hpp"
#include "search/negmax.hpp"

namespace ers::baselines {
namespace {

TEST(ParallelAspiration, ExactValueForAllProcessorCounts) {
  const UniformRandomTree g(3, 5, 11, -100, 100);
  const Value oracle = negmax_search(g, 5).value;
  for (int p : {1, 2, 3, 4, 8, 16}) {
    const auto r = parallel_aspiration_search(g, 5, p, 150);
    EXPECT_EQ(r.value, oracle) << "p=" << p;
  }
}

TEST(ParallelAspiration, ExactlyOneWindowCertifies) {
  const UniformRandomTree g(4, 4, 7, -50, 50);
  const auto r = parallel_aspiration_search(g, 4, 6, 80);
  int exact = 0;
  for (const auto& o : r.processors) exact += o.exact ? 1 : 0;
  EXPECT_EQ(exact, 1);
}

TEST(ParallelAspiration, BoundaryValueIsStillCovered) {
  // A tree whose root value lands exactly on a window boundary: with bound
  // 100 and 4 processors, boundaries fall at -50, 0, +50.  Build trees until
  // one hits a boundary (seeded, deterministic).
  bool tested = false;
  for (std::uint64_t seed = 0; seed < 200 && !tested; ++seed) {
    const UniformRandomTree g(3, 3, seed, -100, 100);
    const Value v = negmax_search(g, 3).value;
    if (v != -50 && v != 0 && v != 50) continue;
    tested = true;
    const auto r = parallel_aspiration_search(g, 3, 4, 100);
    EXPECT_EQ(r.value, v) << "seed=" << seed;
  }
  EXPECT_TRUE(tested) << "no seed produced a boundary value; widen the scan";
}

TEST(ParallelAspiration, NarrowWindowsCostNoMoreThanFullSearch) {
  const UniformRandomTree g(4, 5, 13, -1000, 1000);
  const auto full = alpha_beta_search(g, 5);
  const sim::CostModel cost;
  const auto r = parallel_aspiration_search(g, 5, 8, 1500, {}, cost);
  // The certifying window is narrower than full width, so its processor
  // cannot examine more nodes than the full-window search.
  EXPECT_LE(r.makespan, cost.of(full.stats));
}

TEST(ParallelAspiration, SpeedupSaturates) {
  // Baudet's limitation: every processor searches at least the minimal
  // tree, so 16 windows are not much better than 4.
  const UniformRandomTree g(4, 6, 17, -1000, 1000);
  const auto p4 = parallel_aspiration_search(g, 6, 4, 1500);
  const auto p16 = parallel_aspiration_search(g, 6, 16, 1500);
  EXPECT_LT(static_cast<double>(p4.makespan) / p16.makespan, 3.0)
      << "speedup from 4 to 16 windows should be far below 4x";
}

TEST(ParallelAspiration, SingleProcessorIsFullWindow) {
  const UniformRandomTree g(3, 4, 23, -60, 60);
  const auto r = parallel_aspiration_search(g, 4, 1, 100);
  const auto full = alpha_beta_search(g, 4);
  EXPECT_EQ(r.value, full.value);
  EXPECT_EQ(r.processors[0].stats.nodes_generated(),
            full.stats.nodes_generated());
}

}  // namespace
}  // namespace ers::baselines
