#include "othello/board.hpp"

#include <gtest/gtest.h>

namespace ers::othello {
namespace {

int sq(const char* name) {
  const int s = square_from_name(name);
  EXPECT_GE(s, 0) << name;
  return s;
}

TEST(Board, InitialPosition) {
  const Board b = initial_board();
  EXPECT_EQ(popcount(b.black), 2);
  EXPECT_EQ(popcount(b.white), 2);
  EXPECT_EQ(b.to_move, Player::Black);
  EXPECT_TRUE(b.black & bit(sq("e4")));
  EXPECT_TRUE(b.black & bit(sq("d5")));
  EXPECT_TRUE(b.white & bit(sq("d4")));
  EXPECT_TRUE(b.white & bit(sq("e5")));
}

TEST(Board, InitialBlackMoves) {
  // Black's four classical first moves: d3, c4, f5, e6.
  const Bitboard moves = legal_moves(initial_board());
  EXPECT_EQ(popcount(moves), 4);
  EXPECT_TRUE(moves & bit(sq("d3")));
  EXPECT_TRUE(moves & bit(sq("c4")));
  EXPECT_TRUE(moves & bit(sq("f5")));
  EXPECT_TRUE(moves & bit(sq("e6")));
}

TEST(Board, ApplyMoveFlipsBracketedDiscs) {
  const Board b = initial_board();
  const Board after = apply_move(b, sq("d3"));
  // d3 placed, d4 flipped to black.
  EXPECT_TRUE(after.black & bit(sq("d3")));
  EXPECT_TRUE(after.black & bit(sq("d4")));
  EXPECT_FALSE(after.white & bit(sq("d4")));
  EXPECT_EQ(popcount(after.black), 4);
  EXPECT_EQ(popcount(after.white), 1);
  EXPECT_EQ(after.to_move, Player::White);
}

TEST(Board, FlipsForIllegalSquareIsEmpty) {
  const Board b = initial_board();
  EXPECT_EQ(flips_for(b.own(), b.opp(), sq("a1")), 0u);        // no bracket
  EXPECT_EQ(flips_for(b.own(), b.opp(), sq("d4")), 0u);        // occupied
  EXPECT_EQ(flips_for(b.own(), b.opp(), sq("e3")), 0u);        // adjacent own
}

TEST(Board, MultiDirectionFlip) {
  // Construct: white discs bracketed in two directions by one black move.
  //   row: B W W _  -> placing at _ flips both W
  //   col: the placed square also brackets vertically.
  Board b;
  b.to_move = Player::Black;
  b.black = bit(sq("a1")) | bit(sq("d4"));
  b.white = bit(sq("b1")) | bit(sq("c1")) | bit(sq("d2")) | bit(sq("d3"));
  const Bitboard f = flips_for(b.own(), b.opp(), sq("d1"));
  EXPECT_EQ(f, bit(sq("b1")) | bit(sq("c1")) | bit(sq("d2")) | bit(sq("d3")));
}

TEST(Board, NoFlipThroughEmptyGap) {
  // B W _ W placing beyond the gap must not flip across it.
  Board b;
  b.to_move = Player::Black;
  b.black = bit(sq("a1"));
  b.white = bit(sq("b1")) | bit(sq("d1"));
  EXPECT_EQ(flips_for(b.own(), b.opp(), sq("e1")), 0u);
  // But placing at c1 (closing the first run) flips only b1.
  EXPECT_EQ(flips_for(b.own(), b.opp(), sq("c1")), bit(sq("b1")));
}

TEST(Board, EdgeRunWithoutBracketDoesNotFlip) {
  // A run of white reaching the board edge with no black behind it.
  Board b;
  b.to_move = Player::Black;
  b.black = 0;
  b.white = bit(sq("a1")) | bit(sq("b1")) | bit(sq("c1"));
  b.black = bit(sq("e4"));  // somewhere irrelevant
  EXPECT_EQ(flips_for(b.own(), b.opp(), sq("d1")), 0u);
}

TEST(Board, PassSwitchesSideOnly) {
  const Board b = initial_board();
  const Board p = apply_pass(b);
  EXPECT_EQ(p.black, b.black);
  EXPECT_EQ(p.white, b.white);
  EXPECT_EQ(p.to_move, Player::White);
}

TEST(Board, GameOverWhenNeitherCanMove) {
  Board b;
  b.black = bit(sq("a1"));
  b.white = bit(sq("h8"));
  b.to_move = Player::Black;
  EXPECT_TRUE(must_pass(b));
  EXPECT_TRUE(is_game_over(b));
}

TEST(Board, DiscDifferenceFromMoverPerspective) {
  Board b;
  b.black = bit(sq("a1")) | bit(sq("a2")) | bit(sq("a3"));
  b.white = bit(sq("h8"));
  b.to_move = Player::Black;
  EXPECT_EQ(disc_difference(b), 2);
  b.to_move = Player::White;
  EXPECT_EQ(disc_difference(b), -2);
}

TEST(Board, PerftMatchesPublishedValues) {
  // Standard Othello perft from the initial position.
  const Board b = initial_board();
  EXPECT_EQ(perft(b, 1), 4u);
  EXPECT_EQ(perft(b, 2), 12u);
  EXPECT_EQ(perft(b, 3), 56u);
  EXPECT_EQ(perft(b, 4), 244u);
  EXPECT_EQ(perft(b, 5), 1396u);
  EXPECT_EQ(perft(b, 6), 8200u);
  EXPECT_EQ(perft(b, 7), 55092u);
}

TEST(Board, PerftDepth8) {
  EXPECT_EQ(perft(initial_board(), 8), 390216u);
}

TEST(Board, AsciiRoundTrip) {
  const Board b = apply_move(initial_board(), sq("f5"));
  const std::string art = to_string(b);
  const Board parsed = board_from_ascii(art, b.to_move);
  EXPECT_EQ(parsed, b);
}

TEST(Board, AsciiShowsLegalMoveMarks) {
  const std::string art = to_string(initial_board(), /*mark_moves=*/true);
  EXPECT_NE(art.find('*'), std::string::npos);
  // Marks parse back as empties.
  const Board parsed = board_from_ascii(art, Player::Black);
  EXPECT_EQ(parsed, initial_board());
}

TEST(Board, OwnOppTrackToMove) {
  Board b = initial_board();
  EXPECT_EQ(b.own(), b.black);
  EXPECT_EQ(b.opp(), b.white);
  b.to_move = Player::White;
  EXPECT_EQ(b.own(), b.white);
  EXPECT_EQ(b.opp(), b.black);
}

TEST(Board, LegalMovesNeverOverlapOccupied) {
  Board b = initial_board();
  for (int i = 0; i < 12; ++i) {
    const Bitboard moves = legal_moves(b);
    EXPECT_EQ(moves & b.occupied(), 0u);
    if (moves == 0) break;
    b = apply_move(b, lsb(moves));
  }
}

TEST(Board, DiscsAreConservedOrGrow) {
  // Each move adds exactly one disc; flips only change color.
  Board b = initial_board();
  for (int i = 0; i < 20; ++i) {
    const Bitboard moves = legal_moves(b);
    if (moves == 0) break;
    const int before = popcount(b.occupied());
    b = apply_move(b, lsb(moves));
    EXPECT_EQ(popcount(b.occupied()), before + 1);
    EXPECT_EQ(b.black & b.white, 0u);
  }
}

}  // namespace
}  // namespace ers::othello
