#include "othello/eval.hpp"

#include <gtest/gtest.h>

#include "othello/positions.hpp"

namespace ers::othello {
namespace {

int sq(const char* name) { return square_from_name(name); }

Board swapped_side(Board b) {
  b.to_move = opponent_of(b.to_move);
  return b;
}

TEST(Eval, AntisymmetricUnderSideSwap) {
  // evaluate(b) == -evaluate(b with the side to move swapped), for live
  // positions along a deterministic game.
  Board b = initial_board();
  for (int i = 0; i < 30; ++i) {
    if (is_game_over(b)) break;
    EXPECT_EQ(evaluate_board(b), -evaluate_board(swapped_side(b)))
        << to_string(b);
    const Bitboard moves = legal_moves(b);
    if (moves == 0) {
      b = apply_pass(b);
      continue;
    }
    b = apply_move(b, lsb(moves));
  }
}

TEST(Eval, InitialPositionIsBalanced) {
  EXPECT_EQ(evaluate_board(initial_board()), 0);
}

TEST(Eval, TerminalUsesExactDiscCount) {
  Board b;
  b.black = bit(sq("a1")) | bit(sq("a2"));
  b.white = bit(sq("h8"));
  b.to_move = Player::Black;
  ASSERT_TRUE(is_game_over(b));
  const auto& w = default_weights();
  EXPECT_EQ(evaluate_board(b), 1 * w.terminal_scale);
  b.to_move = Player::White;
  EXPECT_EQ(evaluate_board(b), -1 * w.terminal_scale);
}

TEST(Eval, TerminalDominatesHeuristicRange) {
  // A one-disc win must outweigh any heuristic advantage.
  Board b;
  b.black = bit(sq("c3")) | bit(sq("c4"));
  b.white = bit(sq("f6"));
  b.to_move = Player::Black;
  ASSERT_TRUE(is_game_over(b));
  const Value win = evaluate_board(b);
  // Crude bound on the heuristic magnitude: all features maxed out.
  EXPECT_GT(win, 64 * 100 / 2);
  EXPECT_GE(win, default_weights().terminal_scale);
}

TEST(Eval, CornersAreValuable) {
  // Same material, but one side holds a corner: corner holder evaluates
  // higher (from its own perspective).
  Board with_corner;
  with_corner.black = bit(sq("a1")) | bit(sq("d4"));
  with_corner.white = bit(sq("d5")) | bit(sq("e4"));
  with_corner.to_move = Player::Black;

  Board without_corner = with_corner;
  without_corner.black = bit(sq("c3")) | bit(sq("d4"));

  EXPECT_GT(evaluate_board(with_corner), evaluate_board(without_corner));
}

TEST(Eval, PositionalScoreSumsWeights) {
  EXPECT_EQ(positional_score(bit(sq("a1"))), 100);
  EXPECT_EQ(positional_score(bit(sq("b2"))), -50);
  EXPECT_EQ(positional_score(bit(sq("a1")) | bit(sq("b2"))), 50);
  EXPECT_EQ(positional_score(0), 0);
}

TEST(Eval, SquareWeightTableIsSymmetric) {
  // The table must be symmetric under horizontal/vertical mirror and
  // transpose so the evaluator has no orientation bias.
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      const int w = kSquareWeights[r * 8 + c];
      EXPECT_EQ(w, kSquareWeights[r * 8 + (7 - c)]);
      EXPECT_EQ(w, kSquareWeights[(7 - r) * 8 + c]);
      EXPECT_EQ(w, kSquareWeights[c * 8 + r]);
    }
  }
}

TEST(Eval, FrontierCountsEmptiesTouchingDiscs) {
  Board b;
  b.black = bit(sq("d4"));
  b.white = 0;
  // All 8 neighbors of d4 are empty.
  EXPECT_EQ(frontier_count(b.black, b.empty()), 8);
}

TEST(Eval, ValuesStayWithinValueDomain) {
  Board b = initial_board();
  for (int i = 0; i < 60; ++i) {
    if (is_game_over(b)) break;
    EXPECT_TRUE(is_valid_value(evaluate_board(b)));
    const Bitboard moves = legal_moves(b);
    b = moves ? apply_move(b, lsb(moves)) : apply_pass(b);
  }
}

}  // namespace
}  // namespace ers::othello
