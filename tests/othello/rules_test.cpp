// Extended Othello rules coverage: forced passes, endgames, symmetry
// invariance of search values, and perft from the experiment positions.

#include <gtest/gtest.h>

#include <vector>

#include "othello/game.hpp"
#include "othello/positions.hpp"
#include "search/alpha_beta.hpp"
#include "search/negmax.hpp"

namespace ers::othello {
namespace {

int sq(const char* name) { return square_from_name(name); }

/// Mirror a bitboard horizontally (file a <-> file h).
Bitboard mirror_files(Bitboard b) {
  Bitboard out = 0;
  while (b != 0) {
    const int s = pop_lsb(b);
    const int rank = s / 8, file = s % 8;
    out |= bit(rank * 8 + (7 - file));
    }
  return out;
}

TEST(OthelloRules, ForcedPassProducesSinglePassChild) {
  // Find a genuine forced-pass position (one side moveless, game live) by
  // playing deterministic greedy lines from the start; real games reach
  // such positions regularly.  The adapter must then produce exactly one
  // child: the pass.
  Board found;
  bool have = false;
  for (std::uint64_t salt = 0; salt < 64 && !have; ++salt) {
    Board b = initial_board();
    for (int ply = 0; ply < 70; ++ply) {
      if (is_game_over(b)) break;
      Bitboard moves = legal_moves(b);
      if (moves == 0) {
        found = b;
        have = true;
        break;
      }
      // Pick the (salted) k-th legal move, deterministically.
      const int n = popcount(moves);
      int k = static_cast<int>((salt + static_cast<std::uint64_t>(ply)) %
                               static_cast<std::uint64_t>(n));
      int sqr = -1;
      while (k-- >= 0) sqr = pop_lsb(moves);
      b = apply_move(b, sqr);
    }
  }
  ASSERT_TRUE(have) << "no forced-pass position found in 64 greedy lines";
  ASSERT_FALSE(is_game_over(found));
  ASSERT_TRUE(must_pass(found));
  const OthelloGame g(found);
  std::vector<OthelloGame::Position> kids;
  g.generate_children(g.root(), kids);
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(kids[0].board.to_move, opponent_of(found.to_move));
  EXPECT_EQ(kids[0].board.black, found.black);
  EXPECT_EQ(kids[0].board.white, found.white);
}

TEST(OthelloRules, DoublePassEndsGameInSearch) {
  // A sparse, interlock-free board: neither side can move; the position is
  // terminal and evaluates to the exact scaled disc difference.
  Board b;
  b.black = bit(sq("a1")) | bit(sq("c5"));
  b.white = bit(sq("h8"));
  b.to_move = Player::White;
  ASSERT_TRUE(is_game_over(b));
  const OthelloGame g(b);
  const auto r = negmax_search(g, 6);
  EXPECT_EQ(r.value, -1 * default_weights().terminal_scale);
  EXPECT_EQ(r.stats.leaves_evaluated, 1u);
}

TEST(OthelloRules, EndgameExactPlay) {
  // Near-full board with a couple of empties: a deep search resolves the
  // game exactly and the value is a scaled final disc count.
  Board b = initial_board();
  // Play a long deterministic line first.
  for (int i = 0; i < 52; ++i) {
    if (is_game_over(b)) break;
    const Bitboard moves = legal_moves(b);
    if (moves == 0) {
      b = apply_pass(b);
      continue;
    }
    b = apply_move(b, lsb(moves));
  }
  if (is_game_over(b)) GTEST_SKIP() << "line ended early";
  const OthelloGame g(b);
  const auto r = alpha_beta_search(g, 12);  // enough to hit the end
  EXPECT_EQ(r.value % default_weights().terminal_scale, 0)
      << "endgame value must be an exact scaled disc difference";
}

TEST(OthelloRules, SearchValueInvariantUnderMirror) {
  // Mirroring the board across files is a symmetry of the rules and of the
  // evaluator (its weight table is symmetric), so search values must match.
  const Board b = paper_position(1);
  Board m;
  m.black = mirror_files(b.black);
  m.white = mirror_files(b.white);
  m.to_move = b.to_move;
  const OthelloGame g(b), gm(m);
  for (int depth : {2, 3, 4}) {
    EXPECT_EQ(negmax_search(g, depth).value, negmax_search(gm, depth).value)
        << "depth " << depth;
  }
}

TEST(OthelloRules, PerftFromPaperPositionsConsistency) {
  // perft(pos, k+1) == sum over children of perft(child, k) — including
  // pass children.
  for (int idx = 1; idx <= 3; ++idx) {
    const Board b = paper_position(idx);
    const OthelloGame g(b);
    std::vector<OthelloGame::Position> kids;
    g.generate_children(g.root(), kids);
    std::uint64_t total = 0;
    for (const auto& k : kids) total += perft(k.board, 2);
    EXPECT_EQ(perft(b, 3), total) << "O" << idx;
  }
}

TEST(OthelloRules, EvaluatorMirrorSymmetry) {
  for (int idx = 1; idx <= 3; ++idx) {
    const Board b = paper_position(idx);
    Board m;
    m.black = mirror_files(b.black);
    m.white = mirror_files(b.white);
    m.to_move = b.to_move;
    EXPECT_EQ(evaluate_board(b), evaluate_board(m)) << "O" << idx;
  }
}

TEST(OthelloRules, FullGameAlwaysTerminates) {
  // Greedy self-play from the start must reach a game-over state within the
  // theoretical bound (60 placements + passes).
  Board b = initial_board();
  int plies = 0;
  while (!is_game_over(b) && plies < 130) {
    const Bitboard moves = legal_moves(b);
    b = moves == 0 ? apply_pass(b) : apply_move(b, lsb(moves));
    ++plies;
  }
  EXPECT_TRUE(is_game_over(b)) << "no termination after " << plies << " plies";
  EXPECT_LE(popcount(b.occupied()), 64);
}

}  // namespace
}  // namespace ers::othello
