#include "othello/positions.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "othello/game.hpp"

namespace ers::othello {
namespace {

TEST(Positions, PaperPositionsAreWhiteToMove) {
  // Paper §7: "It is WHITE's turn to move in each configuration."
  for (int i = 1; i <= 3; ++i) {
    const Board b = paper_position(i);
    EXPECT_EQ(b.to_move, Player::White) << "O" << i;
  }
}

TEST(Positions, PaperPositionsAreMidGameAndLive) {
  static constexpr int kExpectedDiscs[3] = {4 + 11, 4 + 15, 4 + 19};
  for (int i = 1; i <= 3; ++i) {
    const Board b = paper_position(i);
    EXPECT_FALSE(is_game_over(b)) << "O" << i;
    // No passes occurred during seeded self-play, so disc count is exact.
    EXPECT_EQ(popcount(b.occupied()), kExpectedDiscs[i - 1]) << "O" << i;
    EXPECT_NE(legal_moves(b), 0u) << "O" << i;
  }
}

TEST(Positions, PaperPositionsAreDistinct) {
  const Board a = paper_position(1);
  const Board b = paper_position(2);
  const Board c = paper_position(3);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(b == c);
  EXPECT_FALSE(a == c);
}

TEST(Positions, PaperPositionsAreDeterministic) {
  for (int i = 1; i <= 3; ++i) EXPECT_EQ(paper_position(i), paper_position(i));
}

TEST(Positions, SelfplayRespectsRules) {
  // Every prefix of the self-play line must be reachable: discs grow by one
  // per ply and stay disjoint.
  for (int plies = 1; plies <= 19; ++plies) {
    const Board b = selfplay_position(plies, 0x22u);
    EXPECT_EQ(b.black & b.white, 0u);
    EXPECT_LE(popcount(b.occupied()), 4 + plies);
  }
}

TEST(Positions, SevenPlyTreesAreSearchable) {
  // The experiments search these positions to 7 ply; make sure the subtree
  // is nontrivial (branching exists at the root).
  for (int i = 1; i <= 3; ++i) {
    const OthelloGame g(paper_position(i));
    std::vector<OthelloGame::Position> kids;
    g.generate_children(g.root(), kids);
    EXPECT_GE(kids.size(), 2u) << "O" << i;
  }
}

}  // namespace
}  // namespace ers::othello
