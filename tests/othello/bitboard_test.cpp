#include "othello/bitboard.hpp"

#include <gtest/gtest.h>

namespace ers::othello {
namespace {

TEST(Bitboard, SquareNamesRoundTrip) {
  for (int sq = 0; sq < 64; ++sq) {
    const std::string name = square_name(sq);
    EXPECT_EQ(square_from_name(name.c_str()), sq) << name;
  }
}

TEST(Bitboard, SquareFromNameRejectsMalformed) {
  EXPECT_EQ(square_from_name("i1"), -1);
  EXPECT_EQ(square_from_name("a9"), -1);
  EXPECT_EQ(square_from_name("a"), -1);
  EXPECT_EQ(square_from_name("a1x"), -1);
  EXPECT_EQ(square_from_name(nullptr), -1);
}

TEST(Bitboard, KnownSquares) {
  EXPECT_EQ(square_from_name("a1"), 0);
  EXPECT_EQ(square_from_name("h1"), 7);
  EXPECT_EQ(square_from_name("a8"), 56);
  EXPECT_EQ(square_from_name("h8"), 63);
  EXPECT_EQ(square_from_name("d4"), 27);
  EXPECT_EQ(square_from_name("e5"), 36);
}

TEST(Bitboard, EastWestMaskWraparound) {
  // h-file pieces must not wrap to the a-file of the next rank.
  EXPECT_EQ(east(bit(square_from_name("h1"))), 0u);
  EXPECT_EQ(west(bit(square_from_name("a1"))), 0u);
  EXPECT_EQ(east(bit(square_from_name("g5"))), bit(square_from_name("h5")));
  EXPECT_EQ(west(bit(square_from_name("b5"))), bit(square_from_name("a5")));
}

TEST(Bitboard, NorthSouthShiftOffBoard) {
  EXPECT_EQ(north(bit(square_from_name("e8"))), 0u);
  EXPECT_EQ(south(bit(square_from_name("e1"))), 0u);
  EXPECT_EQ(north(bit(square_from_name("e4"))), bit(square_from_name("e5")));
  EXPECT_EQ(south(bit(square_from_name("e4"))), bit(square_from_name("e3")));
}

TEST(Bitboard, DiagonalShifts) {
  const Bitboard e4 = bit(square_from_name("e4"));
  EXPECT_EQ(north_east(e4), bit(square_from_name("f5")));
  EXPECT_EQ(north_west(e4), bit(square_from_name("d5")));
  EXPECT_EQ(south_east(e4), bit(square_from_name("f3")));
  EXPECT_EQ(south_west(e4), bit(square_from_name("d3")));
  // Corners fall off in the away directions.
  EXPECT_EQ(north_east(bit(square_from_name("h8"))), 0u);
  EXPECT_EQ(south_west(bit(square_from_name("a1"))), 0u);
}

TEST(Bitboard, NeighborsOfCenterAndCorner) {
  EXPECT_EQ(popcount(neighbors(bit(square_from_name("e4")))), 8);
  EXPECT_EQ(popcount(neighbors(bit(square_from_name("a1")))), 3);
  EXPECT_EQ(popcount(neighbors(bit(square_from_name("a4")))), 5);
}

TEST(Bitboard, PopLsbIteratesAllBits) {
  Bitboard b = bit(3) | bit(17) | bit(62);
  EXPECT_EQ(pop_lsb(b), 3);
  EXPECT_EQ(pop_lsb(b), 17);
  EXPECT_EQ(pop_lsb(b), 62);
  EXPECT_EQ(b, 0u);
}

TEST(Bitboard, CornersMask) {
  EXPECT_EQ(kCorners, bit(square_from_name("a1")) | bit(square_from_name("h1")) |
                          bit(square_from_name("a8")) | bit(square_from_name("h8")));
}

}  // namespace
}  // namespace ers::othello
