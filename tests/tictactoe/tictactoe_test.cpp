#include "tictactoe/tictactoe.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ers {
namespace {

std::uint16_t bit(int i) { return static_cast<std::uint16_t>(1u << i); }

// Exhaustive negmax over the full game (no depth limit is ever hit: the
// board fills in at most 9 plies).
Value solve(const TicTacToe& g, const TicTacToe::Position& p,
            std::uint64_t* nodes = nullptr) {
  if (nodes) ++*nodes;
  std::vector<TicTacToe::Position> kids;
  g.generate_children(p, kids);
  if (kids.empty()) return g.evaluate(p);
  Value m = -kValueInf;
  for (const auto& k : kids) m = std::max(m, negate(solve(g, k, nodes)));
  return m;
}

TEST(TicTacToe, RootHasNineMoves) {
  const TicTacToe g;
  std::vector<TicTacToe::Position> kids;
  g.generate_children(g.root(), kids);
  EXPECT_EQ(kids.size(), 9u);
}

TEST(TicTacToe, RootIsDraw) {
  // Paper Figure 1: the value 0 at the root indicates the game is a draw
  // under optimal play.
  const TicTacToe g;
  std::uint64_t nodes = 0;
  EXPECT_EQ(solve(g, g.root(), &nodes), 0);
  // The full tic-tac-toe tree has well under a million positions.
  EXPECT_LT(nodes, 600'000u);
  EXPECT_GT(nodes, 100'000u);
}

TEST(TicTacToe, CompletedLineEndsGame) {
  // X on squares 0,1,2 (bottom row) is a win; position is terminal and is a
  // loss from the opponent's (mover's) perspective.
  TicTacToe::Position p;
  p.waiting = 0b000000111;  // X just completed a row
  p.to_move = 0b000011000;
  const TicTacToe g;
  std::vector<TicTacToe::Position> kids;
  g.generate_children(p, kids);
  EXPECT_TRUE(kids.empty());
  EXPECT_EQ(g.evaluate(p), TicTacToe::kLoss);
}

TEST(TicTacToe, FullBoardNoLineIsDraw) {
  // X: 0,1,5,6,8 ; O: 2,3,4,7 — a standard drawn final board.
  //   X X O
  //   O O X
  //   X O X
  TicTacToe::Position p;
  p.waiting = static_cast<std::uint16_t>(bit(0) | bit(1) | bit(5) | bit(6) | bit(8));
  p.to_move = static_cast<std::uint16_t>(bit(2) | bit(3) | bit(4) | bit(7));
  const TicTacToe g;
  ASSERT_FALSE(TicTacToe::has_line(p.waiting));
  ASSERT_FALSE(TicTacToe::has_line(p.to_move));
  std::vector<TicTacToe::Position> kids;
  g.generate_children(p, kids);
  EXPECT_TRUE(kids.empty());
  EXPECT_EQ(g.evaluate(p), 0);
}

TEST(TicTacToe, HasLineDetectsAllEightLines) {
  const std::uint16_t lines[] = {0007, 0070, 0700, 0111, 0222, 0444, 0421, 0124};
  for (const auto line : lines) {
    EXPECT_TRUE(TicTacToe::has_line(line));
  }
  EXPECT_FALSE(TicTacToe::has_line(0));
  EXPECT_FALSE(TicTacToe::has_line(0b000000011));
  EXPECT_FALSE(TicTacToe::has_line(0b101000010));
}

TEST(TicTacToe, ImmediateWinIsFound) {
  // X to move with two in a row and the third square open: value is a win.
  TicTacToe::Position p;
  p.to_move = static_cast<std::uint16_t>(bit(0) | bit(1));  // X on 0,1
  p.waiting = static_cast<std::uint16_t>(bit(3) | bit(4));  // O on 3,4
  const TicTacToe g;
  EXPECT_EQ(solve(g, p), TicTacToe::kWin);
}

TEST(TicTacToe, ForcedLossDetected) {
  // O to move; X (waiting) threatens two lines at once: 0,1 row and 0,3
  // column with both 2 and 6 open.  Whatever O blocks, X wins.
  TicTacToe::Position p;
  p.waiting = static_cast<std::uint16_t>(bit(0) | bit(1) | bit(3));
  p.to_move = static_cast<std::uint16_t>(bit(4) | bit(8));
  const TicTacToe g;
  EXPECT_EQ(solve(g, p), TicTacToe::kLoss);
}

TEST(TicTacToe, HeuristicIsAntisymmetric) {
  TicTacToe::Position p;
  p.to_move = static_cast<std::uint16_t>(bit(4));          // center
  p.waiting = static_cast<std::uint16_t>(bit(0));          // corner
  TicTacToe::Position swapped{p.waiting, p.to_move};
  const TicTacToe g;
  EXPECT_EQ(g.evaluate(p), negate(g.evaluate(swapped)));
}

TEST(TicTacToe, MoveCountDecreasesWithOccupancy) {
  const TicTacToe g;
  TicTacToe::Position p;
  p.to_move = bit(0);
  p.waiting = bit(4);
  std::vector<TicTacToe::Position> kids;
  g.generate_children(p, kids);
  EXPECT_EQ(kids.size(), 7u);
}

}  // namespace
}  // namespace ers
