// The experiment harness: Table 3 registry contents and the invariants of
// the figure drivers (exact values, sane efficiency, determinism).

#include <gtest/gtest.h>

#include <variant>

#include "harness/experiment.hpp"
#include "harness/tree_registry.hpp"
#include "search/negmax.hpp"

namespace ers::harness {
namespace {

TEST(TreeRegistry, ContainsTheSixTable3Trees) {
  const auto trees = table3_trees();
  ASSERT_EQ(trees.size(), 6u);
  const char* names[] = {"R1", "R2", "R3", "O1", "O2", "O3"};
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(trees[i].name, names[i]);
}

TEST(TreeRegistry, Table3Configuration) {
  const auto r1 = tree_by_name("R1");
  EXPECT_EQ(r1.engine.search_depth, 10);
  EXPECT_EQ(r1.engine.serial_depth, 7);
  EXPECT_FALSE(r1.engine.ordering.sort_by_static_value);
  const auto r3 = tree_by_name("R3");
  EXPECT_EQ(r3.engine.search_depth, 7);
  EXPECT_EQ(r3.engine.serial_depth, 5);
  const auto o1 = tree_by_name("O1");
  EXPECT_TRUE(o1.is_othello());
  EXPECT_EQ(o1.engine.search_depth, 7);
  EXPECT_EQ(o1.engine.serial_depth, 5);
  EXPECT_TRUE(o1.engine.ordering.sort_by_static_value);
}

TEST(TreeRegistry, ScaleReducesDepthsConsistently) {
  const auto r1 = tree_by_name("R1", 3);
  EXPECT_EQ(r1.engine.search_depth, 7);
  EXPECT_EQ(r1.engine.serial_depth, 4);
  // Scaling never produces invalid configurations.
  for (int scale = 0; scale < 12; ++scale) {
    for (const auto& t : table3_trees(scale)) {
      EXPECT_GE(t.engine.search_depth, 1) << t.name << " scale " << scale;
      EXPECT_GE(t.engine.serial_depth, 0);
      EXPECT_LE(t.engine.serial_depth, t.engine.search_depth);
    }
  }
}

TEST(TreeRegistry, RandomTreesUseDistinctSeeds) {
  const auto r1 = std::get<UniformRandomTree>(tree_by_name("R1").game);
  const auto r2 = std::get<UniformRandomTree>(tree_by_name("R2").game);
  EXPECT_NE(r1.seed(), r2.seed());
}

TEST(Experiment, SerialBaselineValuesAreExact) {
  const auto tree = tree_by_name("R3", /*scale=*/3);
  const auto serial = run_serial_baselines(tree);
  const Value oracle = std::visit(
      [&](const auto& g) { return negmax_search(g, tree.engine.search_depth).value; },
      tree.game);
  EXPECT_EQ(serial.value, oracle);
  EXPECT_GT(serial.alpha_beta_cost, 0u);
  EXPECT_GT(serial.er_cost, 0u);
}

TEST(Experiment, AlphaBetaEfficiencyReferenceIsAtMostOne) {
  for (const auto& t : table3_trees(/*scale=*/3)) {
    const auto serial = run_serial_baselines(t);
    EXPECT_LE(serial.alpha_beta_efficiency(), 1.0) << t.name;
    EXPECT_GT(serial.alpha_beta_efficiency(), 0.0) << t.name;
  }
}

TEST(Experiment, ParallelPointsAreExactAndConsistent) {
  const auto tree = tree_by_name("O1", /*scale=*/2);
  const auto serial = run_serial_baselines(tree);
  for (int p : {1, 4, 16}) {
    const auto pt = run_parallel_point(tree, p, serial);
    EXPECT_EQ(pt.value, serial.value) << "p=" << p;
    EXPECT_GT(pt.speedup, 0.0);
    EXPECT_LT(pt.efficiency, 1.5) << "anomalous super-linear efficiency";
    EXPECT_EQ(pt.processors, p);
    EXPECT_EQ(pt.nodes_generated, pt.engine.search.nodes_generated());
  }
}

TEST(Experiment, Deterministic) {
  const auto tree = tree_by_name("R3", /*scale=*/3);
  const auto serial = run_serial_baselines(tree);
  const auto a = run_parallel_point(tree, 8, serial);
  const auto b = run_parallel_point(tree, 8, serial);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.nodes_generated, b.nodes_generated);
}

TEST(Experiment, SpeculationOverrideRespected) {
  const auto tree = tree_by_name("R3", /*scale=*/2);
  const auto serial = run_serial_baselines(tree);
  core::SpeculationConfig off;
  off.parallel_refutation = false;
  off.multiple_e_children = false;
  off.early_e_child_choice = false;
  const auto pt = run_parallel_point(tree, 16, serial, {}, &off);
  EXPECT_EQ(pt.value, serial.value);
  EXPECT_EQ(pt.engine.promotions_speculative, 0u);
}

TEST(Experiment, FigureProcessorCountsMatchPaperRange) {
  const auto counts = figure_processor_counts();
  EXPECT_EQ(counts.front(), 1);
  EXPECT_EQ(counts.back(), 16);
}

}  // namespace
}  // namespace ers::harness
