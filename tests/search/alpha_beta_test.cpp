#include "search/alpha_beta.hpp"

#include <gtest/gtest.h>

#include <array>

#include "gametree/explicit_tree.hpp"
#include "randomtree/random_tree.hpp"
#include "search/negmax.hpp"

namespace ers {
namespace {

// Paper Figure 2(a): a shallow cutoff.  A's first child pins A >= 7; B's
// first child shows B >= -5, so B can no longer affect A and B's remaining
// subtree is cut off.
ExplicitTree shallow_cutoff_tree() {
  ExplicitTree t;
  t.add_child(0, -7);                   // A's first child: A >= 7
  const auto b = t.add_child(0);        // node B
  t.add_child(b, 5);                    // B's first child: B >= -5
  t.add_child(b, -100);                 // must never be visited
  return t;
}

// Paper Figure 2(b): a deep cutoff.  The bound established at A (two plies
// up) cuts D's remaining children; shallow alpha-beta misses this cutoff.
ExplicitTree deep_cutoff_tree() {
  ExplicitTree t;
  t.add_child(0, -7);                   // A's first child: A >= 7
  const auto b = t.add_child(0);        // B
  const auto c = t.add_child(b);        // C
  t.add_child(c, -4);                   // C's first child
  const auto d = t.add_child(c);        // D
  t.add_child(d, 6);                    // D's first child
  t.add_child(d, -50);                  // cut by the deep bound only
  return t;
}

TEST(AlphaBeta, Figure2aShallowCutoff) {
  const auto t = shallow_cutoff_tree();
  const auto ab = alpha_beta_search(t, 10);
  const auto nm = negmax_search(t, 10);
  EXPECT_EQ(ab.value, 7);
  EXPECT_EQ(nm.value, 7);
  EXPECT_EQ(nm.stats.leaves_evaluated, 3u);
  EXPECT_EQ(ab.stats.leaves_evaluated, 2u) << "B's second child must be cut";
}

TEST(AlphaBeta, Figure2bDeepCutoffRequiresDeepBounds) {
  const auto t = deep_cutoff_tree();
  const auto deep = alpha_beta_search(t, 10);
  const auto shallow = alpha_beta_shallow_search(t, 10);
  EXPECT_EQ(deep.value, 7);
  EXPECT_EQ(shallow.value, 7);
  EXPECT_EQ(deep.stats.leaves_evaluated, 3u)
      << "full alpha-beta achieves the deep cutoff";
  EXPECT_EQ(shallow.stats.leaves_evaluated, 4u)
      << "without deep cutoffs D's second child is examined";
}

TEST(AlphaBeta, EqualsNegmaxOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const UniformRandomTree g(3, 4, seed, -20, 20);
    const auto ab = alpha_beta_search(g, 4);
    const auto nm = negmax_search(g, 4);
    EXPECT_EQ(ab.value, nm.value) << "seed=" << seed;
    EXPECT_LE(ab.stats.leaves_evaluated, nm.stats.leaves_evaluated);
  }
}

TEST(AlphaBeta, ShallowNeverBeatsDeep) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const UniformRandomTree g(4, 4, seed + 100, -50, 50);
    const auto deep = alpha_beta_search(g, 4);
    const auto shallow = alpha_beta_shallow_search(g, 4);
    EXPECT_EQ(deep.value, shallow.value) << "seed=" << seed;
    EXPECT_LE(deep.stats.leaves_evaluated, shallow.stats.leaves_evaluated)
        << "seed=" << seed;
  }
}

TEST(AlphaBeta, FailHighAgainstNarrowWindow) {
  const std::array<Value, 4> leaves{-9, -8, -7, -6};
  const auto t = ExplicitTree::complete(2, 2, leaves);
  const Value exact = t.negmax_value();
  // Window entirely below the true value: fail high (result >= beta).
  const auto r = alpha_beta_search(t, 2, {}, Window{exact - 10, exact - 5});
  EXPECT_GE(r.value, exact - 5);
}

TEST(AlphaBeta, FailLowAgainstNarrowWindow) {
  const std::array<Value, 4> leaves{-9, -8, -7, -6};
  const auto t = ExplicitTree::complete(2, 2, leaves);
  const Value exact = t.negmax_value();
  // Window entirely above the true value: fail low (result <= alpha).
  const auto r = alpha_beta_search(t, 2, {}, Window{exact + 5, exact + 10});
  EXPECT_LE(r.value, exact + 5);
}

TEST(AlphaBeta, ExactWithinWindow) {
  const std::array<Value, 4> leaves{-9, 8, 7, -6};
  const auto t = ExplicitTree::complete(2, 2, leaves);
  const Value exact = t.negmax_value();
  const auto r = alpha_beta_search(t, 2, {}, Window{exact - 3, exact + 3});
  EXPECT_EQ(r.value, exact);
}

TEST(AlphaBeta, NarrowerWindowNeverExpandsMore) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const UniformRandomTree g(3, 5, seed + 7, -100, 100);
    const Value exact = negmax_search(g, 5).value;
    const auto full = alpha_beta_search(g, 5);
    const auto narrow =
        alpha_beta_search(g, 5, {}, Window{exact - 1, exact + 1});
    EXPECT_LE(narrow.stats.leaves_evaluated, full.stats.leaves_evaluated)
        << "seed=" << seed;
    EXPECT_EQ(narrow.value, exact);
  }
}

TEST(AlphaBeta, SortingImprovesOrReequalsPruning) {
  // On strongly-ordered-by-static-value trees, sorting should not hurt node
  // counts (it costs sort_evals instead).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const UniformRandomTree g(4, 4, seed + 55, -100, 100);
    OrderingPolicy sorted{.sort_by_static_value = true, .max_sort_ply = 99};
    const auto plain = alpha_beta_search(g, 4);
    const auto with_sort = alpha_beta_search(g, 4, sorted);
    EXPECT_EQ(plain.value, with_sort.value);
    EXPECT_GT(with_sort.stats.sort_evals, 0u);
    EXPECT_EQ(plain.stats.sort_evals, 0u);
  }
}

TEST(AlphaBeta, DegenerateUnaryChain) {
  ExplicitTree t;
  auto a = t.add_child(0);
  auto b = t.add_child(a);
  t.add_child(b, -9);
  EXPECT_EQ(alpha_beta_search(t, 10).value, 9);
  EXPECT_EQ(alpha_beta_shallow_search(t, 10).value, 9);
}

TEST(AlphaBeta, AllEqualLeavesStillCorrect) {
  const std::array<Value, 16> leaves{};  // all zero
  const auto t = ExplicitTree::complete(4, 2, leaves);
  EXPECT_EQ(alpha_beta_search(t, 2).value, 0);
  EXPECT_EQ(alpha_beta_shallow_search(t, 2).value, 0);
}

TEST(AlphaBeta, ExtremeValuesNearDomainBound) {
  ExplicitTree t;
  t.add_child(0, kValueMax);
  t.add_child(0, -kValueMax);
  const auto r = alpha_beta_search(t, 1);
  EXPECT_EQ(r.value, kValueMax);
}

}  // namespace
}  // namespace ers
