#include "search/ttable.hpp"

#include <gtest/gtest.h>

#include "othello/game.hpp"
#include "othello/positions.hpp"
#include "othello/zobrist.hpp"
#include "randomtree/random_tree.hpp"
#include "search/alpha_beta.hpp"
#include "search/negmax.hpp"
#include "util/rng.hpp"

namespace ers {
namespace {

auto othello_hasher() {
  return [](const othello::OthelloGame::Position& p) {
    return othello::zobrist_hash(p.board);
  };
}

auto random_tree_hasher() {
  return [](const UniformRandomTree::Position& p) { return p.hash; };
}

TEST(TranspositionTable, StoreAndProbe) {
  TranspositionTable t(8);
  EXPECT_EQ(t.capacity(), 256u);
  EXPECT_EQ(t.probe(42), nullptr);
  t.store(42, 7, 3, BoundKind::kExact);
  const auto* e = t.probe(42);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 7);
  EXPECT_EQ(e->depth, 3);
  EXPECT_EQ(e->bound, BoundKind::kExact);
}

TEST(TranspositionTable, DepthPreferredReplacement) {
  TranspositionTable t(4);
  const std::uint64_t a = 5;
  const std::uint64_t b = 5 + 16;  // same slot (16 entries), different key
  t.store(a, 1, 6, BoundKind::kExact);
  t.store(b, 2, 3, BoundKind::kExact);  // shallower: must not evict a
  ASSERT_NE(t.probe(a), nullptr);
  EXPECT_EQ(t.probe(b), nullptr);
  t.store(b, 2, 7, BoundKind::kExact);  // deeper: evicts
  EXPECT_EQ(t.probe(a), nullptr);
  ASSERT_NE(t.probe(b), nullptr);
}

TEST(TranspositionTable, SameKeyAlwaysRefreshes) {
  TranspositionTable t(4);
  t.store(9, 1, 6, BoundKind::kExact);
  t.store(9, 2, 2, BoundKind::kLower);  // same position, fresher result
  const auto* e = t.probe(9);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 2);
}

TEST(TranspositionTable, ClearEmptiesTable) {
  TranspositionTable t(4);
  t.store(1, 1, 1, BoundKind::kExact);
  t.clear();
  EXPECT_EQ(t.probe(1), nullptr);
}

TEST(TranspositionTable, NewSearchAgesStaleEntries) {
  TranspositionTable t(4);
  const std::uint64_t a = 5;
  const std::uint64_t b = 5 + 16;  // same slot, different key
  t.store(a, 1, 9, BoundKind::kExact);
  // Within one generation the deep entry is protected...
  t.store(b, 2, 1, BoundKind::kExact);
  EXPECT_NE(t.probe(a), nullptr);
  // ...but after new_search() a shallow fresh store may evict it, so a deep
  // relic can never permanently squat on its slot.
  t.new_search();
  EXPECT_NE(t.probe(a), nullptr);  // still probeable until evicted
  t.store(b, 2, 1, BoundKind::kExact);
  EXPECT_EQ(t.probe(a), nullptr);
  const auto* e = t.probe(b);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 2);
}

TEST(Zobrist, IncrementalHashMatchesFullRecompute) {
  // Walk seeded playouts; Board::hash is maintained move by move and must
  // always equal the from-scratch hash of the resulting position.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    othello::Board b = othello::initial_board();
    std::uint64_t rng = seed;
    for (int step = 0; step < 40 && !othello::is_game_over(b); ++step) {
      auto moves = othello::legal_moves(b);
      if (moves == 0) {
        b = othello::apply_pass(b);
      } else {
        std::vector<int> squares;
        while (moves != 0) squares.push_back(othello::pop_lsb(moves));
        rng = splitmix64(rng);
        b = othello::apply_move(b, squares[rng % squares.size()]);
      }
      ASSERT_EQ(b.hash, othello::zobrist_hash(b)) << "seed=" << seed
                                                  << " step=" << step;
    }
  }
}

TEST(Zobrist, SideToMoveMatters) {
  const othello::Board b = othello::initial_board();
  EXPECT_NE(othello::zobrist_hash(b), othello::zobrist_hash(othello::apply_pass(b)));
}

TEST(Zobrist, DistinctPositionsDistinctHashes) {
  // All depth-3 positions from the start: no collisions expected.
  std::vector<othello::Board> frontier{othello::initial_board()}, next;
  for (int d = 0; d < 3; ++d) {
    for (const auto& b : frontier) {
      auto moves = othello::legal_moves(b);
      while (moves != 0) next.push_back(othello::apply_move(b, othello::pop_lsb(moves)));
    }
    frontier.swap(next);
    next.clear();
  }
  std::vector<std::uint64_t> hashes;
  for (const auto& b : frontier) hashes.push_back(othello::zobrist_hash(b));
  std::sort(hashes.begin(), hashes.end());
  // Transpositions exist (same position via different orders) but the
  // number of *distinct boards* must match the number of distinct hashes.
  std::sort(frontier.begin(), frontier.end(), [](const auto& x, const auto& y) {
    return std::tie(x.black, x.white) < std::tie(y.black, y.white);
  });
  const auto boards_unique =
      std::unique(frontier.begin(), frontier.end()) - frontier.begin();
  const auto hashes_unique = std::unique(hashes.begin(), hashes.end()) - hashes.begin();
  EXPECT_EQ(boards_unique, hashes_unique);
}

TEST(TtAlphaBeta, RootValueMatchesPlainAlphaBetaOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const UniformRandomTree g(3, 5, seed, -50, 50);
    TranspositionTable table(12);
    const auto tt = tt_alpha_beta_search(g, 5, random_tree_hasher(), &table);
    EXPECT_EQ(tt.value, negmax_search(g, 5).value) << seed;
  }
}

TEST(TtAlphaBeta, RootValueMatchesOnOthello) {
  for (int idx = 1; idx <= 3; ++idx) {
    const othello::OthelloGame g(othello::paper_position(idx));
    TranspositionTable table(16);
    const auto tt = tt_alpha_beta_search(g, 5, othello_hasher(), &table);
    EXPECT_EQ(tt.value, alpha_beta_search(g, 5).value) << "O" << idx;
  }
}

TEST(TtAlphaBeta, TranspositionsReduceNodesOnOthello) {
  // Othello transposes (different move orders reach the same board), so the
  // table must produce hits and expand fewer nodes than plain alpha-beta.
  const othello::OthelloGame g(othello::paper_position(1));
  TranspositionTable table(18);
  const auto tt = tt_alpha_beta_search(g, 6, othello_hasher(), &table);
  const auto plain = alpha_beta_search(g, 6);
  EXPECT_EQ(tt.value, plain.value);
  EXPECT_GT(table.hits(), 0u);
  EXPECT_LT(tt.stats.nodes_generated(), plain.stats.nodes_generated());
}

TEST(TtAlphaBeta, TableReuseAcrossSearchesIsSound) {
  // Search twice with the same table: the second run probes the first run's
  // entries and must return the same value with (much) less work.
  const othello::OthelloGame g(othello::paper_position(2));
  TranspositionTable table(16);
  const auto first = tt_alpha_beta_search(g, 5, othello_hasher(), &table);
  const auto second = tt_alpha_beta_search(g, 5, othello_hasher(), &table);
  EXPECT_EQ(first.value, second.value);
  EXPECT_LT(second.stats.nodes_generated(), first.stats.nodes_generated() / 2);
}

TEST(TtAlphaBeta, WindowedSearchKeepsFailHardSemantics) {
  const UniformRandomTree g(3, 4, 9, -50, 50);
  const Value exact = negmax_search(g, 4).value;
  TranspositionTable table(12);
  TtAlphaBetaSearcher<UniformRandomTree, decltype(random_tree_hasher())> s(
      g, 4, random_tree_hasher(), &table);
  const auto low = s.run(Window{exact + 5, exact + 15});
  EXPECT_LE(low.value, exact + 5);
  const auto high = s.run(Window{exact - 15, exact - 5});
  EXPECT_GE(high.value, exact - 5);
  const auto in = s.run(Window{exact - 5, exact + 5});
  EXPECT_EQ(in.value, exact);
}

}  // namespace
}  // namespace ers
