// The worked examples of paper §5 (Figures 6 and 7), encoded as behavioral
// tests.  The scanned text garbles the figures' exact labels, so the trees
// here reproduce the *described behavior* with values chosen to exercise
// it; each test states the sentence of the paper it pins down.

#include <gtest/gtest.h>

#include "gametree/explicit_tree.hpp"
#include "search/alpha_beta.hpp"
#include "search/er_serial.hpp"
#include "search/negmax.hpp"

namespace ers {
namespace {

// Figure 6: "If evaluation of R's first child does not refute R, A need
// only try to REFUTE (not evaluate) R's remaining children. ... [after a
// sibling refutes R] Node G need not be examined.  If A were to evaluate
// (rather than refute) R, G would also need to be examined."
TEST(PaperFigure6, RefutationStopsBeforeLastChild) {
  // Root I: first child fixes I = 10; second child K must be refuted.
  // K's children: E = 11 (does not refute: -11 < -10), F = 9 (refutes:
  // -9 >= -10), G = sentinel that only full evaluation would visit.
  ExplicitTree t;
  t.add_child(0, -10);            // i1: I >= 10
  const auto k = t.add_child(0);  // K
  t.add_child(k, 11);             // E: fails to refute K
  t.add_child(k, 9);              // F: refutes K
  t.add_child(k, -100);           // G: must never be examined

  const auto nm = negmax_search(t, 10);
  ASSERT_EQ(nm.value, 10);
  EXPECT_EQ(nm.stats.leaves_evaluated, 4u) << "full evaluation examines G";

  const auto ab = alpha_beta_search(t, 10);
  EXPECT_EQ(ab.value, 10);
  EXPECT_EQ(ab.stats.leaves_evaluated, 3u) << "refutation skips G";

  const auto er = er_serial_search(t, 10);
  EXPECT_EQ(er.value, 10);
  EXPECT_EQ(er.stats.leaves_evaluated, 3u) << "ER refutes K after F";
}

// Figure 7 / §5: "Suppose that instead of choosing E1 as the e-child of E,
// we choose E_{i,1} to be the e-child of E_i for each E_i, and evaluate all
// of these grandchildren before committing to a choice of e-child ... the
// information gained ... may permit a better choice of e-child."
TEST(PaperFigure7, ElderGrandchildrenPickTheBetterEChild) {
  // Root A with children X (first in generation order, not best) and Y
  // (best).  Elder grandchildren: x1 = 5, y1 = 20 — so Y, whose elder
  // grandchild is largest, is the right e-child even though X comes first.
  ExplicitTree t;
  const auto x = t.add_child(0);
  const auto y = t.add_child(0);
  t.add_child(x, 5);   // x1
  t.add_child(x, 4);   // x2: examined only if X is evaluated
  t.add_child(y, 20);  // y1: the largest elder grandchild
  t.add_child(y, 16);  // y2
  t.add_child(y, 17);  // y3

  // True values: X = -4, Y = -16, A = 16 through Y.
  ASSERT_EQ(t.negmax_value(), 16);

  // Alpha-beta commits to X (the first child) and pays for its full
  // evaluation before reaching Y.
  const auto ab = alpha_beta_search(t, 10);
  EXPECT_EQ(ab.value, 16);
  EXPECT_EQ(ab.stats.leaves_evaluated, 5u);

  // ER evaluates both elder grandchildren, selects Y as the e-child, and
  // then X's tentative value alone refutes it — x2 is never examined.
  const auto er = er_serial_search(t, 10);
  EXPECT_EQ(er.value, 16);
  EXPECT_EQ(er.stats.leaves_evaluated, 4u)
      << "the elder-grandchild information must save x2";
}

// §5: "a child cannot be refuted until at least one of its siblings has
// been completely evaluated" — with no sibling bound, refutation of the
// only unfinished child must degenerate into full evaluation.
TEST(PaperFigure7, RefutationOfBestChildDegeneratesToEvaluation) {
  ExplicitTree t;
  const auto only = t.add_child(0);
  t.add_child(only, -3);
  t.add_child(only, -7);
  t.add_child(only, -5);
  const auto er = er_serial_search(t, 10);
  EXPECT_EQ(er.value, t.negmax_value());
  EXPECT_EQ(er.stats.leaves_evaluated, 3u)
      << "all children must be examined when refutation cannot succeed";
}

}  // namespace
}  // namespace ers
