// ABDADA (search/abdada.hpp + baselines/abdada_par.hpp): serial identity
// with alpha-beta, value determinism across thread counts, deferral
// accounting, abort semantics, trace wiring, and a tsan hammer over the
// nproc side table.

#include "search/abdada.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "baselines/abdada_par.hpp"
#include "connect4/connect4.hpp"
#include "obs/trace.hpp"
#include "othello/game.hpp"
#include "othello/positions.hpp"
#include "randomtree/random_tree.hpp"
#include "search/alpha_beta.hpp"
#include "search/nproc_table.hpp"
#include "tictactoe/tictactoe.hpp"

namespace ers {
namespace {

// --- nproc side table ------------------------------------------------------

TEST(NprocTable, EnterLeaveBusy) {
  NprocTable t(8);
  EXPECT_EQ(t.capacity(), 256u);
  EXPECT_TRUE(t.all_idle());
  const std::uint64_t k = 0x9e3779b97f4a7c15ull;
  EXPECT_FALSE(t.busy(k));
  t.enter(k);
  EXPECT_TRUE(t.busy(k));
  EXPECT_FALSE(t.all_idle());
  t.enter(k);
  t.leave(k);
  EXPECT_TRUE(t.busy(k)) << "nested visitors keep the slot busy";
  t.leave(k);
  EXPECT_FALSE(t.busy(k));
  EXPECT_TRUE(t.all_idle());
}

TEST(NprocTable, AliasingIsPerSlot) {
  NprocTable t(4);  // 16 slots: aliasing certain across 32 keys
  for (std::uint64_t k = 0; k < 32; ++k) t.enter(k);
  EXPECT_FALSE(t.all_idle());
  for (std::uint64_t k = 0; k < 32; ++k) t.leave(k);
  EXPECT_TRUE(t.all_idle()) << "enter/leave must pair through aliasing";
}

TEST(NprocTable, ClearResets) {
  NprocTable t(6);
  t.enter(1);
  t.enter(2);
  t.clear();
  EXPECT_TRUE(t.all_idle());
}

// The tsan lane's target: raw enter/busy/leave contention over a deliberately
// tiny table so every thread hammers every slot.
TEST(NprocTable, ConcurrentHammerQuiescesIdle) {
  NprocTable t(6);  // 64 slots
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 50'000;
  std::atomic<int> busy_observed{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&t, &busy_observed, w] {
      std::uint64_t key = 0x243f6a8885a308d3ull + static_cast<std::uint64_t>(w);
      int seen = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        key = key * 6364136223846793005ull + 1442695040888963407ull;
        t.enter(key);
        // The exclusivity read ABDADA performs between other workers'
        // enter/leave pairs.
        if (t.busy(key ^ 0x5555)) ++seen;
        t.leave(key);
      }
      busy_observed.fetch_add(seen, std::memory_order_relaxed);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_TRUE(t.all_idle())
      << "every enter paired with a leave must quiesce to all-zero";
}

// --- 1-thread identity with serial alpha-beta ------------------------------

TEST(Abdada, OneThreadMatchesAlphaBetaTicTacToe) {
  const TicTacToe g;
  for (const int depth : {3, 5, 9}) {
    const Value oracle = alpha_beta_search(g, depth).value;
    baselines::AbdadaOptions opt;
    opt.threads = 1;
    const auto r = baselines::abdada_parallel_search(g, depth, opt);
    EXPECT_EQ(r.value, oracle) << "depth=" << depth;
  }
}

TEST(Abdada, OneThreadMatchesAlphaBetaConnect4) {
  const connect4::Connect4 g;
  for (const int depth : {4, 6}) {
    const Value oracle = alpha_beta_search(g, depth).value;
    baselines::AbdadaOptions opt;
    opt.threads = 1;
    const auto r = baselines::abdada_parallel_search(g, depth, opt);
    EXPECT_EQ(r.value, oracle) << "depth=" << depth;
  }
}

TEST(Abdada, OneThreadMatchesAlphaBetaOthelloDepth5) {
  // The HashedGame case: the shared TT is live (probes, stores, depth-exact
  // hits) and the value must still be exactly serial alpha-beta's.
  for (const int idx : {1, 2, 3}) {
    const othello::OthelloGame g(othello::paper_position(idx));
    const Value oracle = alpha_beta_search(g, 5).value;
    baselines::AbdadaOptions opt;
    opt.threads = 1;
    opt.ordering.sort_by_static_value = true;
    const auto r = baselines::abdada_parallel_search(g, 5, opt);
    EXPECT_EQ(r.value, oracle) << "position O" << idx;
    EXPECT_GT(r.stats.tt_stores, 0u) << "the shared table must be in use";
  }
}

TEST(Abdada, SearcherAloneMatchesAlphaBetaOnRandomTrees) {
  // One-shot (no iterative deepening, no tables) searcher equivalence over
  // assorted tree shapes, full and offset windows.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const UniformRandomTree g(4, 6, seed + 300, -95, 95);
    const Value oracle = alpha_beta_search(g, 6).value;
    EXPECT_EQ(abdada_serial_search(g, 6).value, oracle) << "seed=" << seed;
  }
}

TEST(Abdada, SearcherWithTablesMatchesAlphaBeta) {
  // Same equivalence with live TT + nproc table on a single thread: the
  // depth-exact gating must keep every cutoff value-preserving.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const UniformRandomTree g(5, 6, seed + 700, -80, 80);
    const Value oracle = alpha_beta_search(g, 6).value;
    ConcurrentTranspositionTable tt(14);
    NprocTable nproc(10);
    AbdadaSearcher<UniformRandomTree> s(g, 6);
    s.with_shared_table(&tt).with_nproc_table(&nproc);
    const SearchResult r = s.run();
    EXPECT_EQ(r.value, oracle) << "seed=" << seed;
    EXPECT_GT(r.stats.tt_probes, 0u);
    EXPECT_TRUE(nproc.all_idle()) << "enter/leave must balance";
  }
}

// --- multi-thread value determinism ----------------------------------------

TEST(Abdada, ValueDeterministicAcrossThreadCountsRandomTree) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const UniformRandomTree g(4, 6, seed + 40, -90, 90);
    const Value oracle = alpha_beta_search(g, 6).value;
    for (const int threads : {2, 4, 8}) {
      baselines::AbdadaOptions opt;
      opt.threads = threads;
      const auto r = baselines::abdada_parallel_search(g, 6, opt);
      EXPECT_EQ(r.value, oracle) << "seed=" << seed << " threads=" << threads;
      // Every depth iteration's claimed value is exact too.
      for (const auto& d : r.per_depth)
        EXPECT_EQ(d.value, alpha_beta_search(g, d.depth).value)
            << "depth=" << d.depth << " threads=" << threads;
    }
  }
}

TEST(Abdada, ValueDeterministicAcrossThreadCountsOthello) {
  const othello::OthelloGame g(othello::paper_position(2));
  const Value oracle = alpha_beta_search(g, 5).value;
  for (const int threads : {2, 4, 8}) {
    baselines::AbdadaOptions opt;
    opt.threads = threads;
    opt.ordering.sort_by_static_value = true;
    const auto r = baselines::abdada_parallel_search(g, 5, opt);
    EXPECT_EQ(r.value, oracle) << "threads=" << threads;
    EXPECT_EQ(static_cast<int>(r.per_thread.size()), threads);
    // Phase-two revisits can only come from phase-one deferrals.
    EXPECT_LE(r.stats.moves_revisited, r.stats.moves_deferred);
  }
}

// --- abort / stop-flag semantics -------------------------------------------

TEST(Abdada, PreRaisedStopAbortsWithoutStores) {
  const UniformRandomTree g(4, 6, 9, -50, 50);
  ConcurrentTranspositionTable tt(12);
  NprocTable nproc(10);
  std::atomic<bool> stop{true};
  AbdadaSearcher<UniformRandomTree> s(g, 6);
  s.with_shared_table(&tt).with_nproc_table(&nproc).with_stop(&stop);
  const SearchResult r = s.run();
  EXPECT_TRUE(s.aborted());
  EXPECT_EQ(r.stats.tt_stores, 0u)
      << "an aborted search must not write the shared table";
  EXPECT_EQ(tt.occupancy(), 0u);
  EXPECT_TRUE(nproc.all_idle());
}

// --- trace wiring -----------------------------------------------------------

TEST(Abdada, TraceInstantsAgreeWithStats) {
  // abdada_defer / abdada_revisit instants must match the SearchStats
  // counters exactly (no drops at this size), whatever their count is.
  const othello::OthelloGame g(othello::paper_position(1));
  obs::TraceSession session(4);
  baselines::AbdadaOptions opt;
  opt.threads = 4;
  opt.trace = &session;
  const auto r = baselines::abdada_parallel_search(g, 4, opt);
  ASSERT_EQ(session.total_dropped(), 0u);
  std::uint64_t defers = 0;
  std::uint64_t revisits = 0;
  for (const obs::TraceEvent& e : session.merged()) {
    if (e.kind == obs::EventKind::kAbdadaDefer) ++defers;
    if (e.kind == obs::EventKind::kAbdadaRevisit) ++revisits;
  }
  EXPECT_EQ(defers, r.stats.moves_deferred);
  EXPECT_EQ(revisits, r.stats.moves_revisited);
}

// --- parallel hammer through the real search (tsan lane) --------------------

TEST(Abdada, ParallelSearchHammerOverSharedTables) {
  // 8 workers through one TT + one deliberately tiny nproc table (heavy
  // slot aliasing → constant deferral traffic) on a bushy tree: the value
  // must stay exact and the tables quiescent.  This is the tsan target for
  // the searcher's shared-state interactions.
  const UniformRandomTree g(6, 5, 77, -90, 90);
  const Value oracle = alpha_beta_search(g, 5).value;
  baselines::AbdadaOptions opt;
  opt.threads = 8;
  opt.nproc_log2 = 6;  // 64 slots shared by thousands of nodes
  const auto r = baselines::abdada_parallel_search(g, 5, opt);
  EXPECT_EQ(r.value, oracle);
  EXPECT_LE(r.stats.moves_revisited, r.stats.moves_deferred);
}

}  // namespace
}  // namespace ers
