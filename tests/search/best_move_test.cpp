// The best-move API: every searcher must report a root child that actually
// achieves the root value (the move a game program plays).

#include <gtest/gtest.h>

#include <vector>

#include "connect4/connect4.hpp"
#include "core/parallel_er.hpp"
#include "randomtree/random_tree.hpp"
#include "search/alpha_beta.hpp"
#include "search/er_serial.hpp"
#include "search/negmax.hpp"
#include "tictactoe/tictactoe.hpp"

namespace ers {
namespace {

/// Exact value of `pos` treated as a subtree root, `depth` plies deep.
template <Game G>
Value value_of_child(const G& g, const typename G::Position& pos, int depth) {
  struct Rooted {
    using Position = typename G::Position;
    const G* game;
    Position start;
    Position root() const { return start; }
    void generate_children(const Position& p, std::vector<Position>& out) const {
      game->generate_children(p, out);
    }
    Value evaluate(const Position& p) const { return game->evaluate(p); }
  };
  return negmax_search(Rooted{&g, pos}, depth).value;
}

TEST(BestMove, AlphaBetaChoiceAchievesRootValue) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const UniformRandomTree g(4, 4, seed, -100, 100);
    AlphaBetaSearcher<UniformRandomTree> s(g, 4);
    const auto r = s.run();
    ASSERT_TRUE(s.best_root_position().has_value()) << seed;
    EXPECT_EQ(negate(value_of_child(g, *s.best_root_position(), 3)), r.value)
        << seed;
  }
}

TEST(BestMove, ErSerialChoiceAchievesRootValue) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const UniformRandomTree g(4, 4, seed, -100, 100);
    ErSerialSearcher<UniformRandomTree> s(g, 4);
    const auto r = s.run();
    ASSERT_TRUE(s.best_root_position().has_value()) << seed;
    EXPECT_EQ(negate(value_of_child(g, *s.best_root_position(), 3)), r.value)
        << seed;
  }
}

TEST(BestMove, ParallelEngineChoiceAchievesRootValue) {
  core::EngineConfig cfg;
  cfg.search_depth = 5;
  cfg.serial_depth = 3;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const UniformRandomTree g(4, 5, seed, -100, 100);
    for (int p : {1, 8}) {
      const auto r = parallel_er_sim(g, cfg, p);
      ASSERT_TRUE(r.best_move.has_value()) << "seed=" << seed << " p=" << p;
      EXPECT_EQ(negate(value_of_child(g, *r.best_move, 4)), r.value)
          << "seed=" << seed << " p=" << p;
    }
  }
}

TEST(BestMove, ThreadRuntimeChoiceAchievesRootValue) {
  core::EngineConfig cfg;
  cfg.search_depth = 5;
  cfg.serial_depth = 3;
  const UniformRandomTree g(4, 5, 33, -100, 100);
  const auto r = parallel_er_threads(g, cfg, 4);
  ASSERT_TRUE(r.best_move.has_value());
  EXPECT_EQ(negate(value_of_child(g, *r.best_move, 4)), r.value);
}

TEST(BestMove, LeafRootHasNoMove) {
  const UniformRandomTree g(4, 0, 3, -9, 9);
  AlphaBetaSearcher<UniformRandomTree> s(g, 0);
  (void)s.run();
  EXPECT_FALSE(s.best_root_position().has_value());
}

TEST(BestMove, FullySerialEngineReportsNoMove) {
  // serial_depth == 0: the root resolves inside one serial unit, so the
  // engine cannot attribute the value to a child (documented behavior).
  core::EngineConfig cfg;
  cfg.search_depth = 4;
  cfg.serial_depth = 0;
  const UniformRandomTree g(3, 4, 7, -50, 50);
  const auto r = parallel_er_sim(g, cfg, 4);
  EXPECT_FALSE(r.best_move.has_value());
}

TEST(BestMove, Connect4TakesTheImmediateWin) {
  // Side to move has three in column 3 with the fourth cell open.
  const connect4::Connect4 g;
  connect4::Connect4::Position p = g.root();
  for (int col : {3, 0, 3, 0, 3, 0}) {
    std::vector<connect4::Connect4::Position> kids;
    g.generate_children(p, kids);
    for (const auto& k : kids)
      if (connect4::Connect4::move_column(p, k) == col) {
        p = k;
        break;
      }
  }
  struct Rooted {
    using Position = connect4::Connect4::Position;
    Position start;
    Position root() const { return start; }
    void generate_children(const Position& q, std::vector<Position>& out) const {
      connect4::Connect4{}.generate_children(q, out);
    }
    Value evaluate(const Position& q) const {
      return connect4::Connect4{}.evaluate(q);
    }
  };
  const Rooted rooted{p};
  AlphaBetaSearcher<Rooted> s(rooted, 3);
  const auto r = s.run();
  EXPECT_EQ(r.value, connect4::Connect4::kWin);
  ASSERT_TRUE(s.best_root_position().has_value());
  EXPECT_EQ(connect4::Connect4::move_column(p, *s.best_root_position()), 3)
      << "the winning column must be chosen";
}

TEST(BestMove, TicTacToeBlocksOrWins) {
  // X to move with two in a row: the best move completes the line.
  TicTacToe::Position p;
  p.to_move = 0b000000011;  // X on squares 0,1
  p.waiting = 0b000011000;  // O on squares 3,4
  struct Rooted {
    using Position = TicTacToe::Position;
    Position start;
    Position root() const { return start; }
    void generate_children(const Position& q, std::vector<Position>& out) const {
      TicTacToe{}.generate_children(q, out);
    }
    Value evaluate(const Position& q) const { return TicTacToe{}.evaluate(q); }
  };
  const Rooted rooted{p};
  AlphaBetaSearcher<Rooted> s(rooted, 9);
  const auto r = s.run();
  EXPECT_EQ(r.value, TicTacToe::kWin);
  ASSERT_TRUE(s.best_root_position().has_value());
  // The chosen child must have X holding the completed bottom row.
  EXPECT_TRUE(TicTacToe::has_line(s.best_root_position()->waiting));
}

}  // namespace
}  // namespace ers
