// Fail-hard window semantics, property-tested with random windows: for any
// window (a, b) and true value v,
//     result <= a  implies  v <= a   (fail low)
//     result >= b  implies  v >= b   (fail high)
//     a < result < b  implies  result == v (exact)
// and conversely the result must fail in the direction v actually lies.
// These invariants are what the parallel engine's window_of folding and all
// baselines rely on.

#include <gtest/gtest.h>

#include "randomtree/random_tree.hpp"
#include "search/alpha_beta.hpp"
#include "search/er_serial.hpp"
#include "search/negmax.hpp"
#include "search/ttable.hpp"
#include "util/rng.hpp"

namespace ers {
namespace {

void check_fail_hard(Value result, Value truth, Window w, const char* algo,
                     std::uint64_t seed) {
  if (result <= w.alpha) {
    EXPECT_LE(truth, w.alpha) << algo << " seed=" << seed;
  } else if (result >= w.beta) {
    EXPECT_GE(truth, w.beta) << algo << " seed=" << seed;
  } else {
    EXPECT_EQ(result, truth) << algo << " seed=" << seed;
  }
  // Converse direction: an in-window truth must be found exactly.
  if (truth > w.alpha && truth < w.beta) {
    EXPECT_EQ(result, truth) << algo << " (converse) seed=" << seed;
  }
}

class WindowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowProperty, AlphaBetaAndErRespectArbitraryWindows) {
  const std::uint64_t seed = GetParam();
  const UniformRandomTree g(3, 5, seed, -60, 60);
  const Value truth = negmax_search(g, 5).value;

  Xoshiro256StarStar rng(seed * 7919 + 13);
  for (int trial = 0; trial < 12; ++trial) {
    const Value a = static_cast<Value>(rng.between(-80, 70));
    const Value b = static_cast<Value>(rng.between(a + 1, 81));
    const Window w{a, b};

    AlphaBetaSearcher<UniformRandomTree> ab(g, 5);
    check_fail_hard(ab.run(w).value, truth, w, "alpha-beta", seed);

    ErSerialSearcher<UniformRandomTree> er(g, 5);
    check_fail_hard(er.run_from(g.root(), 0, w).value, truth, w, "serial ER",
                    seed);

    TranspositionTable table(10);
    auto hasher = [](const UniformRandomTree::Position& p) { return p.hash; };
    TtAlphaBetaSearcher<UniformRandomTree, decltype(hasher)> tt(g, 5, hasher,
                                                                &table);
    check_fail_hard(tt.run(w).value, truth, w, "tt-alpha-beta", seed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowProperty,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(WindowProperty, ErPartialUnitsRespectWindows) {
  // The engine's cutover units — eval_first_from / refute_rest_from /
  // refute_from — must compose into a fail-hard evaluation of the node.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const UniformRandomTree g(3, 4, seed, -40, 40);
    const Value truth = negmax_search(g, 4).value;
    Xoshiro256StarStar rng(seed + 555);
    const Value a = static_cast<Value>(rng.between(-60, 50));
    const Value b = static_cast<Value>(rng.between(a + 1, 61));
    const Window w{a, b};

    ErSerialSearcher<UniformRandomTree> s(g, 4);
    auto part = s.eval_first_from(g.root(), 0, w);
    Value result = part.value;
    if (!part.done) {
      ErSerialSearcher<UniformRandomTree> s2(g, 4);
      result = s2.refute_rest_from(g.root(), 0, w, part.value, part.children)
                   .value;
    }
    check_fail_hard(result, truth, w, "eval_first+refute_rest", seed);

    ErSerialSearcher<UniformRandomTree> s3(g, 4);
    check_fail_hard(s3.refute_from(g.root(), 0, w).value, truth, w,
                    "refute_from", seed);
  }
}

}  // namespace
}  // namespace ers
