#include "search/minimal_tree.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gametree/explicit_tree.hpp"
#include "search/alpha_beta.hpp"

namespace ers {
namespace {

ExplicitTree uniform_tree(int degree, int height, Value leaf_value = 0) {
  std::vector<Value> leaves;
  std::uint64_t n = 1;
  for (int i = 0; i < height; ++i) n *= static_cast<std::uint64_t>(degree);
  leaves.assign(n, leaf_value);
  return ExplicitTree::complete(degree, height, leaves);
}

TEST(MinimalTree, RootIsType1) {
  const auto t = uniform_tree(2, 1);
  const auto types = classify_critical_nodes(t, MinimalTreeKind::kWithDeepCutoffs);
  EXPECT_EQ(types[0], CriticalNodeType::kType1);
}

TEST(MinimalTree, RuleTwoFirstChildType1RestType2) {
  const auto t = uniform_tree(3, 1);
  const auto types = classify_critical_nodes(t, MinimalTreeKind::kWithDeepCutoffs);
  EXPECT_EQ(types[t.child(0, 0)], CriticalNodeType::kType1);
  EXPECT_EQ(types[t.child(0, 1)], CriticalNodeType::kType2);
  EXPECT_EQ(types[t.child(0, 2)], CriticalNodeType::kType2);
}

TEST(MinimalTree, RuleThreeType2FirstChildIsType3) {
  const auto t = uniform_tree(3, 2);
  const auto types = classify_critical_nodes(t, MinimalTreeKind::kWithDeepCutoffs);
  const auto two = t.child(0, 1);
  EXPECT_EQ(types[t.child(two, 0)], CriticalNodeType::kType3);
  EXPECT_EQ(types[t.child(two, 1)], CriticalNodeType::kNotCritical);
  EXPECT_EQ(types[t.child(two, 2)], CriticalNodeType::kNotCritical);
}

TEST(MinimalTree, RuleFourChildrenOfType3AreType2) {
  const auto t = uniform_tree(2, 3);
  const auto types = classify_critical_nodes(t, MinimalTreeKind::kWithDeepCutoffs);
  const auto two = t.child(0, 1);
  const auto three = t.child(two, 0);
  ASSERT_EQ(types[three], CriticalNodeType::kType3);
  EXPECT_EQ(types[t.child(three, 0)], CriticalNodeType::kType2);
  EXPECT_EQ(types[t.child(three, 1)], CriticalNodeType::kType2);
}

TEST(MinimalTree, ShallowClassificationHasNoType3) {
  const auto t = uniform_tree(3, 4);
  const auto types = classify_critical_nodes(t, MinimalTreeKind::kShallowOnly);
  for (const auto ty : types) EXPECT_NE(ty, CriticalNodeType::kType3);
}

TEST(MinimalTree, ShallowMinimalTreeContainsDeepMinimalTree) {
  const auto t = uniform_tree(3, 4);
  const auto deep = classify_critical_nodes(t, MinimalTreeKind::kWithDeepCutoffs);
  const auto shallow = classify_critical_nodes(t, MinimalTreeKind::kShallowOnly);
  for (std::size_t i = 0; i < deep.size(); ++i) {
    if (deep[i] != CriticalNodeType::kNotCritical)
      EXPECT_NE(shallow[i], CriticalNodeType::kNotCritical) << "node " << i;
  }
}

TEST(MinimalTree, ClosedFormMatchesEnumeration) {
  // The paper prints d^ceil(h/2)+d^floor(h/2)+1; Knuth-Moore's count (and
  // this enumeration) give "-1".
  for (int d = 1; d <= 4; ++d) {
    for (int h = 0; h <= 5; ++h) {
      const auto t = uniform_tree(d, h);
      EXPECT_EQ(count_critical_leaves(t, MinimalTreeKind::kWithDeepCutoffs),
                minimal_leaf_count(d, h))
          << "d=" << d << " h=" << h;
    }
  }
}

TEST(MinimalTree, Figure3Dimensions) {
  // Figure 3's tree is ternary of height 3: minimal leaves = 3^2+3-1 = 11.
  EXPECT_EQ(minimal_leaf_count(3, 3), 11u);
  const auto t = uniform_tree(3, 3);
  EXPECT_EQ(count_critical_leaves(t, MinimalTreeKind::kWithDeepCutoffs), 11u);
}

TEST(MinimalTree, BestFirstAlphaBetaVisitsExactlyMinimalTree) {
  // Knuth-Moore: on a best-first-ordered tree, alpha-beta examines exactly
  // the critical leaves.  A uniform-value tree is (weakly) best-first.
  for (int d = 2; d <= 4; ++d) {
    for (int h = 1; h <= 4; ++h) {
      const auto t = uniform_tree(d, h, /*leaf_value=*/7);
      const auto r = alpha_beta_search(t, h);
      EXPECT_EQ(r.stats.leaves_evaluated, minimal_leaf_count(d, h))
          << "d=" << d << " h=" << h;
    }
  }
}

TEST(MinimalTree, MinimalLeafCountGrowsLikeTwiceSqrtN) {
  // d^ceil(h/2) + d^floor(h/2) - 1 ~ 2 sqrt(d^h) for even h.
  const auto n = minimal_leaf_count(4, 6);
  EXPECT_EQ(n, 64u + 64u - 1u);
}

TEST(MinimalTree, UnaryDegreeEdgeCase) {
  EXPECT_EQ(minimal_leaf_count(1, 5), 1u);
  const auto t = uniform_tree(1, 5);
  EXPECT_EQ(count_critical_leaves(t, MinimalTreeKind::kWithDeepCutoffs), 1u);
}

}  // namespace
}  // namespace ers
