#include "search/aspiration.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "randomtree/random_tree.hpp"
#include "search/negmax.hpp"

namespace ers {
namespace {

TEST(Aspiration, WindowHoldsWhenEstimateIsGood) {
  const UniformRandomTree g(3, 4, 42, -100, 100);
  const Value exact = negmax_search(g, 4).value;
  const auto r = aspiration_search(g, 4, exact, 10);
  EXPECT_EQ(r.value, exact);
  EXPECT_EQ(r.searches, 1);
  EXPECT_FALSE(r.failed_low);
  EXPECT_FALSE(r.failed_high);
}

TEST(Aspiration, FailsLowAndRecovers) {
  const UniformRandomTree g(3, 4, 43, -100, 100);
  const Value exact = negmax_search(g, 4).value;
  const auto r = aspiration_search(g, 4, exact + 500, 10);
  EXPECT_EQ(r.value, exact);
  EXPECT_EQ(r.searches, 2);
  EXPECT_TRUE(r.failed_low);
  EXPECT_FALSE(r.failed_high);
}

TEST(Aspiration, FailsHighAndRecovers) {
  const UniformRandomTree g(3, 4, 44, -100, 100);
  const Value exact = negmax_search(g, 4).value;
  const auto r = aspiration_search(g, 4, exact - 500, 10);
  EXPECT_EQ(r.value, exact);
  EXPECT_EQ(r.searches, 2);
  EXPECT_TRUE(r.failed_high);
  EXPECT_FALSE(r.failed_low);
}

TEST(Aspiration, GoodWindowSearchesFewerNodesThanFullWindow) {
  const UniformRandomTree g(4, 5, 45, -1000, 1000);
  const Value exact = negmax_search(g, 5).value;
  const auto full = alpha_beta_search(g, 5);
  const auto asp = aspiration_search(g, 5, exact, 5);
  EXPECT_EQ(asp.value, exact);
  EXPECT_LE(asp.stats.leaves_evaluated, full.stats.leaves_evaluated);
}

TEST(Aspiration, ExactValueOnWindowEdgeLow) {
  // estimate - delta == exact: the exact value equals alpha -> fail low path
  // must still recover the right answer.
  const UniformRandomTree g(3, 3, 46, -50, 50);
  const Value exact = negmax_search(g, 3).value;
  const auto r = aspiration_search(g, 3, exact + 10, 10);
  EXPECT_EQ(r.value, exact);
}

TEST(Aspiration, ExactValueOnWindowEdgeHigh) {
  const UniformRandomTree g(3, 3, 47, -50, 50);
  const Value exact = negmax_search(g, 3).value;
  const auto r = aspiration_search(g, 3, exact - 10, 10);
  EXPECT_EQ(r.value, exact);
}

TEST(AspirationDrive, WindowsAndRetryProtocol) {
  // The generic driver (used by aspiration_search and the ABDADA runner):
  // verify the exact window sequence it issues against a scripted fail-hard
  // searcher with true value 40.
  constexpr Value kTrue = 40;
  std::vector<Window> seen;
  auto fake = [&seen](Window w) {
    seen.push_back(w);
    // Fail-hard clamp of the true value into the window.
    if (kTrue <= w.alpha) return w.alpha;
    if (kTrue >= w.beta) return w.beta;
    return kTrue;
  };

  // Window holds.
  seen.clear();
  auto o = aspiration_drive(fake, 35, 10);
  EXPECT_EQ(o.value, kTrue);
  EXPECT_EQ(o.searches, 1);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].alpha, 25);
  EXPECT_EQ(seen[0].beta, 45);

  // Fail high: re-search above with (beta-1, +inf).
  seen.clear();
  o = aspiration_drive(fake, 10, 10);
  EXPECT_EQ(o.value, kTrue);
  EXPECT_EQ(o.searches, 2);
  EXPECT_TRUE(o.failed_high);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].alpha, 19);
  EXPECT_EQ(seen[1].beta, kValueInf);

  // Fail low: re-search below with (-inf, alpha+1).
  seen.clear();
  o = aspiration_drive(fake, 80, 10);
  EXPECT_EQ(o.value, kTrue);
  EXPECT_EQ(o.searches, 2);
  EXPECT_TRUE(o.failed_low);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].alpha, -kValueInf);
  EXPECT_EQ(seen[1].beta, 71);
}

TEST(Aspiration, ManySeedsAlwaysExact) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const UniformRandomTree g(3, 4, seed, -30, 30);
    const Value exact = negmax_search(g, 4).value;
    for (Value est : {exact - 37, exact, exact + 37}) {
      const auto r = aspiration_search(g, 4, est, 8);
      EXPECT_EQ(r.value, exact) << "seed=" << seed << " est=" << est;
    }
  }
}

}  // namespace
}  // namespace ers
