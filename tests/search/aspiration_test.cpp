#include "search/aspiration.hpp"

#include <gtest/gtest.h>

#include "randomtree/random_tree.hpp"
#include "search/negmax.hpp"

namespace ers {
namespace {

TEST(Aspiration, WindowHoldsWhenEstimateIsGood) {
  const UniformRandomTree g(3, 4, 42, -100, 100);
  const Value exact = negmax_search(g, 4).value;
  const auto r = aspiration_search(g, 4, exact, 10);
  EXPECT_EQ(r.value, exact);
  EXPECT_EQ(r.searches, 1);
  EXPECT_FALSE(r.failed_low);
  EXPECT_FALSE(r.failed_high);
}

TEST(Aspiration, FailsLowAndRecovers) {
  const UniformRandomTree g(3, 4, 43, -100, 100);
  const Value exact = negmax_search(g, 4).value;
  const auto r = aspiration_search(g, 4, exact + 500, 10);
  EXPECT_EQ(r.value, exact);
  EXPECT_EQ(r.searches, 2);
  EXPECT_TRUE(r.failed_low);
  EXPECT_FALSE(r.failed_high);
}

TEST(Aspiration, FailsHighAndRecovers) {
  const UniformRandomTree g(3, 4, 44, -100, 100);
  const Value exact = negmax_search(g, 4).value;
  const auto r = aspiration_search(g, 4, exact - 500, 10);
  EXPECT_EQ(r.value, exact);
  EXPECT_EQ(r.searches, 2);
  EXPECT_TRUE(r.failed_high);
  EXPECT_FALSE(r.failed_low);
}

TEST(Aspiration, GoodWindowSearchesFewerNodesThanFullWindow) {
  const UniformRandomTree g(4, 5, 45, -1000, 1000);
  const Value exact = negmax_search(g, 5).value;
  const auto full = alpha_beta_search(g, 5);
  const auto asp = aspiration_search(g, 5, exact, 5);
  EXPECT_EQ(asp.value, exact);
  EXPECT_LE(asp.stats.leaves_evaluated, full.stats.leaves_evaluated);
}

TEST(Aspiration, ExactValueOnWindowEdgeLow) {
  // estimate - delta == exact: the exact value equals alpha -> fail low path
  // must still recover the right answer.
  const UniformRandomTree g(3, 3, 46, -50, 50);
  const Value exact = negmax_search(g, 3).value;
  const auto r = aspiration_search(g, 3, exact + 10, 10);
  EXPECT_EQ(r.value, exact);
}

TEST(Aspiration, ExactValueOnWindowEdgeHigh) {
  const UniformRandomTree g(3, 3, 47, -50, 50);
  const Value exact = negmax_search(g, 3).value;
  const auto r = aspiration_search(g, 3, exact - 10, 10);
  EXPECT_EQ(r.value, exact);
}

TEST(Aspiration, ManySeedsAlwaysExact) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const UniformRandomTree g(3, 4, seed, -30, 30);
    const Value exact = negmax_search(g, 4).value;
    for (Value est : {exact - 37, exact, exact + 37}) {
      const auto r = aspiration_search(g, 4, est, 8);
      EXPECT_EQ(r.value, exact) << "seed=" << seed << " est=" << est;
    }
  }
}

}  // namespace
}  // namespace ers
