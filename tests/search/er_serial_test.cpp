#include "search/er_serial.hpp"

#include <gtest/gtest.h>

#include <array>

#include "gametree/explicit_tree.hpp"
#include "randomtree/random_tree.hpp"
#include "randomtree/strongly_ordered.hpp"
#include "search/alpha_beta.hpp"
#include "search/negmax.hpp"

namespace ers {
namespace {

TEST(ErSerial, LeafRoot) {
  ExplicitTree t;
  t.set_value(0, -3);
  const auto r = er_serial_search(t, 5);
  EXPECT_EQ(r.value, -3);
  EXPECT_EQ(r.stats.leaves_evaluated, 1u);
}

TEST(ErSerial, TwoLevelTree) {
  const std::array<Value, 4> leaves{3, -1, -4, 2};
  const auto t = ExplicitTree::complete(2, 2, leaves);
  EXPECT_EQ(er_serial_search(t, 2).value, t.negmax_value());
}

// DESIGN.md §1: the printed pseudocode's `value := alpha` in Refute_rest
// discards the tentative value established by Eval_first.  On this tree the
// literal transcription returns +100 at the root; the correct value is -3.
TEST(ErSerial, RefuteRestKeepsTentativeValue) {
  ExplicitTree t;
  t.add_child(0, 20);             // X: evaluates to 20, so root >= -20
  const auto r = t.add_child(0);  // R: must be refuted
  t.add_child(r, -3);             // R's first child -> tentative R = 3
  t.add_child(r, 100);            // R's second child fails low (-100 < 3)
  ASSERT_EQ(t.negmax_value(), -3);
  const auto res = er_serial_search(t, 10);
  EXPECT_EQ(res.value, -3)
      << "Refute_rest lost Eval_first's tentative value (see DESIGN.md)";
}

TEST(ErSerial, EqualsNegmaxOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const UniformRandomTree g(3, 4, seed, -25, 25);
    const auto er = er_serial_search(g, 4);
    const auto nm = negmax_search(g, 4);
    EXPECT_EQ(er.value, nm.value) << "seed=" << seed;
    EXPECT_LE(er.stats.leaves_evaluated, nm.stats.leaves_evaluated)
        << "seed=" << seed;
  }
}

TEST(ErSerial, EqualsNegmaxOnVaryingDegreeTrees) {
  StronglyOrderedTree::Config c;
  c.min_degree = 1;
  c.max_degree = 5;
  c.height = 4;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    c.seed = seed;
    const StronglyOrderedTree g(c);
    EXPECT_EQ(er_serial_search(g, 4).value, negmax_search(g, 4).value)
        << "seed=" << seed;
  }
}

TEST(ErSerial, DuplicateHeavyValuesStillExact) {
  // Many equal leaves stress the tie handling in sorting and cutoffs.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const UniformRandomTree g(4, 4, seed, -2, 2);
    EXPECT_EQ(er_serial_search(g, 4).value, negmax_search(g, 4).value)
        << "seed=" << seed;
  }
}

TEST(ErSerial, DeepNarrowTrees) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const UniformRandomTree g(2, 8, seed, -100, 100);
    EXPECT_EQ(er_serial_search(g, 8).value, negmax_search(g, 8).value)
        << "seed=" << seed;
  }
}

TEST(ErSerial, UnaryChain) {
  ExplicitTree t;
  auto a = t.add_child(0);
  auto b = t.add_child(a);
  auto c = t.add_child(b);
  t.add_child(c, 11);
  EXPECT_EQ(er_serial_search(t, 10).value, t.negmax_value());
}

TEST(ErSerial, DepthLimitRespected) {
  const UniformRandomTree g(3, 8, 5);
  const auto r2 = er_serial_search(g, 2);
  const auto nm2 = negmax_search(g, 2);
  EXPECT_EQ(r2.value, nm2.value);
  // ER's phase-1 evaluates every elder grandchild, so at depth 2 it visits
  // every grandchild like negmax does, but never deeper.
  EXPECT_LE(r2.stats.leaves_evaluated, 9u);
}

TEST(ErSerial, EvaluatesElderGrandchildrenBeforeCommitting) {
  // A tree where static first-child order is misleading: the paper's point
  // is that elder-grandchild information picks the right e-child.  ER must
  // return the exact value regardless.
  //
  // Root with children L (looks bad first, actually best) and M.
  ExplicitTree t;
  const auto l = t.add_child(0);
  const auto m = t.add_child(0);
  t.add_child(l, 50);    // L's elder grandchild: tentative L = -50
  t.add_child(l, -60);
  t.add_child(m, -10);   // M's elder grandchild: tentative M = 10
  t.add_child(m, -20);
  // True: L = max(-50, 60) = 60 ; M = max(10, 20) = 20.
  // Root = max(-60, -20) = -20.
  ASSERT_EQ(t.negmax_value(), -20);
  EXPECT_EQ(er_serial_search(t, 10).value, -20);
}

TEST(ErSerial, OrderingPolicyDoesNotChangeValue) {
  OrderingPolicy sorted{.sort_by_static_value = true, .max_sort_ply = 3};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const UniformRandomTree g(3, 5, seed + 500, -40, 40);
    EXPECT_EQ(er_serial_search(g, 5, sorted).value,
              er_serial_search(g, 5).value)
        << "seed=" << seed;
  }
}

TEST(ErSerial, SortCostOnlyOnNonENodes) {
  // e-node children are never statically sorted (paper §7), so ER charges
  // fewer sort_evals than alpha-beta with the same policy on the same tree.
  OrderingPolicy sorted{.sort_by_static_value = true, .max_sort_ply = 99};
  const UniformRandomTree g(4, 4, 77, -100, 100);
  const auto er = er_serial_search(g, 4, sorted);
  const auto ab = alpha_beta_search(g, 4, sorted);
  EXPECT_EQ(er.value, ab.value);
  EXPECT_GT(ab.stats.sort_evals, 0u);
}

TEST(ErSerial, ExtremeLeafValues) {
  ExplicitTree t;
  t.add_child(0, kValueMax);
  t.add_child(0, -kValueMax);
  t.add_child(0, 0);
  EXPECT_EQ(er_serial_search(t, 1).value, kValueMax);
}

}  // namespace
}  // namespace ers
