#include "search/iterative.hpp"

#include <gtest/gtest.h>

#include "othello/game.hpp"
#include "othello/positions.hpp"
#include "randomtree/random_tree.hpp"
#include "search/negmax.hpp"

namespace ers {
namespace {

TEST(IterativeDeepening, FinalValueMatchesDirectSearch) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const UniformRandomTree g(3, 5, seed, -100, 100);
    const Value direct = negmax_search(g, 5).value;
    EXPECT_EQ(iterative_deepening_search(g, 5).value, direct) << seed;
    EXPECT_EQ(iterative_deepening_search(g, 5, {}, 20).value, direct) << seed;
  }
}

TEST(IterativeDeepening, PerDepthValuesMatchFixedDepthSearches) {
  const UniformRandomTree g(3, 5, 3, -100, 100);
  const auto r = iterative_deepening_search(g, 5);
  ASSERT_EQ(r.per_depth.size(), 5u);
  for (int d = 1; d <= 5; ++d)
    EXPECT_EQ(r.per_depth[d - 1], negmax_search(g, d).value) << "depth " << d;
}

TEST(IterativeDeepening, DepthZero) {
  const UniformRandomTree g(4, 4, 5, -9, 9);
  const auto r = iterative_deepening_search(g, 0);
  EXPECT_EQ(r.value, g.evaluate(g.root()));
  EXPECT_EQ(r.depth_reached, 0);
  EXPECT_TRUE(r.per_depth.empty());
}

TEST(IterativeDeepening, AspirationIsCompetitiveInAggregate) {
  // Tight windows prune harder but pay for re-searches when the value
  // drifts between depths; across seeds the aggregate bill must stay
  // competitive with full windows (and correctness must hold per seed).
  std::uint64_t full_total = 0, asp_total = 0;
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    const UniformRandomTree g(4, 6, seed, -1000, 1000);
    const auto full = iterative_deepening_search(g, 6);
    const auto asp = iterative_deepening_search(g, 6, {}, 50);
    EXPECT_EQ(full.value, asp.value) << "seed=" << seed;
    full_total += full.stats.leaves_evaluated;
    asp_total += asp.stats.leaves_evaluated;
  }
  EXPECT_LT(static_cast<double>(asp_total),
            1.25 * static_cast<double>(full_total));
}

TEST(IterativeDeepening, ResearchesCountedOnUnstableValues) {
  // delta = 1 around a value that moves between depths forces re-searches.
  const UniformRandomTree g(3, 6, 8, -1000, 1000);
  const auto r = iterative_deepening_search(g, 6, {}, 1);
  EXPECT_EQ(r.value, negmax_search(g, 6).value);
  EXPECT_GT(r.researches, 0);
}

TEST(IterativeDeepening, WorksOnOthello) {
  const othello::OthelloGame g(othello::paper_position(2));
  OrderingPolicy sorted{.sort_by_static_value = true, .max_sort_ply = 6};
  const auto r = iterative_deepening_search(g, 4, sorted, 200);
  EXPECT_EQ(r.value, negmax_search(g, 4).value);
  EXPECT_EQ(r.depth_reached, 4);
}

}  // namespace
}  // namespace ers
