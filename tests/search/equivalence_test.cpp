// Cross-algorithm equivalence property tests (DESIGN.md §6.2): every serial
// algorithm must compute the same root value as negmax on the same tree.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "gametree/explicit_tree.hpp"
#include "othello/game.hpp"
#include "othello/positions.hpp"
#include "randomtree/random_tree.hpp"
#include "search/alpha_beta.hpp"
#include "search/aspiration.hpp"
#include "search/er_serial.hpp"
#include "search/negascout.hpp"
#include "search/negmax.hpp"

namespace ers {
namespace {

struct TreeShape {
  int degree;
  int height;
  Value value_range;  ///< leaves uniform in [-value_range, value_range]
};

class SerialEquivalence
    : public ::testing::TestWithParam<std::tuple<TreeShape, std::uint64_t>> {};

TEST_P(SerialEquivalence, AllAlgorithmsAgreeWithNegmax) {
  const auto& [shape, seed] = GetParam();
  const UniformRandomTree g(shape.degree, shape.height, seed,
                            -shape.value_range, shape.value_range);
  const int d = shape.height;

  const Value oracle = negmax_search(g, d).value;
  EXPECT_EQ(alpha_beta_search(g, d).value, oracle);
  EXPECT_EQ(alpha_beta_shallow_search(g, d).value, oracle);
  EXPECT_EQ(er_serial_search(g, d).value, oracle);
  EXPECT_EQ(negascout_search(g, d).value, oracle);
  EXPECT_EQ(aspiration_search(g, d, 0, 25).value, oracle);

  // Materialized copy agrees with the implicit tree.
  const ExplicitTree t = materialize(g, d);
  EXPECT_EQ(t.negmax_value(), oracle);
  EXPECT_EQ(er_serial_search(t, d).value, oracle);
}

std::string shape_name(
    const ::testing::TestParamInfo<SerialEquivalence::ParamType>& info) {
  const auto& [shape, seed] = info.param;
  return "d" + std::to_string(shape.degree) + "h" + std::to_string(shape.height) +
         "r" + std::to_string(shape.value_range) + "s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SerialEquivalence,
    ::testing::Combine(::testing::Values(TreeShape{1, 6, 50},   // unary chain
                                         TreeShape{2, 6, 50},   // deep binary
                                         TreeShape{3, 4, 50},
                                         TreeShape{4, 3, 50},
                                         TreeShape{5, 3, 3},    // heavy ties
                                         TreeShape{8, 2, 1000},
                                         TreeShape{2, 1, 0},    // all equal
                                         TreeShape{6, 3, 2}),
                       ::testing::Range<std::uint64_t>(0, 12)),
    shape_name);

TEST(SerialEquivalenceOthello, AllAlgorithmsAgreeAtDepth4) {
  for (int idx = 1; idx <= 3; ++idx) {
    const othello::OthelloGame g(othello::paper_position(idx));
    const Value oracle = negmax_search(g, 3).value;
    EXPECT_EQ(alpha_beta_search(g, 3).value, oracle) << "O" << idx;
    EXPECT_EQ(alpha_beta_shallow_search(g, 3).value, oracle) << "O" << idx;
    EXPECT_EQ(er_serial_search(g, 3).value, oracle) << "O" << idx;
    OrderingPolicy sorted{.sort_by_static_value = true, .max_sort_ply = 5};
    EXPECT_EQ(alpha_beta_search(g, 3, sorted).value, oracle) << "O" << idx;
    EXPECT_EQ(er_serial_search(g, 3, sorted).value, oracle) << "O" << idx;
  }
}

TEST(SerialEquivalenceOthello, OrderedSearchExpandsFewerNodes) {
  const othello::OthelloGame g(othello::paper_position(1));
  OrderingPolicy sorted{.sort_by_static_value = true, .max_sort_ply = 5};
  const auto plain = alpha_beta_search(g, 5);
  const auto ordered = alpha_beta_search(g, 5, sorted);
  EXPECT_EQ(plain.value, ordered.value);
  EXPECT_LT(ordered.stats.leaves_evaluated, plain.stats.leaves_evaluated)
      << "static-value ordering should prune more on Othello trees";
}

}  // namespace
}  // namespace ers
