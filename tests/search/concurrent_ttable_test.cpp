// Lock-free shared transposition table: single-threaded semantics, torn-write
// safety under real thread contention, and end-to-end equivalence of the
// parallel ER runtime searching through one shared table.

#include "search/concurrent_ttable.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/parallel_er.hpp"
#include "othello/game.hpp"
#include "othello/positions.hpp"
#include "randomtree/random_tree.hpp"
#include "runtime/thread_executor.hpp"
#include "search/alpha_beta.hpp"
#include "util/rng.hpp"

namespace ers {
namespace {

TEST(ConcurrentTtable, EmptyTableNeverHits) {
  ConcurrentTranspositionTable t(8);
  EXPECT_EQ(t.capacity(), 256u);
  EXPECT_EQ(t.occupancy(), 0u);
  TtHit h;
  EXPECT_FALSE(t.probe(0, h));      // the all-zero slot must not validate key 0
  EXPECT_FALSE(t.probe(12345, h));
}

TEST(ConcurrentTtable, PackingRoundTrip) {
  ConcurrentTranspositionTable t(8);
  struct Case {
    std::uint64_t key;
    Value value;
    int depth;
    BoundKind bound;
  };
  const Case cases[] = {
      {1, 0, 0, BoundKind::kExact},
      {2, kValueInf, 255, BoundKind::kLower},
      {3, -kValueInf, 7, BoundKind::kUpper},
      {4, -1, 1, BoundKind::kExact},
      {0, 42, 3, BoundKind::kLower},  // key 0 must round-trip too
  };
  for (const auto& c : cases) {
    t.store(c.key, c.value, c.depth, c.bound);
    TtHit h;
    ASSERT_TRUE(t.probe(c.key, h)) << c.key;
    EXPECT_EQ(h.value, c.value);
    EXPECT_EQ(h.depth, c.depth);
    EXPECT_EQ(h.bound, c.bound);
  }
}

TEST(ConcurrentTtable, DepthClampsAt255) {
  ConcurrentTranspositionTable t(4);
  t.store(5, 1, 1000, BoundKind::kExact);
  TtHit h;
  ASSERT_TRUE(t.probe(5, h));
  EXPECT_EQ(h.depth, 255);
}

TEST(ConcurrentTtable, DepthPreferredWithinGeneration) {
  ConcurrentTranspositionTable t(4);
  const std::uint64_t a = 5;
  const std::uint64_t b = 5 + 16;  // same slot (16 slots), different key
  t.store(a, 1, 6, BoundKind::kExact);
  t.store(b, 2, 3, BoundKind::kExact);  // shallower: must not evict a
  TtHit h;
  EXPECT_TRUE(t.probe(a, h));
  EXPECT_FALSE(t.probe(b, h));
  t.store(b, 2, 7, BoundKind::kExact);  // deeper: evicts
  EXPECT_FALSE(t.probe(a, h));
  ASSERT_TRUE(t.probe(b, h));
  EXPECT_EQ(h.value, 2);
}

TEST(ConcurrentTtable, SameKeyAlwaysRefreshes) {
  ConcurrentTranspositionTable t(4);
  t.store(9, 1, 6, BoundKind::kExact);
  t.store(9, 2, 2, BoundKind::kLower);  // same position, fresher, shallower
  TtHit h;
  ASSERT_TRUE(t.probe(9, h));
  EXPECT_EQ(h.value, 2);
  EXPECT_EQ(h.depth, 2);
  EXPECT_EQ(h.bound, BoundKind::kLower);
}

TEST(ConcurrentTtable, NewSearchAgesDepthProtection) {
  ConcurrentTranspositionTable t(4);
  const std::uint64_t a = 5;
  const std::uint64_t b = 5 + 16;
  t.store(a, 1, 9, BoundKind::kExact);
  t.new_search();
  // Old-generation depth no longer protects: a shallow fresh store evicts.
  t.store(b, 2, 1, BoundKind::kExact);
  TtHit h;
  EXPECT_FALSE(t.probe(a, h));
  ASSERT_TRUE(t.probe(b, h));
  EXPECT_EQ(h.value, 2);
}

TEST(ConcurrentTtable, EntriesSurviveNewSearchForProbing) {
  ConcurrentTranspositionTable t(4);
  t.store(9, 3, 4, BoundKind::kExact);
  t.new_search();
  TtHit h;
  ASSERT_TRUE(t.probe(9, h));  // values stay probeable across epochs
  EXPECT_EQ(h.value, 3);
}

TEST(ConcurrentTtable, ClearEmptiesTable) {
  ConcurrentTranspositionTable t(4);
  t.store(1, 1, 1, BoundKind::kExact);
  EXPECT_EQ(t.occupancy(), 1u);
  t.clear();
  EXPECT_EQ(t.occupancy(), 0u);
  TtHit h;
  EXPECT_FALSE(t.probe(1, h));
}

// The payload stored for a key is a pure function of the key, so any probe
// that validates must reproduce it exactly; a torn xkey/data pair that
// slipped past the XOR check would show up as a mismatched payload.
Value value_of(std::uint64_t key) {
  return static_cast<Value>(static_cast<std::int64_t>(splitmix64(key) % 20001) -
                            10000);
}
int depth_of(std::uint64_t key) { return static_cast<int>(key % 200); }
BoundKind bound_of(std::uint64_t key) {
  return static_cast<BoundKind>(key % 3);
}

TEST(ConcurrentTtable, HammerNoTornReads) {
  // Small table, many colliding keys, all threads probing and storing at
  // once.  Under TSan this is also the data-race check for the slot layout.
  ConcurrentTranspositionTable t(8);
  constexpr int kThreads = 4;
  constexpr int kOps = 40000;
  constexpr std::uint64_t kKeys = 4096;
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      std::uint64_t rng = splitmix64(static_cast<std::uint64_t>(w) + 1);
      for (int i = 0; i < kOps; ++i) {
        rng = splitmix64(rng);
        const std::uint64_t key = rng % kKeys;
        if ((rng >> 32) & 1) {
          t.store(key, value_of(key), depth_of(key), bound_of(key));
        } else {
          TtHit h;
          if (t.probe(key, h)) {
            hits.fetch_add(1, std::memory_order_relaxed);
            if (h.value != value_of(key) || h.depth != depth_of(key) ||
                h.bound != bound_of(key))
              mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(hits.load(), 0u);
}

core::EngineConfig cfg(int depth, int serial,
                       ConcurrentTranspositionTable* table) {
  core::EngineConfig c;
  c.search_depth = depth;
  c.serial_depth = serial;
  c.shared_table = table;
  return c;
}

TEST(SharedTtParallelEr, MatchesSerialAlphaBetaOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const UniformRandomTree g(4, 5, seed, -100, 100);
    const Value oracle = alpha_beta_search(g, 5).value;
    ConcurrentTranspositionTable table(14);
    for (int threads : {2, 4}) {
      const auto r = parallel_er_threads(g, cfg(5, 3, &table), threads);
      EXPECT_EQ(r.value, oracle) << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(SharedTtParallelEr, MatchesSerialAlphaBetaOnOthello) {
  // Midgame positions at depth 5: every move adds a disc, so a position
  // cannot recur at two different plies and depth-covering hits are always
  // from the same remaining depth — root equivalence is exact.
  for (int idx = 1; idx <= 3; ++idx) {
    const othello::OthelloGame g(othello::paper_position(idx));
    const Value oracle = alpha_beta_search(g, 5).value;
    ConcurrentTranspositionTable table(16);
    const auto r = parallel_er_threads(g, cfg(5, 3, &table), 4);
    EXPECT_EQ(r.value, oracle) << "O" << idx;
  }
}

TEST(SharedTtParallelEr, TableTrafficIsCounted) {
  const othello::OthelloGame g(othello::paper_position(1));
  ConcurrentTranspositionTable table(16);
  const auto r = parallel_er_threads(g, cfg(5, 3, &table), 4);
  EXPECT_GT(r.engine.search.tt_probes, 0u);
  EXPECT_GT(r.engine.search.tt_stores, 0u);
  EXPECT_LE(r.engine.search.tt_hits, r.engine.search.tt_probes);
  EXPECT_GT(table.occupancy(), 0u);
}

TEST(SharedTtParallelEr, WarmTableSearchesFewerNodes) {
  // Second search of the same position through the same table: the root's
  // exact entry (and everything below it) is already known.
  const othello::OthelloGame g(othello::paper_position(2));
  ConcurrentTranspositionTable table(16);
  const auto cold = parallel_er_threads(g, cfg(5, 3, &table), 2);
  const auto warm = parallel_er_threads(g, cfg(5, 3, &table), 2);
  EXPECT_EQ(warm.value, cold.value);
  EXPECT_LT(warm.engine.search.nodes_generated(),
            cold.engine.search.nodes_generated());
}

TEST(SharedTtParallelEr, ExecutorReportsHitRate) {
  const othello::OthelloGame g(othello::paper_position(3));
  ConcurrentTranspositionTable table(16);
  table.new_search();
  core::Engine<othello::OthelloGame> engine(g, cfg(5, 3, &table));
  runtime::ThreadExecutor<core::Engine<othello::OthelloGame>> exec(4);
  const auto report = exec.run(engine);
  EXPECT_GT(report.tt_probes, 0u);
  EXPECT_LE(report.tt_hits, report.tt_probes);
  EXPECT_GE(report.tt_hit_rate(), 0.0);
  EXPECT_LE(report.tt_hit_rate(), 1.0);
}

TEST(SharedTtParallelEr, PerThreadTablesStillCorrect) {
  // The bench's control mode: private tables, no sharing.  Value must still
  // match and probes are still counted.
  const othello::OthelloGame g(othello::paper_position(1));
  const Value oracle = alpha_beta_search(g, 5).value;
  core::Engine<othello::OthelloGame> engine(g, cfg(5, 3, nullptr));
  runtime::ThreadExecutor<core::Engine<othello::OthelloGame>> exec(4);
  exec.use_per_thread_tables(14);
  const auto report = exec.run(engine);
  EXPECT_EQ(engine.root_value(), oracle);
  EXPECT_GT(report.tt_probes, 0u);
}

}  // namespace
}  // namespace ers
