#include "search/negascout.hpp"

#include <gtest/gtest.h>

#include "connect4/connect4.hpp"
#include "othello/game.hpp"
#include "othello/positions.hpp"
#include "randomtree/random_tree.hpp"
#include "randomtree/strongly_ordered.hpp"
#include "search/alpha_beta.hpp"
#include "search/negmax.hpp"

namespace ers {
namespace {

TEST(NegaScout, EqualsNegmaxOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const UniformRandomTree g(3, 5, seed, -50, 50);
    EXPECT_EQ(negascout_search(g, 5).value, negmax_search(g, 5).value)
        << "seed=" << seed;
  }
}

TEST(NegaScout, EqualsNegmaxWithHeavyTies) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const UniformRandomTree g(4, 4, seed, -2, 2);
    EXPECT_EQ(negascout_search(g, 4).value, negmax_search(g, 4).value)
        << "seed=" << seed;
  }
}

TEST(NegaScout, EqualsNegmaxOnOthelloAndConnect4) {
  const othello::OthelloGame o(othello::paper_position(3));
  OrderingPolicy sorted{.sort_by_static_value = true, .max_sort_ply = 6};
  EXPECT_EQ(negascout_search(o, 4, sorted).value, negmax_search(o, 4).value);

  const connect4::Connect4 c;
  EXPECT_EQ(negascout_search(c, 6).value, negmax_search(c, 6).value);
}

TEST(NegaScout, NeverMoreLeavesThanAlphaBetaOnOrderedTrees) {
  // With good move ordering, null-window refutations dominate and NegaScout
  // expands no more leaves than plain alpha-beta.
  StronglyOrderedTree::Config cfg;
  cfg.height = 7;
  cfg.bias = 80;
  cfg.noise = 40;
  OrderingPolicy ordered{.sort_by_static_value = true, .max_sort_ply = 99};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    cfg.seed = seed + 300;
    const StronglyOrderedTree g(cfg);
    const auto ns = negascout_search(g, 7, ordered);
    const auto ab = alpha_beta_search(g, 7, ordered);
    EXPECT_EQ(ns.value, ab.value) << "seed=" << cfg.seed;
    EXPECT_LE(ns.stats.leaves_evaluated, ab.stats.leaves_evaluated)
        << "seed=" << cfg.seed;
  }
}

TEST(NegaScout, ResearchesHappenOnUnorderedTrees) {
  const UniformRandomTree g(4, 6, 7, -1000, 1000);
  NegaScoutSearcher<UniformRandomTree> s(g, 6);
  const auto r = s.run();
  EXPECT_EQ(r.value, negmax_search(g, 6).value);
  EXPECT_GT(s.researches(), 0u) << "random order must fail some null windows";
}

TEST(NegaScout, UnaryChainAndLeafRoot) {
  const UniformRandomTree chain(1, 6, 3, -9, 9);
  EXPECT_EQ(negascout_search(chain, 6).value, negmax_search(chain, 6).value);
  const UniformRandomTree leaf(4, 0, 3, -9, 9);
  EXPECT_EQ(negascout_search(leaf, 0).value, leaf.evaluate(leaf.root()));
}

}  // namespace
}  // namespace ers
