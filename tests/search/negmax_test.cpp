#include "search/negmax.hpp"

#include <gtest/gtest.h>

#include <array>

#include "gametree/explicit_tree.hpp"
#include "randomtree/random_tree.hpp"

namespace ers {
namespace {

TEST(Negmax, LeafRootReturnsStaticValue) {
  ExplicitTree t;
  t.set_value(0, 17);
  const auto r = negmax_search(t, 4);
  EXPECT_EQ(r.value, 17);
  EXPECT_EQ(r.stats.leaves_evaluated, 1u);
  EXPECT_EQ(r.stats.interior_expanded, 0u);
}

TEST(Negmax, MatchesExplicitTreeOracle) {
  const std::array<Value, 8> leaves{3, -1, 4, -1, 5, -9, 2, -6};
  const auto t = ExplicitTree::complete(2, 3, leaves);
  const auto r = negmax_search(t, 3);
  EXPECT_EQ(r.value, t.negmax_value());
  EXPECT_EQ(r.stats.leaves_evaluated, 8u);
  EXPECT_EQ(r.stats.interior_expanded, 7u);
}

TEST(Negmax, DepthLimitTruncatesSearch) {
  const UniformRandomTree g(3, 6, 11);
  const auto shallow = negmax_search(g, 2);
  EXPECT_EQ(shallow.stats.leaves_evaluated, 9u);
  EXPECT_EQ(shallow.stats.interior_expanded, 1u + 3u);
}

TEST(Negmax, DepthZeroEvaluatesRootOnly) {
  const UniformRandomTree g(4, 4, 7);
  const auto r = negmax_search(g, 0);
  EXPECT_EQ(r.value, g.evaluate(g.root()));
  EXPECT_EQ(r.stats.nodes_generated(), 1u);
}

TEST(Negmax, VisitsEveryLeafOfTheFullTree) {
  const UniformRandomTree g(4, 5, 3);
  const auto r = negmax_search(g, 5);
  EXPECT_EQ(r.stats.leaves_evaluated, 1024u);  // 4^5
  EXPECT_EQ(r.stats.interior_expanded, 1u + 4u + 16u + 64u + 256u);
}

TEST(Negmax, UnaryChainAlternatesSign) {
  // A unary chain of depth 3 over a leaf of value v yields -v at the root.
  ExplicitTree t;
  auto a = t.add_child(0);
  auto b = t.add_child(a);
  auto c = t.add_child(b, 42);
  (void)c;
  EXPECT_EQ(negmax_search(t, 10).value, -42);
}

TEST(Negmax, TerminalBeforeDepthLimit) {
  // Terminal positions shallower than the horizon are evaluated as leaves.
  ExplicitTree t;
  t.add_child(0, 5);   // leaf at ply 1
  const auto deep = t.add_child(0);
  t.add_child(deep, -2);
  const auto r = negmax_search(t, 6);
  EXPECT_EQ(r.value, std::max(-5, -(-(-2))));
  EXPECT_EQ(r.stats.leaves_evaluated, 2u);
}

}  // namespace
}  // namespace ers
