// Real-concurrency correctness of the shared-memory runtime: the thread
// executor must terminate and produce the exact negmax value under OS
// scheduling nondeterminism.

#include "runtime/thread_executor.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "core/parallel_er.hpp"
#include "othello/game.hpp"
#include "othello/positions.hpp"
#include "randomtree/random_tree.hpp"
#include "search/negmax.hpp"
#include "tictactoe/tictactoe.hpp"

namespace ers {
namespace {

core::EngineConfig cfg(int depth, int serial) {
  core::EngineConfig c;
  c.search_depth = depth;
  c.serial_depth = serial;
  return c;
}

TEST(ThreadExecutor, SingleThreadMatchesNegmax) {
  const UniformRandomTree g(4, 5, 41, -100, 100);
  const auto r = parallel_er_threads(g, cfg(5, 3), 1);
  EXPECT_EQ(r.value, negmax_search(g, 5).value);
}

TEST(ThreadExecutor, MultiThreadMatchesNegmax) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const UniformRandomTree g(4, 5, seed, -100, 100);
    const Value oracle = negmax_search(g, 5).value;
    for (int threads : {2, 4}) {
      const auto r = parallel_er_threads(g, cfg(5, 3), threads);
      EXPECT_EQ(r.value, oracle) << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ThreadExecutor, RepeatedRunsAreStableInValue) {
  // Schedules differ run to run; the value must not.
  const UniformRandomTree g(5, 5, 7, -100, 100);
  const Value oracle = negmax_search(g, 5).value;
  for (int i = 0; i < 5; ++i) {
    const auto r = parallel_er_threads(g, cfg(5, 3), 4);
    EXPECT_EQ(r.value, oracle) << "run " << i;
  }
}

TEST(ThreadExecutor, TinyTreeManyThreads) {
  // More threads than work units: workers must park and wake correctly.
  const UniformRandomTree g(2, 2, 3, -10, 10);
  const auto r = parallel_er_threads(g, cfg(2, 1), 8);
  EXPECT_EQ(r.value, negmax_search(g, 2).value);
}

TEST(ThreadExecutor, DegenerateDepthZero) {
  const UniformRandomTree g(4, 4, 3, -10, 10);
  const auto r = parallel_er_threads(g, cfg(0, 0), 4);
  EXPECT_EQ(r.value, g.evaluate(g.root()));
}

TEST(ThreadExecutor, TicTacToeDraw) {
  const TicTacToe g;
  const auto r = parallel_er_threads(g, cfg(9, 4), 4);
  EXPECT_EQ(r.value, 0);
}

TEST(ThreadExecutor, OthelloMatchesSerial) {
  const othello::OthelloGame g(othello::paper_position(1));
  const Value oracle = negmax_search(g, 4).value;
  const auto r = parallel_er_threads(g, cfg(4, 2), 4);
  EXPECT_EQ(r.value, oracle);
}

TEST(ThreadExecutor, FullyParallelCutover) {
  const UniformRandomTree g(3, 4, 11, -50, 50);
  const auto r = parallel_er_threads(g, cfg(4, 4), 4);
  EXPECT_EQ(r.value, negmax_search(g, 4).value);
}

TEST(ThreadExecutor, UnitsAccounted) {
  const UniformRandomTree g(4, 4, 13, -50, 50);
  core::Engine<UniformRandomTree> engine(g, cfg(4, 2));
  runtime::ThreadExecutor<core::Engine<UniformRandomTree>> exec(2);
  const auto report = exec.run(engine);
  EXPECT_TRUE(engine.done());
  EXPECT_EQ(report.units, engine.stats().units_processed);
  EXPECT_EQ(report.threads, 2);
}

// --- batched scheduling ---------------------------------------------------

TEST(ThreadExecutor, DeterminismSweepRandomTrees) {
  // The contract of the batched scheduler: same root value across every
  // thread count × batch size, under real OS nondeterminism.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const UniformRandomTree g(4, 5, seed + 50, -100, 100);
    const Value oracle = negmax_search(g, 5).value;
    for (const int threads : {1, 2, 4, 8}) {
      for (const int batch : {1, 4}) {
        const auto r = parallel_er_threads(g, cfg(5, 3), threads, batch);
        EXPECT_EQ(r.value, oracle)
            << "seed=" << seed << " threads=" << threads << " batch=" << batch;
      }
    }
  }
}

TEST(ThreadExecutor, DeterminismSweepOthelloMidgame) {
  const othello::OthelloGame g(othello::paper_position(2));
  const Value oracle = negmax_search(g, 4).value;
  for (const int threads : {1, 2, 4, 8}) {
    for (const int batch : {1, 4}) {
      const auto r = parallel_er_threads(g, cfg(4, 2), threads, batch);
      EXPECT_EQ(r.value, oracle)
          << "threads=" << threads << " batch=" << batch;
    }
  }
}

TEST(ThreadExecutor, BatchedRunAccountsEveryUnit) {
  const UniformRandomTree g(4, 4, 13, -50, 50);
  core::Engine<UniformRandomTree> engine(g, cfg(4, 2));
  runtime::ThreadExecutor<core::Engine<UniformRandomTree>> exec(2);
  exec.with_batch_size(4);
  const auto report = exec.run(engine);
  EXPECT_TRUE(engine.done());
  EXPECT_EQ(report.units, engine.stats().units_processed);
  EXPECT_EQ(report.sched.units, report.units);
}

TEST(ThreadExecutor, SchedulerStatsAreCoherent) {
  const UniformRandomTree g(4, 5, 17, -100, 100);
  core::Engine<UniformRandomTree> engine(g, cfg(5, 3));
  runtime::ThreadExecutor<core::Engine<UniformRandomTree>> exec(4);
  exec.with_batch_size(4);
  const auto report = exec.run(engine);
  const auto& s = report.sched;
  EXPECT_GT(s.lock_acquisitions, 0u);
  EXPECT_GT(s.batches, 0u);
  EXPECT_GE(s.units, s.batches) << "batches hold at least one unit";
  EXPECT_LE(s.units, s.batches * 4) << "batches hold at most k units";
  EXPECT_GE(s.mean_batch_size(), 1.0);
  EXPECT_LE(s.mean_batch_size(), 4.0);
  EXPECT_EQ(s.batch_hist.count(), s.batches)
      << "every batch lands in one bucket";
  EXPECT_GT(report.elapsed_ns, 0u);
  EXPECT_GE(report.lock_wait_share(), 0.0);
  EXPECT_LE(report.lock_wait_share(), 1.0);
}

TEST(ThreadExecutor, LargeBatchOnTinyTreeStillCompletes) {
  // Batch size far beyond the work available: workers must not hoard-starve
  // or deadlock.
  const UniformRandomTree g(2, 3, 3, -10, 10);
  const auto r = parallel_er_threads(g, cfg(3, 1), 8, 64);
  EXPECT_EQ(r.value, negmax_search(g, 3).value);
}

TEST(ThreadExecutor, RepeatedBatchedRunsAreStableInValue) {
  const UniformRandomTree g(5, 5, 7, -100, 100);
  const Value oracle = negmax_search(g, 5).value;
  for (int i = 0; i < 5; ++i) {
    const auto r = parallel_er_threads(g, cfg(5, 3), 4, 8);
    EXPECT_EQ(r.value, oracle) << "run " << i;
  }
}

// --- sharded scheduling / work stealing -----------------------------------

TEST(ThreadExecutor, DeterminismSweepShards) {
  // The sharded work-stealing scheduler must return the alpha-beta root
  // value at every shards × threads × batch point, under real OS
  // nondeterminism — the schedule moves, the value must not.
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    const UniformRandomTree g(4, 5, seed + 90, -100, 100);
    const Value oracle = negmax_search(g, 5).value;
    for (const int shards : {1, 2, 4, 8}) {
      for (const int threads : {1, 2, 4, 8}) {
        for (const int batch : {1, 4}) {
          const auto r = parallel_er_threads(g, cfg(5, 3), threads, batch,
                                             shards);
          EXPECT_EQ(r.value, oracle)
              << "seed=" << seed << " shards=" << shards
              << " threads=" << threads << " batch=" << batch;
        }
      }
    }
  }
}

TEST(ThreadExecutor, ShardSweepOthelloMidgame) {
  const othello::OthelloGame g(othello::paper_position(2));
  const Value oracle = negmax_search(g, 4).value;
  for (const int shards : {1, 2, 4, 8}) {
    for (const int threads : {1, 2, 4, 8}) {
      for (const int batch : {1, 4}) {
        const auto r =
            parallel_er_threads(g, cfg(4, 2), threads, batch, shards);
        EXPECT_EQ(r.value, oracle) << "shards=" << shards
                                   << " threads=" << threads
                                   << " batch=" << batch;
      }
    }
  }
}

TEST(ThreadExecutor, StealCountersCoherent) {
  const UniformRandomTree g(4, 5, 23, -100, 100);
  core::EngineConfig c = cfg(5, 3);
  c.heap_shards = 4;
  core::Engine<UniformRandomTree> engine(g, c);
  runtime::ThreadExecutor<core::Engine<UniformRandomTree>> exec(4);
  exec.with_batch_size(2);
  const auto report = exec.run(engine);
  EXPECT_TRUE(engine.done());
  EXPECT_EQ(report.shards, 4);
  EXPECT_EQ(report.units, engine.stats().units_processed);
  const auto& s = report.sched;
  EXPECT_GE(s.steal_attempts, s.steal_hits);
  EXPECT_EQ(s.steal_misses(), s.steal_attempts - s.steal_hits);
  EXPECT_EQ(s.batch_hist.count(), s.batches);
}

TEST(ThreadExecutor, LegacyPathKeepsStealCountersZero) {
  // shards == 1 must take the PR 2 single-heap scheduler verbatim: no
  // steals, no deferrals, no global-refill fallbacks recorded.
  const UniformRandomTree g(4, 5, 29, -100, 100);
  core::Engine<UniformRandomTree> engine(g, cfg(5, 3));
  runtime::ThreadExecutor<core::Engine<UniformRandomTree>> exec(4);
  exec.with_batch_size(4);
  const auto report = exec.run(engine);
  EXPECT_EQ(report.shards, 1);
  EXPECT_EQ(report.sched.steal_attempts, 0u);
  EXPECT_EQ(report.sched.steal_hits, 0u);
  EXPECT_EQ(report.sched.flush_deferrals, 0u);
  EXPECT_EQ(report.sched.global_refills, 0u);
}

TEST(ThreadExecutor, MoreShardsThanThreadsCompletes) {
  // Workers must drain shards nobody calls home (global-refill fallback).
  const UniformRandomTree g(4, 5, 31, -100, 100);
  const auto r = parallel_er_threads(g, cfg(5, 3), 2, 2, 8);
  EXPECT_EQ(r.value, negmax_search(g, 5).value);
}

TEST(ThreadExecutor, MoreThreadsThanShardsCompletes) {
  // Several workers share one home shard; stealing spreads the surplus.
  const UniformRandomTree g(4, 5, 37, -100, 100);
  const auto r = parallel_er_threads(g, cfg(5, 3), 8, 2, 2);
  EXPECT_EQ(r.value, negmax_search(g, 5).value);
}

TEST(ThreadExecutor, ShardedTinyTreeManyThreads) {
  // More threads than work units on the stealing path: park/wake must not
  // deadlock when most workers never see a unit.
  const UniformRandomTree g(2, 2, 3, -10, 10);
  const auto r = parallel_er_threads(g, cfg(2, 1), 8, 1, 4);
  EXPECT_EQ(r.value, negmax_search(g, 2).value);
}

// --- per-shard locking / flat-combining stress ----------------------------

TEST(ThreadExecutor, CrossShardCommitStress) {
  // Hammer the flat-combining commit path under real concurrency: 8 shards
  // with 8 threads at the smallest batch sizes maximizes the number of
  // concurrent publishers whose records back values up ancestor chains
  // crossing shard boundaries, while the stealing scheduler keeps
  // shard-local refills and steals racing the combiner's multi-shard apply
  // rounds.  This is the test a ThreadSanitizer build exists for.
  const UniformRandomTree g(5, 5, 71, -100, 100);
  const Value oracle = negmax_search(g, 5).value;
  for (const int batch : {1, 2}) {
    for (int rep = 0; rep < 3; ++rep) {
      const auto r = parallel_er_threads(g, cfg(5, 3), 8, batch, 8);
      EXPECT_EQ(r.value, oracle) << "batch=" << batch << " rep=" << rep;
      EXPECT_GT(r.report.combine_records, 0u)
          << "every commit publishes a combine record";
      EXPECT_GE(r.report.combine_records,
                r.report.combine_peer_applied)
          << "peer-applied records are a subset of all records";
    }
  }
}

TEST(ThreadExecutor, DirectProtocolCrossShardHammer) {
  // Drive the engine's raw acquire/compute/commit protocol from racing
  // threads that mix shard-local refills (the stealing path) with global
  // multi-shard acquires, so combiner drain rounds, shard pops and
  // whole-heap lock sweeps all run concurrently with no executor policy
  // smoothing the interleavings.
  const UniformRandomTree g(4, 5, 73, -100, 100);
  core::EngineConfig c = cfg(5, 3);
  c.heap_shards = 8;
  using EngineT = core::Engine<UniformRandomTree>;
  EngineT engine(g, c);
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&engine, t] {
      std::vector<core::WorkItem> items;
      std::vector<EngineT::CommitEntry> batch;
      std::size_t shard = static_cast<std::size_t>(t) % engine.shard_count();
      while (!engine.done()) {
        items.clear();
        batch.clear();
        std::size_t got = engine.acquire_batch_shard(shard, 2, items);
        if (got == 0) got = engine.acquire_batch(2, items);
        if (got == 0) {
          shard = (shard + 1) % engine.shard_count();
          std::this_thread::yield();
          continue;
        }
        for (const core::WorkItem& item : items)
          batch.push_back({item, engine.compute(item)});
        engine.commit_batch(batch);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  ASSERT_TRUE(engine.done());
  EXPECT_EQ(engine.root_value(), negmax_search(g, 5).value);
  const core::EngineLockStats ls = engine.lock_stats();
  EXPECT_GT(ls.combine_records, 0u);
  EXPECT_GT(ls.combine_batches, 0u)
      << "records only flow through drain rounds";
  EXPECT_GE(ls.combine_records, ls.combine_batches)
      << "every drain round applies at least one record";
  EXPECT_GT(ls.total_acquisitions(), 0u);
}

TEST(ThreadExecutor, NearRootRaiseHammer) {
  // ThreadSanitizer target for the epoch-publication path (DESIGN.md §13):
  // a *low* publish frontier (2) makes almost every commit a truncated one
  // whose backup defers at the frontier, so raising the root's value is
  // nearly always a continuation racing other workers' truncated applies,
  // lock-free window_of/is_dead validated reads, and publish_node CAS
  // loops on the same near-root nodes.  Raw protocol drivers — no executor
  // batching or parking — maximize the interleavings.  The root value must
  // come out exact every round.
  const UniformRandomTree g(4, 5, 79, -100, 100);
  const Value oracle = negmax_search(g, 5).value;
  for (int rep = 0; rep < 3; ++rep) {
    core::EngineConfig c = cfg(5, 3);
    c.heap_shards = 4;
    c.publish_frontier = 2;
    c.placement = core::PlacementMode::kSubtreeAffinity;
    using EngineT = core::Engine<UniformRandomTree>;
    EngineT engine(g, c);
    constexpr int kThreads = 4;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&engine, t] {
        std::vector<core::WorkItem> items;
        std::vector<EngineT::CommitEntry> batch;
        const auto home = static_cast<std::size_t>(t) % engine.shard_count();
        while (!engine.done()) {
          items.clear();
          batch.clear();
          if (engine.acquire_batch_shard(home, 1, items) == 0 &&
              engine.acquire_batch(1, items) == 0) {
            std::this_thread::yield();
            continue;
          }
          for (const core::WorkItem& item : items)
            batch.push_back({item, engine.compute(item)});
          engine.commit_batch(batch);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    ASSERT_TRUE(engine.done());
    EXPECT_EQ(engine.root_value(), oracle) << "rep=" << rep;
    const core::EngineLockStats ls = engine.lock_stats();
    EXPECT_GT(ls.truncated_records, 0u)
        << "a frontier of 2 must truncate most commits";
    EXPECT_GT(ls.frontier_continuations, 0u)
        << "backups past the frontier must escalate as continuations";
    EXPECT_GT(ls.root_publishes, 0u)
        << "near-root mutations must publish epochs";
  }
}

TEST(ThreadExecutor, FrontierDeterminismSweep) {
  // The executor-level counterpart of EngineFrontier's twin test: at every
  // shard count and with truncation on, repeated multi-threaded runs must
  // reproduce the frontier-off root value exactly.
  const UniformRandomTree g(4, 5, 83, -100, 100);
  const Value oracle = negmax_search(g, 5).value;
  for (const int shards : {1, 2, 4, 8}) {
    for (const int frontier : {0, 4}) {
      core::EngineConfig c = cfg(5, 3);
      c.heap_shards = shards;
      c.publish_frontier = frontier;
      const auto r = parallel_er_threads(g, c, 4, 1, shards);
      EXPECT_EQ(r.value, oracle)
          << "shards=" << shards << " frontier=" << frontier;
    }
  }
}

// --- topology-aware placement (runtime/topology.hpp) -----------------------

TEST(Topology, ParseCpulistHandlesRangesAndSingles) {
  EXPECT_EQ(runtime::parse_cpulist("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(runtime::parse_cpulist("5"), (std::vector<int>{5}));
  EXPECT_EQ(runtime::parse_cpulist("0-2\n"), (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(runtime::parse_cpulist("").empty());
  EXPECT_TRUE(runtime::parse_cpulist("garbage").empty());
}

TEST(Topology, SingleNodePlanIsHistoricalRoundRobin) {
  // One node must reproduce `home = worker % shards` exactly — topology
  // awareness is a refinement, never a behavior change on flat machines.
  const auto topo = runtime::CpuTopology::uniform(1, 8);
  const auto plan = runtime::plan_worker_placement(5, 4, topo);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(plan.home_shard[static_cast<std::size_t>(i)],
              static_cast<std::size_t>(i) % 4u);
    EXPECT_EQ(plan.node[static_cast<std::size_t>(i)], 0);
  }
}

TEST(Topology, TwoNodePlanKeepsShardGroupsDisjoint) {
  // 8 workers over 2 nodes × 4 CPUs and 8 shards: each node's workers get
  // a contiguous half of the shard range, and the halves do not overlap.
  const auto topo = runtime::CpuTopology::uniform(2, 4);
  const auto plan = runtime::plan_worker_placement(8, 8, topo);
  for (int i = 0; i < 8; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(plan.node[idx], i < 4 ? 0 : 1) << "node-major CPU fill";
    if (i < 4)
      EXPECT_LT(plan.home_shard[idx], 4u) << "node 0 homes in [0,4)";
    else
      EXPECT_GE(plan.home_shard[idx], 4u) << "node 1 homes in [4,8)";
  }
}

TEST(Topology, OversubscribedPlansStayValid) {
  // More nodes than shards, more workers than CPUs: every home must still
  // land inside [0, shards).
  for (const auto& [nodes, per_node, threads, shards] :
       {std::tuple{4, 1, 4, 2}, std::tuple{2, 2, 16, 3},
        std::tuple{3, 2, 7, 1}}) {
    const auto topo = runtime::CpuTopology::uniform(
        static_cast<std::size_t>(nodes), static_cast<std::size_t>(per_node));
    const auto plan = runtime::plan_worker_placement(
        threads, static_cast<std::size_t>(shards), topo);
    for (int i = 0; i < threads; ++i)
      EXPECT_LT(plan.home_shard[static_cast<std::size_t>(i)],
                static_cast<std::size_t>(shards))
          << "nodes=" << nodes << " threads=" << threads
          << " shards=" << shards;
  }
}

TEST(Topology, ExecutorAcceptsExplicitTopologyAndPinning) {
  // End-to-end: a synthetic 2-node topology through with_topology() (and
  // best-effort pinning, which may silently fail in a sandbox) must not
  // change the result.
  const UniformRandomTree g(4, 5, 87, -100, 100);
  const Value oracle = negmax_search(g, 5).value;
  core::EngineConfig c = cfg(5, 3);
  c.heap_shards = 4;
  core::Engine<UniformRandomTree> engine(g, c);
  runtime::ThreadExecutor<core::Engine<UniformRandomTree>> exec(4);
  exec.with_batch_size(1)
      .with_topology(runtime::CpuTopology::uniform(2, 2))
      .with_pin_workers(true);
  const auto report = exec.run(engine);
  EXPECT_EQ(engine.root_value(), oracle);
  EXPECT_GT(report.units, 0u);
}

}  // namespace
}  // namespace ers
