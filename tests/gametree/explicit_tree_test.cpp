#include "gametree/explicit_tree.hpp"

#include <gtest/gtest.h>

#include <array>

namespace ers {
namespace {

TEST(ExplicitTree, SingleNodeIsLeafRoot) {
  ExplicitTree t;
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.is_leaf(t.root()));
  EXPECT_EQ(t.height(), 0);
  t.set_value(0, 7);
  EXPECT_EQ(t.evaluate(0), 7);
  EXPECT_EQ(t.negmax_value(), 7);
}

TEST(ExplicitTree, AddChildBuildsStructure) {
  ExplicitTree t;
  const auto a = t.add_child(0, 3);
  const auto b = t.add_child(0, -5);
  EXPECT_EQ(t.num_children(0), 2u);
  EXPECT_EQ(t.child(0, 0), a);
  EXPECT_EQ(t.child(0, 1), b);
  EXPECT_EQ(t.height(), 1);
  // Root value = max(-3, 5) = 5.
  EXPECT_EQ(t.negmax_value(), 5);
}

TEST(ExplicitTree, FromSpecTranscribesLiteralTree) {
  // Two-level tree: root with children valued (via grandchildren) 4 and -1.
  const TreeSpec spec{
      .value = 0,
      .kids = {
          TreeSpec{.value = 0, .kids = {TreeSpec{.value = 4, .kids = {}},
                                        TreeSpec{.value = 9, .kids = {}}}},
          TreeSpec{.value = -1, .kids = {}},
      }};
  const auto t = ExplicitTree::from_spec(spec);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.num_children(0), 2u);
  // Child 0: max(-4, -9) = -4; child 1: leaf -1.
  // Root: max(4, 1) = 4.
  EXPECT_EQ(t.negmax_value(), 4);
}

TEST(ExplicitTree, CompleteTreeLayout) {
  const std::array<Value, 4> leaves{1, 2, 3, 4};
  const auto t = ExplicitTree::complete(2, 2, leaves);
  EXPECT_EQ(t.size(), 7u);
  EXPECT_EQ(t.height(), 2);
  EXPECT_EQ(t.num_children(0), 2u);
  // Leaves appear left-to-right.
  const auto l = t.child(t.child(0, 0), 0);
  EXPECT_EQ(t.evaluate(l), 1);
  const auto r = t.child(t.child(0, 1), 1);
  EXPECT_EQ(t.evaluate(r), 4);
}

TEST(ExplicitTree, CompleteDegreeOneChain) {
  const std::array<Value, 1> leaves{42};
  const auto t = ExplicitTree::complete(1, 3, leaves);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.height(), 3);
  // Odd number of negations along depth 3: -(-(-42)) = -42.
  EXPECT_EQ(t.negmax_value(), -42);
}

TEST(ExplicitTree, NegmaxAlternatesPerspective) {
  const std::array<Value, 4> leaves{10, -10, 3, 7};
  const auto t = ExplicitTree::complete(2, 2, leaves);
  // Left child: max(-10, 10) = 10; right child: max(-3, -7) = -3.
  // Root: max(-10, 3) = 3.
  EXPECT_EQ(t.negmax_value(), 3);
}

TEST(ExplicitTree, GenerateChildrenAppends) {
  ExplicitTree t;
  t.add_child(0, 1);
  t.add_child(0, 2);
  std::vector<ExplicitTree::Position> out{99};
  t.generate_children(0, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 99u);  // existing contents preserved
}

TEST(ExplicitTree, SatisfiesGameConcept) {
  static_assert(Game<ExplicitTree>);
  SUCCEED();
}

}  // namespace
}  // namespace ers
