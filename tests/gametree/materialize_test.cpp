#include <gtest/gtest.h>

#include "gametree/explicit_tree.hpp"
#include "randomtree/random_tree.hpp"

namespace ers {
namespace {

TEST(Materialize, PreservesShapeOfRandomTree) {
  const UniformRandomTree g(3, 2, /*seed=*/17);
  const ExplicitTree t = materialize(g, 2);
  // Complete ternary tree of height 2: 1 + 3 + 9 nodes.
  EXPECT_EQ(t.size(), 13u);
  EXPECT_EQ(t.height(), 2);
  EXPECT_EQ(t.num_children(0), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(t.num_children(t.child(0, i)), 3u);
}

TEST(Materialize, LeafValuesMatchSource) {
  const UniformRandomTree g(2, 3, /*seed=*/5);
  const ExplicitTree t = materialize(g, 3);
  EXPECT_EQ(t.negmax_value(), [&] {
    // Direct recursive negmax on the source game.
    auto rec = [&](auto&& self, const UniformRandomTree::Position& p,
                   int remaining) -> Value {
      std::vector<UniformRandomTree::Position> kids;
      if (remaining > 0) g.generate_children(p, kids);
      if (kids.empty()) return g.evaluate(p);
      Value m = -kValueInf;
      for (const auto& k : kids) m = std::max(m, negate(self(self, k, remaining - 1)));
      return m;
    };
    return rec(rec, g.root(), 3);
  }());
}

TEST(Materialize, DepthLimitTruncates) {
  const UniformRandomTree g(4, 10, /*seed=*/3);
  const ExplicitTree t = materialize(g, 2);
  EXPECT_EQ(t.size(), 1u + 4u + 16u);
  EXPECT_EQ(t.height(), 2);
}

TEST(Materialize, DepthZeroIsSingleLeaf) {
  const UniformRandomTree g(4, 4, /*seed=*/3);
  const ExplicitTree t = materialize(g, 0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.evaluate(0), g.evaluate(g.root()));
}

TEST(Materialize, InteriorStaticValuesCopied) {
  const UniformRandomTree g(2, 2, /*seed=*/123);
  const ExplicitTree t = materialize(g, 2);
  std::vector<UniformRandomTree::Position> kids;
  g.generate_children(g.root(), kids);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(t.evaluate(t.child(0, 0)), g.evaluate(kids[0]));
  EXPECT_EQ(t.evaluate(t.child(0, 1)), g.evaluate(kids[1]));
}

}  // namespace
}  // namespace ers
