#!/usr/bin/env python3
"""Lint the telemetry outputs the benches emit (DESIGN.md §16).

    check_prom_format.py EXPOSITION.prom [...]
    check_prom_format.py --samples SAMPLES.json [...]

Default mode checks Prometheus text exposition files (obs/prometheus.hpp,
written by --prom-out) against the subset of the format the scrapers and
the golden test rely on:

  * every series line parses as  name[{labels}] value  with a valid metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a finite value;
  * each distinct metric is introduced by # HELP then # TYPE before its
    first series, and only once;
  * histogram families are complete and consistent: their `le` buckets are
    cumulative (monotone non-decreasing), end with le="+Inf", and the +Inf
    count equals the _count series — the invariant scrape-side aggregation
    (rate() over le vectors) silently miscomputes without;
  * no duplicate series (same name + label set twice).

--samples mode instead validates sampler JSON (obs/sampler.hpp, written by
--sample-out): top-level keys interval_ns/dropped/samples, every row holds
the nine schema fields as non-negative integers, timestamps are strictly
increasing multiples of interval_ns, and cumulative fields never decrease.

Exit codes: 0 clean, 1 lint errors, 2 unusable input (missing/unreadable
file or unparseable JSON).  Errors print one line each, prefixed with
file:line where the format makes a line meaningful.
"""

import argparse
import json
import math
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
# One exposition series line: name, optional {labels}, value.  Labels are
# matched coarsely here and split by parse_labels below.
SERIES_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$")
LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

SAMPLE_FIELDS = ("ts_ns", "units", "nodes", "live_nodes", "queued",
                 "waste_units", "waste_ns", "tt_probes", "tt_hits")


class Lint:
    def __init__(self, path):
        self.path = path
        self.errors = 0

    def error(self, msg, line=None):
        where = f"{self.path}:{line}" if line is not None else self.path
        print(f"{where}: {msg}", file=sys.stderr)
        self.errors += 1


def parse_labels(text):
    """{k="v",...} -> dict, or None if the block has trailing junk."""
    if not text:
        return {}
    body = text[1:-1]
    labels = dict(LABEL_RE.findall(body))
    # Rebuild to verify the block was only well-formed pairs.
    rebuilt = ",".join(f'{k}="{v}"' for k, v in LABEL_RE.findall(body))
    return labels if rebuilt == body else None


def base_family(name):
    """Histogram family name for a _bucket/_sum/_count series, else name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    return name, ""


def check_exposition(path):
    lint = Lint(path)
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_prom_format: cannot read {path}: {e.strerror}",
              file=sys.stderr)
        return 2

    helped, typed = {}, {}          # metric -> first line seen
    types = {}                      # metric -> declared TYPE
    seen_series = set()             # (name, sorted labels) for dup detection
    buckets = {}                    # family -> list of (lineno, le, value)
    counts, sums = {}, {}           # family -> _count/_sum value

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = re.match(r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*) (.+)$",
                         line)
            if m is None:
                lint.error("malformed comment line (expected '# HELP name "
                           "text' or '# TYPE name type')", lineno)
                continue
            kind, metric = m.group(1), m.group(2)
            reg = helped if kind == "HELP" else typed
            if metric in reg:
                lint.error(f"duplicate # {kind} for {metric} "
                           f"(first at line {reg[metric]})", lineno)
            reg.setdefault(metric, lineno)
            if kind == "TYPE":
                if metric in seen_series_names(seen_series):
                    lint.error(f"# TYPE {metric} after its first series",
                               lineno)
                types[metric] = m.group(3)
            continue

        m = SERIES_RE.match(line)
        if m is None:
            lint.error("unparseable series line", lineno)
            continue
        name, label_text, value_text = m.groups()
        labels = parse_labels(label_text)
        if labels is None:
            lint.error(f"malformed label block on {name}", lineno)
            continue
        try:
            value = float(value_text)
        except ValueError:
            lint.error(f"non-numeric value {value_text!r} on {name}", lineno)
            continue
        if math.isnan(value) or math.isinf(value):
            lint.error(f"non-finite value on {name}", lineno)

        key = (name, tuple(sorted(labels.items())))
        if key in seen_series:
            lint.error(f"duplicate series {name}{label_text or ''}", lineno)
        seen_series.add(key)

        family, suffix = base_family(name)
        meta_name = family if suffix and types.get(family) == "histogram" \
            else name
        if meta_name not in helped:
            lint.error(f"series {name} has no preceding # HELP {meta_name}",
                       lineno)
            helped.setdefault(meta_name, lineno)  # report once per metric
        if meta_name not in typed:
            lint.error(f"series {name} has no preceding # TYPE {meta_name}",
                       lineno)
            typed.setdefault(meta_name, lineno)

        if suffix == "_bucket" and types.get(family) == "histogram":
            le = labels.get("le")
            if le is None:
                lint.error(f"{name} bucket without an le label", lineno)
            else:
                buckets.setdefault(family, []).append((lineno, le, value))
        elif suffix == "_count" and types.get(family) == "histogram":
            counts[family] = (lineno, value)
        elif suffix == "_sum" and types.get(family) == "histogram":
            sums[family] = (lineno, value)

    for family, series in buckets.items():
        prev = -1.0
        for lineno, le, value in series:
            if value < prev:
                lint.error(f"{family}_bucket le=\"{le}\" = {value:g} below "
                           f"previous bucket {prev:g} (le series must be "
                           "cumulative)", lineno)
            prev = value
        last_lineno, last_le, last_value = series[-1]
        if last_le != "+Inf":
            lint.error(f"{family}_bucket series does not end at le=\"+Inf\"",
                       last_lineno)
        if family not in counts:
            lint.error(f"histogram {family} has buckets but no _count series")
        elif counts[family][1] != last_value:
            lint.error(f"{family}_bucket{{le=\"+Inf\"}} = {last_value:g} but "
                       f"_count = {counts[family][1]:g}", counts[family][0])
        if family not in sums:
            lint.error(f"histogram {family} has buckets but no _sum series")

    if lint.errors == 0:
        print(f"{path}: {len(seen_series)} series, "
              f"{len(buckets)} histogram(s): ok")
    return 1 if lint.errors else 0


def seen_series_names(seen_series):
    return {name for name, _ in seen_series}


def check_samples(path):
    lint = Lint(path)
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"check_prom_format: cannot read {path}: {e.strerror}",
              file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        print(f"check_prom_format: {path}: unparseable JSON: {e}",
              file=sys.stderr)
        return 2

    for key in ("interval_ns", "dropped", "samples"):
        if key not in doc:
            lint.error(f"missing top-level key {key!r}")
    if lint.errors:
        return 1
    interval = doc["interval_ns"]
    if not isinstance(interval, int) or interval <= 0:
        lint.error(f"interval_ns must be a positive integer, got {interval!r}")
        return 1
    if not isinstance(doc["samples"], list):
        lint.error("samples must be an array")
        return 1

    prev = None
    for i, row in enumerate(doc["samples"]):
        if not isinstance(row, dict):
            lint.error(f"samples[{i}] is not an object")
            continue
        for field in SAMPLE_FIELDS:
            v = row.get(field)
            if not isinstance(v, int) or v < 0:
                lint.error(f"samples[{i}].{field} must be a non-negative "
                           f"integer, got {v!r}")
        ts = row.get("ts_ns")
        if isinstance(ts, int):
            if ts % interval != 0:
                lint.error(f"samples[{i}].ts_ns = {ts} is not a multiple of "
                           f"interval_ns = {interval}")
            if prev is not None and isinstance(prev.get("ts_ns"), int) \
                    and ts <= prev["ts_ns"]:
                lint.error(f"samples[{i}].ts_ns = {ts} does not increase "
                           f"past {prev['ts_ns']}")
        if prev is not None:
            # Counters are cumulative snapshots; queued/live_nodes are gauges.
            for field in ("units", "nodes", "waste_units", "waste_ns",
                          "tt_probes", "tt_hits"):
                a, b = prev.get(field), row.get(field)
                if isinstance(a, int) and isinstance(b, int) and b < a:
                    lint.error(f"samples[{i}].{field} = {b} decreased from "
                               f"{a} (cumulative field)")
        prev = row

    if lint.errors == 0:
        print(f"{path}: {len(doc['samples'])} sample(s), "
              f"{doc['dropped']} dropped: ok")
    return 1 if lint.errors else 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="+")
    ap.add_argument("--samples", action="store_true",
                    help="validate sampler JSON instead of exposition text")
    args = ap.parse_args()
    check = check_samples if args.samples else check_exposition
    rc = 0
    for path in args.files:
        rc = max(rc, check(path))
    return rc


if __name__ == "__main__":
    sys.exit(main())
