#!/usr/bin/env python3
"""Bench-regression guard: diff a freshly generated BENCH_*.json against the
committed baseline and fail on a throughput regression.

    check_bench_regression.py BASELINE FRESH [--metric units_per_sec]
                              [--threshold 0.25] [--group shards,threads,batch]
                              [--direction min|max]

Both files are either JSON-lines (one flat object per bench row, the schema
obs::write_bench_json emits) or a google-benchmark --benchmark_out file (a
single object with a "benchmarks" array; each entry is flattened into a row
keyed by "name", with its counters promoted to top-level fields — compare
with --group name --metric <counter>).  Rows are grouped by the --group key
fields and the metric is averaged within each group — single rows on a
loaded CI runner are too noisy to gate on, but a whole configuration's mean
dropping by more than --threshold (default 25%) is a real regression, and
the job fails.  --direction picks the bad side: "min" (default) fails when
the fresh mean falls below baseline (throughput metrics), "max" fails when
it rises above (cost metrics such as peak_rss_kb or bytes_per_node).

A group present in the fresh run but absent from the baseline is FATAL, not
a silent skip: an unguarded sweep point would pass forever, which is
exactly how a regression guard rots.  The failure message states the stage
to run — regenerate the baseline from the new bench and commit it.  Groups
only in the baseline stay non-fatal notes (a bench losing a sweep point is
visible in review as a baseline diff).

Exit codes: 0 clean, 1 regression found or baseline key missing, 2 unusable
input (missing file, no parseable rows, or no comparable groups — a guard
that silently compares nothing would pass forever).
"""

import argparse
import json
import sys


def flatten_google_benchmark(doc):
    """Rows from a --benchmark_out file: one per entry, counters promoted."""
    rows = []
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        row = {k: v for k, v in entry.items()
               if isinstance(v, (str, int, float))}
        for counter, value in entry.get("counters", {}).items():
            row.setdefault(counter, value)
        rows.append(row)
    return rows


def load_rows(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        print(f"check_bench_regression: cannot read {path}: {e.strerror}",
              file=sys.stderr)
        sys.exit(2)
    # google-benchmark emits one multi-line object holding a "benchmarks"
    # array; everything else here is JSON-lines.
    try:
        doc = json.loads(text)
        if isinstance(doc, dict) and "benchmarks" in doc:
            return flatten_google_benchmark(doc)
    except json.JSONDecodeError:
        pass
    rows = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            print(f"check_bench_regression: {path}:{lineno}: unparseable row skipped",
                  file=sys.stderr)
    return rows


def group_means(rows, keys, metric):
    acc = {}
    for r in rows:
        if metric not in r:
            continue
        key = tuple((k, r.get(k)) for k in keys)
        acc.setdefault(key, []).append(float(r[metric]))
    return {k: sum(v) / len(v) for k, v in acc.items()}


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--metric", default="units_per_sec")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="fatal fractional drop, e.g. 0.25 = fail below 75%% of baseline")
    ap.add_argument("--group", default="shards,threads,batch",
                    help="comma-separated row fields that identify one configuration")
    ap.add_argument("--direction", choices=("min", "max"), default="min",
                    help="min: lower-is-worse (throughput); "
                         "max: higher-is-worse (memory/cost metrics)")
    args = ap.parse_args()
    keys = [k for k in args.group.split(",") if k]

    base_rows = load_rows(args.baseline)
    fresh_rows = load_rows(args.fresh)
    if not base_rows:
        print(f"check_bench_regression: {args.baseline} holds no rows", file=sys.stderr)
        return 2
    if not fresh_rows:
        print(f"check_bench_regression: {args.fresh} holds no rows", file=sys.stderr)
        return 2

    base = group_means(base_rows, keys, args.metric)
    fresh = group_means(fresh_rows, keys, args.metric)
    shared = sorted(set(base) & set(fresh))
    if not shared:
        print("check_bench_regression: no comparable groups "
              f"(group keys: {','.join(keys)}; metric: {args.metric}).\n"
              f"If {args.fresh} comes from a new bench, generate its baseline "
              f"on the reference machine and commit it as {args.baseline}.",
              file=sys.stderr)
        return 2
    for key in sorted(set(base) - set(fresh)):
        print(f"  note: group only in baseline: {fmt_key(key)}")
    unguarded = sorted(set(fresh) - set(base))
    for key in unguarded:
        print(f"  MISSING BASELINE: {fmt_key(key)}", file=sys.stderr)

    regressions = []
    for key in shared:
        b, f = base[key], fresh[key]
        ratio = f / b if b > 0 else 1.0
        if args.direction == "min":
            bad = ratio < 1.0 - args.threshold
        else:
            bad = ratio > 1.0 + args.threshold
        status = "REGRESSION" if bad else "ok"
        print(f"  {status:>10}  {fmt_key(key)}: {args.metric} {b:,.0f} -> {f:,.0f} "
              f"({(ratio - 1.0) * 100:+.1f}%)")
        if status == "REGRESSION":
            regressions.append(key)

    if regressions:
        moved = "dropped" if args.direction == "min" else "grew"
        print(f"check_bench_regression: {len(regressions)}/{len(shared)} groups {moved} "
              f">{args.threshold * 100:.0f}% on {args.metric}", file=sys.stderr)
        return 1
    if unguarded:
        print(f"check_bench_regression: {len(unguarded)} fresh group(s) have no "
              f"baseline entry in {args.baseline} — these sweep points are "
              "UNGUARDED and the guard refuses to pass them silently.\n"
              "To fix, regenerate and commit the baseline:\n"
              f"  1. build and run the bench that produced {args.fresh} on the "
              "reference machine\n"
              f"  2. copy its output over {args.baseline}\n"
              "  3. commit the updated baseline together with the change that "
              "added the sweep point", file=sys.stderr)
        return 1
    print(f"check_bench_regression: {len(shared)} groups within "
          f"{args.threshold * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
