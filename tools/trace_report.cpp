// trace_report: offline analyzer for Perfetto traces written by the search
// executors (DESIGN.md §11, EXPERIMENTS.md "tracing a run").
//
//   trace_report <trace.json> [--pid N]
//
// Prints per-worker busy/starve/lock timelines, the steal-migration
// matrix, scheduling event counts, and the critical path through the unit
// dependency graph.  --pid selects one session of a multi-session file
// (e.g. the simulated half of a sim-vs-threads diff trace); the default is
// the first session in the file.

#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace_analysis.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  ers::CliArgs args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr, "usage: trace_report <trace.json> [--pid N]\n");
    return args.has("help") ? 0 : 2;
  }
  const std::string path = args.positional().front();
  const int pid = static_cast<int>(args.get_int("pid", -1));

  // Stage the load so a missing file, a truncated/unparseable file, and a
  // well-formed file of the wrong shape each get their own diagnostic —
  // CI jobs grep these messages, and "cannot load" hides which step died.
  std::string text;
  if (!ers::obs::read_file(path, text)) {
    std::fprintf(stderr, "trace_report: cannot open %s: no such file or not readable\n",
                 path.c_str());
    return 1;
  }
  ers::obs::JsonValue root;
  if (!ers::obs::parse_json(text, root)) {
    std::fprintf(stderr,
                 "trace_report: %s is not valid JSON — truncated trace? "
                 "(%zu bytes read; a run killed mid-write leaves an "
                 "unterminated traceEvents array)\n",
                 path.c_str(), text.size());
    return 1;
  }
  const ers::obs::JsonValue* array = root.find("traceEvents");
  if (array == nullptr || !array->is_array()) {
    std::fprintf(stderr,
                 "trace_report: %s parses but has no traceEvents array — "
                 "not a Perfetto trace written by trace_writer\n",
                 path.c_str());
    return 1;
  }
  std::vector<ers::obs::TraceEvent> events;
  if (!ers::obs::parse_perfetto(text, events, pid)) {
    std::fprintf(stderr, "trace_report: cannot load %s\n", path.c_str());
    return 1;
  }
  if (events.empty()) {
    std::fprintf(stderr,
                 "trace_report: %s holds no schema events%s\n", path.c_str(),
                 pid >= 0 ? " for that pid" : "");
    return 1;
  }
  std::printf("%s: %zu events\n\n", path.c_str(), events.size());
  const ers::obs::TraceReport rep = ers::obs::analyze_trace(events);
  std::fputs(ers::obs::render_report(rep).c_str(), stdout);
  return 0;
}
