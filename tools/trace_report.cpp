// trace_report: offline analyzer for Perfetto traces written by the search
// executors (DESIGN.md §11, EXPERIMENTS.md "tracing a run").
//
//   trace_report <trace.json> [--pid N] [--metrics metrics.json]
//
// Prints per-worker busy/starve/lock timelines, the steal-migration
// matrix, scheduling event counts, and the critical path through the unit
// dependency graph.  --pid selects one session of a multi-session file
// (e.g. the simulated half of a sim-vs-threads diff trace); the default is
// the first session in the file.  --metrics points at the consolidated
// metrics snapshot the same run wrote (bench --metrics F); when given, the
// report appends a memory section with the engine.mem.* node-storage
// gauges (DESIGN.md §15) so trace and occupancy read side by side.

#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace_analysis.hpp"
#include "util/cli.hpp"

namespace {

/// Append the node-storage gauges from a metrics snapshot (obs::MetricsRegistry
/// JSON: one flat object of name -> value).  Non-fatal on absent keys — older
/// snapshots predate the memory section — but a file that exists yet cannot be
/// read or parsed is an error, matching the trace staging below.
int print_memory_section(const std::string& path) {
  std::string text;
  if (!ers::obs::read_file(path, text)) {
    std::fprintf(stderr,
                 "trace_report: cannot open metrics file %s: no such file or "
                 "not readable\n",
                 path.c_str());
    return 1;
  }
  ers::obs::JsonValue root;
  if (!ers::obs::parse_json(text, root) || !root.is_object()) {
    std::fprintf(stderr,
                 "trace_report: %s is not a JSON object — not a metrics "
                 "snapshot written by MetricsRegistry\n",
                 path.c_str());
    return 1;
  }
  static constexpr const char* kMemKeys[] = {
      "engine.mem.live_nodes",     "engine.mem.hot_bytes",
      "engine.mem.position_bytes", "engine.mem.cold_allocated",
      "engine.mem.cold_live",      "engine.mem.cold_reclaimed",
      "engine.mem.slab_bytes",     "engine.mem.peak_bytes",
  };
  std::printf("\nmemory (engine node storage, %s):\n", path.c_str());
  bool any = false;
  for (const char* key : kMemKeys) {
    const ers::obs::JsonValue* v = root.find(key);
    if (v == nullptr || !v->is_number()) continue;
    std::printf("  %-28s %.0f\n", key + 7 /* drop "engine." */, v->as_double());
    any = true;
  }
  if (!any)
    std::printf("  (no engine.mem.* gauges — snapshot from a pre-§15 build "
                "or a bench that runs no engine)\n");

  // Waste ledger totals (DESIGN.md §16), printed beside the trace's own
  // speculation-waste replay so the two attributions read side by side.
  static constexpr const char* kWasteKeys[] = {
      "engine.waste.total_cancels",
      "engine.waste.total_units",
      "engine.waste.total_ns",
      "engine.waste.bound_change.cancels",
      "engine.waste.bound_change.units",
      "engine.waste.bound_change.compute_ns",
      "engine.waste.sibling_resolution.cancels",
      "engine.waste.sibling_resolution.units",
      "engine.waste.sibling_resolution.compute_ns",
      "engine.waste.dead_drop.cancels",
      "engine.waste.spec_demoted.cancels",
      "engine.waste.spec_rewindowed.cancels",
  };
  std::printf("\nwaste ledger (engine attribution, %s):\n", path.c_str());
  any = false;
  for (const char* key : kWasteKeys) {
    const ers::obs::JsonValue* v = root.find(key);
    if (v == nullptr || !v->is_number()) continue;
    std::printf("  %-38s %.0f\n", key + 7 /* drop "engine." */,
                v->as_double());
    any = true;
  }
  if (!any)
    std::printf("  (no engine.waste.* counters — snapshot from a pre-§16 "
                "build or a bench that runs no engine)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ers::CliArgs args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr,
                 "usage: trace_report <trace.json> [--pid N] "
                 "[--metrics metrics.json]\n");
    return args.has("help") ? 0 : 2;
  }
  const std::string path = args.positional().front();
  const int pid = static_cast<int>(args.get_int("pid", -1));
  const std::string metrics_path = args.get("metrics", "");

  // Stage the load so a missing file, a truncated/unparseable file, and a
  // well-formed file of the wrong shape each get their own diagnostic —
  // CI jobs grep these messages, and "cannot load" hides which step died.
  std::string text;
  if (!ers::obs::read_file(path, text)) {
    std::fprintf(stderr, "trace_report: cannot open %s: no such file or not readable\n",
                 path.c_str());
    return 1;
  }
  ers::obs::JsonValue root;
  if (!ers::obs::parse_json(text, root)) {
    std::fprintf(stderr,
                 "trace_report: %s is not valid JSON — truncated trace? "
                 "(%zu bytes read; a run killed mid-write leaves an "
                 "unterminated traceEvents array)\n",
                 path.c_str(), text.size());
    return 1;
  }
  const ers::obs::JsonValue* array = root.find("traceEvents");
  if (array == nullptr || !array->is_array()) {
    std::fprintf(stderr,
                 "trace_report: %s parses but has no traceEvents array — "
                 "not a Perfetto trace written by trace_writer\n",
                 path.c_str());
    return 1;
  }
  std::vector<ers::obs::TraceEvent> events;
  if (!ers::obs::parse_perfetto(text, events, pid)) {
    std::fprintf(stderr, "trace_report: cannot load %s\n", path.c_str());
    return 1;
  }
  if (events.empty()) {
    std::fprintf(stderr,
                 "trace_report: %s holds no schema events%s\n", path.c_str(),
                 pid >= 0 ? " for that pid" : "");
    return 1;
  }
  std::printf("%s: %zu events\n\n", path.c_str(), events.size());
  const ers::obs::TraceReport rep = ers::obs::analyze_trace(events);
  std::fputs(ers::obs::render_report(rep).c_str(), stdout);
  if (!metrics_path.empty()) return print_memory_section(metrics_path);
  return 0;
}
