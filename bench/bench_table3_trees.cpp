// Table 3: descriptions of the game trees used in the experiments, extended
// with the measured serial-baseline statistics each later figure is
// normalized against.

#include <variant>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace ers;
  const auto opt = bench::parse_options(argc, argv,
                                        {"R1", "R2", "R3", "O1", "O2", "O3"});
  bench::print_header("Table 3: experiment trees and serial baselines");

  obs::MetricsRegistry reg;
  reg.set("bench", "table3_trees");
  TextTable table({"name", "type", "degree", "search depth", "serial depth",
                   "root value", "alpha-beta nodes", "serial ER nodes",
                   "alpha-beta cost", "serial ER cost", "faster serial"});
  for (const auto& name : opt.tree_names) {
    const auto tree = harness::tree_by_name(name, opt.scale);
    const auto serial = harness::run_serial_baselines(tree);
    // Serial baselines only — nothing runs on an executor here, so --trace
    // has nothing to record; --metrics snapshots the last tree's baseline.
    reg.set("tree", tree.name);
    reg.set("serial.alpha_beta_nodes", serial.alpha_beta.nodes_generated());
    reg.set("serial.er_nodes", serial.er.nodes_generated());
    reg.set("serial.alpha_beta_cost", serial.alpha_beta_cost);
    reg.set("serial.er_cost", serial.er_cost);
    std::string degree = "varying";
    if (const auto* rt = std::get_if<UniformRandomTree>(&tree.game))
      degree = std::to_string(rt->degree());
    table.add_row({tree.name, tree.is_othello() ? "Othello" : "Random", degree,
                   std::to_string(tree.engine.search_depth) + " ply",
                   std::to_string(tree.engine.serial_depth),
                   std::to_string(serial.value),
                   std::to_string(serial.alpha_beta.nodes_generated()),
                   std::to_string(serial.er.nodes_generated()),
                   std::to_string(serial.alpha_beta_cost),
                   std::to_string(serial.er_cost),
                   serial.er_cost < serial.alpha_beta_cost ? "ER" : "alpha-beta"});
  }
  table.print();
  bench::write_observability(opt, /*trace=*/nullptr, reg, "table3_trees");
  return 0;
}
