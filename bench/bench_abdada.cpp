// ER vs ABDADA head-to-head on the thread runtime (ISSUE 7 tentpole): the
// paper's ER engine and the shared-TT ABDADA runner search the *same*
// positions with the *same* evaluator, sweeping threads {1, 2, 4, 8} over
// the Othello midgame suite (O1-O3) and the random trees (R1, R3).
//
// Per (tree, algo, threads) row, meaned over --reps runs:
//   * nodes            — total nodes generated across all workers
//   * nodes/sec        — wall-clock throughput (host-dependent; on a 1-core
//                        container speedups are <= 1, node counts are the
//                        portable quantity)
//   * tt probes/hits   — shared-table traffic (ABDADA only; ER's engine
//                        routes TT use through its own serial searcher)
//   * deferred/revisit — ABDADA's two-phase exclusivity accounting
//   * researches       — aspiration window re-searches over all depths
//   * thread node skew — min/max per-worker node counts (duplication spread)
// Correctness bar, checked on every run: identical root value to serial
// alpha-beta at the same depth for both algorithms at every thread count
// (ABDADA's depth-exact TT gating makes this hold by construction).
//
// Emits BENCH_abdada.json (one flat object per row; the CI bench guard
// diffs nodes_per_sec per (tree, algo, threads) group).

#include <algorithm>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "baselines/abdada_par.hpp"
#include "common.hpp"
#include "core/parallel_er.hpp"
#include "search/alpha_beta.hpp"

namespace {

struct AlgoRun {
  ers::Value value = 0;
  std::uint64_t nodes = 0;  ///< mean over reps
  double nodes_per_sec = 0.0;
  std::uint64_t elapsed_ns = 0;
  std::uint64_t tt_probes = 0;
  std::uint64_t tt_hits = 0;
  double tt_hit_rate = 0.0;
  std::uint64_t deferred = 0;
  std::uint64_t revisited = 0;
  std::uint64_t researches = 0;
  std::uint64_t thread_nodes_min = 0;
  std::uint64_t thread_nodes_max = 0;
};

void finish_means(AlgoRun& sum, int reps) {
  const auto n = static_cast<std::uint64_t>(reps);
  sum.nodes /= n;
  sum.nodes_per_sec /= static_cast<double>(reps);
  sum.elapsed_ns /= n;
  sum.tt_probes /= n;
  sum.tt_hits /= n;
  sum.tt_hit_rate /= static_cast<double>(reps);
  sum.deferred /= n;
  sum.revisited /= n;
  sum.researches /= n;
  sum.thread_nodes_min /= n;
  sum.thread_nodes_max /= n;
}

/// The incumbent: the paper's ER engine on the work-stealing thread
/// scheduler, exactly as bench_shards runs it.
template <typename G>
AlgoRun run_er(const G& game, const ers::core::EngineConfig& cfg, int threads,
               int reps, ers::Value oracle) {
  using namespace ers;
  AlgoRun sum;
  for (int rep = 0; rep < reps; ++rep) {
    core::Engine<G> engine(game, cfg);
    runtime::ThreadExecutor<core::Engine<G>> exec(threads);
    const auto report = exec.run(engine);
    ERS_CHECK(engine.root_value() == oracle &&
              "ER changed the search result");
    const auto& s = engine.stats().search;
    sum.value = engine.root_value();
    sum.nodes += s.nodes_generated();
    sum.elapsed_ns += report.elapsed_ns;
    sum.nodes_per_sec +=
        report.elapsed_ns == 0
            ? 0.0
            : static_cast<double>(s.nodes_generated()) * 1e9 /
                  static_cast<double>(report.elapsed_ns);
    sum.tt_probes += s.tt_probes;
    sum.tt_hits += s.tt_hits;
    sum.tt_hit_rate += s.tt_hit_rate();
  }
  finish_means(sum, reps);
  return sum;
}

/// The rival: shared-TT ABDADA, iterative deepening to the same depth.
template <typename G>
AlgoRun run_abdada(const G& game, const ers::core::EngineConfig& cfg,
                   int threads, int reps, ers::Value oracle,
                   ers::obs::TraceSession* trace,
                   ers::obs::MetricsRegistry* reg) {
  using namespace ers;
  AlgoRun sum;
  for (int rep = 0; rep < reps; ++rep) {
    const bool traced = trace != nullptr && rep == reps - 1;
    if (traced) trace->clear();
    baselines::AbdadaOptions opt;
    opt.threads = threads;
    opt.ordering = cfg.ordering;
    opt.trace = traced ? trace : nullptr;
    const auto r =
        baselines::abdada_parallel_search(game, cfg.search_depth, opt);
    ERS_CHECK(r.value == oracle && "ABDADA diverged from serial alpha-beta");
    if (traced && reg != nullptr)
      obs::register_search_stats(*reg, r.stats, "abdada.");
    std::uint64_t lo = r.per_thread.empty() ? 0 : ~std::uint64_t{0};
    std::uint64_t hi = 0;
    for (const auto& t : r.per_thread) {
      lo = std::min(lo, t.nodes_generated());
      hi = std::max(hi, t.nodes_generated());
    }
    sum.value = r.value;
    sum.nodes += r.stats.nodes_generated();
    sum.elapsed_ns += r.elapsed_ns;
    sum.nodes_per_sec +=
        r.elapsed_ns == 0
            ? 0.0
            : static_cast<double>(r.stats.nodes_generated()) * 1e9 /
                  static_cast<double>(r.elapsed_ns);
    sum.tt_probes += r.stats.tt_probes;
    sum.tt_hits += r.stats.tt_hits;
    sum.tt_hit_rate += r.stats.tt_hit_rate();
    sum.deferred += r.stats.moves_deferred;
    sum.revisited += r.stats.moves_revisited;
    sum.researches += static_cast<std::uint64_t>(r.researches);
    sum.thread_nodes_min += lo;
    sum.thread_nodes_max += hi;
  }
  finish_means(sum, reps);
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ers;
  auto opt = bench::parse_options(argc, argv, {"O1", "O2", "O3", "R1", "R3"});
  bench::print_header("ER vs ABDADA on identical positions (thread runtime)");
  std::printf("reps per configuration: %d\n\n", opt.reps);

  obs::TraceSession session;
  obs::TraceSession* trace = bench::trace_session_for(opt, session);
  obs::MetricsRegistry reg;
  reg.set("bench", "abdada");
  TextTable table({"tree", "algo", "threads", "nodes", "nodes/s", "tt hits",
                   "hit rate", "defer", "revisit", "re-search",
                   "thr nodes min/max", "value"});
  std::vector<std::string> json;
  for (const auto& name : opt.tree_names) {
    auto base = harness::tree_by_name(name, opt.scale);
    if (opt.shards != 1) base.engine.heap_shards = opt.shards;
    if (opt.frontier >= 0) base.engine.publish_frontier = opt.frontier;
    const Value oracle = std::visit(
        [&](const auto& game) {
          return alpha_beta_search(game, base.engine.search_depth,
                                   base.engine.ordering)
              .value;
        },
        base.game);
    for (const int threads : {1, 2, 4, 8}) {
      for (const char* algo : {"er", "abdada"}) {
        const bool is_er = std::string(algo) == "er";
        const AlgoRun r = std::visit(
            [&](const auto& game) {
              return is_er ? run_er(game, base.engine, threads, opt.reps,
                                    oracle)
                           : run_abdada(game, base.engine, threads, opt.reps,
                                        oracle, trace, &reg);
            },
            base.game);
        reg.set("tree", base.name);
        table.add_row(
            {base.name, algo, std::to_string(threads),
             std::to_string(r.nodes), TextTable::num(r.nodes_per_sec, 0),
             std::to_string(r.tt_hits) + "/" + std::to_string(r.tt_probes),
             TextTable::num(r.tt_hit_rate, 3), std::to_string(r.deferred),
             std::to_string(r.revisited), std::to_string(r.researches),
             std::to_string(r.thread_nodes_min) + "/" +
                 std::to_string(r.thread_nodes_max),
             std::to_string(r.value)});
        json.push_back(bench::JsonObject()
                           .field("tree", base.name)
                           .field("algo", algo)
                           .field("threads", threads)
                           .field("nodes", r.nodes)
                           .field("nodes_per_sec", r.nodes_per_sec)
                           .field("elapsed_ns", r.elapsed_ns)
                           .field("tt_probes", r.tt_probes)
                           .field("tt_hits", r.tt_hits)
                           .field("tt_hit_rate", r.tt_hit_rate)
                           .field("deferred", r.deferred)
                           .field("revisited", r.revisited)
                           .field("researches", r.researches)
                           .field("thread_nodes_min", r.thread_nodes_min)
                           .field("thread_nodes_max", r.thread_nodes_max)
                           .field("value", static_cast<int>(r.value))
                           .str());
      }
    }
  }
  table.print();
  bench::write_bench_json("abdada", opt.reps, json, opt.json_out);
  bench::write_observability(opt, trace, reg, "abdada");
  return 0;
}
