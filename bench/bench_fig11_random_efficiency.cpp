// Figure 11: efficiency of parallel ER on the random trees R1-R3.
#include "figure_efficiency.hpp"

int main(int argc, char** argv) {
  const auto opt = ers::bench::parse_options(argc, argv, {"R1", "R2", "R3"});
  ers::bench::print_efficiency_figure(
      "Figure 11: efficiency of ER for random game trees", opt);
  return 0;
}
