// Serial-algorithm benchmarks (google-benchmark) plus the paper's O1
// anomaly: serial ER may be *faster in time* than alpha-beta even when it
// examines *more nodes*, because ER skips the static-evaluation sort at
// e-node children (§7).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <variant>

#include "harness/experiment.hpp"
#include "harness/tree_registry.hpp"
#include "othello/game.hpp"
#include "othello/positions.hpp"
#include "randomtree/random_tree.hpp"
#include "search/alpha_beta.hpp"
#include "search/er_serial.hpp"
#include "search/negascout.hpp"
#include "search/negmax.hpp"
#include "util/table.hpp"

namespace {

using namespace ers;

void BM_NegmaxRandom(benchmark::State& state) {
  const UniformRandomTree g(4, static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    auto r = negmax_search(g, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_NegmaxRandom)->Arg(5)->Arg(7);

void BM_AlphaBetaRandom(benchmark::State& state) {
  const UniformRandomTree g(4, static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    auto r = alpha_beta_search(g, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_AlphaBetaRandom)->Arg(5)->Arg(7)->Arg(9);

void BM_ErSerialRandom(benchmark::State& state) {
  const UniformRandomTree g(4, static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    auto r = er_serial_search(g, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_ErSerialRandom)->Arg(5)->Arg(7)->Arg(9);

void BM_NegaScoutRandom(benchmark::State& state) {
  const UniformRandomTree g(4, static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    auto r = negascout_search(g, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_NegaScoutRandom)->Arg(5)->Arg(7)->Arg(9);

void BM_AlphaBetaOthello(benchmark::State& state) {
  const othello::OthelloGame g(othello::paper_position(1));
  OrderingPolicy sorted{.sort_by_static_value = true, .max_sort_ply = 6};
  for (auto _ : state) {
    auto r = alpha_beta_search(g, static_cast<int>(state.range(0)), sorted);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_AlphaBetaOthello)->Arg(4)->Arg(5);

void BM_ErSerialOthello(benchmark::State& state) {
  const othello::OthelloGame g(othello::paper_position(1));
  OrderingPolicy sorted{.sort_by_static_value = true, .max_sort_ply = 6};
  for (auto _ : state) {
    auto r = er_serial_search(g, static_cast<int>(state.range(0)), sorted);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_ErSerialOthello)->Arg(4)->Arg(5);

void print_anomaly_table() {
  std::printf("\n=== The O1 anomaly (paper 7): node counts vs sort cost ===\n");
  std::printf("ER never sorts e-node children, so its static-eval bill can be\n");
  std::printf("lower even when it examines more nodes.\n\n");
  TextTable table({"tree", "algorithm", "nodes", "sort evals",
                   "total static evals", "model cost"});
  for (const char* name : {"O1", "O2", "O3"}) {
    const auto tree = harness::tree_by_name(name);
    const auto serial = harness::run_serial_baselines(tree);
    table.add_row({name, "alpha-beta",
                   std::to_string(serial.alpha_beta.nodes_generated()),
                   std::to_string(serial.alpha_beta.sort_evals),
                   std::to_string(serial.alpha_beta.total_static_evals()),
                   std::to_string(serial.alpha_beta_cost)});
    table.add_row({name, "serial ER", std::to_string(serial.er.nodes_generated()),
                   std::to_string(serial.er.sort_evals),
                   std::to_string(serial.er.total_static_evals()),
                   std::to_string(serial.er_cost)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  print_anomaly_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
