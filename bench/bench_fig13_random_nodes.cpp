// Figure 13: number of nodes generated for the random trees R1-R3.
#include "figure_efficiency.hpp"

int main(int argc, char** argv) {
  const auto opt = ers::bench::parse_options(argc, argv, {"R1", "R2", "R3"});
  ers::bench::print_nodes_figure(
      "Figure 13: nodes generated for random game trees", opt);
  return 0;
}
