#pragma once
// Shared plumbing for the figure-regeneration benches: every bench binary
// prints the series of one paper table/figure, using the Table 3 tree
// registry and the deterministic simulated executor (see DESIGN.md §1 for
// why simulated time stands in for the Sequent's wall clock).
//
// All binaries accept:
//   --scale N   reduce every search/serial depth by N (quick smoke runs)
//   --trees A,B restrict to a subset of tree names

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/tree_registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace ers::bench {

struct FigureOptions {
  int scale = 0;
  std::vector<std::string> tree_names;
};

inline FigureOptions parse_options(int argc, char** argv,
                                   std::vector<std::string> default_trees) {
  const CliArgs args(argc, argv);
  FigureOptions opt;
  opt.scale = static_cast<int>(args.get_int("scale", 0));
  std::string trees = args.get("trees", "");
  if (trees.empty()) {
    opt.tree_names = std::move(default_trees);
  } else {
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const auto comma = trees.find(',', pos);
      opt.tree_names.push_back(trees.substr(pos, comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }
  return opt;
}

/// Run the serial baselines and the full processor sweep for one tree.
struct TreeSweep {
  harness::ExperimentTree tree;
  harness::SerialBaseline serial;
  std::vector<harness::ParallelPoint> points;
};

inline TreeSweep run_sweep(const std::string& name, int scale,
                           const core::SpeculationConfig* speculation = nullptr) {
  TreeSweep s{harness::tree_by_name(name, scale), {}, {}};
  s.serial = harness::run_serial_baselines(s.tree);
  for (const int p : harness::figure_processor_counts())
    s.points.push_back(
        harness::run_parallel_point(s.tree, p, s.serial, {}, speculation));
  return s;
}

inline void print_header(const char* what) {
  std::printf("\n=== %s ===\n", what);
  std::printf("(simulated P-processor executor; see DESIGN.md / EXPERIMENTS.md)\n\n");
}

}  // namespace ers::bench
