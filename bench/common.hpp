#pragma once
// Shared plumbing for the figure-regeneration benches: every bench binary
// prints the series of one paper table/figure, using the Table 3 tree
// registry and the deterministic simulated executor (see DESIGN.md §1 for
// why simulated time stands in for the Sequent's wall clock).
//
// All binaries accept:
//   --scale N   reduce every search/serial depth by N (quick smoke runs)
//   --trees A,B restrict to a subset of tree names
//   --shards S  problem-heap shards (1 = the paper's single heap); the
//               simulated benches route heap-access delays per shard, the
//               thread benches run the work-stealing scheduler

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/tree_registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace ers::bench {

struct FigureOptions {
  int scale = 0;
  int reps = 5;  ///< repetitions for thread-runtime (nondeterministic) benches
  int shards = 1;  ///< problem-heap shards (1 = single heap, the seed setup)
  std::vector<std::string> tree_names;
};

inline FigureOptions parse_options(int argc, char** argv,
                                   std::vector<std::string> default_trees) {
  const CliArgs args(argc, argv);
  FigureOptions opt;
  opt.scale = static_cast<int>(args.get_int("scale", 0));
  opt.reps = static_cast<int>(args.get_int("reps", 5));
  opt.shards = static_cast<int>(args.get_int("shards", 1));
  std::string trees = args.get("trees", "");
  if (trees.empty()) {
    opt.tree_names = std::move(default_trees);
  } else {
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const auto comma = trees.find(',', pos);
      opt.tree_names.push_back(trees.substr(pos, comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }
  return opt;
}

/// Run the serial baselines and the full processor sweep for one tree.
struct TreeSweep {
  harness::ExperimentTree tree;
  harness::SerialBaseline serial;
  std::vector<harness::ParallelPoint> points;
};

inline TreeSweep run_sweep(const std::string& name, int scale,
                           const core::SpeculationConfig* speculation = nullptr,
                           int shards = 1) {
  TreeSweep s{harness::tree_by_name(name, scale), {}, {}};
  s.serial = harness::run_serial_baselines(s.tree);
  for (const int p : harness::figure_processor_counts())
    s.points.push_back(harness::run_parallel_point(s.tree, p, s.serial, {},
                                                   speculation, shards));
  return s;
}

inline void print_header(const char* what) {
  std::printf("\n=== %s ===\n", what);
  std::printf("(simulated P-processor executor; see DESIGN.md / EXPERIMENTS.md)\n\n");
}

// --- machine-readable summaries ------------------------------------------
//
// Every bench can emit a BENCH_<name>.json next to its table: one JSON
// object per line, so runs diff cleanly and scripts consume them without a
// JSON library on either side.  The builders below cover exactly what the
// benches need (flat objects of strings/ints/doubles).  Schema guarantees:
// string values are escaped, and write_bench_json stamps every line with a
// `bench` name and the `reps` it was averaged over, so a row's provenance
// is never ambiguous (EXPERIMENTS.md lists which bench produces which file).

/// Escape a string for use as a JSON value: quotes, backslashes, and
/// control characters (the tree names and modes the benches emit are tame,
/// but the emitter must not rely on that).
inline std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class JsonObject {
 public:
  JsonObject& field(const char* key, const char* v) {
    return raw(key, "\"" + json_escape(v) + "\"");
  }
  JsonObject& field(const char* key, const std::string& v) {
    return field(key, v.c_str());
  }
  JsonObject& field(const char* key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return raw(key, buf);
  }
  JsonObject& field(const char* key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& field(const char* key, int v) {
    return raw(key, std::to_string(v));
  }
  /// Append `json` verbatim as the value of `key`.
  JsonObject& raw(const char* key, const std::string& json) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + std::string(key) + "\":" + json;
    return *this;
  }
  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Write `lines` (one JSON object each) to BENCH_<name>.json in the current
/// directory and echo the path so the run log records where they went.
/// Every line is stamped with `"bench": name` and `"reps": reps` (the
/// repetitions each row was averaged over; 1 for deterministic benches), so
/// a file's rows identify their producer without reading this source.
inline void write_bench_json(const std::string& name, int reps,
                             const std::vector<std::string>& lines) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const std::string stamp =
      "{\"bench\":\"" + json_escape(name.c_str()) +
      "\",\"reps\":" + std::to_string(reps);
  for (const auto& line : lines) {
    // Each line is a flat object "{...}"; splice the stamp after the brace.
    std::fprintf(f, "%s%s%s\n", stamp.c_str(), line.size() > 2 ? "," : "",
                 line.c_str() + 1);
  }
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), lines.size());
}

}  // namespace ers::bench
