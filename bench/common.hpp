#pragma once
// Shared plumbing for the figure-regeneration benches: every bench binary
// prints the series of one paper table/figure, using the Table 3 tree
// registry and the deterministic simulated executor (see DESIGN.md §1 for
// why simulated time stands in for the Sequent's wall clock).
//
// All binaries accept:
//   --scale N   reduce every search/serial depth by N (quick smoke runs)
//   --trees A,B restrict to a subset of tree names
//   --shards S  problem-heap shards (1 = the paper's single heap); the
//               simulated benches route heap-access delays per shard, the
//               thread benches run the work-stealing scheduler
//   --frontier F publish frontier for the thread benches (DESIGN.md §13):
//               0 = full-lock commits (the PR 5 path), >0 = truncated
//               touch sets + epoch publication; unset = engine default
//   --trace F   record the bench's runs into a Perfetto trace at F
//               (open in ui.perfetto.dev, or feed to tools/trace_report)
//   --metrics F write the consolidated metrics snapshot (JSON) to F
//   --json-out F write the BENCH rows to F instead of BENCH_<name>.json —
//               what the CI bench guard uses to keep the fresh run from
//               clobbering the committed baseline it diffs against
//   --prom-out F write the metrics snapshot in Prometheus text exposition
//               to F (DESIGN.md §16; lint with tools/check_prom_format.py)
//   --sample-ms N sample live search-health counters every N ms into a
//               time-series ring (0 = off)
//   --sample-out F write the sampled time series (JSON) to F

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/tree_registry.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_adapters.hpp"
#include "obs/prometheus.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "obs/trace_writer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace ers::bench {

struct FigureOptions {
  int scale = 0;
  int reps = 5;  ///< repetitions for thread-runtime (nondeterministic) benches
  int shards = 1;  ///< problem-heap shards (1 = single heap, the seed setup)
  int frontier = -1;  ///< publish frontier; < 0 = engine default (--frontier)
  std::vector<std::string> tree_names;
  std::string trace_path;    ///< empty = untraced (--trace)
  std::string metrics_path;  ///< empty = no snapshot (--metrics)
  std::string json_out;      ///< empty = default BENCH_<name>.json (--json-out)
  std::string prom_out;      ///< empty = no Prometheus exposition (--prom-out)
  int sample_ms = 0;         ///< live-sampling interval; 0 = off (--sample-ms)
  std::string sample_out;    ///< time-series JSON path (--sample-out)

  /// Live sampling is on when an interval was asked for; the default sink
  /// is samples.json next to the other artifacts.
  [[nodiscard]] bool sampling() const noexcept { return sample_ms > 0; }
  [[nodiscard]] std::string sample_sink() const {
    return sample_out.empty() ? "samples.json" : sample_out;
  }
};

inline FigureOptions parse_options(int argc, char** argv,
                                   std::vector<std::string> default_trees) {
  const CliArgs args(argc, argv);
  FigureOptions opt;
  opt.scale = static_cast<int>(args.get_int("scale", 0));
  opt.reps = static_cast<int>(args.get_int("reps", 5));
  opt.shards = static_cast<int>(args.get_int("shards", 1));
  opt.frontier = static_cast<int>(args.get_int("frontier", -1));
  opt.trace_path = args.get("trace", "");
  opt.metrics_path = args.get("metrics", "");
  opt.json_out = args.get("json-out", "");
  opt.prom_out = args.get("prom-out", "");
  opt.sample_ms = static_cast<int>(args.get_int("sample-ms", 0));
  opt.sample_out = args.get("sample-out", "");
  std::string trees = args.get("trees", "");
  if (trees.empty()) {
    opt.tree_names = std::move(default_trees);
  } else {
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const auto comma = trees.find(',', pos);
      opt.tree_names.push_back(trees.substr(pos, comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }
  return opt;
}

/// The trace session a bench should record into: null unless --trace was
/// given (and tracing is compiled in), so benches stay zero-cost when
/// untraced.  The returned pointer aliases `storage`.
[[nodiscard]] inline obs::TraceSession* trace_session_for(
    const FigureOptions& opt, obs::TraceSession& storage) {
  if (opt.trace_path.empty() || !obs::kTracingEnabled) return nullptr;
  return &storage;
}

/// Flush --trace / --metrics artifacts after the bench's runs.  No-ops on
/// empty paths, so every bench can call this unconditionally.
inline void write_observability(const FigureOptions& opt,
                                const obs::TraceSession* trace,
                                const obs::MetricsRegistry& metrics,
                                const std::string& process_name) {
  if (!opt.trace_path.empty()) {
    if (trace != nullptr)
      obs::write_perfetto(opt.trace_path, *trace, process_name);
    else
      std::fprintf(stderr,
                   "--trace ignored: tracing compiled out (ERS_TRACING=OFF) "
                   "or this bench runs no executor\n");
  }
  if (!opt.metrics_path.empty()) metrics.write_json(opt.metrics_path);
  if (!opt.prom_out.empty()) obs::write_prometheus(opt.prom_out, metrics);
}

/// Flatten one simulated parallel point into a registry (overwrites on
/// repeat calls, so benches can register every point and keep the last).
inline void register_parallel_point(obs::MetricsRegistry& reg,
                                    const harness::ParallelPoint& p) {
  reg.set("processors", p.processors);
  reg.set("speedup", p.speedup);
  reg.set("efficiency", p.efficiency);
  obs::register_sim_metrics(reg, p.metrics);
  obs::register_engine_stats(reg, p.engine);
  obs::register_engine_mem_stats(reg, p.mem);
  obs::register_engine_waste_stats(reg, p.waste);
}

/// Run the serial baselines and the full processor sweep for one tree.
struct TreeSweep {
  harness::ExperimentTree tree;
  harness::SerialBaseline serial;
  std::vector<harness::ParallelPoint> points;
};

/// Standard observability epilogue for the simulated sweep benches:
/// snapshot the last sweep's final parallel point into a registry and
/// flush the --trace / --metrics / --prom-out artifacts.
inline void write_sweep_observability(const FigureOptions& opt,
                                      const obs::TraceSession* trace,
                                      const TreeSweep& sweep,
                                      const std::string& process_name) {
  if (opt.trace_path.empty() && opt.metrics_path.empty() &&
      opt.prom_out.empty())
    return;
  obs::MetricsRegistry reg;
  reg.set("bench", process_name);
  reg.set("tree", sweep.tree.name);
  if (!sweep.points.empty()) register_parallel_point(reg, sweep.points.back());
  write_observability(opt, trace, reg, process_name);
}

inline TreeSweep run_sweep(const std::string& name, int scale,
                           const core::SpeculationConfig* speculation = nullptr,
                           int shards = 1, obs::TraceSession* trace = nullptr) {
  TreeSweep s{harness::tree_by_name(name, scale), {}, {}};
  s.serial = harness::run_serial_baselines(s.tree);
  for (const int p : harness::figure_processor_counts()) {
    // A traced sweep keeps only its last point: each run starts the session
    // over, so the exported file holds one clean schedule (the largest P),
    // not a pile-up of every sweep point on one virtual timeline.
    if (trace != nullptr) trace->clear();
    s.points.push_back(harness::run_parallel_point(s.tree, p, s.serial, {},
                                                   speculation, shards, trace));
  }
  return s;
}

inline void print_header(const char* what) {
  std::printf("\n=== %s ===\n", what);
  std::printf("(simulated P-processor executor; see DESIGN.md / EXPERIMENTS.md)\n\n");
}

// --- machine-readable summaries ------------------------------------------
//
// Every bench can emit a BENCH_<name>.json next to its table: one JSON
// object per line, so runs diff cleanly and scripts consume them without a
// JSON library on either side.  The emitters live in obs/json.hpp (the
// repo's single JSON writer, shared with the metrics registry and the
// Perfetto trace export); bench code keeps its unqualified spelling via
// the using-declarations below, and the emitted bytes are unchanged
// (tests/obs/json_test.cpp pins them).

using obs::json_escape;
using obs::JsonObject;
using obs::write_bench_json;

}  // namespace ers::bench
