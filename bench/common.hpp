#pragma once
// Shared plumbing for the figure-regeneration benches: every bench binary
// prints the series of one paper table/figure, using the Table 3 tree
// registry and the deterministic simulated executor (see DESIGN.md §1 for
// why simulated time stands in for the Sequent's wall clock).
//
// All binaries accept:
//   --scale N   reduce every search/serial depth by N (quick smoke runs)
//   --trees A,B restrict to a subset of tree names

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/tree_registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace ers::bench {

struct FigureOptions {
  int scale = 0;
  int reps = 5;  ///< repetitions for thread-runtime (nondeterministic) benches
  std::vector<std::string> tree_names;
};

inline FigureOptions parse_options(int argc, char** argv,
                                   std::vector<std::string> default_trees) {
  const CliArgs args(argc, argv);
  FigureOptions opt;
  opt.scale = static_cast<int>(args.get_int("scale", 0));
  opt.reps = static_cast<int>(args.get_int("reps", 5));
  std::string trees = args.get("trees", "");
  if (trees.empty()) {
    opt.tree_names = std::move(default_trees);
  } else {
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const auto comma = trees.find(',', pos);
      opt.tree_names.push_back(trees.substr(pos, comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }
  return opt;
}

/// Run the serial baselines and the full processor sweep for one tree.
struct TreeSweep {
  harness::ExperimentTree tree;
  harness::SerialBaseline serial;
  std::vector<harness::ParallelPoint> points;
};

inline TreeSweep run_sweep(const std::string& name, int scale,
                           const core::SpeculationConfig* speculation = nullptr) {
  TreeSweep s{harness::tree_by_name(name, scale), {}, {}};
  s.serial = harness::run_serial_baselines(s.tree);
  for (const int p : harness::figure_processor_counts())
    s.points.push_back(
        harness::run_parallel_point(s.tree, p, s.serial, {}, speculation));
  return s;
}

inline void print_header(const char* what) {
  std::printf("\n=== %s ===\n", what);
  std::printf("(simulated P-processor executor; see DESIGN.md / EXPERIMENTS.md)\n\n");
}

// --- machine-readable summaries ------------------------------------------
//
// Every bench can emit a BENCH_<name>.json next to its table: one JSON
// object per line, so runs diff cleanly and scripts consume them without a
// JSON library on either side.  The builders below cover exactly what the
// benches need (flat objects of strings/ints/doubles).

class JsonObject {
 public:
  JsonObject& field(const char* key, const char* v) {
    return raw(key, "\"" + std::string(v) + "\"");
  }
  JsonObject& field(const char* key, const std::string& v) {
    return field(key, v.c_str());
  }
  JsonObject& field(const char* key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return raw(key, buf);
  }
  JsonObject& field(const char* key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& field(const char* key, int v) {
    return raw(key, std::to_string(v));
  }
  /// Append `json` verbatim as the value of `key`.
  JsonObject& raw(const char* key, const std::string& json) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + std::string(key) + "\":" + json;
    return *this;
  }
  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Write `lines` (one JSON object each) to BENCH_<name>.json in the current
/// directory and echo the path so the run log records where they went.
inline void write_bench_json(const std::string& name,
                             const std::vector<std::string>& lines) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  for (const auto& line : lines) std::fprintf(f, "%s\n", line.c_str());
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), lines.size());
}

}  // namespace ers::bench
