// Global ranking of speculative work (paper §8, future work): "Currently,
// e-nodes are ranked on the speculative queue according to depth; a rather
// naive ordering.  In order to reduce speculative loss and improve
// efficiency a better mechanism for globally ranking speculative work must
// be found."  This bench compares the paper's ranking against a
// bound-driven ranking, a FIFO control, and the steal-aware controller
// (DESIGN.md §17): bound-distance ranking plus pop-time demotion and the
// waste-budget cap, with and without the shared ordering tables attached.
//
// Per (tree, policy, procs) row:
//   * nodes / node_ratio — total nodes generated, and the ratio to the
//     serial ER node count for the same tree (the paper's search-overhead
//     measure; 1.0 = no duplicated work)
//   * waste_share        — speculative waste units (bound-change +
//     sibling-resolution cancellations) over all units processed; the same
//     quantity the §17 budget controller steers toward its target
//   * demote/rewind/defer — §17 controller activity (zero for the three
//     static policies)
//   * speedup            — serial best cost over simulated makespan
// Correctness bar on every run: root value equals serial alpha-beta.
//
// Emits BENCH_spec_policy.json (one flat object per row; the CI bench
// guard diffs node_ratio and waste_share per (tree, policy, procs) group,
// direction max — smaller is better for both).

#include <cstdint>
#include <string>
#include <tuple>
#include <variant>
#include <vector>

#include "common.hpp"
#include "core/parallel_er.hpp"
#include "search/concurrent_ttable.hpp"
#include "search/ordering.hpp"

int main(int argc, char** argv) {
  using namespace ers;
  const auto opt =
      bench::parse_options(argc, argv, {"O1", "O2", "O3", "R1", "R3"});
  bench::print_header(
      "Speculation ranking & control policies (§8 future work, DESIGN.md "
      "§17)");

  // The two steal-aware rows exercise the §17 controller; steal feedback
  // stays off because the simulator has no stealing executor (pressure
  // would be identically zero anyway — see note_steal).
  core::SpecControlConfig demote_only;
  demote_only.bound_demote = true;
  core::SpecControlConfig demote_budget;
  demote_budget.bound_demote = true;
  demote_budget.budget = true;
  // The last row is the full §17 + ordering stack: steal-aware controller
  // plus the shared ordering intelligence — history/killer tables AND the
  // shared transposition table whose stored best-move fingerprints drive
  // TT-move-first child sorting (the hint path is dead without a table).
  const struct {
    core::SpecRankPolicy policy;
    core::SpecControlConfig control;
    bool ordering_tables;
    const char* name;
  } kPolicies[] = {
      {core::SpecRankPolicy::kFewestEChildren, {}, false, "paper"},
      {core::SpecRankPolicy::kBestBound, {}, false, "best-bound"},
      {core::SpecRankPolicy::kFifo, {}, false, "fifo"},
      {core::SpecRankPolicy::kStealAware, demote_only, false, "steal-aware"},
      {core::SpecRankPolicy::kStealAware, demote_budget, true,
       "steal-aware+order"},
  };

  obs::TraceSession session;
  obs::TraceSession* trace = bench::trace_session_for(opt, session);
  obs::MetricsRegistry reg;
  reg.set("bench", "spec_policy");
  TextTable table({"tree", "procs", "policy", "nodes", "node ratio",
                   "waste share", "demote", "rewind", "defer", "speedup",
                   "value"});
  std::vector<std::string> json;
  for (const auto& name : opt.tree_names) {
    const auto tree = harness::tree_by_name(name, opt.scale);
    const auto serial = harness::run_serial_baselines(tree);
    const auto er_nodes = static_cast<double>(harness::serial_er_nodes(serial));
    for (const int p : {8, 16}) {
      for (const auto& pc : kPolicies) {
        auto cfg = tree.engine;
        cfg.spec_rank = pc.policy;
        cfg.spec_control = pc.control;
        // Fresh tables per run: the single-driver simulator trains them
        // deterministically, so rows are reproducible bit-for-bit.
        OrderingTables tables;
        ConcurrentTranspositionTable shared_tt(18);
        if (pc.ordering_tables) {
          cfg.order_tables = &tables;
          cfg.shared_table = &shared_tt;
        }
        if (trace != nullptr) trace->clear();  // keep the last point only
        const auto [value, engine_stats, metrics, waste] = std::visit(
            [&](const auto& game) {
              auto r = parallel_er_sim(game, cfg, p, {}, opt.shards, 1, trace);
              return std::tuple{r.value, r.engine, r.metrics, r.waste};
            },
            tree.game);
        ERS_CHECK(value == serial.value &&
                  "speculation policy changed the search result");
        reg.set("tree", tree.name);
        reg.set("policy", pc.name);
        obs::register_sim_metrics(reg, metrics);
        obs::register_engine_stats(reg, engine_stats);
        obs::register_engine_waste_stats(reg, waste);
        const auto nodes = engine_stats.search.nodes_generated();
        const double node_ratio =
            er_nodes == 0.0 ? 0.0 : static_cast<double>(nodes) / er_nodes;
        const std::uint64_t spec_waste =
            waste.cause_units(core::WasteCause::kBoundChange) +
            waste.cause_units(core::WasteCause::kSiblingResolution);
        const double waste_share =
            engine_stats.units_processed == 0
                ? 0.0
                : static_cast<double>(spec_waste) /
                      static_cast<double>(engine_stats.units_processed);
        const double speedup = static_cast<double>(serial.best_cost()) /
                               static_cast<double>(metrics.makespan);
        table.add_row({tree.name, std::to_string(p), pc.name,
                       std::to_string(nodes), TextTable::num(node_ratio, 3),
                       TextTable::num(waste_share, 3),
                       std::to_string(engine_stats.spec_demotions),
                       std::to_string(engine_stats.spec_rewindows),
                       std::to_string(engine_stats.spec_budget_deferrals),
                       TextTable::num(speedup, 2), std::to_string(value)});
        json.push_back(bench::JsonObject()
                           .field("tree", tree.name)
                           .field("policy", pc.name)
                           .field("procs", p)
                           .field("nodes", nodes)
                           .field("node_ratio", node_ratio)
                           .field("waste_share", waste_share)
                           .field("spec_promotions",
                                  engine_stats.promotions_speculative)
                           .field("demotions", engine_stats.spec_demotions)
                           .field("rewindows", engine_stats.spec_rewindows)
                           .field("budget_deferrals",
                                  engine_stats.spec_budget_deferrals)
                           .field("speedup", speedup)
                           .field("value", static_cast<int>(value))
                           .str());
      }
    }
  }
  table.print();
  // One deterministic run per row (single-driver simulator): reps would
  // repeat identical numbers, so the stamp is a literal 1.
  bench::write_bench_json("spec_policy", 1, json, opt.json_out);
  bench::write_observability(opt, trace, reg, "spec_policy");
  return 0;
}
