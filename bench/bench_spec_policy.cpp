// Global ranking of speculative work (paper §8, future work): "Currently,
// e-nodes are ranked on the speculative queue according to depth; a rather
// naive ordering.  In order to reduce speculative loss and improve
// efficiency a better mechanism for globally ranking speculative work must
// be found."  This bench compares the paper's ranking against a
// bound-driven ranking and a FIFO control.

#include <variant>

#include "common.hpp"
#include "core/parallel_er.hpp"

int main(int argc, char** argv) {
  using namespace ers;
  const auto opt = bench::parse_options(argc, argv, {"R1", "R3", "O1"});
  bench::print_header("Speculative-queue ranking policies ( 8 future work)");

  const struct {
    core::SpecRankPolicy policy;
    const char* name;
  } kPolicies[] = {
      {core::SpecRankPolicy::kFewestEChildren, "fewest-e-children (paper)"},
      {core::SpecRankPolicy::kBestBound, "best-bound"},
      {core::SpecRankPolicy::kFifo, "fifo (control)"},
  };

  obs::TraceSession session;
  obs::TraceSession* trace = bench::trace_session_for(opt, session);
  obs::MetricsRegistry reg;
  reg.set("bench", "spec_policy");
  TextTable table({"tree", "procs", "policy", "speedup", "efficiency", "nodes",
                   "spec promotions", "idle share"});
  for (const auto& name : opt.tree_names) {
    const auto tree = harness::tree_by_name(name, opt.scale);
    const auto serial = harness::run_serial_baselines(tree);
    for (const int p : {8, 16}) {
      for (const auto& pc : kPolicies) {
        auto cfg = tree.engine;
        cfg.spec_rank = pc.policy;
        if (trace != nullptr) trace->clear();  // keep the last point only
        const auto [metrics, engine_stats] = std::visit(
            [&](const auto& game) {
              auto r = parallel_er_sim(game, cfg, p, {}, 1, 1, trace);
              return std::pair{r.metrics, r.engine};
            },
            tree.game);
        reg.set("tree", tree.name);
        reg.set("policy", pc.name);
        obs::register_sim_metrics(reg, metrics);
        obs::register_engine_stats(reg, engine_stats);
        const double speedup = static_cast<double>(serial.best_cost()) /
                               static_cast<double>(metrics.makespan);
        const double idle = static_cast<double>(metrics.idle_time) /
                            (static_cast<double>(metrics.makespan) * p);
        table.add_row({tree.name, std::to_string(p), pc.name,
                       TextTable::num(speedup, 2),
                       TextTable::num(speedup / p, 3),
                       std::to_string(engine_stats.search.nodes_generated()),
                       std::to_string(engine_stats.promotions_speculative),
                       TextTable::num(idle, 3)});
      }
    }
  }
  table.print();
  bench::write_observability(opt, trace, reg, "spec_policy");
  return 0;
}
