// Ablation of the three speculation mechanisms of paper §5:
//   PR = parallel refutation, ME = multiple e-children, EC = early e-child
//   choice.
// Each row runs parallel ER with a subset of mechanisms enabled; the deltas
// show what each mechanism buys (less starvation) and costs (speculative
// loss), the design tradeoff §5 argues about.

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace ers;
  const auto opt = bench::parse_options(argc, argv, {"R3", "O1"});
  bench::print_header("Ablation: speculation mechanisms of ER ( 5)");

  obs::TraceSession session;
  obs::TraceSession* trace = bench::trace_session_for(opt, session);
  obs::MetricsRegistry reg;
  reg.set("bench", "ablation_speculation");
  TextTable table({"tree", "procs", "PR", "ME", "EC", "speedup", "efficiency",
                   "nodes", "idle share", "spec promotions"});
  for (const auto& name : opt.tree_names) {
    const auto tree = harness::tree_by_name(name, opt.scale);
    const auto serial = harness::run_serial_baselines(tree);
    for (const int p : {4, 16}) {
      for (int mask = 0; mask < 8; ++mask) {
        core::SpeculationConfig spec;
        spec.parallel_refutation = (mask & 1) != 0;
        spec.multiple_e_children = (mask & 2) != 0;
        spec.early_e_child_choice = (mask & 4) != 0;
        if (trace != nullptr) trace->clear();  // keep the last point only
        const auto pt =
            harness::run_parallel_point(tree, p, serial, {}, &spec, 1, trace);
        reg.set("tree", tree.name);
        bench::register_parallel_point(reg, pt);
        const double idle_share =
            static_cast<double>(pt.metrics.idle_time) /
            (static_cast<double>(pt.metrics.makespan) * p);
        table.add_row(
            {tree.name, std::to_string(p), spec.parallel_refutation ? "x" : "-",
             spec.multiple_e_children ? "x" : "-",
             spec.early_e_child_choice ? "x" : "-",
             TextTable::num(pt.speedup, 2), TextTable::num(pt.efficiency, 3),
             std::to_string(pt.nodes_generated), TextTable::num(idle_share, 3),
             std::to_string(pt.engine.promotions_speculative)});
      }
    }
  }
  table.print();
  bench::write_observability(opt, trace, reg, "ablation_speculation");
  return 0;
}
