// Batched problem-heap scheduling on the real thread runtime (the paper's
// §6 contention bottleneck, attacked the way the MCTS parallelization
// literature does: batch the shared-structure handoff).
//
// Sweeps scheduler batch size {1, 2, 4, 8} × threads {1, 2, 4, 8} over the
// Othello midgame suite (O1–O3) and the random trees (R1, R3), measuring
// with the executor's own SchedulerStats:
//   * units/sec          — scheduler throughput (wall clock, --reps runs)
//   * lock-wait share    — fraction of worker-time blocked on the heap lock
//   * locks/unit         — serialized heap entries per unit of work
//   * mean batch         — batch size the workers actually achieved
//   * nodes              — total nodes generated (speculative loss control)
// Correctness bar, checked here on every run: identical root value to
// serial alpha-beta at every (threads, batch) point.
//
// Emits BENCH_scheduler.json (schema: bench/reps stamps + one row per
// configuration).  The headline comparison — mean lock-wait share at 8
// threads, batch 8 vs batch 1 — is printed at the end and recorded in
// EXPERIMENTS.md.

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common.hpp"
#include "core/parallel_er.hpp"
#include "search/alpha_beta.hpp"

namespace {

struct SchedRun {
  ers::Value value = 0;
  std::uint64_t nodes = 0;       ///< mean over reps
  std::uint64_t units = 0;       ///< mean over reps
  double units_per_sec = 0.0;    ///< mean over reps
  double lock_wait_share = 0.0;  ///< mean over reps
  double locks_per_unit = 0.0;
  double mean_batch = 0.0;
  std::uint64_t wakeups = 0;  ///< mean over reps
  std::uint64_t sleeps = 0;   ///< mean over reps
};

template <typename G>
SchedRun run_config(const G& game, const ers::core::EngineConfig& cfg,
                    int threads, int batch, int reps, ers::Value oracle,
                    ers::obs::TraceSession* trace,
                    ers::obs::MetricsRegistry* reg, int sample_ms,
                    std::unique_ptr<ers::obs::Sampler>* sampler_out) {
  using namespace ers;
  SchedRun sum;
  std::uint64_t lock_acqs = 0;
  for (int rep = 0; rep < reps; ++rep) {
    // Only the last rep is traced (a fresh session each time), so the
    // exported file holds one clean schedule of this configuration — the
    // sweep's last configuration wins the file.
    const bool traced = trace != nullptr && rep == reps - 1;
    if (traced) trace->clear();
    auto run_cfg = cfg;
    run_cfg.trace = traced ? trace : nullptr;
    core::Engine<G> engine(game, run_cfg);
    runtime::ThreadExecutor<core::Engine<G>> exec(threads);
    exec.with_batch_size(batch).with_trace(traced ? trace : nullptr);
    // Live sampling (--sample-ms): a background thread snapshots the
    // engine's own thread-safe observers while the run executes.  Like the
    // trace, only the last rep is sampled and the sweep's last
    // configuration wins the file.
    std::unique_ptr<obs::Sampler> sampler;
    if (sample_ms > 0 && rep == reps - 1) {
      sampler = std::make_unique<obs::Sampler>(
          [&engine] {
            obs::SampleRow row;
            const auto st = engine.stats();
            const auto mem = engine.mem_stats();
            const auto w = engine.waste_stats();
            row.units = st.units_processed;
            row.nodes = st.search.nodes_generated();
            row.live_nodes = mem.live_nodes;
            row.queued = engine.queued_count();
            row.waste_units = w.total_units();
            row.waste_ns = w.total_ns();
            row.tt_probes = st.search.tt_probes;
            row.tt_hits = st.search.tt_hits;
            return row;
          },
          static_cast<std::uint64_t>(sample_ms) * 1'000'000ull);
      sampler->start();
    }
    const auto report = exec.run(engine);
    if (sampler != nullptr) {
      sampler->stop();  // ring is safe to read / hand off from here
      if (sampler_out != nullptr) *sampler_out = std::move(sampler);
    }
    if (traced && reg != nullptr) {
      obs::register_thread_report(*reg, report);
      obs::register_engine_lock_stats(*reg, engine.lock_stats());
    }
    ERS_CHECK(engine.root_value() == oracle &&
              "batched scheduler changed the search result");
    sum.value = engine.root_value();
    sum.nodes += engine.stats().search.nodes_generated();
    sum.units += report.units;
    sum.units_per_sec += report.elapsed_ns == 0
                             ? 0.0
                             : static_cast<double>(report.units) * 1e9 /
                                   static_cast<double>(report.elapsed_ns);
    sum.lock_wait_share += report.lock_wait_share();
    sum.mean_batch += report.sched.mean_batch_size();
    sum.wakeups += report.sched.wakeups_issued;
    sum.sleeps += report.sched.sleeps;
    lock_acqs += report.sched.lock_acquisitions;
  }
  const auto n = static_cast<std::uint64_t>(reps);
  sum.nodes /= n;
  sum.units /= n;
  sum.units_per_sec /= static_cast<double>(reps);
  sum.lock_wait_share /= static_cast<double>(reps);
  sum.mean_batch /= static_cast<double>(reps);
  sum.wakeups /= n;
  sum.sleeps /= n;
  sum.locks_per_unit = sum.units == 0
                           ? 0.0
                           : static_cast<double>(lock_acqs / n) /
                                 static_cast<double>(sum.units);
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ers;
  auto opt = bench::parse_options(argc, argv, {"O1", "O2", "O3", "R1", "R3"});
  bench::print_header("Batched problem-heap scheduling (thread runtime)");
  std::printf("reps per configuration: %d\n", opt.reps);
  std::printf("problem-heap shards: %d%s\n\n", opt.shards,
              opt.shards > 1 ? " (work-stealing scheduler)" : "");

  obs::TraceSession session;
  obs::TraceSession* trace = bench::trace_session_for(opt, session);
  obs::MetricsRegistry reg;
  reg.set("bench", "scheduler");
  std::unique_ptr<obs::Sampler> sampler;  // last sampled configuration
  TextTable table({"tree", "threads", "batch", "units/s", "lock share",
                   "locks/unit", "mean batch", "nodes", "value"});
  std::vector<std::string> json;
  double wait_share_t8_k1 = 0.0, wait_share_t8_k8 = 0.0;
  int t8_points = 0;
  for (const auto& name : opt.tree_names) {
    auto base = harness::tree_by_name(name, opt.scale);
    base.engine.heap_shards = opt.shards;
    if (opt.frontier >= 0) base.engine.publish_frontier = opt.frontier;
    const Value oracle = std::visit(
        [&](const auto& game) {
          return alpha_beta_search(game, base.engine.search_depth,
                                   base.engine.ordering)
              .value;
        },
        base.game);
    for (const int threads : {1, 2, 4, 8}) {
      for (const int batch : {1, 2, 4, 8}) {
        const SchedRun r = std::visit(
            [&](const auto& game) {
              return run_config(game, base.engine, threads, batch, opt.reps,
                                oracle, trace, &reg, opt.sample_ms, &sampler);
            },
            base.game);
        reg.set("tree", base.name);
        reg.set("run.batch", batch);
        if (threads == 8 && batch == 1) {
          wait_share_t8_k1 += r.lock_wait_share;
          ++t8_points;
        }
        if (threads == 8 && batch == 8) wait_share_t8_k8 += r.lock_wait_share;
        table.add_row({base.name, std::to_string(threads),
                       std::to_string(batch),
                       TextTable::num(r.units_per_sec, 0),
                       TextTable::num(r.lock_wait_share, 4),
                       TextTable::num(r.locks_per_unit, 3),
                       TextTable::num(r.mean_batch, 2),
                       std::to_string(r.nodes), std::to_string(r.value)});
        json.push_back(bench::JsonObject()
                           .field("tree", base.name)
                           .field("threads", threads)
                           .field("batch", batch)
                           .field("shards", opt.shards)
                           .field("units", r.units)
                           .field("units_per_sec", r.units_per_sec)
                           .field("lock_wait_share", r.lock_wait_share)
                           .field("locks_per_unit", r.locks_per_unit)
                           .field("mean_batch", r.mean_batch)
                           .field("wakeups", r.wakeups)
                           .field("sleeps", r.sleeps)
                           .field("nodes", r.nodes)
                           .field("value", static_cast<int>(r.value))
                           .str());
      }
    }
  }
  table.print();
  if (t8_points > 0) {
    wait_share_t8_k1 /= t8_points;
    wait_share_t8_k8 /= t8_points;
    std::printf(
        "\nmean lock-wait share at 8 threads: batch1=%.4f batch8=%.4f (%s)\n",
        wait_share_t8_k1, wait_share_t8_k8,
        wait_share_t8_k8 < wait_share_t8_k1
            ? "batching reduces contention"
            : "NO REDUCTION");
  }
  bench::write_bench_json("scheduler", opt.reps, json, opt.json_out);
  bench::write_observability(opt, trace, reg, "scheduler");
  if (sampler != nullptr) sampler->write_json(opt.sample_sink());
  return 0;
}
