// Figure 10: efficiency of parallel ER on the Othello trees O1-O3.
#include "figure_efficiency.hpp"

int main(int argc, char** argv) {
  const auto opt = ers::bench::parse_options(argc, argv, {"O1", "O2", "O3"});
  ers::bench::print_efficiency_figure(
      "Figure 10: efficiency of ER for Othello game trees", opt);
  return 0;
}
