// Sharded problem heap + work stealing on the real thread runtime (the
// paper's §8 proposal — "distribute the work to reduce processor
// interaction" — implemented as PR 3's tentpole).
//
// Sweeps heap shards {1, 2, 4, 8} × threads {1, 2, 4, 8} × scheduler batch
// {1, 4} over the Othello midgame suite (O1–O3) and the random trees
// (R1, R3), measuring with the executor's own SchedulerStats:
//   * units/sec          — scheduler throughput (wall clock, --reps runs)
//   * lock-wait share    — fraction of worker-time blocked on shard locks
//   * lock-hold share    — fraction of worker-time inside lock sections
//   * peer               — combine records a concurrent combiner applied
//   * steals (hit/try)   — work moved between per-worker run queues
//   * defer              — contended commit flushes deferred by try_lock
//   * global refills     — refills that fell through an empty home shard
//   * nodes              — total nodes generated (speculative loss control)
// Correctness bar, checked on every run: identical root value to serial
// alpha-beta at every (shards, threads, batch) point; shards = 1 runs the
// seed's single-heap scheduler verbatim.
//
// Emits BENCH_shards.json (same stamp schema as BENCH_scheduler.json: one
// flat object per row).  The headline comparison — 8-thread mean lock-wait
// share per shard count, against the batched single-heap baseline — is
// printed at the end and recorded in EXPERIMENTS.md.

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common.hpp"
#include "core/parallel_er.hpp"
#include "search/alpha_beta.hpp"

namespace {

struct ShardRun {
  ers::Value value = 0;
  std::uint64_t nodes = 0;       ///< mean over reps
  std::uint64_t units = 0;       ///< mean over reps
  double units_per_sec = 0.0;    ///< mean over reps
  double lock_wait_share = 0.0;  ///< mean over reps
  double lock_hold_share = 0.0;  ///< mean over reps
  std::uint64_t combine_peer_applied = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_hits = 0;
  std::uint64_t flush_deferrals = 0;
  std::uint64_t global_refills = 0;
};

template <typename G>
ShardRun run_config(const G& game, const ers::core::EngineConfig& cfg,
                    int threads, int batch, int reps, ers::Value oracle,
                    ers::obs::TraceSession* trace,
                    ers::obs::MetricsRegistry* reg) {
  using namespace ers;
  ShardRun sum;
  for (int rep = 0; rep < reps; ++rep) {
    // Trace only the last rep into a fresh session; the sweep's last
    // configuration is what the exported file ends up holding.
    const bool traced = trace != nullptr && rep == reps - 1;
    if (traced) trace->clear();
    auto run_cfg = cfg;
    run_cfg.trace = traced ? trace : nullptr;
    core::Engine<G> engine(game, run_cfg);
    runtime::ThreadExecutor<core::Engine<G>> exec(threads);
    exec.with_batch_size(batch).with_trace(traced ? trace : nullptr);
    const auto report = exec.run(engine);
    if (traced && reg != nullptr) {
      obs::register_thread_report(*reg, report);
      obs::register_engine_lock_stats(*reg, engine.lock_stats());
    }
    ERS_CHECK(engine.root_value() == oracle &&
              "sharded scheduler changed the search result");
    sum.value = engine.root_value();
    sum.nodes += engine.stats().search.nodes_generated();
    sum.units += report.units;
    sum.units_per_sec += report.elapsed_ns == 0
                             ? 0.0
                             : static_cast<double>(report.units) * 1e9 /
                                   static_cast<double>(report.elapsed_ns);
    sum.lock_wait_share += report.lock_wait_share();
    sum.lock_hold_share += report.lock_hold_share();
    sum.combine_peer_applied += report.combine_peer_applied;
    sum.steal_attempts += report.sched.steal_attempts;
    sum.steal_hits += report.sched.steal_hits;
    sum.flush_deferrals += report.sched.flush_deferrals;
    sum.global_refills += report.sched.global_refills;
  }
  const auto n = static_cast<std::uint64_t>(reps);
  sum.nodes /= n;
  sum.units /= n;
  sum.units_per_sec /= static_cast<double>(reps);
  sum.lock_wait_share /= static_cast<double>(reps);
  sum.lock_hold_share /= static_cast<double>(reps);
  sum.combine_peer_applied /= n;
  sum.steal_attempts /= n;
  sum.steal_hits /= n;
  sum.flush_deferrals /= n;
  sum.global_refills /= n;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ers;
  auto opt = bench::parse_options(argc, argv, {"O1", "O2", "O3", "R1", "R3"});
  bench::print_header("Sharded problem heap + work stealing (thread runtime)");
  std::printf("reps per configuration: %d\n\n", opt.reps);

  obs::TraceSession session;
  obs::TraceSession* trace = bench::trace_session_for(opt, session);
  obs::MetricsRegistry reg;
  reg.set("bench", "shards");
  TextTable table({"tree", "shards", "threads", "batch", "units/s",
                   "wait share", "hold share", "peer", "steals", "defer",
                   "refill", "nodes", "value"});
  std::vector<std::string> json;
  // 8-thread mean lock-wait and lock-hold share per (shards, batch): the
  // contention headlines the shard sweep and the per-shard locking engine
  // exist to move.
  struct Share {
    double wait = 0.0;
    double hold = 0.0;
    int n = 0;
  };
  std::map<std::pair<int, int>, Share> t8;
  for (const auto& name : opt.tree_names) {
    auto base = harness::tree_by_name(name, opt.scale);
    if (opt.frontier >= 0) base.engine.publish_frontier = opt.frontier;
    const Value oracle = std::visit(
        [&](const auto& game) {
          return alpha_beta_search(game, base.engine.search_depth,
                                   base.engine.ordering)
              .value;
        },
        base.game);
    for (const int shards : {1, 2, 4, 8}) {
      base.engine.heap_shards = shards;
      for (const int threads : {1, 2, 4, 8}) {
        for (const int batch : {1, 4}) {
          const ShardRun r = std::visit(
              [&](const auto& game) {
                return run_config(game, base.engine, threads, batch, opt.reps,
                                  oracle, trace, &reg);
              },
              base.game);
          reg.set("tree", base.name);
          reg.set("run.batch", batch);
          if (threads == 8) {
            Share& acc = t8[{shards, batch}];
            acc.wait += r.lock_wait_share;
            acc.hold += r.lock_hold_share;
            ++acc.n;
          }
          table.add_row(
              {base.name, std::to_string(shards), std::to_string(threads),
               std::to_string(batch), TextTable::num(r.units_per_sec, 0),
               TextTable::num(r.lock_wait_share, 4),
               TextTable::num(r.lock_hold_share, 4),
               std::to_string(r.combine_peer_applied),
               std::to_string(r.steal_hits) + "/" +
                   std::to_string(r.steal_attempts),
               std::to_string(r.flush_deferrals),
               std::to_string(r.global_refills), std::to_string(r.nodes),
               std::to_string(r.value)});
          json.push_back(bench::JsonObject()
                             .field("tree", base.name)
                             .field("shards", shards)
                             .field("threads", threads)
                             .field("batch", batch)
                             .field("units", r.units)
                             .field("units_per_sec", r.units_per_sec)
                             .field("lock_wait_share", r.lock_wait_share)
                             .field("lock_hold_share", r.lock_hold_share)
                             .field("combine_peer_applied",
                                    r.combine_peer_applied)
                             .field("steal_attempts", r.steal_attempts)
                             .field("steal_hits", r.steal_hits)
                             .field("flush_deferrals", r.flush_deferrals)
                             .field("global_refills", r.global_refills)
                             .field("nodes", r.nodes)
                             .field("value", static_cast<int>(r.value))
                             .str());
        }
      }
    }
  }
  table.print();
  std::printf("\nmean lock shares at 8 threads (wait / hold):\n");
  for (const auto& [key, acc] : t8) {
    const double n = acc.n > 0 ? static_cast<double>(acc.n) : 1.0;
    std::printf("  shards=%d batch=%d: %.4f / %.4f\n", key.first, key.second,
                acc.wait / n, acc.hold / n);
  }
  bench::write_bench_json("shards", opt.reps, json, opt.json_out);
  bench::write_observability(opt, trace, reg, "shards");
  return 0;
}
