// Serial-depth sweep (paper §7's contention/starvation discussion): moving
// the cutover deeper creates more, smaller work units — less starvation but
// more shared-heap contention; moving it shallower does the opposite.  The
// paper: "It would be possible to reduce contention by decreasing the serial
// depth, but decreasing the depth would only increase starvation."

#include <variant>

#include "common.hpp"
#include "core/parallel_er.hpp"

int main(int argc, char** argv) {
  using namespace ers;
  const auto opt = bench::parse_options(argc, argv, {"R3", "O1"});
  bench::print_header("Serial-depth sweep: contention vs starvation ( 7)");

  obs::TraceSession session;
  obs::TraceSession* trace = bench::trace_session_for(opt, session);
  obs::MetricsRegistry reg;
  reg.set("bench", "serial_depth");
  TextTable table({"tree", "serial depth", "procs", "units", "speedup",
                   "efficiency", "idle share", "lock share", "nodes"});
  for (const auto& name : opt.tree_names) {
    const auto base = harness::tree_by_name(name, opt.scale);
    const auto serial = harness::run_serial_baselines(base);
    for (int sd = 0; sd <= base.engine.search_depth; ++sd) {
      auto tree = base;
      tree.engine.serial_depth = sd;
      const int p = 16;
      if (trace != nullptr) trace->clear();  // keep the last point only
      const auto pt =
          harness::run_parallel_point(tree, p, serial, {}, nullptr, 1, trace);
      reg.set("tree", tree.name);
      reg.set("serial_depth", sd);
      bench::register_parallel_point(reg, pt);
      const double total = static_cast<double>(pt.metrics.makespan) * p;
      table.add_row({tree.name, std::to_string(sd), std::to_string(p),
                     std::to_string(pt.metrics.units),
                     TextTable::num(pt.speedup, 2),
                     TextTable::num(pt.efficiency, 3),
                     TextTable::num(pt.metrics.idle_time / total, 3),
                     TextTable::num(pt.metrics.lock_wait_time / total, 3),
                     std::to_string(pt.nodes_generated)});
    }
  }
  table.print();
  bench::write_observability(opt, trace, reg, "serial_depth");
  return 0;
}
