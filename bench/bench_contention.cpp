// Distributed problem heap (paper §8, future work): "We expect that this
// efficiency loss can be reduced by distributing work in a manner that
// reduces processor interaction."  The simulator's sharded heap locks model
// exactly that: S independently-serialized queue shards instead of one.
// The contention-bound regime is a deep serial cutover (many small units).

#include <variant>

#include "common.hpp"
#include "core/parallel_er.hpp"

int main(int argc, char** argv) {
  using namespace ers;
  const auto opt = bench::parse_options(argc, argv, {"R3"});
  bench::print_header("Distributed problem heap ( 8 future work)");

  TextTable table({"tree", "serial depth", "procs", "shards", "speedup",
                   "efficiency", "lock share", "idle share"});
  for (const auto& name : opt.tree_names) {
    const auto base = harness::tree_by_name(name, opt.scale);
    const auto serial = harness::run_serial_baselines(base);
    // Two regimes: the paper's serial depth, and a contention-bound one two
    // plies deeper.
    for (const int sd :
         {base.engine.serial_depth,
          std::min(base.engine.search_depth, base.engine.serial_depth + 2)}) {
      auto cfg = base.engine;
      cfg.serial_depth = sd;
      for (const int shards : {1, 2, 4, 16}) {
        const int p = 16;
        const auto metrics = std::visit(
            [&](const auto& game) {
              return parallel_er_sim(game, cfg, p, {}, shards).metrics;
            },
            base.game);
        const double speedup = static_cast<double>(serial.best_cost()) /
                               static_cast<double>(metrics.makespan);
        const double total = static_cast<double>(metrics.makespan) * p;
        table.add_row({base.name, std::to_string(sd), std::to_string(p),
                       std::to_string(shards), TextTable::num(speedup, 2),
                       TextTable::num(speedup / p, 3),
                       TextTable::num(metrics.lock_wait_time / total, 3),
                       TextTable::num(metrics.idle_time / total, 3)});
      }
    }
  }
  table.print();
  return 0;
}
