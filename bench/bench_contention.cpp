// Distributed problem heap (paper §8, future work): "We expect that this
// efficiency loss can be reduced by distributing work in a manner that
// reduces processor interaction."  The simulator's sharded heap locks model
// exactly that: S independently-serialized queue shards instead of one.
// The contention-bound regime is a deep serial cutover (many small units).
//
// Second section (shared search knowledge, also beyond the paper): the
// lock-free transposition table compared across three modes on the Othello
// midgame suite with real threads —
//     none       no table (the paper's setup: workers share only the heap)
//     shared     one ConcurrentTranspositionTable probed by every worker
//     perthread  a private table per worker (same total probes, no sharing)
// The interesting number is total nodes: a shared table lets one worker's
// finished subtree cut off another's, so its node count should undercut
// both controls as threads grow.  OS scheduling makes any single threaded
// run noisy, so each configuration is averaged over --reps runs (default 5).
// Emits BENCH_ttable.json.

#include <memory>
#include <variant>

#include "common.hpp"
#include "core/parallel_er.hpp"
#include "search/concurrent_ttable.hpp"

namespace {

struct TtRun {
  ers::Value value = 0;
  std::uint64_t nodes = 0;
  std::uint64_t units = 0;
  std::uint64_t probes = 0;
  std::uint64_t hits = 0;
};

template <typename G>
TtRun run_tt_mode(const G& game, ers::core::EngineConfig cfg, int threads,
                  const std::string& mode, int table_log2, int reps) {
  using namespace ers;
  TtRun sum;
  for (int rep = 0; rep < reps; ++rep) {
    // Fresh table each rep: this measures intra-search sharing, not warmth.
    std::unique_ptr<ConcurrentTranspositionTable> shared;
    if (mode == "shared") {
      shared = std::make_unique<ConcurrentTranspositionTable>(table_log2);
      cfg.shared_table = shared.get();
    } else {
      cfg.shared_table = nullptr;
    }
    core::Engine<G> engine(game, cfg);
    runtime::ThreadExecutor<core::Engine<G>> exec(threads);
    if (mode == "perthread") exec.use_per_thread_tables(table_log2);
    const auto report = exec.run(engine);
    const auto& s = engine.stats().search;
    sum.value = engine.root_value();
    sum.nodes += s.nodes_generated();
    sum.units += report.units;
    sum.probes += s.tt_probes;
    sum.hits += s.tt_hits;
  }
  const auto n = static_cast<std::uint64_t>(reps);
  return TtRun{sum.value, sum.nodes / n, sum.units / n, sum.probes / n,
               sum.hits / n};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ers;
  const auto opt = bench::parse_options(argc, argv, {"R3"});
  bench::print_header("Distributed problem heap ( 8 future work)");

  obs::TraceSession session;
  obs::TraceSession* trace = bench::trace_session_for(opt, session);
  obs::MetricsRegistry reg;
  reg.set("bench", "contention");
  TextTable table({"tree", "serial depth", "procs", "shards", "speedup",
                   "efficiency", "lock share", "idle share"});
  std::vector<std::string> shard_json;
  for (const auto& name : opt.tree_names) {
    const auto base = harness::tree_by_name(name, opt.scale);
    const auto serial = harness::run_serial_baselines(base);
    // Two regimes: the paper's serial depth, and a contention-bound one two
    // plies deeper.
    for (const int sd :
         {base.engine.serial_depth,
          std::min(base.engine.search_depth, base.engine.serial_depth + 2)}) {
      auto cfg = base.engine;
      cfg.serial_depth = sd;
      for (const int shards : {1, 2, 4, 16}) {
        const int p = 16;
        if (trace != nullptr) trace->clear();  // keep the last point only
        const auto metrics = std::visit(
            [&](const auto& game) {
              return parallel_er_sim(game, cfg, p, {}, shards, 1, trace)
                  .metrics;
            },
            base.game);
        reg.set("tree", base.name);
        reg.set("serial_depth", sd);
        reg.set("shards", shards);
        obs::register_sim_metrics(reg, metrics);
        const double speedup = static_cast<double>(serial.best_cost()) /
                               static_cast<double>(metrics.makespan);
        const double total = static_cast<double>(metrics.makespan) * p;
        table.add_row({base.name, std::to_string(sd), std::to_string(p),
                       std::to_string(shards), TextTable::num(speedup, 2),
                       TextTable::num(speedup / p, 3),
                       TextTable::num(metrics.lock_wait_time / total, 3),
                       TextTable::num(metrics.idle_time / total, 3)});
        shard_json.push_back(bench::JsonObject()
                                 .field("tree", base.name)
                                 .field("serial_depth", sd)
                                 .field("procs", p)
                                 .field("shards", shards)
                                 .field("speedup", speedup)
                                 .field("lock_share", metrics.lock_wait_time / total)
                                 .field("idle_share", metrics.idle_time / total)
                                 .str());
      }
    }
  }
  table.print();
  // Deterministic simulated sweep: one rep is exact.
  bench::write_bench_json("contention", 1, shard_json);

  // --- shared transposition table on the Othello midgame suite ------------
  bench::print_header("Shared transposition table (thread runtime, O1-O3)");
  constexpr int kTableLog2 = 20;
  TextTable tt_table({"tree", "mode", "threads", "value", "nodes", "units",
                      "tt probes", "tt hit rate"});
  std::vector<std::string> tt_json;
  std::uint64_t nodes_none_4t = 0, nodes_shared_4t = 0;
  for (const auto& name : {std::string("O1"), std::string("O2"), std::string("O3")}) {
    const auto base = harness::tree_by_name(name, opt.scale);
    for (const char* mode : {"none", "shared", "perthread"}) {
      for (const int threads : {1, 2, 4, 8}) {
        const TtRun r = std::visit(
            [&](const auto& game) {
              return run_tt_mode(game, base.engine, threads, mode, kTableLog2,
                                 opt.reps);
            },
            base.game);
        if (threads == 4 && std::string(mode) == "none") nodes_none_4t += r.nodes;
        if (threads == 4 && std::string(mode) == "shared")
          nodes_shared_4t += r.nodes;
        const double hit_rate =
            r.probes == 0 ? 0.0
                          : static_cast<double>(r.hits) /
                                static_cast<double>(r.probes);
        tt_table.add_row({base.name, mode, std::to_string(threads),
                          std::to_string(r.value), std::to_string(r.nodes),
                          std::to_string(r.units), std::to_string(r.probes),
                          TextTable::num(hit_rate, 3)});
        tt_json.push_back(bench::JsonObject()
                              .field("tree", base.name)
                              .field("mode", mode)
                              .field("threads", threads)
                              .field("value", static_cast<int>(r.value))
                              .field("nodes", r.nodes)
                              .field("units", r.units)
                              .field("tt_probes", r.probes)
                              .field("tt_hits", r.hits)
                              .field("tt_hit_rate", hit_rate)
                              .str());
      }
    }
  }
  tt_table.print();
  std::printf("\nO1+O2+O3 nodes at 4 threads: none=%llu shared=%llu (%s)\n",
              static_cast<unsigned long long>(nodes_none_4t),
              static_cast<unsigned long long>(nodes_shared_4t),
              nodes_shared_4t < nodes_none_4t ? "shared table searches less"
                                              : "NO REDUCTION");
  bench::write_bench_json("ttable", opt.reps, tt_json);
  bench::write_observability(opt, trace, reg, "contention");
  return 0;
}
