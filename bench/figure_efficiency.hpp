#pragma once
// Shared driver for Figures 10/11 (efficiency of ER vs processor count) and
// Figures 12/13 (nodes generated vs processor count).

#include <optional>

#include "baselines/abdada_par.hpp"
#include "common.hpp"
#include "search/alpha_beta.hpp"
#include "util/check.hpp"

namespace ers::bench {

/// ABDADA on the same positions, threads {1, 2, 4, 8} on the real thread
/// runtime: the modern shared-TT rival the efficiency figures are judged
/// against (DESIGN.md §14).  Node counts relative to one-shot serial
/// alpha-beta at the figure's depth are the portable comparison — ABDADA
/// deepens iteratively, so a ratio slightly above 1 at one thread is the
/// deepening overhead, and the growth with threads is the duplication the
/// shared tables fail to suppress.  Root values are checked against serial
/// alpha-beta on every run; full sweep data lives in BENCH_abdada.json.
inline void print_abdada_rival(const FigureOptions& opt) {
  std::printf("\nABDADA rival on the same positions (thread runtime):\n");
  TextTable table({"tree", "threads", "abdada nodes", "vs alpha-beta",
                   "deferred", "revisited", "value"});
  for (const auto& name : opt.tree_names) {
    const auto tree = harness::tree_by_name(name, opt.scale);
    std::visit(
        [&](const auto& game) {
          const auto ab = alpha_beta_search(game, tree.engine.search_depth,
                                            tree.engine.ordering);
          for (const int threads : {1, 2, 4, 8}) {
            baselines::AbdadaOptions aopt;
            aopt.threads = threads;
            aopt.ordering = tree.engine.ordering;
            const auto r = baselines::abdada_parallel_search(
                game, tree.engine.search_depth, aopt);
            ERS_CHECK(r.value == ab.value &&
                      "ABDADA diverged from serial alpha-beta");
            table.add_row(
                {tree.name, std::to_string(threads),
                 std::to_string(r.stats.nodes_generated()),
                 TextTable::num(
                     static_cast<double>(r.stats.nodes_generated()) /
                         static_cast<double>(ab.stats.nodes_generated()),
                     2),
                 std::to_string(r.stats.moves_deferred),
                 std::to_string(r.stats.moves_revisited),
                 std::to_string(r.value)});
          }
        },
        tree.game);
  }
  table.print();
}

/// Figures 10/11: one efficiency row per processor count and tree, plus the
/// flat "serial alpha-beta" reference line of the paper's plots (its
/// efficiency relative to the fastest serial algorithm).
inline void print_efficiency_figure(const char* title,
                                    const FigureOptions& opt) {
  print_header(title);
  if (opt.shards != 1) std::printf("problem-heap shards: %d\n", opt.shards);
  obs::TraceSession session;
  obs::TraceSession* trace = trace_session_for(opt, session);
  std::optional<TreeSweep> last;
  TextTable table({"tree", "procs", "speedup", "efficiency",
                   "serial alpha-beta eff.", "utilization", "idle share",
                   "waste share", "bytes/node"});
  for (const auto& name : opt.tree_names) {
    const TreeSweep s = run_sweep(name, opt.scale, nullptr, opt.shards, trace);
    for (const auto& p : s.points) {
      const double cap =
          static_cast<double>(p.metrics.makespan) * p.processors;
      const double idle_share =
          static_cast<double>(p.metrics.idle_time) / cap;
      // Waste share (DESIGN.md §16): compute charged to cancelled subtrees
      // over total processor-time.  idle + waste + useful-compute +
      // serialization shares decompose the figure's 1 - efficiency — the
      // waste ledger turns the efficiency gap into named causes.
      const double waste_share = static_cast<double>(p.waste.total_ns()) / cap;
      // Peak engine storage (hot arena + position arena + cold slabs)
      // amortized over every node the search generated — the memory-side
      // efficiency of the two-tier layout (DESIGN.md §15).
      const double bytes_per_node =
          p.nodes_generated > 0
              ? static_cast<double>(p.mem.peak_bytes) /
                    static_cast<double>(p.nodes_generated)
              : 0.0;
      table.add_row({s.tree.name, std::to_string(p.processors),
                     TextTable::num(p.speedup, 2),
                     TextTable::num(p.efficiency, 3),
                     TextTable::num(s.serial.alpha_beta_efficiency(), 3),
                     TextTable::num(p.metrics.utilization(), 3),
                     TextTable::num(idle_share, 3),
                     TextTable::num(waste_share, 3),
                     TextTable::num(bytes_per_node, 1)});
    }
    last = s;
  }
  table.print();
  print_abdada_rival(opt);
  if (last.has_value()) write_sweep_observability(opt, trace, *last, title);
}

/// Figures 12/13: nodes generated per processor count, with the serial
/// alpha-beta and serial ER node counts as the reference bars.
inline void print_nodes_figure(const char* title, const FigureOptions& opt) {
  print_header(title);
  if (opt.shards != 1) std::printf("problem-heap shards: %d\n", opt.shards);
  obs::TraceSession session;
  obs::TraceSession* trace = trace_session_for(opt, session);
  std::optional<TreeSweep> last;
  TextTable table({"tree", "procs", "nodes generated", "vs serial ER",
                   "serial ER nodes", "alpha-beta nodes"});
  for (const auto& name : opt.tree_names) {
    const TreeSweep s = run_sweep(name, opt.scale, nullptr, opt.shards, trace);
    const auto er_nodes = s.serial.er.nodes_generated();
    for (const auto& p : s.points) {
      table.add_row({s.tree.name, std::to_string(p.processors),
                     std::to_string(p.nodes_generated),
                     TextTable::num(static_cast<double>(p.nodes_generated) /
                                        static_cast<double>(er_nodes),
                                    2),
                     std::to_string(er_nodes),
                     std::to_string(s.serial.alpha_beta.nodes_generated())});
    }
    last = s;
  }
  table.print();
  if (last.has_value()) write_sweep_observability(opt, trace, *last, title);
}

}  // namespace ers::bench
