#pragma once
// Shared driver for Figures 10/11 (efficiency of ER vs processor count) and
// Figures 12/13 (nodes generated vs processor count).

#include <optional>

#include "common.hpp"

namespace ers::bench {

/// Figures 10/11: one efficiency row per processor count and tree, plus the
/// flat "serial alpha-beta" reference line of the paper's plots (its
/// efficiency relative to the fastest serial algorithm).
inline void print_efficiency_figure(const char* title,
                                    const FigureOptions& opt) {
  print_header(title);
  if (opt.shards != 1) std::printf("problem-heap shards: %d\n", opt.shards);
  obs::TraceSession session;
  obs::TraceSession* trace = trace_session_for(opt, session);
  std::optional<TreeSweep> last;
  TextTable table({"tree", "procs", "speedup", "efficiency",
                   "serial alpha-beta eff.", "utilization", "idle share"});
  for (const auto& name : opt.tree_names) {
    const TreeSweep s = run_sweep(name, opt.scale, nullptr, opt.shards, trace);
    for (const auto& p : s.points) {
      const double idle_share =
          static_cast<double>(p.metrics.idle_time) /
          (static_cast<double>(p.metrics.makespan) * p.processors);
      table.add_row({s.tree.name, std::to_string(p.processors),
                     TextTable::num(p.speedup, 2),
                     TextTable::num(p.efficiency, 3),
                     TextTable::num(s.serial.alpha_beta_efficiency(), 3),
                     TextTable::num(p.metrics.utilization(), 3),
                     TextTable::num(idle_share, 3)});
    }
    last = s;
  }
  table.print();
  if (last.has_value()) write_sweep_observability(opt, trace, *last, title);
}

/// Figures 12/13: nodes generated per processor count, with the serial
/// alpha-beta and serial ER node counts as the reference bars.
inline void print_nodes_figure(const char* title, const FigureOptions& opt) {
  print_header(title);
  if (opt.shards != 1) std::printf("problem-heap shards: %d\n", opt.shards);
  obs::TraceSession session;
  obs::TraceSession* trace = trace_session_for(opt, session);
  std::optional<TreeSweep> last;
  TextTable table({"tree", "procs", "nodes generated", "vs serial ER",
                   "serial ER nodes", "alpha-beta nodes"});
  for (const auto& name : opt.tree_names) {
    const TreeSweep s = run_sweep(name, opt.scale, nullptr, opt.shards, trace);
    const auto er_nodes = s.serial.er.nodes_generated();
    for (const auto& p : s.points) {
      table.add_row({s.tree.name, std::to_string(p.processors),
                     std::to_string(p.nodes_generated),
                     TextTable::num(static_cast<double>(p.nodes_generated) /
                                        static_cast<double>(er_nodes),
                                    2),
                     std::to_string(er_nodes),
                     std::to_string(s.serial.alpha_beta.nodes_generated())});
    }
    last = s;
  }
  table.print();
  if (last.has_value()) write_sweep_observability(opt, trace, *last, title);
}

}  // namespace ers::bench
