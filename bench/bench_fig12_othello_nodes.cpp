// Figure 12: number of nodes generated for the Othello trees O1-O3.
#include "figure_efficiency.hpp"

int main(int argc, char** argv) {
  const auto opt = ers::bench::parse_options(argc, argv, {"O1", "O2", "O3"});
  ers::bench::print_nodes_figure(
      "Figure 12: nodes generated for Othello game trees", opt);
  return 0;
}
