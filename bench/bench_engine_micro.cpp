// Microbenchmarks (google-benchmark) of the building blocks: Othello move
// generation and evaluation, the implicit random-tree primitives, and the
// end-to-end problem-heap engine (simulated and threaded executors).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/parallel_er.hpp"
#include "othello/eval.hpp"
#include "othello/positions.hpp"
#include "randomtree/random_tree.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace ers;

/// Peak resident set of this process in KiB (0 where getrusage is
/// unavailable).  Attached as a counter so the CI bench guard can fail on
/// memory growth the same way it fails on throughput loss.
double peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(ru.ru_maxrss) / 1024.0;  // bytes on macOS
#else
    return static_cast<double>(ru.ru_maxrss);  // KiB on Linux
#endif
  }
#endif
  return 0.0;
}

void BM_OthelloLegalMoves(benchmark::State& state) {
  const othello::Board b = othello::paper_position(1);
  for (auto _ : state) benchmark::DoNotOptimize(othello::legal_moves(b));
}
BENCHMARK(BM_OthelloLegalMoves);

void BM_OthelloApplyMove(benchmark::State& state) {
  const othello::Board b = othello::paper_position(1);
  const int sq = othello::lsb(othello::legal_moves(b));
  for (auto _ : state) benchmark::DoNotOptimize(othello::apply_move(b, sq));
}
BENCHMARK(BM_OthelloApplyMove);

void BM_OthelloEvaluate(benchmark::State& state) {
  const othello::Board b = othello::paper_position(2);
  for (auto _ : state) benchmark::DoNotOptimize(othello::evaluate_board(b));
}
BENCHMARK(BM_OthelloEvaluate);

void BM_OthelloPerft4(benchmark::State& state) {
  const othello::Board b = othello::initial_board();
  for (auto _ : state) benchmark::DoNotOptimize(othello::perft(b, 4));
}
BENCHMARK(BM_OthelloPerft4);

void BM_RandomTreeChildren(benchmark::State& state) {
  const UniformRandomTree g(8, 7, 303);
  std::vector<UniformRandomTree::Position> kids;
  for (auto _ : state) {
    kids.clear();
    g.generate_children(g.root(), kids);
    benchmark::DoNotOptimize(kids.data());
  }
}
BENCHMARK(BM_RandomTreeChildren);

void BM_ParallelErSim(benchmark::State& state) {
  const UniformRandomTree g(4, 7, 11, -1000, 1000);
  core::EngineConfig cfg;
  cfg.search_depth = 7;
  cfg.serial_depth = 4;
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = parallel_er_sim(g, cfg, procs);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_ParallelErSim)->Arg(1)->Arg(4)->Arg(16);

void BM_EngineCommitContention(benchmark::State& state) {
  // Commit-under-contention: T raw protocol drivers hammer the engine with
  // batch-1 acquire/compute/commit loops — no executor batching, parking
  // or stealing to smooth the interleavings — so elapsed time is dominated
  // by shard-lock sections and flat-combining drain rounds.  Sweeping
  // shards 1 vs 8 at fixed threads isolates what per-shard locking buys on
  // the pure synchronization path.
  const UniformRandomTree g(4, 6, 17, -1000, 1000);
  core::EngineConfig cfg;
  cfg.search_depth = 6;
  cfg.serial_depth = 4;
  cfg.heap_shards = static_cast<int>(state.range(1));
  const int threads = static_cast<int>(state.range(0));
  std::uint64_t units = 0;
  std::uint64_t peer_applied = 0;
  for (auto _ : state) {
    core::Engine<UniformRandomTree> engine(g, cfg);
    std::vector<std::thread> drivers;
    drivers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      drivers.emplace_back([&engine] {
        std::vector<core::WorkItem> items;
        std::vector<core::Engine<UniformRandomTree>::CommitEntry> batch;
        while (!engine.done()) {
          items.clear();
          batch.clear();
          if (engine.acquire_batch(1, items) == 0) {
            std::this_thread::yield();
            continue;
          }
          for (const core::WorkItem& item : items)
            batch.push_back({item, engine.compute(item)});
          engine.commit_batch(batch);
        }
      });
    }
    for (std::thread& t : drivers) t.join();
    units += engine.stats().units_processed;
    peer_applied += engine.lock_stats().combine_peer_applied;
  }
  state.counters["units/s"] = benchmark::Counter(
      static_cast<double>(units), benchmark::Counter::kIsRate);
  state.counters["peer_applied"] = benchmark::Counter(
      static_cast<double>(peer_applied), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_EngineCommitContention)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 8}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_EngineCommitDisjoint(benchmark::State& state) {
  // Disjoint-subtree commits: the root-shard serialization probe
  // (DESIGN.md §13).  Under kSubtreeAffinity placement root child i and its
  // whole subtree home on shard i % S, so with threads == shards and each
  // driver draining only its own shard (acquire_batch_shard), every
  // concurrent commit pair is on *provably disjoint* subtrees.  With the
  // publish frontier off (arg1 = 0) those commits still meet at shard 0,
  // because every touch set walks the ancestor chain to the root; with it
  // on (arg1 = 4) the touch sets truncate at the frontier and disjoint
  // commits lock disjoint shard sets — throughput should scale with the
  // shard count instead of flat-lining on the root's lock.  Drivers fall
  // back to a global pop when their own shard runs dry so no subtree
  // orphans work near the end.
  const UniformRandomTree g(4, 6, 17, -1000, 1000);
  core::EngineConfig cfg;
  cfg.search_depth = 6;
  cfg.serial_depth = 4;
  cfg.heap_shards = static_cast<int>(state.range(0));
  cfg.placement = core::PlacementMode::kSubtreeAffinity;
  cfg.publish_frontier = static_cast<int>(state.range(1));
  const int threads = cfg.heap_shards;
  std::uint64_t units = 0;
  std::uint64_t truncated = 0;
  std::uint64_t publishes = 0;
  for (auto _ : state) {
    core::Engine<UniformRandomTree> engine(g, cfg);
    std::vector<std::thread> drivers;
    drivers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      drivers.emplace_back([&engine, t] {
        const auto home = static_cast<std::size_t>(t);
        std::vector<core::WorkItem> items;
        std::vector<core::Engine<UniformRandomTree>::CommitEntry> batch;
        while (!engine.done()) {
          items.clear();
          batch.clear();
          if (engine.acquire_batch_shard(home, 1, items) == 0 &&
              engine.acquire_batch(1, items) == 0) {
            std::this_thread::yield();
            continue;
          }
          for (const core::WorkItem& item : items)
            batch.push_back({item, engine.compute(item)});
          engine.commit_batch(batch);
        }
      });
    }
    for (std::thread& t : drivers) t.join();
    units += engine.stats().units_processed;
    const auto ls = engine.lock_stats();
    truncated += ls.truncated_records;
    publishes += ls.root_publishes;
  }
  state.counters["units/s"] = benchmark::Counter(
      static_cast<double>(units), benchmark::Counter::kIsRate);
  state.counters["truncated"] = benchmark::Counter(
      static_cast<double>(truncated), benchmark::Counter::kAvgIterations);
  state.counters["publishes"] = benchmark::Counter(
      static_cast<double>(publishes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_EngineCommitDisjoint)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 4}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_NodeChurn(benchmark::State& state) {
  // Node-lifecycle churn: run the engine to completion with speculation on
  // (spec cancellations + ancestor cutoffs kill subtrees mid-flight), so the
  // loop exercises the full expand -> cancel -> reclaim cycle of the
  // two-tier node storage — slab allocation at commit_expand, dead-drop and
  // finish-time reclamation, freelist recycling (DESIGN.md §15).  The
  // single protocol driver keeps the measurement on the storage path, not
  // on scheduler interleaving; the shard sweep varies how many slabs and
  // freelists the same churn is spread across.
  const UniformRandomTree g(5, 7, 29, -1000, 1000);
  core::EngineConfig cfg;
  cfg.search_depth = 7;
  cfg.serial_depth = 5;
  cfg.heap_shards = static_cast<int>(state.range(0));
  std::uint64_t nodes = 0;
  std::uint64_t reclaimed = 0;
  std::uint64_t peak_bytes = 0;
  for (auto _ : state) {
    core::Engine<UniformRandomTree> engine(g, cfg);
    std::vector<core::WorkItem> items;
    std::vector<core::Engine<UniformRandomTree>::CommitEntry> batch;
    while (!engine.done()) {
      items.clear();
      batch.clear();
      if (engine.acquire_batch(8, items) == 0) continue;
      for (const core::WorkItem& item : items)
        batch.push_back({item, engine.compute(item)});
      engine.commit_batch(batch);
    }
    const core::EngineMemStats m = engine.mem_stats();
    nodes += m.live_nodes;
    reclaimed += m.cold_reclaimed;
    peak_bytes = std::max(peak_bytes, m.peak_bytes);
  }
  state.counters["nodes/s"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kIsRate);
  state.counters["cold_reclaimed"] = benchmark::Counter(
      static_cast<double>(reclaimed), benchmark::Counter::kAvgIterations);
  state.counters["bytes_per_node"] =
      nodes > 0 ? static_cast<double>(peak_bytes) /
                      (static_cast<double>(nodes) /
                       static_cast<double>(state.iterations()))
                : 0.0;
  state.counters["peak_rss_kb"] = peak_rss_kb();
}
BENCHMARK(BM_NodeChurn)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ParallelErThreads(benchmark::State& state) {
  const UniformRandomTree g(4, 7, 11, -1000, 1000);
  core::EngineConfig cfg;
  cfg.search_depth = 7;
  cfg.serial_depth = 4;
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = parallel_er_threads(g, cfg, threads);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_ParallelErThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
