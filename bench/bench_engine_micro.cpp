// Microbenchmarks (google-benchmark) of the building blocks: Othello move
// generation and evaluation, the implicit random-tree primitives, and the
// end-to-end problem-heap engine (simulated and threaded executors).

#include <benchmark/benchmark.h>

#include "core/parallel_er.hpp"
#include "othello/eval.hpp"
#include "othello/positions.hpp"
#include "randomtree/random_tree.hpp"

namespace {

using namespace ers;

void BM_OthelloLegalMoves(benchmark::State& state) {
  const othello::Board b = othello::paper_position(1);
  for (auto _ : state) benchmark::DoNotOptimize(othello::legal_moves(b));
}
BENCHMARK(BM_OthelloLegalMoves);

void BM_OthelloApplyMove(benchmark::State& state) {
  const othello::Board b = othello::paper_position(1);
  const int sq = othello::lsb(othello::legal_moves(b));
  for (auto _ : state) benchmark::DoNotOptimize(othello::apply_move(b, sq));
}
BENCHMARK(BM_OthelloApplyMove);

void BM_OthelloEvaluate(benchmark::State& state) {
  const othello::Board b = othello::paper_position(2);
  for (auto _ : state) benchmark::DoNotOptimize(othello::evaluate_board(b));
}
BENCHMARK(BM_OthelloEvaluate);

void BM_OthelloPerft4(benchmark::State& state) {
  const othello::Board b = othello::initial_board();
  for (auto _ : state) benchmark::DoNotOptimize(othello::perft(b, 4));
}
BENCHMARK(BM_OthelloPerft4);

void BM_RandomTreeChildren(benchmark::State& state) {
  const UniformRandomTree g(8, 7, 303);
  std::vector<UniformRandomTree::Position> kids;
  for (auto _ : state) {
    kids.clear();
    g.generate_children(g.root(), kids);
    benchmark::DoNotOptimize(kids.data());
  }
}
BENCHMARK(BM_RandomTreeChildren);

void BM_ParallelErSim(benchmark::State& state) {
  const UniformRandomTree g(4, 7, 11, -1000, 1000);
  core::EngineConfig cfg;
  cfg.search_depth = 7;
  cfg.serial_depth = 4;
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = parallel_er_sim(g, cfg, procs);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_ParallelErSim)->Arg(1)->Arg(4)->Arg(16);

void BM_ParallelErThreads(benchmark::State& state) {
  const UniformRandomTree g(4, 7, 11, -1000, 1000);
  core::EngineConfig cfg;
  cfg.search_depth = 7;
  cfg.serial_depth = 4;
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = parallel_er_threads(g, cfg, threads);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_ParallelErThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
