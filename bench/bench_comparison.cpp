// Head-to-head comparison of parallel ER against the prior algorithms of
// paper §4 — parallel aspiration, MWF, tree-splitting and PV-splitting —
// under one cost model.  The paper names this comparison as future work
// (§8); the expected shape: aspiration saturates near 5-6x, MWF plateaus
// near 6, tree-splitting decays like 1/sqrt(k) on ordered trees, and ER
// keeps climbing through 16 processors.

#include <variant>

#include "baselines/aspiration_par.hpp"
#include "baselines/mwf.hpp"
#include "baselines/pv_splitting.hpp"
#include "baselines/tree_splitting.hpp"
#include "common.hpp"
#include "sim/executor.hpp"

namespace {

using namespace ers;

struct Row {
  double er = 0, aspiration = 0, mwf = 0, tree_split = 0, pv_split = 0;
};

int log2_int(int p) {
  int h = 0;
  while ((1 << h) < p) ++h;
  return h;
}

template <Game G>
Row run_all(const G& game, const harness::ExperimentTree& tree,
            const harness::SerialBaseline& serial, int p,
            obs::TraceSession* trace) {
  const sim::CostModel cost;
  Row row;

  if (trace != nullptr) trace->clear();  // keep the last ER point only
  const auto er =
      harness::run_parallel_point(tree, p, serial, {}, nullptr, 1, trace);
  row.er = er.speedup;

  // Windows partition the evaluator's actual output range (Othello's
  // heuristic stays within a few thousand; random leaves are +-10000).
  const Value bound = tree.is_othello() ? 4'000 : 10'500;
  const auto asp = baselines::parallel_aspiration_search(
      game, tree.engine.search_depth, p, bound, tree.engine.ordering, cost);
  ERS_CHECK(asp.value == serial.value);
  row.aspiration =
      static_cast<double>(serial.best_cost()) / static_cast<double>(asp.makespan);

  typename baselines::MwfEngine<G>::Config mcfg;
  mcfg.search_depth = tree.engine.search_depth;
  mcfg.serial_depth = tree.engine.serial_depth;
  mcfg.ordering = tree.engine.ordering;
  baselines::MwfEngine<G> mwf(game, mcfg);
  sim::SimExecutor<baselines::MwfEngine<G>> exec(p, cost);
  const auto mm = exec.run(mwf);
  ERS_CHECK(mwf.root_value() == serial.value);
  row.mwf = static_cast<double>(serial.best_cost()) /
            static_cast<double>(mm.makespan);

  const baselines::ProcessorTree procs{2, log2_int(p)};
  const auto ts = baselines::tree_splitting_search(
      game, tree.engine.search_depth, procs, tree.engine.ordering, cost);
  ERS_CHECK(ts.value == serial.value);
  row.tree_split =
      static_cast<double>(serial.best_cost()) / static_cast<double>(ts.finish);

  const auto pv = baselines::pv_splitting_search(
      game, tree.engine.search_depth, procs, tree.engine.ordering, cost);
  ERS_CHECK(pv.value == serial.value);
  row.pv_split =
      static_cast<double>(serial.best_cost()) / static_cast<double>(pv.finish);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ers;
  const auto opt = bench::parse_options(argc, argv, {"R1", "R3", "O1"});
  bench::print_header(
      "Comparison (paper 8, future work): speedup of ER vs prior parallel "
      "algorithms");

  obs::TraceSession session;
  obs::TraceSession* trace = bench::trace_session_for(opt, session);
  obs::MetricsRegistry reg;
  reg.set("bench", "comparison");
  TextTable table({"tree", "procs", "ER", "aspiration", "MWF", "tree-split",
                   "pv-split"});
  auto sweep = [&](const harness::ExperimentTree& tree) {
    const auto serial = harness::run_serial_baselines(tree);
    for (const int p : {1, 2, 4, 8, 16}) {
      const Row row = std::visit(
          [&](const auto& game) {
            return run_all(game, tree, serial, p, trace);
          },
          tree.game);
      reg.set("tree", tree.name);
      reg.set("processors", p);
      reg.set("speedup.er", row.er);
      reg.set("speedup.aspiration", row.aspiration);
      reg.set("speedup.mwf", row.mwf);
      reg.set("speedup.tree_split", row.tree_split);
      reg.set("speedup.pv_split", row.pv_split);
      table.add_row({tree.name, std::to_string(p), TextTable::num(row.er, 2),
                     TextTable::num(row.aspiration, 2),
                     TextTable::num(row.mwf, 2),
                     TextTable::num(row.tree_split, 2),
                     TextTable::num(row.pv_split, 2)});
    }
  };
  for (const auto& name : opt.tree_names)
    sweep(harness::tree_by_name(name, opt.scale));

  // Akl's original regime: shallow, wide random trees (his simulations used
  // 4-ply trees of various fixed degrees).  MWF's phase structure only pays
  // off here — on the deep Table 3 trees its sequential right-child gates
  // serialize most of the work.
  {
    harness::ExperimentTree akl{"A1 (akl 16^4)",
                                UniformRandomTree(16, 4, 777, -10'000, 10'000),
                                {}};
    akl.engine.search_depth = 4;
    akl.engine.serial_depth = 2;
    sweep(akl);
  }
  table.print();
  bench::write_observability(opt, trace, reg, "comparison");
  return 0;
}
