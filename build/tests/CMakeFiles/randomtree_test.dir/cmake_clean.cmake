file(REMOVE_RECURSE
  "CMakeFiles/randomtree_test.dir/randomtree/random_tree_test.cpp.o"
  "CMakeFiles/randomtree_test.dir/randomtree/random_tree_test.cpp.o.d"
  "CMakeFiles/randomtree_test.dir/randomtree/strongly_ordered_test.cpp.o"
  "CMakeFiles/randomtree_test.dir/randomtree/strongly_ordered_test.cpp.o.d"
  "randomtree_test"
  "randomtree_test.pdb"
  "randomtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
