# Empty dependencies file for randomtree_test.
# This may be replaced when dependencies are built.
