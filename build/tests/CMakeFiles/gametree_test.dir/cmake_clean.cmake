file(REMOVE_RECURSE
  "CMakeFiles/gametree_test.dir/gametree/explicit_tree_test.cpp.o"
  "CMakeFiles/gametree_test.dir/gametree/explicit_tree_test.cpp.o.d"
  "CMakeFiles/gametree_test.dir/gametree/materialize_test.cpp.o"
  "CMakeFiles/gametree_test.dir/gametree/materialize_test.cpp.o.d"
  "gametree_test"
  "gametree_test.pdb"
  "gametree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gametree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
