# Empty dependencies file for gametree_test.
# This may be replaced when dependencies are built.
