# Empty dependencies file for tictactoe_test.
# This may be replaced when dependencies are built.
