file(REMOVE_RECURSE
  "CMakeFiles/tictactoe_test.dir/tictactoe/tictactoe_test.cpp.o"
  "CMakeFiles/tictactoe_test.dir/tictactoe/tictactoe_test.cpp.o.d"
  "tictactoe_test"
  "tictactoe_test.pdb"
  "tictactoe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tictactoe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
