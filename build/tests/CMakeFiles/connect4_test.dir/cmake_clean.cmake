file(REMOVE_RECURSE
  "CMakeFiles/connect4_test.dir/connect4/connect4_test.cpp.o"
  "CMakeFiles/connect4_test.dir/connect4/connect4_test.cpp.o.d"
  "connect4_test"
  "connect4_test.pdb"
  "connect4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connect4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
