# Empty compiler generated dependencies file for connect4_test.
# This may be replaced when dependencies are built.
