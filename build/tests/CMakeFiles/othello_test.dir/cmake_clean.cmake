file(REMOVE_RECURSE
  "CMakeFiles/othello_test.dir/othello/bitboard_test.cpp.o"
  "CMakeFiles/othello_test.dir/othello/bitboard_test.cpp.o.d"
  "CMakeFiles/othello_test.dir/othello/board_test.cpp.o"
  "CMakeFiles/othello_test.dir/othello/board_test.cpp.o.d"
  "CMakeFiles/othello_test.dir/othello/eval_test.cpp.o"
  "CMakeFiles/othello_test.dir/othello/eval_test.cpp.o.d"
  "CMakeFiles/othello_test.dir/othello/positions_test.cpp.o"
  "CMakeFiles/othello_test.dir/othello/positions_test.cpp.o.d"
  "CMakeFiles/othello_test.dir/othello/rules_test.cpp.o"
  "CMakeFiles/othello_test.dir/othello/rules_test.cpp.o.d"
  "othello_test"
  "othello_test.pdb"
  "othello_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/othello_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
