
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/othello/bitboard_test.cpp" "tests/CMakeFiles/othello_test.dir/othello/bitboard_test.cpp.o" "gcc" "tests/CMakeFiles/othello_test.dir/othello/bitboard_test.cpp.o.d"
  "/root/repo/tests/othello/board_test.cpp" "tests/CMakeFiles/othello_test.dir/othello/board_test.cpp.o" "gcc" "tests/CMakeFiles/othello_test.dir/othello/board_test.cpp.o.d"
  "/root/repo/tests/othello/eval_test.cpp" "tests/CMakeFiles/othello_test.dir/othello/eval_test.cpp.o" "gcc" "tests/CMakeFiles/othello_test.dir/othello/eval_test.cpp.o.d"
  "/root/repo/tests/othello/positions_test.cpp" "tests/CMakeFiles/othello_test.dir/othello/positions_test.cpp.o" "gcc" "tests/CMakeFiles/othello_test.dir/othello/positions_test.cpp.o.d"
  "/root/repo/tests/othello/rules_test.cpp" "tests/CMakeFiles/othello_test.dir/othello/rules_test.cpp.o" "gcc" "tests/CMakeFiles/othello_test.dir/othello/rules_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/othello/CMakeFiles/ers_othello.dir/DependInfo.cmake"
  "/root/repo/build/src/gametree/CMakeFiles/ers_gametree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
