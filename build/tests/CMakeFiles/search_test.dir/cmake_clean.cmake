file(REMOVE_RECURSE
  "CMakeFiles/search_test.dir/search/alpha_beta_test.cpp.o"
  "CMakeFiles/search_test.dir/search/alpha_beta_test.cpp.o.d"
  "CMakeFiles/search_test.dir/search/aspiration_test.cpp.o"
  "CMakeFiles/search_test.dir/search/aspiration_test.cpp.o.d"
  "CMakeFiles/search_test.dir/search/best_move_test.cpp.o"
  "CMakeFiles/search_test.dir/search/best_move_test.cpp.o.d"
  "CMakeFiles/search_test.dir/search/equivalence_test.cpp.o"
  "CMakeFiles/search_test.dir/search/equivalence_test.cpp.o.d"
  "CMakeFiles/search_test.dir/search/er_serial_test.cpp.o"
  "CMakeFiles/search_test.dir/search/er_serial_test.cpp.o.d"
  "CMakeFiles/search_test.dir/search/iterative_test.cpp.o"
  "CMakeFiles/search_test.dir/search/iterative_test.cpp.o.d"
  "CMakeFiles/search_test.dir/search/minimal_tree_test.cpp.o"
  "CMakeFiles/search_test.dir/search/minimal_tree_test.cpp.o.d"
  "CMakeFiles/search_test.dir/search/negascout_test.cpp.o"
  "CMakeFiles/search_test.dir/search/negascout_test.cpp.o.d"
  "CMakeFiles/search_test.dir/search/negmax_test.cpp.o"
  "CMakeFiles/search_test.dir/search/negmax_test.cpp.o.d"
  "CMakeFiles/search_test.dir/search/paper_figures_test.cpp.o"
  "CMakeFiles/search_test.dir/search/paper_figures_test.cpp.o.d"
  "CMakeFiles/search_test.dir/search/ttable_test.cpp.o"
  "CMakeFiles/search_test.dir/search/ttable_test.cpp.o.d"
  "CMakeFiles/search_test.dir/search/window_property_test.cpp.o"
  "CMakeFiles/search_test.dir/search/window_property_test.cpp.o.d"
  "search_test"
  "search_test.pdb"
  "search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
