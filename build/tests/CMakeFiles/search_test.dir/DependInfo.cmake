
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/search/alpha_beta_test.cpp" "tests/CMakeFiles/search_test.dir/search/alpha_beta_test.cpp.o" "gcc" "tests/CMakeFiles/search_test.dir/search/alpha_beta_test.cpp.o.d"
  "/root/repo/tests/search/aspiration_test.cpp" "tests/CMakeFiles/search_test.dir/search/aspiration_test.cpp.o" "gcc" "tests/CMakeFiles/search_test.dir/search/aspiration_test.cpp.o.d"
  "/root/repo/tests/search/best_move_test.cpp" "tests/CMakeFiles/search_test.dir/search/best_move_test.cpp.o" "gcc" "tests/CMakeFiles/search_test.dir/search/best_move_test.cpp.o.d"
  "/root/repo/tests/search/equivalence_test.cpp" "tests/CMakeFiles/search_test.dir/search/equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/search_test.dir/search/equivalence_test.cpp.o.d"
  "/root/repo/tests/search/er_serial_test.cpp" "tests/CMakeFiles/search_test.dir/search/er_serial_test.cpp.o" "gcc" "tests/CMakeFiles/search_test.dir/search/er_serial_test.cpp.o.d"
  "/root/repo/tests/search/iterative_test.cpp" "tests/CMakeFiles/search_test.dir/search/iterative_test.cpp.o" "gcc" "tests/CMakeFiles/search_test.dir/search/iterative_test.cpp.o.d"
  "/root/repo/tests/search/minimal_tree_test.cpp" "tests/CMakeFiles/search_test.dir/search/minimal_tree_test.cpp.o" "gcc" "tests/CMakeFiles/search_test.dir/search/minimal_tree_test.cpp.o.d"
  "/root/repo/tests/search/negascout_test.cpp" "tests/CMakeFiles/search_test.dir/search/negascout_test.cpp.o" "gcc" "tests/CMakeFiles/search_test.dir/search/negascout_test.cpp.o.d"
  "/root/repo/tests/search/negmax_test.cpp" "tests/CMakeFiles/search_test.dir/search/negmax_test.cpp.o" "gcc" "tests/CMakeFiles/search_test.dir/search/negmax_test.cpp.o.d"
  "/root/repo/tests/search/paper_figures_test.cpp" "tests/CMakeFiles/search_test.dir/search/paper_figures_test.cpp.o" "gcc" "tests/CMakeFiles/search_test.dir/search/paper_figures_test.cpp.o.d"
  "/root/repo/tests/search/ttable_test.cpp" "tests/CMakeFiles/search_test.dir/search/ttable_test.cpp.o" "gcc" "tests/CMakeFiles/search_test.dir/search/ttable_test.cpp.o.d"
  "/root/repo/tests/search/window_property_test.cpp" "tests/CMakeFiles/search_test.dir/search/window_property_test.cpp.o" "gcc" "tests/CMakeFiles/search_test.dir/search/window_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/search/CMakeFiles/ers_search.dir/DependInfo.cmake"
  "/root/repo/build/src/gametree/CMakeFiles/ers_gametree.dir/DependInfo.cmake"
  "/root/repo/build/src/othello/CMakeFiles/ers_othello.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
