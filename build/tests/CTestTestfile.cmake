# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/gametree_test[1]_include.cmake")
include("/root/repo/build/tests/randomtree_test[1]_include.cmake")
include("/root/repo/build/tests/tictactoe_test[1]_include.cmake")
include("/root/repo/build/tests/othello_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/connect4_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
