# Empty compiler generated dependencies file for connect4_duel.
# This may be replaced when dependencies are built.
