file(REMOVE_RECURSE
  "CMakeFiles/connect4_duel.dir/connect4_duel.cpp.o"
  "CMakeFiles/connect4_duel.dir/connect4_duel.cpp.o.d"
  "connect4_duel"
  "connect4_duel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connect4_duel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
