file(REMOVE_RECURSE
  "CMakeFiles/othello_selfplay.dir/othello_selfplay.cpp.o"
  "CMakeFiles/othello_selfplay.dir/othello_selfplay.cpp.o.d"
  "othello_selfplay"
  "othello_selfplay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/othello_selfplay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
