# Empty compiler generated dependencies file for othello_selfplay.
# This may be replaced when dependencies are built.
