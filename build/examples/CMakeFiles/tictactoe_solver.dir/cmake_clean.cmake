file(REMOVE_RECURSE
  "CMakeFiles/tictactoe_solver.dir/tictactoe_solver.cpp.o"
  "CMakeFiles/tictactoe_solver.dir/tictactoe_solver.cpp.o.d"
  "tictactoe_solver"
  "tictactoe_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tictactoe_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
