# Empty compiler generated dependencies file for tictactoe_solver.
# This may be replaced when dependencies are built.
