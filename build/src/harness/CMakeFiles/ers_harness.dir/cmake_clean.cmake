file(REMOVE_RECURSE
  "CMakeFiles/ers_harness.dir/experiment.cpp.o"
  "CMakeFiles/ers_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/ers_harness.dir/tree_registry.cpp.o"
  "CMakeFiles/ers_harness.dir/tree_registry.cpp.o.d"
  "libers_harness.a"
  "libers_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ers_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
