file(REMOVE_RECURSE
  "libers_harness.a"
)
