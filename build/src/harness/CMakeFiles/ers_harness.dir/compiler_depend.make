# Empty compiler generated dependencies file for ers_harness.
# This may be replaced when dependencies are built.
