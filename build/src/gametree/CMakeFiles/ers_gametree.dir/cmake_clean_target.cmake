file(REMOVE_RECURSE
  "libers_gametree.a"
)
