file(REMOVE_RECURSE
  "CMakeFiles/ers_gametree.dir/explicit_tree.cpp.o"
  "CMakeFiles/ers_gametree.dir/explicit_tree.cpp.o.d"
  "libers_gametree.a"
  "libers_gametree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ers_gametree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
