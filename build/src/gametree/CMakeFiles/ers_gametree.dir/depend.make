# Empty dependencies file for ers_gametree.
# This may be replaced when dependencies are built.
