file(REMOVE_RECURSE
  "libers_othello.a"
)
