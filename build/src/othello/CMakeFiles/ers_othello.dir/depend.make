# Empty dependencies file for ers_othello.
# This may be replaced when dependencies are built.
