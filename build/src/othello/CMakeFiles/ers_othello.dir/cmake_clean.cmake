file(REMOVE_RECURSE
  "CMakeFiles/ers_othello.dir/board.cpp.o"
  "CMakeFiles/ers_othello.dir/board.cpp.o.d"
  "CMakeFiles/ers_othello.dir/eval.cpp.o"
  "CMakeFiles/ers_othello.dir/eval.cpp.o.d"
  "CMakeFiles/ers_othello.dir/positions.cpp.o"
  "CMakeFiles/ers_othello.dir/positions.cpp.o.d"
  "libers_othello.a"
  "libers_othello.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ers_othello.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
