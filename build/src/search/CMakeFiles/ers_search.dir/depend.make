# Empty dependencies file for ers_search.
# This may be replaced when dependencies are built.
