file(REMOVE_RECURSE
  "libers_search.a"
)
