file(REMOVE_RECURSE
  "CMakeFiles/ers_search.dir/minimal_tree.cpp.o"
  "CMakeFiles/ers_search.dir/minimal_tree.cpp.o.d"
  "libers_search.a"
  "libers_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ers_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
