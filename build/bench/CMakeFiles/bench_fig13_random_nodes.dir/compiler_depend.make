# Empty compiler generated dependencies file for bench_fig13_random_nodes.
# This may be replaced when dependencies are built.
