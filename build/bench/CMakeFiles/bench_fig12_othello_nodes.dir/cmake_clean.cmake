file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_othello_nodes.dir/bench_fig12_othello_nodes.cpp.o"
  "CMakeFiles/bench_fig12_othello_nodes.dir/bench_fig12_othello_nodes.cpp.o.d"
  "bench_fig12_othello_nodes"
  "bench_fig12_othello_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_othello_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
