# Empty dependencies file for bench_fig12_othello_nodes.
# This may be replaced when dependencies are built.
