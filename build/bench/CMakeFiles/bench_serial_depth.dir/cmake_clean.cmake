file(REMOVE_RECURSE
  "CMakeFiles/bench_serial_depth.dir/bench_serial_depth.cpp.o"
  "CMakeFiles/bench_serial_depth.dir/bench_serial_depth.cpp.o.d"
  "bench_serial_depth"
  "bench_serial_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serial_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
