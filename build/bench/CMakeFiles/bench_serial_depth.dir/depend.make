# Empty dependencies file for bench_serial_depth.
# This may be replaced when dependencies are built.
