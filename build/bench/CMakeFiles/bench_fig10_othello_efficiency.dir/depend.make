# Empty dependencies file for bench_fig10_othello_efficiency.
# This may be replaced when dependencies are built.
