# Empty dependencies file for bench_spec_policy.
# This may be replaced when dependencies are built.
