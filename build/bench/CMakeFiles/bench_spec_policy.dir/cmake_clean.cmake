file(REMOVE_RECURSE
  "CMakeFiles/bench_spec_policy.dir/bench_spec_policy.cpp.o"
  "CMakeFiles/bench_spec_policy.dir/bench_spec_policy.cpp.o.d"
  "bench_spec_policy"
  "bench_spec_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spec_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
