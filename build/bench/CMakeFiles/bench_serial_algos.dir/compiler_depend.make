# Empty compiler generated dependencies file for bench_serial_algos.
# This may be replaced when dependencies are built.
