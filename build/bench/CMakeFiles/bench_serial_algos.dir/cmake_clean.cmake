file(REMOVE_RECURSE
  "CMakeFiles/bench_serial_algos.dir/bench_serial_algos.cpp.o"
  "CMakeFiles/bench_serial_algos.dir/bench_serial_algos.cpp.o.d"
  "bench_serial_algos"
  "bench_serial_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serial_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
