// Quickstart: search one of the paper's experiment trees with serial
// alpha-beta, serial ER, and parallel ER on 1..16 simulated processors.
//
//   quickstart [--tree R3] [--scale 0] [--threads N]
//
// With --threads N the search additionally runs on N real OS threads to
// demonstrate the shared-memory runtime (the value must match).

#include <cstdio>
#include <variant>

#include "core/parallel_er.hpp"
#include "harness/experiment.hpp"
#include "harness/tree_registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const ers::CliArgs args(argc, argv);
  const std::string name = args.get("tree", "R3");
  const int scale = static_cast<int>(args.get_int("scale", 0));

  const auto tree = ers::harness::tree_by_name(name, scale);
  std::printf("Tree %s: search depth %d, serial depth %d, %s\n\n", name.c_str(),
              tree.engine.search_depth, tree.engine.serial_depth,
              tree.is_othello() ? "Othello (sorted <= ply 5)"
                                : "random (unsorted)");

  const auto serial = ers::harness::run_serial_baselines(tree);
  std::printf("Serial baselines (root value %d):\n", serial.value);
  std::printf("  alpha-beta : %llu nodes, cost %llu\n",
              static_cast<unsigned long long>(serial.alpha_beta.nodes_generated()),
              static_cast<unsigned long long>(serial.alpha_beta_cost));
  std::printf("  serial ER  : %llu nodes, cost %llu\n\n",
              static_cast<unsigned long long>(serial.er.nodes_generated()),
              static_cast<unsigned long long>(serial.er_cost));

  ers::TextTable table({"procs", "speedup", "efficiency", "nodes", "makespan",
                        "idle%", "spec promotions"});
  for (const int p : ers::harness::figure_processor_counts()) {
    const auto pt = ers::harness::run_parallel_point(tree, p, serial);
    const double idle_pct =
        100.0 * static_cast<double>(pt.metrics.idle_time) /
        (static_cast<double>(pt.metrics.makespan) * p);
    table.add_row({std::to_string(p), ers::TextTable::num(pt.speedup, 2),
                   ers::TextTable::num(pt.efficiency, 2),
                   std::to_string(pt.nodes_generated),
                   std::to_string(pt.makespan), ers::TextTable::num(idle_pct, 1),
                   std::to_string(pt.engine.promotions_speculative)});
  }
  table.print();

  if (args.has("threads")) {
    const int threads = static_cast<int>(args.get_int("threads", 2));
    std::visit(
        [&](const auto& game) {
          const auto r = ers::parallel_er_threads(game, tree.engine, threads);
          std::printf("\nThread runtime (%d threads): value %d (%s)\n", threads,
                      r.value, r.value == serial.value ? "matches" : "MISMATCH");
        },
        tree.game);
  }
  return 0;
}
