// Othello self-play driven by parallel ER: both sides pick moves with a
// depth-limited parallel search on the shared-memory thread runtime.
//
//   othello_selfplay [--depth 5] [--threads 4] [--plies 60] [--show-boards]

#include <cstdio>
#include <vector>

#include "core/parallel_er.hpp"
#include "othello/game.hpp"
#include "othello/positions.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

using namespace ers;
using othello::Board;

/// Pick the side-to-move's best move with one parallel-ER search of the
/// whole position, using the engine's best-move report.
int pick_move(const Board& b, int depth, int threads,
              std::uint64_t* nodes_accum) {
  const othello::OthelloGame game(b);
  core::EngineConfig cfg;
  cfg.search_depth = depth;
  cfg.serial_depth = std::max(1, depth - 2);
  cfg.ordering = OrderingPolicy{.sort_by_static_value = true, .max_sort_ply = 6};
  const auto r = parallel_er_threads(game, cfg, threads);
  *nodes_accum += r.engine.search.nodes_generated();
  ERS_CHECK(r.best_move.has_value());
  // Recover the square: the move is the disc added to the mover's set.
  const othello::Bitboard placed =
      r.best_move->board.occupied() & ~b.occupied();
  return othello::lsb(placed);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int depth = static_cast<int>(args.get_int("depth", 5));
  const int threads = static_cast<int>(args.get_int("threads", 4));
  const int max_plies = static_cast<int>(args.get_int("plies", 60));
  const bool show = args.has("show-boards");

  Board b = othello::initial_board();
  std::uint64_t nodes = 0;
  int ply = 0;
  std::printf("Self-play: %d-ply parallel ER searches on %d threads\n\n", depth,
              threads);
  while (ply < max_plies && !othello::is_game_over(b)) {
    if (othello::must_pass(b)) {
      std::printf("%2d. %s passes\n", ply + 1,
                  b.to_move == othello::Player::Black ? "BLACK" : "WHITE");
      b = othello::apply_pass(b);
      ++ply;
      continue;
    }
    const int sq = pick_move(b, depth, threads, &nodes);
    std::printf("%2d. %s plays %s\n", ply + 1,
                b.to_move == othello::Player::Black ? "BLACK" : "WHITE",
                othello::square_name(sq).c_str());
    b = othello::apply_move(b, sq);
    ++ply;
    if (show) std::printf("%s\n", othello::to_string(b).c_str());
  }

  const int black = othello::popcount(b.black);
  const int white = othello::popcount(b.white);
  std::printf("\nFinal position after %d plies:\n%s\n", ply,
              othello::to_string(b).c_str());
  std::printf("Score: BLACK %d - WHITE %d  (%s)\n", black, white,
              black == white ? "draw" : (black > white ? "BLACK wins" : "WHITE wins"));
  std::printf("Total nodes searched: %llu\n",
              static_cast<unsigned long long>(nodes));
  return 0;
}
