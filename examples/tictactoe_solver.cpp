// Paper Figure 1: the tic-tac-toe game tree.  Solves the full game with
// every algorithm in the library and prints the negmax value of each
// opening move (the root value 0 = draw under optimal play).

#include <cstdio>
#include <vector>

#include "core/parallel_er.hpp"
#include "search/alpha_beta.hpp"
#include "search/er_serial.hpp"
#include "search/negmax.hpp"
#include "tictactoe/tictactoe.hpp"
#include "util/table.hpp"

namespace {

const char* verdict(ers::Value v) {
  if (v > 0) return "win for X";
  if (v < 0) return "loss for X";
  return "draw";
}

}  // namespace

int main() {
  using namespace ers;
  const TicTacToe game;

  std::printf("Solving tic-tac-toe (paper Figure 1)...\n\n");
  const auto nm = negmax_search(game, 9);
  const auto ab = alpha_beta_search(game, 9);
  const auto er = er_serial_search(game, 9);
  core::EngineConfig cfg;
  cfg.search_depth = 9;
  cfg.serial_depth = 4;
  const auto par = parallel_er_threads(game, cfg, 4);

  TextTable algos({"algorithm", "root value", "verdict", "nodes"});
  algos.add_row({"negmax", std::to_string(nm.value), verdict(nm.value),
                 std::to_string(nm.stats.nodes_generated())});
  algos.add_row({"alpha-beta", std::to_string(ab.value), verdict(ab.value),
                 std::to_string(ab.stats.nodes_generated())});
  algos.add_row({"serial ER", std::to_string(er.value), verdict(er.value),
                 std::to_string(er.stats.nodes_generated())});
  algos.add_row({"parallel ER (4 threads)", std::to_string(par.value),
                 verdict(par.value),
                 std::to_string(par.engine.search.nodes_generated())});
  algos.print();

  // Value of each opening square (X in that square, O to move).
  std::printf("\nOpening move values (from X's point of view):\n\n");
  std::vector<TicTacToe::Position> openings;
  game.generate_children(game.root(), openings);
  Value values[9];
  for (int sq = 0; sq < 9; ++sq) {
    // The child position has O to move; negate to X's perspective.
    class Sub {
     public:
      using Position = TicTacToe::Position;
      explicit Sub(Position p) : root_(p) {}
      Position root() const { return root_; }
      void generate_children(const Position& p, std::vector<Position>& out) const {
        TicTacToe{}.generate_children(p, out);
      }
      Value evaluate(const Position& p) const { return TicTacToe{}.evaluate(p); }

     private:
      Position root_;
    };
    values[sq] = negate(alpha_beta_search(Sub(openings[sq]), 8).value);
  }
  for (int row = 2; row >= 0; --row) {
    for (int col = 0; col < 3; ++col) std::printf("  %4d", values[row * 3 + col]);
    std::printf("\n");
  }
  std::printf("\nEvery opening is a draw under optimal play, as Figure 1 shows.\n");
  return 0;
}
