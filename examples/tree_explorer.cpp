// Minimal-tree explorer (paper §2.2, Figure 3): classifies the critical
// nodes of a complete d-ary tree, verifies the Knuth-Moore leaf-count
// formula, and shows that best-first alpha-beta visits exactly the minimal
// tree while ER's mandatory work (the elder grandchildren) is a superset.
//
//   tree_explorer [--degree 3] [--height 4]

#include <cstdio>
#include <vector>

#include "gametree/explicit_tree.hpp"
#include "search/alpha_beta.hpp"
#include "search/er_serial.hpp"
#include "search/minimal_tree.hpp"
#include "search/negmax.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ers;
  const CliArgs args(argc, argv);
  const int degree = static_cast<int>(args.get_int("degree", 3));
  const int height = static_cast<int>(args.get_int("height", 4));

  std::uint64_t leaves = 1;
  for (int i = 0; i < height; ++i) leaves *= static_cast<std::uint64_t>(degree);
  std::printf("Complete %d-ary tree of height %d: %llu leaves\n\n", degree,
              height, static_cast<unsigned long long>(leaves));

  // A uniform-value tree is weakly best-first ordered, so alpha-beta visits
  // exactly the minimal tree on it.
  const std::vector<Value> values(leaves, 0);
  const auto tree = ExplicitTree::complete(degree, height, values);

  const auto deep_types =
      classify_critical_nodes(tree, MinimalTreeKind::kWithDeepCutoffs);
  const auto shallow_types =
      classify_critical_nodes(tree, MinimalTreeKind::kShallowOnly);

  std::uint64_t counts_deep[4] = {0, 0, 0, 0};
  std::uint64_t counts_shallow[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < tree.size(); ++i) {
    ++counts_deep[static_cast<int>(deep_types[i])];
    ++counts_shallow[static_cast<int>(shallow_types[i])];
  }

  TextTable table({"classification", "type 1", "type 2", "type 3",
                   "critical leaves", "formula"});
  table.add_row({"with deep cutoffs", std::to_string(counts_deep[1]),
                 std::to_string(counts_deep[2]), std::to_string(counts_deep[3]),
                 std::to_string(
                     count_critical_leaves(tree, MinimalTreeKind::kWithDeepCutoffs)),
                 std::to_string(minimal_leaf_count(degree, height))});
  table.add_row(
      {"shallow only (MWF)", std::to_string(counts_shallow[1]),
       std::to_string(counts_shallow[2]), std::to_string(counts_shallow[3]),
       std::to_string(count_critical_leaves(tree, MinimalTreeKind::kShallowOnly)),
       "-"});
  table.print();

  std::printf(
      "\nNote: the paper prints the closed form as d^(h/2 up) + d^(h/2 down) + 1;\n"
      "the Knuth-Moore count (verified above by enumeration) has -1.\n\n");

  const auto nm = negmax_search(tree, height);
  const auto ab = alpha_beta_search(tree, height);
  const auto er = er_serial_search(tree, height);
  TextTable visits({"algorithm", "leaves visited", "share of full tree"});
  auto share = [&](std::uint64_t n) {
    return TextTable::num(static_cast<double>(n) / static_cast<double>(leaves), 3);
  };
  visits.add_row({"negmax (full tree)", std::to_string(nm.stats.leaves_evaluated),
                  share(nm.stats.leaves_evaluated)});
  visits.add_row({"alpha-beta (best-first => minimal tree)",
                  std::to_string(ab.stats.leaves_evaluated),
                  share(ab.stats.leaves_evaluated)});
  visits.add_row({"serial ER (mandatory work superset)",
                  std::to_string(er.stats.leaves_evaluated),
                  share(er.stats.leaves_evaluated)});
  visits.print();
  return 0;
}
