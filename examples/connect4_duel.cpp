// Connect Four duel: parallel ER (first player) against plain serial
// alpha-beta (second player), both depth-limited, demonstrating the engine
// on a third game.
//
//   connect4_duel [--depth 8] [--threads 4]

#include <cstdio>
#include <vector>

#include "connect4/connect4.hpp"
#include "core/parallel_er.hpp"
#include "search/alpha_beta.hpp"
#include "util/cli.hpp"

namespace {

using namespace ers;
using connect4::Connect4;

struct Rooted {
  using Position = Connect4::Position;
  Position start;
  Position root() const { return start; }
  void generate_children(const Position& p, std::vector<Position>& out) const {
    Connect4{}.generate_children(p, out);
  }
  Value evaluate(const Position& p) const { return Connect4{}.evaluate(p); }
};

void print_board(const Connect4::Position& p, bool x_to_move) {
  const connect4::Bitboard xs = x_to_move ? p.mine : p.theirs;
  const connect4::Bitboard os = x_to_move ? p.theirs : p.mine;
  for (int r = connect4::kRows - 1; r >= 0; --r) {
    for (int c = 0; c < connect4::kColumns; ++c) {
      const auto bit = connect4::Bitboard{1} << (c * 7 + r);
      std::printf("%c ", (xs & bit) ? 'X' : (os & bit) ? 'O' : '.');
    }
    std::printf("\n");
  }
  std::printf("0 1 2 3 4 5 6\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int depth = static_cast<int>(args.get_int("depth", 8));
  const int threads = static_cast<int>(args.get_int("threads", 4));

  const Connect4 game;
  Connect4::Position p = game.root();
  bool x_to_move = true;
  int ply = 0;
  std::printf("X: parallel ER (%d threads, depth %d) — O: serial alpha-beta\n\n",
              threads, depth);
  while (ply < 42) {
    std::vector<Connect4::Position> kids;
    game.generate_children(p, kids);
    if (kids.empty()) break;
    // One search of the whole position; play its reported best move.
    const Rooted rooted{p};
    Connect4::Position next;
    if (x_to_move) {
      core::EngineConfig cfg;
      cfg.search_depth = depth;
      cfg.serial_depth = std::max(1, depth - 3);
      const auto r = parallel_er_threads(rooted, cfg, threads);
      next = r.best_move.value_or(kids.front());
    } else {
      AlphaBetaSearcher<Rooted> searcher(rooted, depth);
      (void)searcher.run();
      next = searcher.best_root_position().value_or(kids.front());
    }
    std::printf("%2d. %c plays column %d\n", ply + 1, x_to_move ? 'X' : 'O',
                Connect4::move_column(p, next));
    p = next;
    x_to_move = !x_to_move;
    ++ply;
  }
  print_board(p, x_to_move);
  if (connect4::has_four(p.theirs))
    std::printf("%c wins after %d plies.\n", x_to_move ? 'O' : 'X', ply);
  else
    std::printf("Draw after %d plies.\n", ply);
  return 0;
}
