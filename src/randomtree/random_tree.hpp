#pragma once
// Synthetic random game trees (paper §7, trees R1/R2/R3).
//
// The trees are *implicit*: a position is a 64-bit hash of the path from the
// root plus bookkeeping, and children/values are derived from that hash with
// splitmix64.  The full R2 tree (4^11 ≈ 4.2M leaves) therefore costs no
// memory, every algorithm sees bit-identical values for a given seed, and a
// position can be revisited at any time (required by the problem-heap
// engines, which hold positions in node records).
//
// UniformRandomTree matches the paper: fixed degree, fixed height, each leaf
// value independent and uniform.  Interior static values are likewise
// uniform hashes — i.e. move ordering on these trees is uninformative, as in
// the paper's random experiments.

#include <cstdint>
#include <vector>

#include "gametree/game.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/value.hpp"

namespace ers {

class UniformRandomTree {
 public:
  struct Position {
    std::uint64_t hash = 0;  ///< path hash; determines subtree contents
    std::int32_t depth = 0;  ///< plies from the root

    /// The path hash doubles as the transposition key (HashedGame): every
    /// position in an implicit tree is uniquely identified by its path.
    [[nodiscard]] constexpr std::uint64_t tt_key() const noexcept { return hash; }

    friend bool operator==(const Position&, const Position&) = default;
  };

  /// A tree of the given degree whose leaves live at `height` plies, with
  /// leaf values uniform in [min_value, max_value].
  UniformRandomTree(int degree, int height, std::uint64_t seed,
                    Value min_value = -10'000, Value max_value = 10'000)
      : degree_(degree),
        height_(height),
        seed_(seed),
        min_value_(min_value),
        max_value_(max_value) {
    ERS_CHECK(degree >= 1);
    ERS_CHECK(height >= 0);
    ERS_CHECK(min_value <= max_value);
    ERS_CHECK(is_valid_value(min_value) && is_valid_value(max_value));
  }

  [[nodiscard]] Position root() const noexcept {
    return Position{splitmix64(seed_), 0};
  }

  void generate_children(const Position& p, std::vector<Position>& out) const {
    if (p.depth >= height_) return;
    for (int i = 0; i < degree_; ++i) {
      out.push_back(Position{hash_combine(p.hash, static_cast<std::uint64_t>(i) + 1),
                             p.depth + 1});
    }
  }

  [[nodiscard]] Value evaluate(const Position& p) const noexcept {
    const std::uint64_t h = splitmix64(p.hash ^ 0xa5a5a5a5a5a5a5a5ULL);
    const auto span = static_cast<std::uint64_t>(max_value_ - min_value_) + 1;
    return min_value_ + static_cast<Value>(h % span);
  }

  [[nodiscard]] int degree() const noexcept { return degree_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  int degree_;
  int height_;
  std::uint64_t seed_;
  Value min_value_;
  Value max_value_;
};

static_assert(Game<UniformRandomTree>);

}  // namespace ers
