#pragma once
// Strongly-ordered synthetic trees (Marsland's sense, §4.4): the first move
// from a node is best most of the time, so a static-value sort puts the tree
// "nearly" in best-first order.  Used to exercise PV-splitting and the
// best-first analyses (Fishburn's tree-splitting bound holds on these).
//
// Model: every edge to child i carries a nonnegative cost
//     cost(i) = i * bias + U[0, noise)
// and a position's value from its own side's perspective is
//     score(child) = -score(parent) + cost(i).
// The parent maximizes -score(child) = score(parent) - cost(i), so low-cost
// (low-index) children are preferred; bias/noise controls how often the
// first child is actually best.  Static evaluation returns the running
// score, i.e. ordering information is genuinely informative, unlike
// UniformRandomTree.

#include <cstdint>
#include <vector>

#include "gametree/game.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/value.hpp"

namespace ers {

class StronglyOrderedTree {
 public:
  struct Position {
    std::uint64_t hash = 0;
    std::int32_t depth = 0;
    Value score = 0;  ///< value estimate from side-to-move's perspective

    friend bool operator==(const Position&, const Position&) = default;
  };

  struct Config {
    int min_degree = 4;
    int max_degree = 4;      ///< degree drawn uniformly per node in [min,max]
    int height = 8;
    Value bias = 40;         ///< per-index penalty; larger = more ordered
    Value noise = 100;       ///< uniform noise magnitude added to each edge
    std::uint64_t seed = 1;
  };

  explicit StronglyOrderedTree(const Config& cfg) : cfg_(cfg) {
    ERS_CHECK(cfg.min_degree >= 1 && cfg.max_degree >= cfg.min_degree);
    ERS_CHECK(cfg.height >= 0);
    ERS_CHECK(cfg.bias >= 0 && cfg.noise >= 1);
  }

  [[nodiscard]] Position root() const noexcept {
    return Position{splitmix64(cfg_.seed), 0, 0};
  }

  void generate_children(const Position& p, std::vector<Position>& out) const {
    if (p.depth >= cfg_.height) return;
    const int d = degree_at(p);
    for (int i = 0; i < d; ++i) {
      const std::uint64_t h =
          hash_combine(p.hash, static_cast<std::uint64_t>(i) + 1);
      const Value cost = static_cast<Value>(i) * cfg_.bias + edge_noise(h);
      out.push_back(Position{h, p.depth + 1, negate(p.score) + cost});
    }
  }

  [[nodiscard]] Value evaluate(const Position& p) const noexcept { return p.score; }

  [[nodiscard]] int degree_at(const Position& p) const noexcept {
    if (cfg_.min_degree == cfg_.max_degree) return cfg_.min_degree;
    const std::uint64_t h = splitmix64(p.hash ^ 0xdeadbeefcafef00dULL);
    const auto span = static_cast<std::uint64_t>(cfg_.max_degree - cfg_.min_degree) + 1;
    return cfg_.min_degree + static_cast<int>(h % span);
  }

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] Value edge_noise(std::uint64_t edge_hash) const noexcept {
    const std::uint64_t h = splitmix64(edge_hash ^ 0x5bd1e9955bd1e995ULL);
    return static_cast<Value>(h % static_cast<std::uint64_t>(cfg_.noise));
  }

  Config cfg_;
};

static_assert(Game<StronglyOrderedTree>);

}  // namespace ers
