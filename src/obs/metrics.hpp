#pragma once
// Named-counter registry: one consolidated snapshot of a run's metrics with
// one JSON serializer (DESIGN.md §11).
//
// SchedulerStats, SimMetrics, ThreadRunReport, EngineStats and the TT
// counters each kept growing their own ad-hoc emitters in the benches; the
// registry replaces that with a flat, insertion-ordered map of named values
// (counters as uint64, ratios as double, labels as strings) that serializes
// through the single JsonObject emitter.  Adapters that flatten the
// existing structs live in metrics_adapters.hpp, so this header stays free
// of runtime/sim dependencies.

#include <cstdint>
#include <cstdio>
#include <string>
#include <variant>
#include <vector>

#include "obs/json.hpp"

namespace ers::obs {

class MetricsRegistry {
 public:
  using Value = std::variant<std::uint64_t, double, std::string>;

  /// Set (or overwrite) one named value; insertion order is preserved so
  /// snapshots diff cleanly run to run.
  void set(const std::string& name, std::uint64_t v) { put(name, Value{v}); }
  void set(const std::string& name, double v) { put(name, Value{v}); }
  void set(const std::string& name, const std::string& v) {
    put(name, Value{v});
  }
  void set(const std::string& name, const char* v) {
    put(name, Value{std::string(v)});
  }
  void set(const std::string& name, int v) {
    put(name, Value{static_cast<std::uint64_t>(v < 0 ? 0 : v)});
  }

  /// Add to a uint64 counter (creating it at 0).
  void add(const std::string& name, std::uint64_t delta) {
    for (auto& [k, v] : entries_)
      if (k == name) {
        std::get<std::uint64_t>(v) += delta;
        return;
      }
    entries_.emplace_back(name, Value{delta});
  }

  [[nodiscard]] bool has(const std::string& name) const {
    for (const auto& [k, v] : entries_)
      if (k == name) return true;
    return false;
  }

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    for (const auto& [k, v] : entries_)
      if (k == name) return std::get<std::uint64_t>(v);
    return 0;
  }

  [[nodiscard]] double gauge(const std::string& name) const {
    for (const auto& [k, v] : entries_)
      if (k == name) return std::get<double>(v);
    return 0.0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// One flat JSON object over every entry, in insertion order.
  [[nodiscard]] std::string to_json() const {
    JsonObject o;
    for (const auto& [k, v] : entries_) {
      if (std::holds_alternative<std::uint64_t>(v))
        o.field(k.c_str(), std::get<std::uint64_t>(v));
      else if (std::holds_alternative<double>(v))
        o.field(k.c_str(), std::get<double>(v));
      else
        o.field(k.c_str(), std::get<std::string>(v));
    }
    return o.str();
  }

  /// Write the snapshot (one JSON object, newline-terminated) to `path`.
  bool write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics %s\n", path.c_str());
      return false;
    }
    const std::string json = to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s (%zu metrics)\n", path.c_str(), entries_.size());
    return true;
  }

  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& entries()
      const noexcept {
    return entries_;
  }

 private:
  void put(const std::string& name, Value v) {
    for (auto& [k, old] : entries_)
      if (k == name) {
        old = std::move(v);
        return;
      }
    entries_.emplace_back(name, std::move(v));
  }

  std::vector<std::pair<std::string, Value>> entries_;
};

}  // namespace ers::obs
