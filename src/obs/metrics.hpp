#pragma once
// Named-counter registry: one consolidated snapshot of a run's metrics with
// one JSON serializer (DESIGN.md §11).
//
// SchedulerStats, SimMetrics, ThreadRunReport, EngineStats and the TT
// counters each kept growing their own ad-hoc emitters in the benches; the
// registry replaces that with a flat, insertion-ordered map of named values
// (counters as uint64, signed deltas as int64, ratios as double, labels as
// strings) that serializes through the single JsonObject emitter.  Adapters
// that flatten the existing structs live in metrics_adapters.hpp, so this
// header stays free of runtime/sim dependencies.
//
// Registries now carry hundreds of entries per bench, so lookups go through
// a name→index hash map; `entries_` keeps insertion order and remains the
// single serialization source, so snapshot bytes are unchanged.
//
// Histograms (obs/histogram.hpp) register whole: the JSON snapshot flattens
// each one to <name>.count/.sum/.p50/.p90/.p99 (appended after the scalar
// entries, in histogram insertion order), while the Prometheus exposition
// (obs/prometheus.hpp) renders the full cumulative `le` bucket series.

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/json.hpp"

namespace ers::obs {

class MetricsRegistry {
 public:
  using Value = std::variant<std::uint64_t, std::int64_t, double, std::string>;

  /// Set (or overwrite) one named value; insertion order is preserved so
  /// snapshots diff cleanly run to run.
  void set(const std::string& name, std::uint64_t v) { put(name, Value{v}); }
  void set(const std::string& name, double v) { put(name, Value{v}); }
  void set(const std::string& name, const std::string& v) {
    put(name, Value{v});
  }
  void set(const std::string& name, const char* v) {
    put(name, Value{std::string(v)});
  }
  /// Non-negative ints store as uint64 (snapshot bytes unchanged); negative
  /// ints round-trip as a signed entry instead of silently clamping to 0.
  void set(const std::string& name, int v) {
    if (v < 0)
      put(name, Value{static_cast<std::int64_t>(v)});
    else
      put(name, Value{static_cast<std::uint64_t>(v)});
  }

  /// Add to a uint64 counter (creating it at 0).
  void add(const std::string& name, std::uint64_t delta) {
    const auto it = index_.find(name);
    if (it != index_.end()) {
      std::get<std::uint64_t>(entries_[it->second].second) += delta;
      return;
    }
    index_.emplace(name, entries_.size());
    entries_.emplace_back(name, Value{delta});
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return index_.find(name) != index_.end();
  }

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = index_.find(name);
    if (it == index_.end()) return 0;
    return std::get<std::uint64_t>(entries_[it->second].second);
  }

  [[nodiscard]] double gauge(const std::string& name) const {
    const auto it = index_.find(name);
    if (it == index_.end()) return 0.0;
    return std::get<double>(entries_[it->second].second);
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Register (or overwrite) a whole histogram under `name`.  Stored by
  /// value: the scheduler's per-worker instances are merged and gone by the
  /// time a bench snapshots them.
  void put_histogram(const std::string& name, const Histogram& h) {
    const auto it = hist_index_.find(name);
    if (it != hist_index_.end()) {
      histograms_[it->second].second = h;
      return;
    }
    hist_index_.emplace(name, histograms_.size());
    histograms_.emplace_back(name, h);
  }

  [[nodiscard]] const std::vector<std::pair<std::string, Histogram>>&
  histograms() const noexcept {
    return histograms_;
  }

  /// One flat JSON object: every scalar entry in insertion order, then each
  /// histogram's count/sum/percentile summary.
  [[nodiscard]] std::string to_json() const {
    JsonObject o;
    for (const auto& [k, v] : entries_) {
      if (std::holds_alternative<std::uint64_t>(v))
        o.field(k.c_str(), std::get<std::uint64_t>(v));
      else if (std::holds_alternative<std::int64_t>(v))
        o.raw(k.c_str(), std::to_string(std::get<std::int64_t>(v)));
      else if (std::holds_alternative<double>(v))
        o.field(k.c_str(), std::get<double>(v));
      else
        o.field(k.c_str(), std::get<std::string>(v));
    }
    for (const auto& [k, h] : histograms_) {
      o.field((k + ".count").c_str(), h.count());
      o.field((k + ".sum").c_str(), h.sum());
      o.field((k + ".p50").c_str(), h.p50());
      o.field((k + ".p90").c_str(), h.p90());
      o.field((k + ".p99").c_str(), h.p99());
    }
    return o.str();
  }

  /// Write the snapshot (one JSON object, newline-terminated) to `path`.
  bool write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics %s\n", path.c_str());
      return false;
    }
    const std::string json = to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s (%zu metrics)\n", path.c_str(), entries_.size());
    return true;
  }

  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& entries()
      const noexcept {
    return entries_;
  }

 private:
  void put(const std::string& name, Value v) {
    const auto it = index_.find(name);
    if (it != index_.end()) {
      entries_[it->second].second = std::move(v);
      return;
    }
    index_.emplace(name, entries_.size());
    entries_.emplace_back(name, std::move(v));
  }

  std::vector<std::pair<std::string, Value>> entries_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<std::pair<std::string, Histogram>> histograms_;
  std::unordered_map<std::string, std::size_t> hist_index_;
};

}  // namespace ers::obs
