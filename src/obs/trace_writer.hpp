#pragma once
// Chrome trace-event ("Perfetto") export of a TraceSession (DESIGN.md §11).
//
// Emits the JSON Object Format of the Trace Event specification —
// {"traceEvents": [...], "displayTimeUnit": "ns"} — which ui.perfetto.dev
// and chrome://tracing open directly.  Spans become complete events
// (ph "X", microsecond ts/dur with ns precision kept in the fractional
// part); instants become thread-scoped instant events (ph "i").  Every
// event carries the required keys ph, ts, pid, tid, name; the engine-node /
// shard / arg payload travels in "args".
//
// Each exported session is one Perfetto *process*: per-worker tracks are
// that process's threads (tid = worker id), the engine tracer gets its own
// "engine (serialized)" track.  write_perfetto_multi puts several sessions
// into one file under distinct pids — that is how a simulated run and a
// real run of the same tree are diffed side by side in one viewer.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace ers::obs {

/// One session's events as trace-event JSON objects (no enclosing array).
inline void append_trace_events(std::string& out, const TraceSession& session,
                                int pid, const std::string& process_name) {
  auto add = [&out](const std::string& line) {
    if (!out.empty()) out += ",\n";
    out += line;
  };
  // Metadata: process and thread names, so tracks are self-describing.
  add(JsonObject()
          .field("ph", "M")
          .field("pid", pid)
          .field("tid", 0)
          .field("name", "process_name")
          .raw("args", JsonObject().field("name", process_name).str())
          .str());
  auto thread_name = [&](int tid, const std::string& name) {
    add(JsonObject()
            .field("ph", "M")
            .field("pid", pid)
            .field("tid", tid)
            .field("name", "thread_name")
            .raw("args", JsonObject().field("name", name).str())
            .str());
  };
  for (int w = 0; w < session.worker_count(); ++w)
    thread_name(w, "worker " + std::to_string(w));
  thread_name(TraceSession::kEngineWorker, "engine (serialized)");

  char ts_buf[40];
  auto us = [&ts_buf](std::uint64_t ns) {  // µs with ns precision
    std::snprintf(ts_buf, sizeof ts_buf, "%llu.%03u",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned>(ns % 1000));
    return std::string(ts_buf);
  };
  for (const TraceEvent& e : session.merged()) {
    JsonObject args;
    if (e.node != kNoTraceNode)
      args.field("node", static_cast<std::uint64_t>(e.node));
    args.field("arg", static_cast<std::uint64_t>(e.arg));
    if (e.shard != kNoTraceShard)
      args.field("shard", static_cast<int>(e.shard));
    // Instants can carry a payload duration (kUnitCommit: the unit's
    // measured compute ns, read back by the waste replay).  It rides in
    // args — a ph "i" event with a top-level dur is not valid trace-event
    // JSON — and parse_perfetto restores it into TraceEvent::dur.
    if (!is_span(e.kind) && e.dur != 0)
      args.field("dur_ns", static_cast<std::uint64_t>(e.dur));
    JsonObject o;
    o.field("ph", is_span(e.kind) ? "X" : "i")
        .raw("ts", us(e.ts))
        .field("pid", pid)
        .field("tid", static_cast<int>(e.worker))
        .field("name", event_name(e.kind));
    if (is_span(e.kind))
      o.raw("dur", us(e.dur));
    else
      o.field("s", "t");  // thread-scoped instant
    o.raw("args", args.str());
    add(o.str());
  }
}

struct NamedSession {
  const TraceSession* session;
  std::string name;
};

/// Several sessions in one trace file, one Perfetto process per session.
[[nodiscard]] inline std::string perfetto_json_multi(
    const std::vector<NamedSession>& sessions) {
  std::string events;
  int pid = 1;
  for (const NamedSession& s : sessions)
    append_trace_events(events, *s.session, pid++, s.name);
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  out += events;
  out += "\n]}\n";
  return out;
}

[[nodiscard]] inline std::string perfetto_json(
    const TraceSession& session, const std::string& process_name = "search") {
  return perfetto_json_multi({{&session, process_name}});
}

/// Write the trace to `path`; returns false (with a note on stderr) if the
/// file cannot be opened.  Echoes the path plus the drop count so a traced
/// run's log states its own fidelity.
inline bool write_perfetto(const std::string& path,
                           const TraceSession& session,
                           const std::string& process_name = "search") {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write trace %s\n", path.c_str());
    return false;
  }
  const std::string json = perfetto_json(session, process_name);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%llu events, %llu dropped)\n", path.c_str(),
              static_cast<unsigned long long>(session.merged().size()),
              static_cast<unsigned long long>(session.total_dropped()));
  return true;
}

inline bool write_perfetto_multi(const std::string& path,
                                 const std::vector<NamedSession>& sessions) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write trace %s\n", path.c_str());
    return false;
  }
  const std::string json = perfetto_json_multi(sessions);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu sessions)\n", path.c_str(), sessions.size());
  return true;
}

}  // namespace ers::obs
