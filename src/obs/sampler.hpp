#pragma once
// Live search-health sampling (DESIGN.md §16).
//
// A Sampler snapshots a small fixed row of engine/executor counters into a
// timestamped ring every `interval_ns`, so a run's health (heap occupancy,
// waste rate, TT hit rate) is visible *while it happens* instead of only in
// the end-of-run report.  Two drive modes share one ring and one probe:
//
//   * start()/stop() — a background OS thread fires every interval of
//     steady-clock time (the thread-runtime benches; `--sample-ms`);
//   * poll(now_ns) — the caller advances a virtual clock and the sampler
//     fires every due tick synchronously.  SimExecutor polls at each event
//     it retires, which makes a simulated run's time series deterministic:
//     same schedule, same rows, bit for bit (tested in sampler_test.cpp).
//
// Memory model: the probe runs on whichever thread drives the sampler and
// may take the engine's own snapshot locks (stats() / mem_stats() /
// waste_stats() hold them briefly); the ring is single-writer by
// construction and is read only after stop() / run end, so rows need no
// atomics.  A full ring drops new rows and counts the drops — the series
// stays a prefix of the truth, the same contract as the trace rings.
//
// Rows carry cumulative counters, not rates: consumers difference adjacent
// rows, so a dropped sample skews no downstream math.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace ers::obs {

/// One sample: cumulative counters as of the row's timestamp.  ts_ns is the
/// scheduled due time (k * interval), not the observation time — virtual
/// and real series share one x-axis semantics.
struct SampleRow {
  std::uint64_t ts_ns = 0;
  std::uint64_t units = 0;        ///< work units committed so far
  std::uint64_t nodes = 0;        ///< nodes generated so far
  std::uint64_t live_nodes = 0;   ///< node-storage occupancy (heap residency)
  std::uint64_t queued = 0;       ///< problem-heap entries outstanding
  std::uint64_t waste_units = 0;  ///< committed units attributed to waste
  std::uint64_t waste_ns = 0;     ///< committed compute ns attributed to waste
  std::uint64_t tt_probes = 0;
  std::uint64_t tt_hits = 0;

  friend bool operator==(const SampleRow&, const SampleRow&) = default;
};

class Sampler {
 public:
  using Probe = std::function<SampleRow()>;
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 14;

  Sampler(Probe probe, std::uint64_t interval_ns,
          std::size_t capacity = kDefaultCapacity)
      : probe_(std::move(probe)),
        interval_ns_(interval_ns == 0 ? 1 : interval_ns),
        capacity_(capacity),
        next_due_(interval_ns_) {
    rows_.reserve(capacity < 1024 ? capacity : 1024);
  }
  ~Sampler() { stop(); }
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  // --- virtual-clock mode --------------------------------------------------

  /// Fire every tick due at or before `now_ns`.  The caller is the single
  /// writer; do not mix with start().
  void poll(std::uint64_t now_ns) {
    while (next_due_ <= now_ns) {
      fire(next_due_);
      next_due_ += interval_ns_;
    }
  }

  // --- thread mode ---------------------------------------------------------

  /// Spawn the background sampling thread; ticks count from here.
  void start() {
    if (thread_.joinable()) return;
    stop_requested_ = false;
    epoch_ = std::chrono::steady_clock::now();
    thread_ = std::thread([this] { loop(); });
  }

  /// Stop and join the sampling thread (no-op if not started).  The ring
  /// is safe to read once this returns.
  void stop() {
    if (!thread_.joinable()) return;
    {
      const std::lock_guard<std::mutex> lk(mu_);
      stop_requested_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  // --- consumption ---------------------------------------------------------

  [[nodiscard]] const std::vector<SampleRow>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t interval_ns() const noexcept {
    return interval_ns_;
  }

  /// The time-series document: {"interval_ns":N,"dropped":N,"samples":[...]}
  /// with one flat object per row (schema checked by
  /// tools/check_prom_format.py --samples).
  [[nodiscard]] std::string to_json() const {
    std::string out = "{\"interval_ns\":" + std::to_string(interval_ns_) +
                      ",\"dropped\":" + std::to_string(dropped_) +
                      ",\"samples\":[";
    bool first = true;
    for (const SampleRow& r : rows_) {
      if (!first) out += ",";
      first = false;
      out += JsonObject()
                 .field("ts_ns", r.ts_ns)
                 .field("units", r.units)
                 .field("nodes", r.nodes)
                 .field("live_nodes", r.live_nodes)
                 .field("queued", r.queued)
                 .field("waste_units", r.waste_units)
                 .field("waste_ns", r.waste_ns)
                 .field("tt_probes", r.tt_probes)
                 .field("tt_hits", r.tt_hits)
                 .str();
    }
    out += "]}";
    return out;
  }

  bool write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write samples %s\n", path.c_str());
      return false;
    }
    const std::string json = to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s (%zu samples)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  void fire(std::uint64_t ts) {
    if (rows_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    SampleRow row = probe_();
    row.ts_ns = ts;
    rows_.push_back(row);
  }

  void loop() {
    std::unique_lock<std::mutex> lk(mu_);
    while (true) {
      const auto due = epoch_ + std::chrono::nanoseconds(next_due_);
      if (cv_.wait_until(lk, due, [this] { return stop_requested_; })) return;
      lk.unlock();
      fire(next_due_);
      lk.lock();
      next_due_ += interval_ns_;
    }
  }

  Probe probe_;
  std::uint64_t interval_ns_;
  std::size_t capacity_;
  std::uint64_t next_due_;
  std::vector<SampleRow> rows_;
  std::uint64_t dropped_ = 0;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace ers::obs
