#pragma once
// Mergeable log-bucketed histogram (DESIGN.md §16).
//
// One Histogram per worker, written with no synchronization by that worker
// alone — exactly the SchedulerStats ownership rule — and merged after the
// pool has joined (thread runtime) or on the single simulator thread.  The
// scheduler records three kinds of samples through it: compute-span
// durations, commit latencies, and acquired batch sizes.
//
// Buckets are powers of two: bucket b holds the values whose bit width is
// b, i.e. [2^(b-1), 2^b - 1], with bucket 0 holding exactly the value 0.
// record() is a bit scan and three adds; merge() is element-wise.  A
// percentile query returns the inclusive upper bound of the bucket holding
// the requested rank — a deterministic over-estimate by at most 2x, the
// right trade for scheduler latencies spanning six orders of magnitude,
// and the same shape Prometheus clients expose as cumulative `le` buckets
// (obs/prometheus.hpp renders them directly from bucket_upper()).

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace ers::obs {

class Histogram {
 public:
  /// One bucket per possible bit width of a uint64 (1..64) plus the zero
  /// bucket.
  static constexpr std::size_t kBuckets = 65;

  /// Bucket index of a value: its bit width (0 for the value 0).
  [[nodiscard]] static constexpr std::size_t bucket_of(
      std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }

  /// Inclusive upper bound of bucket b — the largest value it can hold.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(
      std::size_t b) noexcept {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) noexcept {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
  }

  void merge(const Histogram& o) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
    count_ += o.count_;
    sum_ += o.sum_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b];
  }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Highest non-empty bucket index (0 for an empty histogram) — the
  /// exposition uses it to trim trailing always-zero `le` lines.
  [[nodiscard]] std::size_t max_bucket() const noexcept {
    for (std::size_t b = kBuckets; b-- > 1;)
      if (buckets_[b] != 0) return b;
    return 0;
  }

  /// Upper bound of the value at quantile q in [0, 1]: the inclusive upper
  /// bound of the bucket containing the ceil(q * count)-th sample.  0 for
  /// an empty histogram; q <= 0 returns the first non-empty bucket's bound
  /// and q >= 1 the last's.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;  // a negative q*count_ would not survive the cast
    if (q > 1.0) q = 1.0;
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
    if (rank == 0) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      cum += buckets_[b];
      if (cum >= rank) return bucket_upper(b);
    }
    return bucket_upper(kBuckets - 1);
  }

  [[nodiscard]] std::uint64_t p50() const noexcept { return percentile(0.50); }
  [[nodiscard]] std::uint64_t p90() const noexcept { return percentile(0.90); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return percentile(0.99); }

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

}  // namespace ers::obs
