#pragma once
// Offline analysis of a traced run (DESIGN.md §11): turns the flat event
// stream — straight from a TraceSession, or loaded back from a Perfetto
// trace file — into the three summaries the ISSUE's tooling exposes:
//
//   * per-worker timelines: busy / lock-wait / lock-hold / starve totals,
//     units computed, utilization over the trace extent;
//   * the steal-migration matrix: how many units moved thief <- victim,
//     plus probe/hit/miss totals;
//   * the critical path through the unit dependency graph, rebuilt from
//     kUnitCommit instants (node, arg = parent) and costed with the
//     kComputeSpan durations: cost(n) = dur(n) + max over children cost(c).
//     The makespan cannot beat the critical path no matter how many
//     workers are added — the analyzer prints both so the gap (scheduling
//     + serialization loss) is a number, not a feeling.
//
// Everything here works identically on real (steady-clock ns) and
// simulated (virtual cost unit) traces, because both executors emit the
// same schema.

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/json_read.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace ers::obs {

/// event_name's inverse; false when `name` is no trace event (metadata
/// rows and foreign events in a merged file are skipped, not errors).
[[nodiscard]] inline bool kind_from_name(const std::string& name,
                                         EventKind& out) noexcept {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == event_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

/// Re-read a Perfetto trace (the trace_writer format) into TraceEvents.
/// Only events whose name maps onto the schema are kept; `pid` selects one
/// session of a multi-session file (-1 = first session seen).
inline bool parse_perfetto(const std::string& json,
                           std::vector<TraceEvent>& out, int pid = -1) {
  JsonValue root;
  if (!parse_json(json, root)) return false;
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) return false;
  int selected = pid;
  for (const JsonValue& e : events->items) {
    if (!e.is_object()) continue;
    const JsonValue* name = e.find("name");
    const JsonValue* ts = e.find("ts");
    const JsonValue* tid = e.find("tid");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        tid == nullptr)
      continue;
    EventKind kind{};
    if (!kind_from_name(name->text, kind)) continue;  // metadata etc.
    if (const JsonValue* p = e.find("pid"); p != nullptr) {
      const int event_pid = static_cast<int>(p->as_uint64());
      if (selected == -1) selected = event_pid;
      if (event_pid != selected) continue;
    }
    TraceEvent ev;
    ev.kind = kind;
    ev.ts = us_token_to_ns(ts->text);
    if (const JsonValue* d = e.find("dur"); d != nullptr)
      ev.dur = us_token_to_ns(d->text);
    ev.worker = static_cast<std::uint16_t>(tid->as_uint64());
    if (const JsonValue* args = e.find("args"); args != nullptr) {
      if (const JsonValue* n = args->find("node"); n != nullptr)
        ev.node = static_cast<std::uint32_t>(n->as_uint64());
      if (const JsonValue* a = args->find("arg"); a != nullptr)
        ev.arg = static_cast<std::uint32_t>(a->as_uint64());
      if (const JsonValue* s = args->find("shard"); s != nullptr)
        ev.shard = static_cast<std::uint16_t>(s->as_uint64());
      // Instant payload duration (exact ns; see trace_writer.hpp).
      if (const JsonValue* d = args->find("dur_ns"); d != nullptr)
        ev.dur = d->as_uint64();
    }
    out.push_back(ev);
  }
  return true;
}

inline bool load_trace_file(const std::string& path,
                            std::vector<TraceEvent>& out, int pid = -1) {
  std::string text;
  if (!read_file(path, text)) return false;
  return parse_perfetto(text, out, pid);
}

/// Aggregated view of one worker's track.
struct WorkerTimeline {
  int worker = 0;
  std::uint64_t compute_ns = 0;
  std::uint64_t lock_wait_ns = 0;
  std::uint64_t lock_hold_ns = 0;
  std::uint64_t sleep_ns = 0;  ///< parked / starving
  std::uint64_t units = 0;     ///< compute spans on this track
  std::uint64_t first_ts = 0;  ///< earliest event start
  std::uint64_t last_ts = 0;   ///< latest span end / instant

  [[nodiscard]] std::uint64_t extent() const noexcept {
    return last_ts > first_ts ? last_ts - first_ts : 0;
  }
  /// Share of the track extent spent computing.
  [[nodiscard]] double utilization() const noexcept {
    const std::uint64_t e = extent();
    return e > 0 ? static_cast<double>(compute_ns) / static_cast<double>(e)
                 : 0.0;
  }
};

/// One hop of the critical path, root-first.
struct CriticalHop {
  std::uint32_t node = kNoTraceNode;
  std::uint64_t compute_ns = 0;
};

/// Waste attributed to one cancel cause, rebuilt from the event stream.
struct WasteCauseTotal {
  std::uint64_t cancels = 0;     ///< cancelled subtree roots (kSpecCancel)
  std::uint64_t units = 0;       ///< commits attributed inside those subtrees
  std::uint64_t compute_ns = 0;  ///< their executor-measured compute time
};

/// Speculation-waste section (DESIGN.md §16): the trace-side replay of the
/// engine's waste ledger.  Each kUnitCommit carries the unit's measured
/// compute duration; each kSpecCancel (arg 2 = bound change, arg 3 =
/// sibling resolution) marks a cancelled subtree root.  A commit is wasted
/// iff some ancestor (self included) was cancelled, and it is charged to
/// the *nearest* such ancestor — exactly the ledger's charge rule — so
/// these totals reconcile bit-for-bit with Engine::waste_stats() unit
/// counts (and with its ns totals wherever the executor stamps real
/// durations).  Event order never matters: attribution only consults the
/// commit-parent tree and the cancel set.
struct SpeculationWaste {
  WasteCauseTotal bound_change;        ///< kSpecCancel arg = 2
  WasteCauseTotal sibling_resolution;  ///< kSpecCancel arg = 3
  std::uint64_t dead_drops = 0;   ///< arg = 0: dead queue entries (no compute)
  std::uint64_t pop_cutoffs = 0;  ///< arg = 1: pop-time cutoffs (not waste)
  // Steal-aware speculation control (DESIGN.md §17): queue-entry events,
  // never committed work, so they carry counts only.
  std::uint64_t demotions = 0;   ///< kSpecDemote: spec entries re-ranked down
  std::uint64_t rewindows = 0;   ///< kSpecRewindow: window moved past entry
  /// Nodes the controller demoted under steal pressure (kSpecDemote arg = 1)
  /// whose subtree was later cancelled anyway — demotions that provably
  /// saved a speculative promotion from being wasted.
  std::uint64_t stolen_then_cancelled = 0;

  [[nodiscard]] std::uint64_t total_cancels() const noexcept {
    return bound_change.cancels + sibling_resolution.cancels + dead_drops;
  }
  [[nodiscard]] std::uint64_t total_units() const noexcept {
    return bound_change.units + sibling_resolution.units;
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return bound_change.compute_ns + sibling_resolution.compute_ns;
  }
};

struct TraceReport {
  std::vector<WorkerTimeline> workers;  ///< real worker tracks, id order
  /// steal_matrix[thief][victim] = units migrated by successful steals.
  std::vector<std::vector<std::uint64_t>> steal_matrix;
  std::uint64_t steal_probes = 0;
  std::uint64_t steal_hits = 0;
  std::uint64_t steal_misses = 0;
  /// Event count per kind across all tracks (engine track included).
  std::array<std::uint64_t, kEventKindCount> counts{};
  std::uint64_t span_begin = 0;  ///< earliest event ts
  std::uint64_t span_end = 0;    ///< max ts+dur: the traced makespan
  /// Wall extent of the traced run itself — a thread session's epoch starts
  /// at construction, which can be long before the traced run does.
  [[nodiscard]] std::uint64_t extent() const noexcept {
    return span_end > span_begin ? span_end - span_begin : 0;
  }
  std::uint64_t units = 0;      ///< kUnitCommit count
  SpeculationWaste waste;       ///< replayed waste ledger (see above)
  // Critical path through the unit dependency graph.
  std::uint64_t critical_path_ns = 0;
  std::vector<CriticalHop> critical_path;  ///< root-first

  /// Lower bound on achievable speedup implied by the dependency graph:
  /// total compute over the critical path.
  [[nodiscard]] double parallelism_bound() const noexcept {
    std::uint64_t total = 0;
    for (const WorkerTimeline& w : workers) total += w.compute_ns;
    return critical_path_ns > 0
               ? static_cast<double>(total) /
                     static_cast<double>(critical_path_ns)
               : 0.0;
  }
};

/// Crunch a flat event stream (any order) into the report.
inline TraceReport analyze_trace(const std::vector<TraceEvent>& events) {
  TraceReport rep;

  // --- pass 1: per-worker totals and global counters ----------------------
  std::unordered_map<std::uint16_t, WorkerTimeline> tracks;
  std::unordered_map<std::uint32_t, std::uint64_t> node_cost;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> children;
  std::unordered_map<std::uint32_t, bool> is_child;
  // Commit-parent edges (node -> parent) and cancelled subtree roots
  // (node -> cause arg) for the waste replay.  kUnitCommit edges alone
  // close the ancestor chains: a node acquires children only through its
  // own expand commit, so every ancestor of a committed node committed.
  std::unordered_map<std::uint32_t, std::uint32_t> parent;
  std::unordered_map<std::uint32_t, std::uint32_t> cancelled;
  // Nodes demoted under steal pressure, intersected with the cancelled
  // subtrees after pass 1 (stolen_then_cancelled).
  std::vector<std::uint32_t> steal_demoted;
  int max_worker = -1;
  bool first_event = true;
  for (const TraceEvent& e : events) {
    ++rep.counts[static_cast<std::size_t>(e.kind)];
    rep.span_begin = first_event ? e.ts : std::min(rep.span_begin, e.ts);
    first_event = false;
    // Instants' dur is payload (kUnitCommit compute ns), not timeline
    // extent — only genuine spans can push the end of the trace out.
    rep.span_end =
        std::max(rep.span_end, e.ts + (is_span(e.kind) ? e.dur : 0));
    const bool engine_track = e.worker == TraceSession::kEngineWorker;
    if (!engine_track) {
      max_worker = std::max(max_worker, static_cast<int>(e.worker));
      WorkerTimeline& w = tracks[e.worker];
      if (w.units + w.compute_ns + w.lock_wait_ns + w.lock_hold_ns +
              w.sleep_ns ==
          0)
        w.first_ts = e.ts;  // first event on this track (stream may be sorted
                            // or not; fix up below)
      w.first_ts = std::min(w.first_ts, e.ts);
      w.last_ts = std::max(w.last_ts, e.ts + e.dur);
      switch (e.kind) {
        case EventKind::kComputeSpan:
          w.compute_ns += e.dur;
          ++w.units;
          break;
        case EventKind::kLockWaitSpan: w.lock_wait_ns += e.dur; break;
        case EventKind::kLockHoldSpan: w.lock_hold_ns += e.dur; break;
        case EventKind::kSleepSpan: w.sleep_ns += e.dur; break;
        default: break;
      }
    }
    switch (e.kind) {
      case EventKind::kComputeSpan:
        if (e.node != kNoTraceNode) node_cost[e.node] += e.dur;
        break;
      case EventKind::kStealProbe: ++rep.steal_probes; break;
      case EventKind::kStealHit: ++rep.steal_hits; break;
      case EventKind::kStealMiss: ++rep.steal_misses; break;
      case EventKind::kUnitCommit:
        ++rep.units;
        if (e.node != kNoTraceNode && e.arg != kNoTraceNode &&
            e.node != e.arg) {
          children[e.arg].push_back(e.node);
          is_child[e.node] = true;
          parent[e.node] = e.arg;
        }
        break;
      case EventKind::kSpecCancel:
        switch (e.arg) {
          case 0: ++rep.waste.dead_drops; break;
          case 1: ++rep.waste.pop_cutoffs; break;
          case 2:
            if (cancelled.emplace(e.node, e.arg).second)
              ++rep.waste.bound_change.cancels;
            break;
          case 3:
            if (cancelled.emplace(e.node, e.arg).second)
              ++rep.waste.sibling_resolution.cancels;
            break;
          default: break;
        }
        break;
      case EventKind::kSpecDemote:
        ++rep.waste.demotions;
        if (e.arg == 1 && e.node != kNoTraceNode)
          steal_demoted.push_back(e.node);
        break;
      case EventKind::kSpecRewindow: ++rep.waste.rewindows; break;
      default: break;
    }
  }

  // Steal-pressure demotions vindicated by a later cancel: the demoted
  // node's subtree (nearest cancelled ancestor, self included) died, so
  // the promotion the controller withheld would have been pure waste.
  if (!cancelled.empty() && !steal_demoted.empty()) {
    for (std::uint32_t n : steal_demoted) {
      for (std::uint32_t a = n; a != kNoTraceNode;) {
        if (cancelled.count(a) > 0) {
          ++rep.waste.stolen_then_cancelled;
          break;
        }
        auto p = parent.find(a);
        a = p == parent.end() ? kNoTraceNode : p->second;
      }
    }
  }

  // --- waste attribution ---------------------------------------------------
  // Second scan (the maps above must be complete first — cancels can land
  // in the stream after the commits they retroactively waste): charge each
  // commit to its nearest cancelled ancestor, self included.
  if (!cancelled.empty()) {
    for (const TraceEvent& e : events) {
      if (e.kind != EventKind::kUnitCommit || e.node == kNoTraceNode) continue;
      for (std::uint32_t a = e.node; a != kNoTraceNode;) {
        if (auto c = cancelled.find(a); c != cancelled.end()) {
          WasteCauseTotal& t = c->second == 2
                                   ? rep.waste.bound_change
                                   : rep.waste.sibling_resolution;
          ++t.units;
          t.compute_ns += e.dur;
          break;
        }
        auto p = parent.find(a);
        a = p == parent.end() ? kNoTraceNode : p->second;
      }
    }
  }

  // --- worker table and steal matrix --------------------------------------
  const int workers = max_worker + 1;
  rep.workers.reserve(static_cast<std::size_t>(std::max(workers, 0)));
  for (int w = 0; w < workers; ++w) {
    WorkerTimeline t = tracks.count(static_cast<std::uint16_t>(w)) > 0
                           ? tracks[static_cast<std::uint16_t>(w)]
                           : WorkerTimeline{};
    t.worker = w;
    rep.workers.push_back(t);
  }
  rep.steal_matrix.assign(static_cast<std::size_t>(std::max(workers, 0)),
                          std::vector<std::uint64_t>(
                              static_cast<std::size_t>(std::max(workers, 0)),
                              0));
  for (const TraceEvent& e : events) {
    if (e.kind != EventKind::kStealHit) continue;
    const auto thief = static_cast<std::size_t>(e.worker);
    const auto victim = static_cast<std::size_t>(e.arg);
    if (thief < rep.steal_matrix.size() && victim < rep.steal_matrix.size())
      ++rep.steal_matrix[thief][victim];
  }

  // --- critical path -------------------------------------------------------
  // Longest root-to-leaf chain in the commit-parent graph, costed by each
  // node's total compute time.  Iterative post-order (the Othello trees are
  // shallow, but a header must not assume that).
  std::unordered_map<std::uint32_t, std::uint64_t> best;       // subtree cost
  std::unordered_map<std::uint32_t, std::uint32_t> best_child;  // argmax
  auto cost_of = [&node_cost](std::uint32_t n) -> std::uint64_t {
    auto it = node_cost.find(n);
    return it == node_cost.end() ? 0 : it->second;
  };
  auto compute_best = [&](std::uint32_t root) {
    std::vector<std::pair<std::uint32_t, bool>> stack{{root, false}};
    while (!stack.empty()) {
      auto [n, expanded] = stack.back();
      stack.pop_back();
      if (best.count(n) > 0) continue;
      auto ch = children.find(n);
      if (!expanded && ch != children.end() && !ch->second.empty()) {
        stack.emplace_back(n, true);
        for (std::uint32_t c : ch->second)
          if (best.count(c) == 0) stack.emplace_back(c, false);
        continue;
      }
      std::uint64_t max_child = 0;
      std::uint32_t argmax = kNoTraceNode;
      if (ch != children.end()) {
        for (std::uint32_t c : ch->second) {
          auto it = best.find(c);
          const std::uint64_t v = it == best.end() ? 0 : it->second;
          if (argmax == kNoTraceNode || v > max_child) {
            max_child = v;
            argmax = c;
          }
        }
      }
      best[n] = cost_of(n) + max_child;
      best_child[n] = argmax;
    }
  };
  std::uint32_t best_root = kNoTraceNode;
  for (const auto& [parent, kids] : children) {
    (void)kids;
    if (is_child.count(parent) > 0) continue;  // interior node
    compute_best(parent);
    if (best_root == kNoTraceNode || best[parent] > best[best_root])
      best_root = parent;
  }
  if (best_root != kNoTraceNode) {
    rep.critical_path_ns = best[best_root];
    for (std::uint32_t n = best_root; n != kNoTraceNode;) {
      rep.critical_path.push_back(CriticalHop{n, cost_of(n)});
      auto it = best_child.find(n);
      n = it == best_child.end() ? kNoTraceNode : it->second;
    }
  }
  return rep;
}

// --- text rendering (trace_report tool, EXPERIMENTS.md walkthrough) --------

[[nodiscard]] inline std::string format_ns(std::uint64_t ns) {
  char buf[32];
  if (ns >= 1000000)
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(ns) / 1e6);
  else if (ns >= 1000)
    std::snprintf(buf, sizeof buf, "%.3f us", static_cast<double>(ns) / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%llu ns",
                  static_cast<unsigned long long>(ns));
  return buf;
}

/// Render the report as the fixed-width tables trace_report prints.
[[nodiscard]] inline std::string render_report(const TraceReport& rep) {
  std::ostringstream os;

  os << "== per-worker timeline ==\n";
  TextTable workers({"worker", "busy", "lock_wait", "lock_hold", "starve",
                     "units", "util"});
  for (const WorkerTimeline& w : rep.workers)
    workers.add_row({std::to_string(w.worker), format_ns(w.compute_ns),
                     format_ns(w.lock_wait_ns), format_ns(w.lock_hold_ns),
                     format_ns(w.sleep_ns), std::to_string(w.units),
                     TextTable::num(w.utilization())});
  workers.print(os);

  if (rep.steal_probes + rep.steal_hits + rep.steal_misses > 0) {
    os << "\n== steal migration (rows = thief, cols = victim) ==\n";
    std::vector<std::string> headers{"thief\\victim"};
    for (std::size_t v = 0; v < rep.steal_matrix.size(); ++v)
      headers.push_back("w" + std::to_string(v));
    TextTable steals(std::move(headers));
    for (std::size_t t = 0; t < rep.steal_matrix.size(); ++t) {
      std::vector<std::string> row{"w" + std::to_string(t)};
      for (std::size_t v = 0; v < rep.steal_matrix[t].size(); ++v)
        row.push_back(std::to_string(rep.steal_matrix[t][v]));
      steals.add_row(std::move(row));
    }
    steals.print(os);
    os << "probes " << rep.steal_probes << ", hits " << rep.steal_hits
       << ", misses " << rep.steal_misses << "\n";
  }

  os << "\n== scheduling events ==\n";
  TextTable counts({"event", "count"});
  for (std::size_t k = 0; k < kEventKindCount; ++k)
    if (rep.counts[k] > 0)
      counts.add_row({event_name(static_cast<EventKind>(k)),
                      std::to_string(rep.counts[k])});
  counts.print(os);

  if (rep.waste.total_cancels() + rep.waste.pop_cutoffs > 0) {
    os << "\n== speculation waste ==\n";
    TextTable waste({"cause", "cancels", "units", "compute"});
    auto row = [&waste](const char* name, const WasteCauseTotal& t) {
      waste.add_row({name, std::to_string(t.cancels), std::to_string(t.units),
                     format_ns(t.compute_ns)});
    };
    row("bound_change", rep.waste.bound_change);
    row("sibling_resolution", rep.waste.sibling_resolution);
    waste.add_row({"dead_drop", std::to_string(rep.waste.dead_drops), "0",
                   format_ns(0)});
    waste.print(os);
    os << "wasted " << rep.waste.total_units() << " of " << rep.units
       << " committed units (" << format_ns(rep.waste.total_ns())
       << " compute); pop-time cutoffs " << rep.waste.pop_cutoffs << "\n";
  }

  // Always printed, even all-zero: the telemetry smoke job greps these
  // rows on traces from runs with the controller off.
  os << "\n== speculation control ==\n";
  os << "demotions " << rep.waste.demotions << ", re-windows "
     << rep.waste.rewindows << ", stolen-then-cancelled "
     << rep.waste.stolen_then_cancelled << "\n";

  os << "\n== critical path ==\n";
  os << "trace extent      " << format_ns(rep.extent()) << "\n";
  os << "critical path     " << format_ns(rep.critical_path_ns) << " over "
     << rep.critical_path.size() << " units\n";
  if (rep.critical_path_ns > 0) {
    os << "parallelism bound " << TextTable::num(rep.parallelism_bound())
       << "x (total compute / critical path)\n";
    os << "path (root-first, node:compute):";
    const std::size_t show = std::min<std::size_t>(rep.critical_path.size(), 12);
    for (std::size_t i = 0; i < show; ++i)
      os << " " << rep.critical_path[i].node << ":"
         << format_ns(rep.critical_path[i].compute_ns);
    if (show < rep.critical_path.size())
      os << " ... (+" << rep.critical_path.size() - show << ")";
    os << "\n";
  }
  return std::move(os).str();
}

}  // namespace ers::obs
