#pragma once
// Prometheus text exposition (format version 0.0.4) of a MetricsRegistry
// snapshot (DESIGN.md §16).
//
// This is the building block the future search-service `/metrics` endpoint
// plugs into; today every bench wires it as `--prom-out F`.  The naming
// scheme is mechanical so the registry stays the single source of truth:
// every metric name gains the `ers_` namespace prefix and has its dots
// (the registry's hierarchy separator) folded to underscores —
// `engine.waste.total_ns` exposes as `ers_engine_waste_total_ns`.  Scalar
// entries expose as gauges (the registry cannot promise monotonicity, and
// Prometheus treats a mislabeled counter worse than a conservative gauge);
// string entries fold into one `ers_run_info{key="value",...} 1` info
// metric, the convention for run-identifying labels; histograms expose the
// full cumulative `le` series straight from Histogram::bucket_upper(),
// trimmed after the last non-empty bucket.  tools/check_prom_format.py
// lints the emitted bytes in CI.

#include <cstdint>
#include <cstdio>
#include <string>
#include <variant>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace ers::obs {

/// Exposition name of a registry entry: `ers_` prefix, every character
/// outside [a-zA-Z0-9_] folded to '_'.
[[nodiscard]] inline std::string prom_name(const std::string& name) {
  std::string out = "ers_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// Escape a label value: backslash, double quote, and newline, per the
/// exposition-format spec.
[[nodiscard]] inline std::string prom_label_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace detail {
inline std::string prom_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}
}  // namespace detail

/// Render the whole registry in exposition format.  Deterministic: the
/// run-info metric first, then every numeric entry in insertion order,
/// then every histogram in insertion order.
[[nodiscard]] inline std::string prometheus_text(const MetricsRegistry& reg) {
  std::string out;
  // Pass 1: string entries become labels on one info metric.
  std::string info;
  for (const auto& [k, v] : reg.entries()) {
    if (!std::holds_alternative<std::string>(v)) continue;
    if (!info.empty()) info += ",";
    info += prom_name(k).substr(4) + "=\"" +
            prom_label_escape(std::get<std::string>(v)) + "\"";
  }
  if (!info.empty()) {
    out += "# HELP ers_run_info string-valued registry entries as labels\n";
    out += "# TYPE ers_run_info gauge\n";
    out += "ers_run_info{" + info + "} 1\n";
  }
  // Pass 2: numeric entries, insertion order.
  for (const auto& [k, v] : reg.entries()) {
    if (std::holds_alternative<std::string>(v)) continue;
    const std::string name = prom_name(k);
    out += "# HELP " + name + " registry entry " + k + "\n";
    out += "# TYPE " + name + " gauge\n";
    if (std::holds_alternative<std::uint64_t>(v))
      out += name + " " + std::to_string(std::get<std::uint64_t>(v)) + "\n";
    else if (std::holds_alternative<std::int64_t>(v))
      out += name + " " + std::to_string(std::get<std::int64_t>(v)) + "\n";
    else
      out += name + " " + detail::prom_number(std::get<double>(v)) + "\n";
  }
  // Pass 3: histograms — cumulative le buckets, sum, count.
  for (const auto& [k, h] : reg.histograms()) {
    const std::string name = prom_name(k);
    out += "# HELP " + name + " registry histogram " + k + "\n";
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cum = 0;
    const std::size_t last = h.max_bucket();
    for (std::size_t b = 0; b <= last; ++b) {
      cum += h.bucket(b);
      out += name + "_bucket{le=\"" +
             std::to_string(Histogram::bucket_upper(b)) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) + "\n";
    out += name + "_sum " + std::to_string(h.sum()) + "\n";
    out += name + "_count " + std::to_string(h.count()) + "\n";
  }
  return out;
}

/// Write the exposition to `path`, echoing where it went (the same contract
/// as MetricsRegistry::write_json).
inline bool write_prometheus(const std::string& path,
                             const MetricsRegistry& reg) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write prometheus %s\n", path.c_str());
    return false;
  }
  const std::string text = prometheus_text(reg);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu metrics, %zu histograms)\n", path.c_str(),
              reg.size(), reg.histograms().size());
  return true;
}

}  // namespace ers::obs
