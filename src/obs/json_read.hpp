#pragma once
// Minimal recursive-descent JSON reader for the repo's own artifacts
// (DESIGN.md §11): trace_report loads Perfetto trace files written by
// trace_writer.hpp, and tests round-trip MetricsRegistry snapshots.  It
// parses the full JSON grammar but is tuned for what we emit — numbers keep
// their source token so microsecond timestamps with nanosecond fractions
// ("12.345") convert back to integer ns without a float round trip.
//
// Deliberately tolerant: unknown keys are kept, not rejected; consumers
// look up what they need and ignore the rest.

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ers::obs {

/// One parsed JSON value.  Numbers remember their raw token (see
/// us_token_to_ns); objects preserve key order.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  ///< string value, or the number's raw token
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  [[nodiscard]] bool is_object() const noexcept { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind == Kind::kString; }

  /// Member lookup (objects only); nullptr when absent.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : fields)
      if (k == key) return &v;
    return nullptr;
  }

  [[nodiscard]] double as_double(double fallback = 0.0) const noexcept {
    if (kind != Kind::kNumber) return fallback;
    return std::strtod(text.c_str(), nullptr);
  }
  [[nodiscard]] std::uint64_t as_uint64(std::uint64_t fallback = 0) const noexcept {
    if (kind != Kind::kNumber) return fallback;
    return std::strtoull(text.c_str(), nullptr, 10);
  }
};

/// Convert a microsecond number token with up to ns precision ("12.345",
/// the trace writer's ts/dur format) to integer nanoseconds, exactly.
[[nodiscard]] inline std::uint64_t us_token_to_ns(const std::string& tok) noexcept {
  std::uint64_t us = 0;
  std::size_t i = 0;
  while (i < tok.size() && tok[i] >= '0' && tok[i] <= '9')
    us = us * 10 + static_cast<std::uint64_t>(tok[i++] - '0');
  std::uint64_t frac = 0;
  std::uint64_t scale = 100;  // first fractional digit is 100 ns
  if (i < tok.size() && tok[i] == '.') {
    for (++i; i < tok.size() && tok[i] >= '0' && tok[i] <= '9' && scale > 0; ++i) {
      frac += static_cast<std::uint64_t>(tok[i] - '0') * scale;
      scale /= 10;
    }
  }
  return us * 1000 + frac;
}

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : p_(text.data()), end_(text.data() + text.size()) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return p_ == end_;  // trailing garbage is a parse error
  }

 private:
  void skip_ws() noexcept {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }
  [[nodiscard]] bool consume(char c) noexcept {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }
  bool literal(const char* lit) noexcept {
    const char* q = p_;
    for (; *lit != '\0'; ++lit, ++q)
      if (q == end_ || *q != *lit) return false;
    p_ = q;
    return true;
  }

  bool string_body(std::string& out) {
    if (!consume('"')) return false;
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ == end_) return false;
        const char e = *p_++;
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            // Decode BMP escapes to UTF-8; we only ever emit control chars.
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              if (p_ == end_) return false;
              const char h = *p_++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            continue;
          }
          default: return false;
        }
      }
      out += c;
    }
    return consume('"');
  }

  bool value(JsonValue& out) {
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': {
        ++p_;
        out.kind = JsonValue::Kind::kObject;
        skip_ws();
        if (consume('}')) return true;
        while (true) {
          skip_ws();
          std::string key;
          if (!string_body(key)) return false;
          skip_ws();
          if (!consume(':')) return false;
          skip_ws();
          JsonValue v;
          if (!value(v)) return false;
          out.fields.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (consume('}')) return true;
          if (!consume(',')) return false;
        }
      }
      case '[': {
        ++p_;
        out.kind = JsonValue::Kind::kArray;
        skip_ws();
        if (consume(']')) return true;
        while (true) {
          skip_ws();
          JsonValue v;
          if (!value(v)) return false;
          out.items.push_back(std::move(v));
          skip_ws();
          if (consume(']')) return true;
          if (!consume(',')) return false;
        }
      }
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string_body(out.text);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: {  // number: keep the raw token
        const char* start = p_;
        if (consume('-')) {}
        while (p_ != end_ &&
               ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
                *p_ == 'E' || *p_ == '+' || *p_ == '-'))
          ++p_;
        if (p_ == start) return false;
        out.kind = JsonValue::Kind::kNumber;
        out.text.assign(start, static_cast<std::size_t>(p_ - start));
        return true;
      }
    }
  }

  const char* p_;
  const char* end_;
};

}  // namespace detail

/// Parse `text`; returns false (out untouched beyond partial state) on
/// malformed input.
inline bool parse_json(std::string_view text, JsonValue& out) {
  detail::JsonParser p(text);
  return p.parse(out);
}

/// Slurp a file into `out`; false if it cannot be read.
inline bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

}  // namespace ers::obs
