#pragma once
// Flatteners from the runtime's, simulator's and engine's aggregate structs
// into a MetricsRegistry — the one place that knows how each ad-hoc stats
// block maps onto registry names (DESIGN.md §11 lists the schema).
//
// Prefixes keep the namespaces apart so one registry can hold a whole run:
//   sched.*   SchedulerStats        (thread runtime workers)
//   run.*     ThreadRunReport       (thread runtime totals)
//   sim.*     SimMetrics            (simulated executor)
//   engine.*  EngineStats           (scheduling state machine)
//   tt.*      transposition-table traffic (either runtime)

#include <string>

#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_executor.hpp"
#include "sim/executor.hpp"

namespace ers::obs {

inline void register_scheduler_stats(MetricsRegistry& reg,
                                     const runtime::SchedulerStats& s,
                                     const std::string& prefix = "sched.") {
  reg.set(prefix + "lock_acquisitions", s.lock_acquisitions);
  reg.set(prefix + "lock_wait_ns", s.lock_wait_ns);
  reg.set(prefix + "lock_hold_ns", s.lock_hold_ns);
  reg.set(prefix + "compute_ns", s.compute_ns);
  reg.set(prefix + "units", s.units);
  reg.set(prefix + "batches", s.batches);
  reg.set(prefix + "mean_batch", s.mean_batch_size());
  reg.set(prefix + "wakeups_issued", s.wakeups_issued);
  reg.set(prefix + "sleeps", s.sleeps);
  reg.set(prefix + "steal_attempts", s.steal_attempts);
  reg.set(prefix + "steal_hits", s.steal_hits);
  reg.set(prefix + "steal_misses", s.steal_misses());
  reg.set(prefix + "flush_deferrals", s.flush_deferrals);
  reg.set(prefix + "global_refills", s.global_refills);
  // Streaming histograms (DESIGN.md §16): batch sizes always; compute-span
  // and commit latencies only on traced runs (the untraced hot path never
  // reads the clock).
  reg.put_histogram(prefix + "batch_size", s.batch_hist);
  if (s.compute_hist.count() > 0)
    reg.put_histogram(prefix + "compute_span_ns", s.compute_hist);
  if (s.commit_hist.count() > 0)
    reg.put_histogram(prefix + "commit_latency_ns", s.commit_hist);
}

/// Node-storage occupancy gauges (DESIGN.md §15): arena/slab footprint and
/// cold-record reclamation totals, as `engine.mem.*`.  `cold_reclaimed > 0`
/// on a speculative workload is the observable proof that dead-subtree
/// reclamation is running.
inline void register_engine_mem_stats(MetricsRegistry& reg,
                                      const core::EngineMemStats& m,
                                      const std::string& prefix = "engine.") {
  reg.set(prefix + "mem.live_nodes", m.live_nodes);
  reg.set(prefix + "mem.hot_bytes", m.hot_bytes);
  reg.set(prefix + "mem.position_bytes", m.position_bytes);
  reg.set(prefix + "mem.cold_allocated", m.cold_allocated);
  reg.set(prefix + "mem.cold_live", m.cold_live);
  reg.set(prefix + "mem.cold_reclaimed", m.cold_reclaimed);
  reg.set(prefix + "mem.slab_bytes", m.slab_bytes);
  reg.set(prefix + "mem.peak_bytes", m.peak_bytes);
}

/// Wasted-work attribution ledger (DESIGN.md §16): per-(cause, ply-band)
/// cancel / unit / compute-ns grids plus the per-cause and grand totals the
/// benches print.  Cells are emitted only when a cause row is non-empty so
/// a speculation-free run contributes three zero totals, not 36 zeros.
inline void register_engine_waste_stats(MetricsRegistry& reg,
                                        const core::EngineWasteStats& w,
                                        const std::string& prefix = "engine.") {
  for (std::size_t c = 0; c < core::kWasteCauseCount; ++c) {
    const auto cause = static_cast<core::WasteCause>(c);
    const std::string base =
        prefix + "waste." + core::waste_cause_name(cause) + ".";
    reg.set(base + "cancels", w.cause_cancels(cause));
    reg.set(base + "units", w.cause_units(cause));
    reg.set(base + "compute_ns", w.cause_ns(cause));
    if (w.cause_cancels(cause) == 0) continue;
    for (std::size_t b = 0; b < core::kWastePlyBands; ++b) {
      const std::string band = ".ply" + std::to_string(b);
      reg.set(base + "cancels" + band, w.cancels[c][b]);
      reg.set(base + "units" + band, w.units[c][b]);
      reg.set(base + "compute_ns" + band, w.compute_ns[c][b]);
    }
  }
  reg.set(prefix + "waste.total_cancels", w.total_cancels());
  reg.set(prefix + "waste.total_units", w.total_units());
  reg.set(prefix + "waste.total_ns", w.total_ns());
}

inline void register_thread_report(MetricsRegistry& reg,
                                   const runtime::ThreadRunReport& r,
                                   const std::string& prefix = "run.") {
  reg.set(prefix + "threads", r.threads);
  reg.set(prefix + "shards", r.shards);
  reg.set(prefix + "units", r.units);
  reg.set(prefix + "elapsed_ns", r.elapsed_ns);
  reg.set(prefix + "lock_wait_share", r.lock_wait_share());
  reg.set(prefix + "lock_hold_share", r.lock_hold_share());
  reg.set(prefix + "combine_batches", r.combine_batches);
  reg.set(prefix + "combine_records", r.combine_records);
  reg.set(prefix + "combine_entries", r.combine_entries);
  reg.set(prefix + "combine_peer_applied", r.combine_peer_applied);
  reg.set(prefix + "combine_wait_ns", r.combine_wait_ns);
  for (std::size_t s = 0; s < r.shard_lock_acquisitions.size(); ++s) {
    const std::string shard = std::to_string(s);
    reg.set(prefix + "shard_lock_acquisitions." + shard,
            r.shard_lock_acquisitions[s]);
    reg.set(prefix + "shard_lock_wait_ns." + shard, r.shard_lock_wait_ns[s]);
    reg.set(prefix + "shard_lock_hold_ns." + shard, r.shard_lock_hold_ns[s]);
  }
  reg.set("tt.probes", r.tt_probes);
  reg.set("tt.hits", r.tt_hits);
  reg.set("tt.hit_rate", r.tt_hit_rate());
  register_scheduler_stats(reg, r.sched);
  register_engine_mem_stats(reg, r.mem);
  register_engine_waste_stats(reg, r.waste);
}

inline void register_sim_metrics(MetricsRegistry& reg,
                                 const sim::SimMetrics& m,
                                 const std::string& prefix = "sim.") {
  reg.set(prefix + "processors", m.processors);
  reg.set(prefix + "makespan", m.makespan);
  reg.set(prefix + "busy_time", m.busy_time);
  reg.set(prefix + "idle_time", m.idle_time);
  reg.set(prefix + "lock_wait_time", m.lock_wait_time);
  reg.set(prefix + "units", m.units);
  reg.set(prefix + "heap_accesses", m.heap_accesses);
  reg.set(prefix + "utilization", m.utilization());
  for (std::size_t s = 0; s < m.shard_accesses.size(); ++s)
    reg.set(prefix + "shard_accesses." + std::to_string(s),
            m.shard_accesses[s]);
  // Simulated runs always carry exact per-unit durations, so all three
  // histograms are populated (virtual-clock units).
  reg.put_histogram(prefix + "batch_size", m.batch_hist);
  reg.put_histogram(prefix + "compute_span_ns", m.compute_hist);
  reg.put_histogram(prefix + "commit_latency_ns", m.commit_hist);
}

/// Per-shard breakdown of the engine's own lock accounting (DESIGN.md
/// §12/§13): `engine.shard<k>.lock_wait_ns` makes root-shard serialization
/// visible shard-by-shard in trace_report/metrics dumps, and the
/// `engine.root.*` family counts the epoch-publication traffic that the
/// frontier truncation substitutes for those shard-0 lock sections.
inline void register_engine_lock_stats(MetricsRegistry& reg,
                                       const core::EngineLockStats& ls,
                                       const std::string& prefix = "engine.") {
  for (std::size_t s = 0; s < ls.shard_acquisitions.size(); ++s) {
    const std::string shard = prefix + "shard" + std::to_string(s) + ".";
    reg.set(shard + "lock_acquisitions", ls.shard_acquisitions[s]);
    reg.set(shard + "lock_wait_ns", ls.shard_wait_ns[s]);
    reg.set(shard + "lock_hold_ns", ls.shard_hold_ns[s]);
  }
  reg.set(prefix + "multi.lock_acquisitions", ls.multi_acquisitions);
  reg.set(prefix + "multi.lock_wait_ns", ls.multi_wait_ns);
  reg.set(prefix + "multi.lock_hold_ns", ls.multi_hold_ns);
  reg.set(prefix + "combine.batches", ls.combine_batches);
  reg.set(prefix + "combine.records", ls.combine_records);
  reg.set(prefix + "combine.entries", ls.combine_entries);
  reg.set(prefix + "combine.peer_applied", ls.combine_peer_applied);
  reg.set(prefix + "combine.wait_ns", ls.combine_wait_ns);
  reg.set(prefix + "root.truncated_records", ls.truncated_records);
  reg.set(prefix + "root.continuations", ls.frontier_continuations);
  reg.set(prefix + "root.publishes", ls.root_publishes);
  reg.set(prefix + "root.publish_retries", ls.root_publish_retries);
  reg.set(prefix + "root.validate_retries", ls.root_validate_retries);
}

inline void register_engine_stats(MetricsRegistry& reg,
                                  const core::EngineStats& e,
                                  const std::string& prefix = "engine.") {
  reg.set(prefix + "nodes_generated", e.search.nodes_generated());
  reg.set(prefix + "leaves_evaluated", e.search.leaves_evaluated);
  reg.set(prefix + "interior_expanded", e.search.interior_expanded);
  reg.set(prefix + "sort_evals", e.search.sort_evals);
  reg.set(prefix + "units_processed", e.units_processed);
  reg.set(prefix + "serial_units", e.serial_units);
  reg.set(prefix + "promotions_mandatory", e.promotions_mandatory);
  reg.set(prefix + "promotions_speculative", e.promotions_speculative);
  reg.set(prefix + "refutations_dispatched", e.refutations_dispatched);
  reg.set(prefix + "cutoffs_at_pop", e.cutoffs_at_pop);
  reg.set(prefix + "dead_items_dropped", e.dead_items_dropped);
  // Steal-aware speculation control (DESIGN.md §17).
  reg.set(prefix + "spec.demotions", e.spec_demotions);
  reg.set(prefix + "spec.rewindows", e.spec_rewindows);
  reg.set(prefix + "spec.budget_deferrals", e.spec_budget_deferrals);
  reg.set(prefix + "spec.steal_events", e.steal_events);
  reg.set("tt.probes", e.search.tt_probes);
  reg.set("tt.hits", e.search.tt_hits);
  reg.set("tt.stores", e.search.tt_stores);
}

/// Flatten one search's SearchStats — used by the ABDADA runner
/// (`abdada.*`), where the deferred/revisited counters carry the
/// algorithm-specific signal, but prefix-agnostic so any searcher can
/// publish under its own namespace.
inline void register_search_stats(MetricsRegistry& reg, const SearchStats& s,
                                  const std::string& prefix) {
  reg.set(prefix + "nodes_generated", s.nodes_generated());
  reg.set(prefix + "interior_expanded", s.interior_expanded);
  reg.set(prefix + "leaves_evaluated", s.leaves_evaluated);
  reg.set(prefix + "child_sorts", s.child_sorts);
  reg.set(prefix + "sort_evals", s.sort_evals);
  reg.set(prefix + "tt_probes", s.tt_probes);
  reg.set(prefix + "tt_hits", s.tt_hits);
  reg.set(prefix + "tt_hit_rate", s.tt_hit_rate());
  reg.set(prefix + "tt_stores", s.tt_stores);
  reg.set(prefix + "moves_deferred", s.moves_deferred);
  reg.set(prefix + "moves_revisited", s.moves_revisited);
  // Shared ordering tables (search/ordering.hpp).
  reg.set(prefix + "order.tt_first", s.order_tt_first);
  reg.set(prefix + "order.killer_hits", s.order_killer_hits);
  reg.set(prefix + "order.history_hits", s.order_history_hits);
}

}  // namespace ers::obs
