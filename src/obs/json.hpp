#pragma once
// The one JSON emitter of the repo (DESIGN.md §11).
//
// Everything that writes JSON — the BENCH_*.json bench summaries, the
// MetricsRegistry snapshots, the Perfetto trace writer — goes through the
// helpers here, so escaping and number formatting are decided exactly once.
// Formerly these lived in bench/common.hpp; bench code keeps its spelling
// via using-declarations, and the emitted bytes are unchanged (covered by
// tests/obs/json_test.cpp).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ers::obs {

/// Escape a string for use as a JSON value: quotes, backslashes, and
/// control characters (the tree names and modes the benches emit are tame,
/// but the emitter must not rely on that).
inline std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_escape(const std::string& s) {
  return json_escape(s.c_str());
}

/// Flat JSON object builder: insertion-ordered string/int/double fields
/// plus raw splicing for nested values.
class JsonObject {
 public:
  JsonObject& field(const char* key, const char* v) {
    return raw(key, "\"" + json_escape(v) + "\"");
  }
  JsonObject& field(const char* key, const std::string& v) {
    return field(key, v.c_str());
  }
  JsonObject& field(const char* key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return raw(key, buf);
  }
  JsonObject& field(const char* key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& field(const char* key, int v) {
    return raw(key, std::to_string(v));
  }
  /// Append `json` verbatim as the value of `key`.
  JsonObject& raw(const char* key, const std::string& json) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + std::string(key) + "\":" + json;
    return *this;
  }
  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Write `lines` (one JSON object each) to BENCH_<name>.json in the current
/// directory and echo the path so the run log records where they went.
/// Every line is stamped with `"bench": name` and `"reps": reps` (the
/// repetitions each row was averaged over; 1 for deterministic benches), so
/// a file's rows identify their producer without reading this source.
inline void write_bench_json(const std::string& name, int reps,
                             const std::vector<std::string>& lines,
                             const std::string& path_override = "") {
  const std::string path =
      path_override.empty() ? "BENCH_" + name + ".json" : path_override;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const std::string stamp =
      "{\"bench\":\"" + json_escape(name.c_str()) +
      "\",\"reps\":" + std::to_string(reps);
  for (const auto& line : lines) {
    // Each line is a flat object "{...}"; splice the stamp after the brace.
    std::fprintf(f, "%s%s%s\n", stamp.c_str(), line.size() > 2 ? "," : "",
                 line.c_str() + 1);
  }
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), lines.size());
}

}  // namespace ers::obs
