#pragma once
// Low-overhead event tracing for the search executors (DESIGN.md §11).
//
// Every worker (OS thread in the thread runtime, virtual processor in the
// simulator) owns a fixed-capacity ring of plain-struct TraceEvents and
// appends to it with no synchronization whatsoever: a Tracer is
// single-producer by construction, and buffers are only merged after the
// workers have joined (thread runtime) or on the single simulator thread.
// The engine gets one extra tracer of its own, written strictly by the
// current commit combiner (one at a time, by construction), for the events
// only the scheduling state machine can see (speculative promotions,
// pop-time cancellations, unit commits), plus one tracer per heap shard,
// written only under that shard's lock, for acquire-side events.
//
// A full ring drops new events and counts the drops instead of resizing or
// overwriting — the record stays a prefix of the truth and consumers can
// state their tolerance ("totals agree to within drop tolerance").
//
// Timestamps are nanoseconds from the session's epoch.  The thread runtime
// stamps with steady_clock; the simulator stamps with its virtual clock
// (one simulated cost unit = 1 "ns"), so a simulated and a real run of the
// same tree emit the *same* event schema and open side by side in one
// Perfetto viewer (trace_writer.hpp).
//
// Compile-time kill switch: configuring with -DERS_TRACING=OFF defines
// ERS_TRACING_DISABLED, which turns every record call into an empty inline
// and allocates no buffers — the executors' hot paths keep only a constant
// branch on a pointer that the optimizer removes (kTracingEnabled is
// constexpr false).

#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <chrono>
#include <memory>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace ers::obs {

#if defined(ERS_TRACING_DISABLED)
inline constexpr bool kTracingEnabled = false;
#else
inline constexpr bool kTracingEnabled = true;
#endif

/// Sentinel for events not tied to an engine node.
inline constexpr std::uint32_t kNoTraceNode = 0xffffffffu;
/// Sentinel shard for events not tied to one heap shard.
inline constexpr std::uint16_t kNoTraceShard = 0xffffu;

/// One schema for both executors.  Span kinds carry a duration; instants
/// have dur == 0.  The `arg` meaning is per kind (see event_name cases).
enum class EventKind : std::uint8_t {
  // --- spans (worker timeline) -------------------------------------------
  kComputeSpan,   ///< one work unit's heavy phase; node = engine node id
  kLockWaitSpan,  ///< blocked entering the serialized heap section
  kLockHoldSpan,  ///< inside the serialized heap section
  kSleepSpan,     ///< parked on the cv (thread) / starving (sim)
  // --- scheduling instants -----------------------------------------------
  kAcquireBatch,  ///< arg = units acquired; shard = serving shard
  kCommitBatch,   ///< arg = units committed
  kStealProbe,    ///< arg = victim worker probed
  kStealHit,      ///< arg = victim worker; node = stolen unit's node
  kStealMiss,     ///< arg = victim worker (locked out or empty)
  kRefillHome,    ///< arg = units pulled from the home shard; shard = home
  kRefillGlobal,  ///< arg = units pulled by the global fallback scan
  kWakeup,        ///< arg = notify_one calls issued
  kTtProbe,       ///< arg = table probes performed by one unit's compute
  kTtHit,         ///< arg = validated table hits in one unit's compute
  // --- engine instants (combiner-serialized, or per-shard rings) ----------
  kSpecSpawn,   ///< speculative/mandatory promotion; node = child, arg = parent
  kSpecCancel,  ///< queued work cancelled; arg: 0 = dead queue-entry drop,
                ///< 1 = pop-time cutoff on the node itself, 2 = subtree
                ///< killed by a bound change, 3 = subtree killed by sibling
                ///< resolution (2/3: node = the cancelled subtree's root,
                ///< matching the engine waste ledger's kill charges)
  kUnitCommit,  ///< unit committed; node = node id, arg = parent node id,
                ///< dur = executor-measured compute ns (waste reconciliation)
  // --- flat-combining commit path (engine-internal locking) ---------------
  kCombinePublish,  ///< commit record published; shard = apply queue, arg = entries
  kCombineBatch,    ///< one combiner drain round; arg = records applied
  // --- epoch publication path (DESIGN.md §13) -----------------------------
  kEpochPublish,  ///< high-node (value, finished) published; node = id, arg = epoch
  kEpochRetry,    ///< reader-side epoch validation retry; node = queried id
  // --- ABDADA two-phase iteration (DESIGN.md §14) --------------------------
  kAbdadaDefer,    ///< younger sibling skipped (busy elsewhere); arg = ply
  kAbdadaRevisit,  ///< deferred move searched in phase two; arg = ply
  // --- steal-aware speculation control (DESIGN.md §17) ---------------------
  kSpecDemote,    ///< spec entry re-pushed, rank decayed; node = the entry's
                  ///< node, arg: 1 = steal-pressure-driven, 0 = bound-driven
  kSpecRewindow,  ///< spec entry re-pushed, window moved past its candidate
};
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kSpecRewindow) + 1;

/// Stable display/schema name of a kind (the Perfetto event `name`).
[[nodiscard]] constexpr const char* event_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kComputeSpan: return "compute";
    case EventKind::kLockWaitSpan: return "lock_wait";
    case EventKind::kLockHoldSpan: return "lock_hold";
    case EventKind::kSleepSpan: return "sleep";
    case EventKind::kAcquireBatch: return "acquire_batch";
    case EventKind::kCommitBatch: return "commit_batch";
    case EventKind::kStealProbe: return "steal_probe";
    case EventKind::kStealHit: return "steal_hit";
    case EventKind::kStealMiss: return "steal_miss";
    case EventKind::kRefillHome: return "refill_home";
    case EventKind::kRefillGlobal: return "refill_global";
    case EventKind::kWakeup: return "wakeup";
    case EventKind::kTtProbe: return "tt_probe";
    case EventKind::kTtHit: return "tt_hit";
    case EventKind::kSpecSpawn: return "spec_spawn";
    case EventKind::kSpecCancel: return "spec_cancel";
    case EventKind::kUnitCommit: return "unit_commit";
    case EventKind::kCombinePublish: return "combine_publish";
    case EventKind::kCombineBatch: return "combine_batch";
    case EventKind::kEpochPublish: return "epoch_publish";
    case EventKind::kEpochRetry: return "epoch_retry";
    case EventKind::kAbdadaDefer: return "abdada_defer";
    case EventKind::kAbdadaRevisit: return "abdada_revisit";
    case EventKind::kSpecDemote: return "spec_demote";
    case EventKind::kSpecRewindow: return "spec_rewindow";
  }
  return "unknown";
}

[[nodiscard]] constexpr bool is_span(EventKind k) noexcept {
  return k == EventKind::kComputeSpan || k == EventKind::kLockWaitSpan ||
         k == EventKind::kLockHoldSpan || k == EventKind::kSleepSpan;
}

/// Plain 32-byte event; written by exactly one producer, read after join.
struct TraceEvent {
  std::uint64_t ts = 0;   ///< ns since session epoch (steady or virtual)
  std::uint64_t dur = 0;  ///< span length in ns; 0 for instants
  std::uint32_t node = kNoTraceNode;  ///< engine node id, if any
  std::uint32_t arg = 0;              ///< kind-specific payload
  std::uint16_t worker = 0;           ///< emitting worker (tid in the trace)
  std::uint16_t shard = kNoTraceShard;
  EventKind kind = EventKind::kComputeSpan;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Fixed-capacity single-producer event ring.  record() is wait-free: one
/// bounds check and one struct store; a full buffer counts the drop and
/// keeps the existing prefix.
class Tracer {
 public:
  Tracer(std::uint16_t worker, std::size_t capacity) : worker_(worker) {
    if constexpr (kTracingEnabled) buf_.reserve(capacity);
    capacity_ = kTracingEnabled ? capacity : 0;
  }

  /// The engine's tracer is written by whichever worker holds the engine
  /// lock; the executor re-points it before driving the engine.
  void set_worker(std::uint16_t w) noexcept { worker_ = w; }
  [[nodiscard]] std::uint16_t worker() const noexcept { return worker_; }

  void record(EventKind kind, std::uint64_t ts, std::uint64_t dur,
              std::uint32_t node = kNoTraceNode, std::uint32_t arg = 0,
              std::uint16_t shard = kNoTraceShard) noexcept {
    if constexpr (!kTracingEnabled) {
      (void)kind; (void)ts; (void)dur; (void)node; (void)arg; (void)shard;
      return;
    }
    if (buf_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    buf_.push_back(TraceEvent{ts, dur, node, arg, worker_, shard, kind});
  }

  void span(EventKind kind, std::uint64_t from, std::uint64_t to,
            std::uint32_t node = kNoTraceNode, std::uint32_t arg = 0,
            std::uint16_t shard = kNoTraceShard) noexcept {
    record(kind, from, to >= from ? to - from : 0, node, arg, shard);
  }

  void instant(EventKind kind, std::uint64_t ts,
               std::uint32_t node = kNoTraceNode, std::uint32_t arg = 0,
               std::uint16_t shard = kNoTraceShard) noexcept {
    record(kind, ts, 0, node, arg, shard);
  }

  [[nodiscard]] std::span<const TraceEvent> events() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  void clear() noexcept {
    buf_.clear();
    dropped_ = 0;
  }

 private:
  std::vector<TraceEvent> buf_;
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint16_t worker_;
};

/// One traced run: per-worker tracers plus the engine tracer, sharing an
/// epoch.  The thread runtime stamps events with now_ns() (steady_clock
/// since construction); the simulator switches the session to its virtual
/// clock and advances it explicitly, so engine hooks — which know nothing
/// about who drives them — always stamp with session time.
class TraceSession {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit TraceSession(int workers = 0,
                        std::size_t capacity_per_worker = kDefaultCapacity)
      : capacity_(capacity_per_worker),
        engine_tracer_(kEngineWorker, capacity_per_worker),
        epoch_(std::chrono::steady_clock::now()) {
    ensure_workers(workers);
  }

  /// Grow (never shrink) the per-worker tracer set; executors call this
  /// with their worker count before the run.
  void ensure_workers(int workers) {
    while (workers_.size() < static_cast<std::size_t>(workers))
      workers_.push_back(std::make_unique<Tracer>(
          static_cast<std::uint16_t>(workers_.size()), capacity_));
  }

  [[nodiscard]] Tracer& worker(int i) {
    ERS_CHECK(i >= 0 && static_cast<std::size_t>(i) < workers_.size());
    return *workers_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const Tracer& worker(int i) const {
    ERS_CHECK(i >= 0 && static_cast<std::size_t>(i) < workers_.size());
    return *workers_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int worker_count() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] Tracer& engine_tracer() noexcept { return engine_tracer_; }
  [[nodiscard]] const Tracer& engine_tracer() const noexcept {
    return engine_tracer_;
  }

  /// Grow (never shrink) the per-shard tracer set.  One ring per heap
  /// shard, written only by the thread holding that shard's lock — the
  /// engine's acquire-side events (dead-entry drops, combine-record
  /// publishes) land here because concurrent shard-local acquires can no
  /// longer share the single engine ring.  Shard events are attributed to
  /// the kEngineWorker track, so timeline analysis keeps treating them as
  /// engine events rather than inventing phantom workers.
  void ensure_shards(std::size_t shards) {
    while (shard_tracers_.size() < shards)
      shard_tracers_.push_back(
          std::make_unique<Tracer>(kEngineWorker, capacity_));
  }
  [[nodiscard]] Tracer& shard_tracer(std::size_t s) {
    ERS_CHECK(s < shard_tracers_.size());
    return *shard_tracers_[s];
  }
  [[nodiscard]] std::size_t shard_tracer_count() const noexcept {
    return shard_tracers_.size();
  }

  /// The engine tracer's events are attributed to the worker that holds
  /// the combiner lock at the time; the single-threaded simulator re-points
  /// this before driving acquire/commit.  (The thread runtime leaves the
  /// attribution at kEngineWorker: under per-shard locking there is no one
  /// worker "holding the engine".)
  void set_current_worker(int w) noexcept {
    engine_tracer_.set_worker(static_cast<std::uint16_t>(w));
  }

  /// Thread-local tracer of the calling worker, so engine-internal lock
  /// instrumentation can emit wait/hold spans onto the right worker track
  /// without threading a tracer through every protocol call.  Null (the
  /// default, and always for the single-threaded simulator, which models
  /// lock time in its cost model instead) suppresses the spans; the
  /// thread executor sets it at worker start and clears it at exit.
  static void set_thread_tracer(Tracer* t) noexcept {
    if constexpr (kTracingEnabled) tls_worker_tracer_ = t;
  }
  [[nodiscard]] static Tracer* thread_tracer() noexcept {
    if constexpr (kTracingEnabled) return tls_worker_tracer_;
    return nullptr;
  }

  // --- clock --------------------------------------------------------------

  /// Switch to the simulator's virtual clock: now_ns() returns the last
  /// value passed to set_virtual_now() instead of elapsed steady time.
  void use_virtual_clock() noexcept { virtual_clock_ = true; }
  [[nodiscard]] bool virtual_clock() const noexcept { return virtual_clock_; }
  void set_virtual_now(std::uint64_t t) noexcept { virtual_now_ = t; }

  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    if (virtual_clock_) return virtual_now_;
    return to_ns(std::chrono::steady_clock::now());
  }

  /// Fold an already-taken steady_clock reading onto the session epoch —
  /// executors reuse the timestamps their SchedulerStats arithmetic takes,
  /// so traced spans and stats totals agree exactly, not approximately.
  [[nodiscard]] std::uint64_t to_ns(
      std::chrono::steady_clock::time_point t) const noexcept {
    return t <= epoch_
               ? 0
               : static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         t - epoch_)
                         .count());
  }

  // --- consumption --------------------------------------------------------

  /// All events — workers' rings then the engine ring — merged and sorted
  /// by (ts, worker, kind) into one stable stream.  Only meaningful after
  /// the traced run finished (the thread executor has joined its pool).
  [[nodiscard]] std::vector<TraceEvent> merged() const {
    std::vector<TraceEvent> out;
    std::size_t total = engine_tracer_.size();
    for (const auto& w : workers_) total += w->size();
    for (const auto& s : shard_tracers_) total += s->size();
    out.reserve(total);
    for (const auto& w : workers_)
      out.insert(out.end(), w->events().begin(), w->events().end());
    out.insert(out.end(), engine_tracer_.events().begin(),
               engine_tracer_.events().end());
    for (const auto& s : shard_tracers_)
      out.insert(out.end(), s->events().begin(), s->events().end());
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.ts != b.ts) return a.ts < b.ts;
                       if (a.worker != b.worker) return a.worker < b.worker;
                       return static_cast<int>(a.kind) <
                              static_cast<int>(b.kind);
                     });
    return out;
  }

  /// Events dropped across every ring — the "drop tolerance" consumers
  /// must quote when comparing trace totals with executor aggregates.
  [[nodiscard]] std::uint64_t total_dropped() const noexcept {
    std::uint64_t n = engine_tracer_.dropped();
    for (const auto& w : workers_) n += w->dropped();
    for (const auto& s : shard_tracers_) n += s->dropped();
    return n;
  }

  void clear() {
    for (const auto& w : workers_) w->clear();
    for (const auto& s : shard_tracers_) s->clear();
    engine_tracer_.clear();
  }

  /// The engine tracer's tid in the exported trace: one past the largest
  /// real worker id so it gets its own named track.
  static constexpr std::uint16_t kEngineWorker = 0xfffe;

 private:
  std::size_t capacity_;
  std::vector<std::unique_ptr<Tracer>> workers_;
  std::vector<std::unique_ptr<Tracer>> shard_tracers_;
  Tracer engine_tracer_;
  std::chrono::steady_clock::time_point epoch_;
  bool virtual_clock_ = false;
  std::uint64_t virtual_now_ = 0;
  inline static thread_local Tracer* tls_worker_tracer_ = nullptr;
};

}  // namespace ers::obs
