#pragma once
// Tic-tac-toe, the paper's Figure 1 example.  The full game tree is small
// enough to search exactly, which makes this game the cheapest end-to-end
// check of every algorithm (the root negmax value must be 0 — a draw).
//
// Values are from the side-to-move's perspective: +100 win, 0 draw,
// -100 loss; the non-terminal heuristic counts open lines so the game can
// also exercise depth-limited, move-ordered search.

#include <array>
#include <cstdint>
#include <vector>

#include "gametree/game.hpp"
#include "util/value.hpp"

namespace ers {

class TicTacToe {
 public:
  struct Position {
    std::uint16_t to_move = 0;  ///< bitboard (9 bits) of the player to move
    std::uint16_t waiting = 0;  ///< bitboard of the player who just moved

    friend bool operator==(const Position&, const Position&) = default;
  };

  static constexpr Value kWin = 100;
  static constexpr Value kLoss = -100;

  [[nodiscard]] Position root() const noexcept { return Position{}; }

  void generate_children(const Position& p, std::vector<Position>& out) const {
    if (has_line(p.waiting)) return;  // previous mover already won: terminal
    const std::uint16_t occupied = p.to_move | p.waiting;
    for (int sq = 0; sq < 9; ++sq) {
      const auto bit = static_cast<std::uint16_t>(1u << sq);
      if (occupied & bit) continue;
      // The mover places a stone and it becomes the opponent's turn.
      out.push_back(Position{p.waiting, static_cast<std::uint16_t>(p.to_move | bit)});
    }
  }

  [[nodiscard]] Value evaluate(const Position& p) const noexcept {
    if (has_line(p.waiting)) return kLoss;  // opponent completed a line
    if ((p.to_move | p.waiting) == 0x1FF) return 0;  // full board: draw
    return static_cast<Value>(open_lines(p.to_move, p.waiting) -
                              open_lines(p.waiting, p.to_move));
  }

  /// True if the 9-bit board contains three in a row.
  [[nodiscard]] static bool has_line(std::uint16_t board) noexcept {
    for (const std::uint16_t line : kLines)
      if ((board & line) == line) return true;
    return false;
  }

 private:
  static constexpr std::array<std::uint16_t, 8> kLines = {
      0007, 0070, 0700,  // rows
      0111, 0222, 0444,  // columns
      0421, 0124,        // diagonals
  };

  /// Lines still winnable for `mine` (no opposing stone on them).
  [[nodiscard]] static int open_lines(std::uint16_t mine,
                                      std::uint16_t theirs) noexcept {
    (void)mine;
    int n = 0;
    for (const std::uint16_t line : kLines)
      if ((theirs & line) == 0) ++n;
    return n;
  }

  friend class TicTacToePrinter;
};

static_assert(Game<TicTacToe>);

}  // namespace ers
