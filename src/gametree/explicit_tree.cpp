#include "gametree/explicit_tree.hpp"

#include <algorithm>

namespace ers {

ExplicitTree ExplicitTree::complete(int degree, int height,
                                    std::span<const Value> leaves) {
  ERS_CHECK(degree >= 1 && height >= 0);
  std::uint64_t expected = 1;
  for (int i = 0; i < height; ++i) expected *= static_cast<std::uint64_t>(degree);
  ERS_CHECK(leaves.size() == expected);

  ExplicitTree t;
  std::size_t next_leaf = 0;
  // Recursive lambda building depth-first, consuming leaves left-to-right.
  auto build = [&](auto&& self, Position at, int remaining) -> void {
    if (remaining == 0) {
      t.set_value(at, leaves[next_leaf++]);
      return;
    }
    for (int i = 0; i < degree; ++i) {
      const Position c = t.add_child(at);
      self(self, c, remaining - 1);
    }
  };
  build(build, 0, height);
  ERS_CHECK(next_leaf == leaves.size());
  return t;
}

int ExplicitTree::height(Position p) const {
  ERS_CHECK(p < nodes_.size());
  int h = 0;
  for (Position c : nodes_[p].children) h = std::max(h, 1 + height(c));
  return h;
}

Value ExplicitTree::negmax_value(Position p) const {
  ERS_CHECK(p < nodes_.size());
  const auto& kids = nodes_[p].children;
  if (kids.empty()) return nodes_[p].value;
  Value m = -kValueInf;
  for (Position c : kids) m = std::max(m, negate(negmax_value(c)));
  return m;
}

}  // namespace ers
