#pragma once
// The Game concept: the minimal interface a two-player zero-sum game must
// expose for the search algorithms in this library.
//
// Conventions (negmax, as in the paper §2):
//   * evaluate(p) returns the value of position p from the point of view of
//     the player to move at p; the value of a position for one player is the
//     negative of its value for the other.
//   * generate_children(p, out) appends the positions reachable in one move.
//     A position with no children is terminal (win/loss/draw or a game rule
//     such as "board full").  The *search* additionally truncates at a depth
//     limit and applies the static evaluator there.
//   * All games must be deterministic and positions cheap to copy: the
//     parallel engines store positions by value in their node records.

#include <concepts>
#include <cstdint>
#include <vector>

#include "util/value.hpp"

namespace ers {

template <typename G>
concept Game = requires(const G& g, const typename G::Position& p,
                        std::vector<typename G::Position>& out) {
  typename G::Position;
  requires std::copyable<typename G::Position>;
  { g.root() } -> std::convertible_to<typename G::Position>;
  { g.generate_children(p, out) } -> std::same_as<void>;
  { g.evaluate(p) } -> std::convertible_to<Value>;
};

/// Games that can report a typical branching factor, used only to size
/// scratch buffers (reserve hints), never for correctness.
template <typename G>
concept BranchingHinted = Game<G> && requires(const G& g) {
  { g.branching_hint() } -> std::convertible_to<std::size_t>;
};

/// The game's branching hint, or a generic default when it has none.
template <Game G>
[[nodiscard]] constexpr std::size_t branching_hint_of(const G& game) noexcept {
  if constexpr (BranchingHinted<G>)
    return game.branching_hint();
  else
    return 32;
}

/// Games whose positions carry a cheap 64-bit transposition key (maintained
/// incrementally, so reading it is free on the search hot path).  Positions
/// that compare equal must have equal keys; distinct positions collide with
/// the usual 2^-64 transposition-table risk.  Searches probe/store shared
/// transposition tables only for games satisfying this concept.
template <typename G>
concept HashedGame = Game<G> && requires(const typename G::Position& p) {
  { p.tt_key() } -> std::convertible_to<std::uint64_t>;
};

/// Work counters shared by every search algorithm.  "Nodes generated" in the
/// paper's Figures 12/13 corresponds to nodes_generated() here.
struct SearchStats {
  std::uint64_t interior_expanded = 0;  ///< interior nodes whose children were generated
  std::uint64_t leaves_evaluated = 0;   ///< static evaluations at the search horizon
  std::uint64_t child_sorts = 0;        ///< child-list sorts performed (move ordering)
  std::uint64_t sort_evals = 0;         ///< static evaluations done *only* for ordering
  // Transposition-table traffic.  Kept here (per search / per work unit, so
  // thread-local by construction) rather than on the shared table: workers
  // merge them on commit, keeping the concurrent table free of shared
  // counters on the hot path.
  std::uint64_t tt_probes = 0;  ///< table lookups issued
  std::uint64_t tt_hits = 0;    ///< lookups that validated with sufficient depth
  std::uint64_t tt_stores = 0;  ///< entries written
  // ABDADA two-phase move iteration (search/abdada.hpp): younger siblings
  // skipped in phase one because another worker was inside them, and the
  // deferred moves searched in phase two (a beta cutoff in phase one
  // retires deferrals without revisits, so deferred >= revisited).
  std::uint64_t moves_deferred = 0;   ///< phase-one exclusivity skips
  std::uint64_t moves_revisited = 0;  ///< phase-two deferred-move searches
  // Shared ordering tables (search/ordering.hpp): sorts where the stored
  // TT move was fronted, and per-child killer/history matches that
  // perturbed the static order.
  std::uint64_t order_tt_first = 0;      ///< sorts fronting a TT move
  std::uint64_t order_killer_hits = 0;   ///< children matched in killer slots
  std::uint64_t order_history_hits = 0;  ///< children with history credit

  [[nodiscard]] std::uint64_t nodes_generated() const noexcept {
    return interior_expanded + leaves_evaluated;
  }
  /// Total static-evaluator applications (horizon + ordering).
  [[nodiscard]] std::uint64_t total_static_evals() const noexcept {
    return leaves_evaluated + sort_evals;
  }

  /// Fraction of probes answered from the table; 0 when no table was used.
  [[nodiscard]] double tt_hit_rate() const noexcept {
    return tt_probes > 0
               ? static_cast<double>(tt_hits) / static_cast<double>(tt_probes)
               : 0.0;
  }

  SearchStats& operator+=(const SearchStats& o) noexcept {
    interior_expanded += o.interior_expanded;
    leaves_evaluated += o.leaves_evaluated;
    child_sorts += o.child_sorts;
    sort_evals += o.sort_evals;
    tt_probes += o.tt_probes;
    tt_hits += o.tt_hits;
    tt_stores += o.tt_stores;
    moves_deferred += o.moves_deferred;
    moves_revisited += o.moves_revisited;
    order_tt_first += o.order_tt_first;
    order_killer_hits += o.order_killer_hits;
    order_history_hits += o.order_history_hits;
    return *this;
  }
};

/// Result of a (serial or parallel) search.
struct SearchResult {
  Value value = 0;
  SearchStats stats;
};

}  // namespace ers
