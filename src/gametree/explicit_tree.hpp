#pragma once
// An explicitly stored game tree.
//
// Used for (a) encoding the worked examples from the paper's figures as unit
// tests, (b) materializing any Game to a fixed depth so algorithms that need
// random access to the whole tree (e.g. the MWF baseline's minimal-tree
// phase) can run on it, and (c) oracle computations in tests.

#include <cstdint>
#include <span>
#include <vector>

#include "gametree/game.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers {

/// Literal tree description, so tests can transcribe a figure directly:
///   TreeSpec{.kids = {TreeSpec{.value = 5}, TreeSpec{.value = -7}}}
/// Interior nodes ignore `value`; leaves ignore `kids`.
struct TreeSpec {
  Value value = 0;
  std::vector<TreeSpec> kids;
};

class ExplicitTree {
 public:
  /// Node index into the tree; the root is position 0.
  using Position = std::uint32_t;

  ExplicitTree() { nodes_.push_back(Node{}); }

  /// Build from a literal spec (root = spec).
  static ExplicitTree from_spec(const TreeSpec& spec) {
    ExplicitTree t;
    t.nodes_[0].value = spec.value;
    t.build(0, spec);
    return t;
  }

  /// Complete `degree`-ary tree of height `height` whose leaves take the
  /// given values in left-to-right order.  Requires degree^height values.
  static ExplicitTree complete(int degree, int height, std::span<const Value> leaves);

  /// Append a child under `parent`; returns the new node's position.
  Position add_child(Position parent, Value leaf_value = 0) {
    ERS_CHECK(parent < nodes_.size());
    const auto id = static_cast<Position>(nodes_.size());
    nodes_.push_back(Node{.value = leaf_value, .children = {}});
    nodes_[parent].children.push_back(id);
    return id;
  }

  void set_value(Position p, Value v) {
    ERS_CHECK(p < nodes_.size());
    nodes_[p].value = v;
  }

  // --- Game interface -------------------------------------------------
  [[nodiscard]] Position root() const noexcept { return 0; }

  void generate_children(Position p, std::vector<Position>& out) const {
    ERS_CHECK(p < nodes_.size());
    const auto& kids = nodes_[p].children;
    out.insert(out.end(), kids.begin(), kids.end());
  }

  [[nodiscard]] Value evaluate(Position p) const {
    ERS_CHECK(p < nodes_.size());
    return nodes_[p].value;
  }

  // --- Introspection ---------------------------------------------------
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  [[nodiscard]] std::size_t num_children(Position p) const {
    ERS_CHECK(p < nodes_.size());
    return nodes_[p].children.size();
  }

  [[nodiscard]] Position child(Position p, std::size_t i) const {
    ERS_CHECK(p < nodes_.size() && i < nodes_[p].children.size());
    return nodes_[p].children[i];
  }

  [[nodiscard]] bool is_leaf(Position p) const { return num_children(p) == 0; }

  /// Height of the subtree rooted at p (0 for a leaf).
  [[nodiscard]] int height(Position p = 0) const;

  /// Exact negmax value of the subtree at p (ignores any depth limit) —
  /// the oracle for every other algorithm's tests.
  [[nodiscard]] Value negmax_value(Position p = 0) const;

 private:
  struct Node {
    Value value = 0;
    std::vector<Position> children;
  };

  void build(Position at, const TreeSpec& spec) {
    for (const TreeSpec& k : spec.kids) {
      const Position c = add_child(at, k.value);
      build(c, k);
    }
  }

  std::vector<Node> nodes_;
};

/// Materialize any Game to `depth` plies as an ExplicitTree.  Positions at
/// the horizon (or terminal earlier) become leaves carrying their static
/// value.  Interior nodes also record their static value so move-ordering
/// policies behave identically on the materialized copy.
template <Game G>
ExplicitTree materialize(const G& game, int depth) {
  ExplicitTree t;
  struct Item {
    typename G::Position pos;
    ExplicitTree::Position node;
    int remaining;
  };
  std::vector<Item> stack{{game.root(), 0, depth}};
  t.set_value(0, game.evaluate(game.root()));
  std::vector<typename G::Position> kids;
  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    if (it.remaining == 0) continue;
    kids.clear();
    game.generate_children(it.pos, kids);
    for (const auto& k : kids) {
      const auto child = t.add_child(it.node, game.evaluate(k));
      stack.push_back(Item{k, child, it.remaining - 1});
    }
  }
  return t;
}

}  // namespace ers
