#pragma once
// Zobrist key material for Othello: 64 random keys per color plus a
// side-to-move key, all derived deterministically from splitmix64 at
// compile time.  Split out from zobrist.hpp so board.hpp can maintain the
// hash incrementally during move application without a circular include.

#include <array>
#include <cstdint>

#include "util/rng.hpp"

namespace ers::othello {

namespace detail {

consteval std::array<std::uint64_t, 64> make_keys(std::uint64_t salt) {
  std::array<std::uint64_t, 64> keys{};
  for (int i = 0; i < 64; ++i)
    keys[i] = splitmix64(salt * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(i));
  return keys;
}

}  // namespace detail

inline constexpr std::array<std::uint64_t, 64> kZobristBlack = detail::make_keys(1);
inline constexpr std::array<std::uint64_t, 64> kZobristWhite = detail::make_keys(2);
inline constexpr std::uint64_t kZobristWhiteToMove = splitmix64(0xabcdef0123456789ULL);

}  // namespace ers::othello
