#pragma once
// Othello rules: board representation, legal-move generation, disc flipping,
// pass handling and game-over detection.  This module replaces the Othello
// program by Steven Scott used in the paper (see DESIGN.md §1).

#include <cstdint>
#include <string>
#include <vector>

#include "othello/bitboard.hpp"
#include "othello/zobrist_keys.hpp"
#include "util/check.hpp"

namespace ers::othello {

enum class Player : std::uint8_t { Black = 0, White = 1 };

[[nodiscard]] constexpr Player opponent_of(Player p) noexcept {
  return p == Player::Black ? Player::White : Player::Black;
}

/// Full Zobrist hash of a disc configuration (O(discs)); the cold path used
/// to seed `Board::hash`, which move application then maintains in
/// O(flipped discs).
[[nodiscard]] constexpr std::uint64_t zobrist_of(Bitboard black, Bitboard white,
                                                 Player to_move) noexcept {
  std::uint64_t h = to_move == Player::White ? kZobristWhiteToMove : 0;
  while (black != 0) h ^= kZobristBlack[pop_lsb(black)];
  while (white != 0) h ^= kZobristWhite[pop_lsb(white)];
  return h;
}

/// Full game state.  `black`/`white` are disjoint disc sets; `to_move` is the
/// side whose turn it is (a side with no legal move must pass; the game ends
/// when neither side can move).
///
/// `hash` is the position's Zobrist key, maintained *incrementally* by
/// apply_move/apply_pass so transposition-table keying never rescans the
/// board on the search hot path.  It is a cache, not state: equality ignores
/// it, and code that assembles a Board field-by-field (tests, parsers) must
/// call rehash() before using the board with a transposition table.
struct Board {
  Bitboard black = 0;
  Bitboard white = 0;
  Player to_move = Player::Black;
  std::uint64_t hash = 0;

  [[nodiscard]] constexpr Bitboard own() const noexcept {
    return to_move == Player::Black ? black : white;
  }
  [[nodiscard]] constexpr Bitboard opp() const noexcept {
    return to_move == Player::Black ? white : black;
  }
  [[nodiscard]] constexpr Bitboard occupied() const noexcept { return black | white; }
  [[nodiscard]] constexpr Bitboard empty() const noexcept { return ~occupied(); }

  constexpr void rehash() noexcept { hash = zobrist_of(black, white, to_move); }

  friend constexpr bool operator==(const Board& a, const Board& b) noexcept {
    return a.black == b.black && a.white == b.white && a.to_move == b.to_move;
  }
};

/// The standard initial position (black to move).
[[nodiscard]] constexpr Board initial_board() noexcept {
  Board b;
  b.white = bit(square_from_name("d4")) | bit(square_from_name("e5"));
  b.black = bit(square_from_name("e4")) | bit(square_from_name("d5"));
  b.to_move = Player::Black;
  b.rehash();
  return b;
}

/// Bitboard of squares where `own` may legally place a disc against `opp`.
/// Dumb7-style fill: in each direction, accumulate runs of opponent discs
/// adjacent to own discs; a legal square is an empty square one step beyond
/// such a run.
[[nodiscard]] constexpr Bitboard legal_moves(Bitboard own, Bitboard opp) noexcept {
  const Bitboard empty = ~(own | opp);
  Bitboard moves = 0;
  for (int d = 0; d < 8; ++d) {
    Bitboard run = opp & shift_dir(own, d);
    for (int step = 0; step < 5; ++step) run |= opp & shift_dir(run, d);
    moves |= empty & shift_dir(run, d);
  }
  return moves;
}

[[nodiscard]] constexpr Bitboard legal_moves(const Board& b) noexcept {
  return legal_moves(b.own(), b.opp());
}

/// Discs flipped if `own` plays on `square` (0 if the move is illegal).
[[nodiscard]] constexpr Bitboard flips_for(Bitboard own, Bitboard opp,
                                           int square) noexcept {
  const Bitboard placed = bit(square);
  if ((own | opp) & placed) return 0;
  Bitboard all = 0;
  for (int d = 0; d < 8; ++d) {
    Bitboard run = 0;
    Bitboard cursor = shift_dir(placed, d);
    while (cursor & opp) {
      run |= cursor;
      cursor = shift_dir(cursor, d);
    }
    if (cursor & own) all |= run;  // run is bracketed by an own disc
  }
  return all;
}

/// Apply a disc placement for the side to move; the move must be legal.
/// The Zobrist hash is updated incrementally: one key for the placed disc,
/// two per flipped disc (color swap), one for the side to move.
[[nodiscard]] constexpr Board apply_move(const Board& b, int square) noexcept {
  const Bitboard flips = flips_for(b.own(), b.opp(), square);
  Board next = b;
  const Bitboard placed = bit(square);
  if (b.to_move == Player::Black) {
    next.black = b.black | placed | flips;
    next.white = b.white & ~flips;
    next.hash ^= kZobristBlack[square];
  } else {
    next.white = b.white | placed | flips;
    next.black = b.black & ~flips;
    next.hash ^= kZobristWhite[square];
  }
  Bitboard flipped = flips;
  while (flipped != 0) {
    const int sq = pop_lsb(flipped);
    next.hash ^= kZobristBlack[sq] ^ kZobristWhite[sq];
  }
  next.to_move = opponent_of(b.to_move);
  next.hash ^= kZobristWhiteToMove;
  return next;
}

/// Apply a pass (only legal when the side to move has no moves).
[[nodiscard]] constexpr Board apply_pass(const Board& b) noexcept {
  Board next = b;
  next.to_move = opponent_of(b.to_move);
  next.hash ^= kZobristWhiteToMove;
  return next;
}

[[nodiscard]] constexpr bool must_pass(const Board& b) noexcept {
  return legal_moves(b) == 0;
}

[[nodiscard]] constexpr bool is_game_over(const Board& b) noexcept {
  return legal_moves(b.own(), b.opp()) == 0 && legal_moves(b.opp(), b.own()) == 0;
}

/// Disc count difference from the side-to-move's perspective.
[[nodiscard]] constexpr int disc_difference(const Board& b) noexcept {
  return popcount(b.own()) - popcount(b.opp());
}

/// Leaf count of the game tree to `depth` plies (passes count as one ply, as
/// in standard Othello perft).  Used to validate move generation.
[[nodiscard]] std::uint64_t perft(const Board& b, int depth);

/// ASCII rendering (rank 8 at the top; 'X' black, 'O' white, '.' empty,
/// '*' marks legal moves for the side to move).
[[nodiscard]] std::string to_string(const Board& b, bool mark_moves = false);

/// Parse the rendering produced by to_string (ignoring move marks); the
/// inverse is used by tests.  `to_move` must be supplied.
[[nodiscard]] Board board_from_ascii(const std::string& art, Player to_move);

}  // namespace ers::othello
