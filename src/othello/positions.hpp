#pragma once
// The three experimental root configurations O1, O2, O3 (paper Figure 9).
//
// The paper's figure is an image that is not available in the source text,
// so the positions themselves cannot be transcribed.  As documented in
// DESIGN.md §1 we substitute three deterministic mid-game positions, WHITE
// to move (as in the paper), reached from the standard initial position by
// seeded self-play with the library's own static evaluator choosing moves.
// The resulting trees have the same character the experiments need: varying
// branching factor, strongly ordered under the static evaluator, depth-7
// searchable.

#include "othello/board.hpp"

namespace ers::othello {

/// Returns root configuration index ∈ {1,2,3}; WHITE to move in each.
[[nodiscard]] Board paper_position(int index);

/// Play `plies` moves from the start, each chosen greedily by the static
/// evaluator with a small seeded perturbation; used by paper_position and
/// available for generating additional test positions.
[[nodiscard]] Board selfplay_position(int plies, std::uint64_t seed);

}  // namespace ers::othello
