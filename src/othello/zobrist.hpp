#pragma once
// Zobrist hashing for Othello positions.  The key material lives in
// zobrist_keys.hpp and the *incremental* hash lives on Board itself
// (Board::hash, maintained by apply_move/apply_pass), so search code keys
// transposition tables with `board.hash` at zero per-node cost.  This header
// keeps the full-recompute entry point, used to seed hashes on the cold path
// and by tests to cross-check the incremental maintenance.

#include <cstdint>

#include "othello/board.hpp"
#include "othello/zobrist_keys.hpp"

namespace ers::othello {

/// Full (non-incremental) Zobrist hash of a board — O(discs).  Must equal
/// `b.hash` for any board derived from initial_board()/board_from_ascii()
/// via apply_move/apply_pass (asserted in tests/search/ttable_test.cpp).
[[nodiscard]] constexpr std::uint64_t zobrist_hash(const Board& b) noexcept {
  return zobrist_of(b.black, b.white, b.to_move);
}

}  // namespace ers::othello
