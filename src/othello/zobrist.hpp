#pragma once
// Zobrist hashing for Othello positions: 64 random keys per color plus a
// side-to-move key, all derived deterministically from splitmix64 at
// compile time.  Used by the transposition-table search (search/ttable.hpp).

#include <array>
#include <cstdint>

#include "othello/board.hpp"
#include "util/rng.hpp"

namespace ers::othello {

namespace detail {

consteval std::array<std::uint64_t, 64> make_keys(std::uint64_t salt) {
  std::array<std::uint64_t, 64> keys{};
  for (int i = 0; i < 64; ++i)
    keys[i] = splitmix64(salt * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(i));
  return keys;
}

}  // namespace detail

inline constexpr std::array<std::uint64_t, 64> kZobristBlack = detail::make_keys(1);
inline constexpr std::array<std::uint64_t, 64> kZobristWhite = detail::make_keys(2);
inline constexpr std::uint64_t kZobristWhiteToMove = splitmix64(0xabcdef0123456789ULL);

/// Full (non-incremental) Zobrist hash of a board.  Move application flips
/// O(flipped discs) keys, so an incremental variant is possible; the search
/// below hashes whole boards, which is already cheap next to evaluation.
[[nodiscard]] constexpr std::uint64_t zobrist_hash(const Board& b) noexcept {
  std::uint64_t h = b.to_move == Player::White ? kZobristWhiteToMove : 0;
  Bitboard black = b.black;
  while (black != 0) h ^= kZobristBlack[pop_lsb(black)];
  Bitboard white = b.white;
  while (white != 0) h ^= kZobristWhite[pop_lsb(white)];
  return h;
}

}  // namespace ers::othello
