#pragma once
// 8x8 bitboard primitives for Othello.
//
// Square indexing: bit (rank-1)*8 + file, with file 0 = 'a'.  So a1 is bit
// 0, h1 is bit 7, a8 is bit 56.  Shift helpers mask off the wrap-around
// files so rays never cross the board edge.

#include <bit>
#include <cstdint>
#include <string>

#include "util/check.hpp"

namespace ers::othello {

using Bitboard = std::uint64_t;

inline constexpr Bitboard kFileA = 0x0101010101010101ULL;
inline constexpr Bitboard kFileH = 0x8080808080808080ULL;
inline constexpr Bitboard kAll = ~0ULL;
inline constexpr Bitboard kCorners = 0x8100000000000081ULL;  // a1,h1,a8,h8

[[nodiscard]] constexpr Bitboard bit(int square) noexcept {
  return Bitboard{1} << square;
}

[[nodiscard]] constexpr int popcount(Bitboard b) noexcept { return std::popcount(b); }

/// Index of the lowest set bit; b must be nonzero.
[[nodiscard]] constexpr int lsb(Bitboard b) noexcept { return std::countr_zero(b); }

/// Pop the lowest set bit from b and return its index.
[[nodiscard]] constexpr int pop_lsb(Bitboard& b) noexcept {
  const int s = lsb(b);
  b &= b - 1;
  return s;
}

// Directional single-step shifts (edge-safe).
[[nodiscard]] constexpr Bitboard east(Bitboard b) noexcept { return (b & ~kFileH) << 1; }
[[nodiscard]] constexpr Bitboard west(Bitboard b) noexcept { return (b & ~kFileA) >> 1; }
[[nodiscard]] constexpr Bitboard north(Bitboard b) noexcept { return b << 8; }
[[nodiscard]] constexpr Bitboard south(Bitboard b) noexcept { return b >> 8; }
[[nodiscard]] constexpr Bitboard north_east(Bitboard b) noexcept { return north(east(b)); }
[[nodiscard]] constexpr Bitboard north_west(Bitboard b) noexcept { return north(west(b)); }
[[nodiscard]] constexpr Bitboard south_east(Bitboard b) noexcept { return south(east(b)); }
[[nodiscard]] constexpr Bitboard south_west(Bitboard b) noexcept { return south(west(b)); }

/// Apply the dir-th directional shift (0..7).
[[nodiscard]] constexpr Bitboard shift_dir(Bitboard b, int dir) noexcept {
  switch (dir) {
    case 0: return east(b);
    case 1: return west(b);
    case 2: return north(b);
    case 3: return south(b);
    case 4: return north_east(b);
    case 5: return north_west(b);
    case 6: return south_east(b);
    default: return south_west(b);
  }
}

/// Squares adjacent (8-neighborhood) to any square of b.
[[nodiscard]] constexpr Bitboard neighbors(Bitboard b) noexcept {
  Bitboard n = 0;
  for (int d = 0; d < 8; ++d) n |= shift_dir(b, d);
  return n;
}

/// Parse "e4"-style square names; returns -1 on malformed input.
[[nodiscard]] constexpr int square_from_name(const char* name) noexcept {
  if (name == nullptr) return -1;
  const char f = name[0];
  const char r = name[1];
  if (f < 'a' || f > 'h' || r < '1' || r > '8' || name[2] != '\0') return -1;
  return (r - '1') * 8 + (f - 'a');
}

[[nodiscard]] inline std::string square_name(int square) {
  ERS_CHECK(square >= 0 && square < 64);
  std::string s(2, '?');
  s[0] = static_cast<char>('a' + square % 8);
  s[1] = static_cast<char>('1' + square / 8);
  return s;
}

}  // namespace ers::othello
