#include "othello/eval.hpp"

namespace ers::othello {

Value evaluate_board(const Board& b, const EvalWeights& w) {
  const Bitboard own = b.own();
  const Bitboard opp = b.opp();
  const Bitboard own_moves = legal_moves(own, opp);
  const Bitboard opp_moves = legal_moves(opp, own);

  if (own_moves == 0 && opp_moves == 0) {
    // Game over: exact outcome, scaled beyond any heuristic value.
    return static_cast<Value>(popcount(own) - popcount(opp)) * w.terminal_scale;
  }

  const Bitboard empty = b.empty();
  const int positional = positional_score(own) - positional_score(opp);
  const int mobility = popcount(own_moves) - popcount(opp_moves);
  // Fewer own frontier discs (discs touching empties) is good.
  const int potential = frontier_count(opp, empty) - frontier_count(own, empty);
  const int corners = popcount(own & kCorners) - popcount(opp & kCorners);
  const int discs = popcount(own) - popcount(opp);
  const int stage_weight =
      popcount(b.occupied()) < w.stage_boundary ? w.discs_early : w.discs_late;

  const long long v = static_cast<long long>(w.positional) * positional +
                      static_cast<long long>(w.mobility) * mobility +
                      static_cast<long long>(w.potential_mobility) * potential +
                      static_cast<long long>(w.corners) * corners +
                      static_cast<long long>(stage_weight) * discs;
  return static_cast<Value>(v);
}

}  // namespace ers::othello
