#include "othello/positions.hpp"

#include <vector>

#include "othello/eval.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ers::othello {

Board selfplay_position(int plies, std::uint64_t seed) {
  Board b = initial_board();
  Xoshiro256StarStar rng(seed);
  for (int ply = 0; ply < plies; ++ply) {
    if (is_game_over(b)) break;
    Bitboard moves = legal_moves(b);
    if (moves == 0) {
      b = apply_pass(b);
      continue;
    }
    // Greedy by static evaluation of the successor (lower is better for the
    // mover since values are from the opponent-to-move perspective), with a
    // small random perturbation so different seeds explore different lines.
    int best_sq = -1;
    long long best_score = 0;
    while (moves != 0) {
      const int sq = pop_lsb(moves);
      const Board child = apply_move(b, sq);
      const long long score = -static_cast<long long>(evaluate_board(child)) +
                              static_cast<long long>(rng.below(120));
      if (best_sq < 0 || score > best_score) {
        best_sq = sq;
        best_score = score;
      }
    }
    b = apply_move(b, best_sq);
  }
  return b;
}

Board paper_position(int index) {
  ERS_CHECK(index >= 1 && index <= 3);
  // Odd ply counts from the initial position leave WHITE to move (no passes
  // occur this early in seeded self-play; verified by OthelloPositionsTest).
  static constexpr int kPlies[3] = {11, 15, 19};
  static constexpr std::uint64_t kSeeds[3] = {0x01u, 0x22u, 0x333u};
  return selfplay_position(kPlies[index - 1], kSeeds[index - 1]);
}

}  // namespace ers::othello
