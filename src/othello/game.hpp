#pragma once
// Adapter exposing the Othello rules engine through the Game concept so all
// search algorithms in this library can run on it unchanged.

#include <vector>

#include "gametree/game.hpp"
#include "othello/board.hpp"
#include "othello/eval.hpp"
#include "util/value.hpp"

namespace ers::othello {

class OthelloGame {
 public:
  struct Position {
    Board board;

    /// Zobrist key for transposition tables; incrementally maintained by the
    /// Othello rules, so this is a plain field read (HashedGame).
    [[nodiscard]] std::uint64_t tt_key() const noexcept { return board.hash; }

    friend bool operator==(const Position&, const Position&) = default;
  };

  OthelloGame() : root_{initial_board()}, weights_(default_weights()) {}
  explicit OthelloGame(Board root, EvalWeights weights = default_weights())
      : root_{root}, weights_(weights) {
    // Defend against hand-assembled root boards whose cached hash is stale;
    // every descendant hash is derived incrementally from this one.
    root_.board.rehash();
  }

  [[nodiscard]] Position root() const noexcept { return root_; }

  /// One child per legal disc placement; a forced pass produces a single
  /// child; a finished game produces none (terminal).
  void generate_children(const Position& p, std::vector<Position>& out) const {
    Bitboard moves = legal_moves(p.board);
    if (moves == 0) {
      if (!is_game_over(p.board)) out.push_back(Position{apply_pass(p.board)});
      return;
    }
    while (moves != 0) {
      const int sq = pop_lsb(moves);
      out.push_back(Position{apply_move(p.board, sq)});
    }
  }

  [[nodiscard]] Value evaluate(const Position& p) const {
    return evaluate_board(p.board, weights_);
  }

 private:
  Position root_;
  EvalWeights weights_;
};

static_assert(Game<OthelloGame>);

}  // namespace ers::othello
