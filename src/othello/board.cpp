#include "othello/board.hpp"

#include <sstream>

namespace ers::othello {

std::uint64_t perft(const Board& b, int depth) {
  if (depth == 0) return 1;
  Bitboard moves = legal_moves(b);
  if (moves == 0) {
    if (is_game_over(b)) return 1;
    return perft(apply_pass(b), depth - 1);
  }
  std::uint64_t total = 0;
  while (moves != 0) {
    const int sq = pop_lsb(moves);
    total += perft(apply_move(b, sq), depth - 1);
  }
  return total;
}

std::string to_string(const Board& b, bool mark_moves) {
  const Bitboard moves = mark_moves ? legal_moves(b) : 0;
  std::ostringstream os;
  for (int rank = 8; rank >= 1; --rank) {
    os << rank << ' ';
    for (int file = 0; file < 8; ++file) {
      const Bitboard sq = bit((rank - 1) * 8 + file);
      char c = '.';
      if (b.black & sq) c = 'X';
      else if (b.white & sq) c = 'O';
      else if (moves & sq) c = '*';
      os << c << ' ';
    }
    os << '\n';
  }
  os << "  a b c d e f g h\n";
  os << (b.to_move == Player::Black ? "BLACK" : "WHITE") << " to move\n";
  return os.str();
}

Board board_from_ascii(const std::string& art, Player to_move) {
  Board b;
  b.black = b.white = 0;
  b.to_move = to_move;
  int rank = 8;
  std::istringstream is(art);
  std::string line;
  while (std::getline(is, line) && rank >= 1) {
    // Board rows start with the rank digit; skip anything else.
    if (line.empty() || line[0] != static_cast<char>('0' + rank)) continue;
    int file = 0;
    for (std::size_t i = 1; i < line.size() && file < 8; ++i) {
      const char c = line[i];
      if (c == ' ') continue;
      const Bitboard sq = bit((rank - 1) * 8 + file);
      if (c == 'X') b.black |= sq;
      else if (c == 'O') b.white |= sq;
      else ERS_CHECK(c == '.' || c == '*');
      ++file;
    }
    ERS_CHECK(file == 8);
    --rank;
  }
  ERS_CHECK(rank == 0);
  ERS_CHECK((b.black & b.white) == 0);
  b.rehash();
  return b;
}

}  // namespace ers::othello
