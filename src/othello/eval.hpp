#pragma once
// Static evaluation for Othello, in the style of Rosenbloom's IAGO features
// (positional square values, mobility, potential mobility, corner control,
// stage-dependent disc count).  All integer, deterministic, and antisymmetric:
// evaluate(b) == -evaluate(b with side to move swapped).

#include <array>

#include "othello/board.hpp"
#include "util/value.hpp"

namespace ers::othello {

/// Classic positional weights (corners dominate; X- and C-squares are
/// poisoned while the adjacent corner is empty).
inline constexpr std::array<int, 64> kSquareWeights = {
    100, -20, 10,  5,   5,  10, -20, 100,   // rank 1
    -20, -50, -2,  -2,  -2, -2, -50, -20,   // rank 2
    10,  -2,  -1,  -1,  -1, -1, -2,  10,    // rank 3
    5,   -2,  -1,  0,   0,  -1, -2,  5,     // rank 4
    5,   -2,  -1,  0,   0,  -1, -2,  5,     // rank 5
    10,  -2,  -1,  -1,  -1, -1, -2,  10,    // rank 6
    -20, -50, -2,  -2,  -2, -2, -50, -20,   // rank 7
    100, -20, 10,  5,   5,  10, -20, 100,   // rank 8
};

struct EvalWeights {
  int positional = 10;
  int mobility = 80;
  int potential_mobility = 20;
  int corners = 300;
  int discs_early = -4;   ///< while < 44 discs on board: fewer discs is better
  int discs_late = 12;    ///< endgame: discs decide
  int stage_boundary = 44;
  Value terminal_scale = 10'000;  ///< exact outcomes dwarf heuristics
};

[[nodiscard]] inline const EvalWeights& default_weights() noexcept {
  static const EvalWeights w{};
  return w;
}

/// Sum of square weights over the discs in `discs`.
[[nodiscard]] constexpr int positional_score(Bitboard discs) noexcept {
  int s = 0;
  while (discs != 0) s += kSquareWeights[pop_lsb(discs)];
  return s;
}

/// Empty squares adjacent to `discs` — the owner's *potential* liabilities
/// (frontier), so the difference enters negated for own discs.
[[nodiscard]] constexpr int frontier_count(Bitboard discs, Bitboard empty) noexcept {
  return popcount(neighbors(discs) & empty);
}

/// Heuristic value of `b` from the side-to-move's perspective.  If the game
/// is over, returns the exact (scaled) disc differential instead.
[[nodiscard]] Value evaluate_board(const Board& b,
                                   const EvalWeights& w = default_weights());

}  // namespace ers::othello
