#pragma once
// Connect Four on bitboards — a third complete game behind the Game
// concept (beyond the paper's Othello and random trees), used to
// cross-validate every search algorithm on a game with forced tactical
// lines and frequent terminal positions above the horizon.
//
// Board layout (standard 7x(6+1) column-major bitboard): bit c*7 + r is
// row r of column c; row 6 of each column is a sentinel kept empty so the
// four-in-a-row shift tricks never wrap between columns.

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "gametree/game.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers::connect4 {

inline constexpr int kColumns = 7;
inline constexpr int kRows = 6;

using Bitboard = std::uint64_t;

/// Mask of all playable cells.
[[nodiscard]] constexpr Bitboard board_mask() noexcept {
  Bitboard m = 0;
  for (int c = 0; c < kColumns; ++c)
    for (int r = 0; r < kRows; ++r) m |= Bitboard{1} << (c * 7 + r);
  return m;
}

/// True if `b` contains four in a row (any direction).
[[nodiscard]] constexpr bool has_four(Bitboard b) noexcept {
  // Strides: 1 vertical, 7 horizontal, 6 and 8 diagonals.
  for (const int s : {1, 7, 6, 8}) {
    const Bitboard m = b & (b >> s);
    if ((m & (m >> (2 * s))) != 0) return true;
  }
  return false;
}

class Connect4 {
 public:
  struct Position {
    Bitboard mine = 0;    ///< discs of the side to move
    Bitboard theirs = 0;  ///< discs of the side that just moved

    friend bool operator==(const Position&, const Position&) = default;
  };

  static constexpr Value kWin = 100'000;

  [[nodiscard]] Position root() const noexcept { return Position{}; }

  void generate_children(const Position& p, std::vector<Position>& out) const {
    if (has_four(p.theirs)) return;  // previous mover already won
    const Bitboard occupied = p.mine | p.theirs;
    for (int c = 0; c < kColumns; ++c) {
      const Bitboard top = Bitboard{1} << (c * 7 + kRows - 1);
      if (occupied & top) continue;  // column full
      // The lowest empty cell of column c.
      const Bitboard col_bits = (occupied >> (c * 7)) & 0x3F;
      const int height = std::popcount(col_bits);
      const Bitboard placed = Bitboard{1} << (c * 7 + height);
      out.push_back(Position{p.theirs, p.mine | placed});
    }
  }

  [[nodiscard]] Value evaluate(const Position& p) const noexcept {
    if (has_four(p.theirs)) return -kWin;  // opponent completed four
    if ((p.mine | p.theirs) == board_mask()) return 0;  // full board: draw
    return heuristic(p.mine) - heuristic(p.theirs);
  }

  /// Column of the move that transformed `parent` into `child`.
  [[nodiscard]] static int move_column(const Position& parent,
                                       const Position& child) {
    const Bitboard placed = (child.mine | child.theirs) &
                            ~(parent.mine | parent.theirs);
    ERS_CHECK(placed != 0 && (placed & (placed - 1)) == 0);
    return std::countr_zero(placed) / 7;
  }

 private:
  /// Open-three/open-two counting plus center preference.
  [[nodiscard]] static Value heuristic(Bitboard b) noexcept {
    Value score = 0;
    // Center column is worth holding.
    constexpr Bitboard center = 0x3FULL << (3 * 7);
    score += 3 * std::popcount(b & center);
    // Pairs and triples along each direction (each k-run counted k-1 / k-2
    // times, a cheap monotone proxy).
    for (const int s : {1, 7, 6, 8}) {
      const Bitboard pairs = b & (b >> s);
      score += 2 * std::popcount(pairs);
      score += 6 * std::popcount(pairs & (pairs >> s));
    }
    return score;
  }
};

static_assert(Game<Connect4>);

}  // namespace ers::connect4
