#pragma once
// The experimental trees of paper Table 3, addressable by name:
//
//   | Name | Type    | Degree  | Search depth | Serial depth |
//   | R1   | Random  | 4       | 10 ply       | 7            |
//   | R2   | Random  | 4       | 11 ply       | 7            |
//   | R3   | Random  | 8       | 7 ply        | 5            |
//   | O1   | Othello | varying | 7 ply        | 5            |
//   | O2   | Othello | varying | 7 ply        | 5            |
//   | O3   | Othello | varying | 7 ply        | 5            |
//
// Othello trees are sorted by static value down to ply 5 (paper §7); random
// trees are not sorted (their static values are uninformative noise).

#include <string>
#include <variant>
#include <vector>

#include "core/types.hpp"
#include "othello/game.hpp"
#include "randomtree/random_tree.hpp"

namespace ers::harness {

using GameVariant = std::variant<UniformRandomTree, othello::OthelloGame>;

struct ExperimentTree {
  std::string name;
  GameVariant game;
  core::EngineConfig engine;  ///< search depth, serial depth, ordering

  [[nodiscard]] bool is_othello() const {
    return std::holds_alternative<othello::OthelloGame>(game);
  }
};

/// All six Table 3 trees.  `scale_depth` (default 0) uniformly reduces every
/// search depth and serial depth — used by the quick modes of the benches to
/// keep runtimes small without changing the experiment's structure.
[[nodiscard]] std::vector<ExperimentTree> table3_trees(int scale_depth = 0);

/// Look up one tree by name ("R1".."R3", "O1".."O3").
[[nodiscard]] ExperimentTree tree_by_name(const std::string& name,
                                          int scale_depth = 0);

/// The processor counts plotted in Figures 10-13.
[[nodiscard]] std::vector<int> figure_processor_counts();

}  // namespace ers::harness
