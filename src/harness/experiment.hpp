#pragma once
// Drivers that produce the paper's measured quantities for one experiment
// tree: the serial baselines (alpha-beta and serial ER, whose minimum is the
// denominator of every speedup), and one parallel-ER simulated run per
// processor count.

#include <cstdint>

#include "core/types.hpp"
#include "gametree/game.hpp"
#include "harness/tree_registry.hpp"
#include "obs/trace.hpp"
#include "sim/cost_model.hpp"
#include "sim/executor.hpp"

namespace ers::harness {

struct SerialBaseline {
  Value value = 0;
  SearchStats alpha_beta;        ///< serial alpha-beta (sorted per tree config)
  SearchStats er;                ///< serial ER (same ordering policy)
  std::uint64_t alpha_beta_cost = 0;
  std::uint64_t er_cost = 0;

  [[nodiscard]] std::uint64_t best_cost() const noexcept {
    return alpha_beta_cost < er_cost ? alpha_beta_cost : er_cost;
  }
  /// The figures' "serial alpha-beta efficiency" reference line: < 1 exactly
  /// when serial ER is the faster serial algorithm on this tree.
  [[nodiscard]] double alpha_beta_efficiency() const noexcept {
    return static_cast<double>(best_cost()) /
           static_cast<double>(alpha_beta_cost);
  }
};

struct ParallelPoint {
  int processors = 0;
  Value value = 0;
  std::uint64_t makespan = 0;
  std::uint64_t nodes_generated = 0;
  double speedup = 0.0;     ///< best serial cost / simulated parallel time
  double efficiency = 0.0;  ///< speedup / processors
  sim::SimMetrics metrics;
  core::EngineStats engine;
  core::EngineMemStats mem;  ///< node-storage occupancy (DESIGN.md §15)
  /// Wasted-work attribution (DESIGN.md §16): the waste share
  /// total_ns / (P * makespan) decomposes the efficiency loss the figures
  /// report as 1 - efficiency.
  core::EngineWasteStats waste;
};

[[nodiscard]] SerialBaseline run_serial_baselines(const ExperimentTree& tree,
                                                  const sim::CostModel& cost = {});

/// One simulated parallel-ER run.  `speculation` overrides the engine
/// config's speculation settings (for the ablation bench); `shards`
/// partitions the problem heap (1 = the paper's single heap) — the root
/// value is shard-invariant, only the serialization delays move.  `trace`
/// (optional) records the simulated schedule into the session on its
/// virtual clock (obs/trace_writer.hpp exports it for Perfetto).
[[nodiscard]] ParallelPoint run_parallel_point(
    const ExperimentTree& tree, int processors, const SerialBaseline& serial,
    const sim::CostModel& cost = {},
    const core::SpeculationConfig* speculation = nullptr, int shards = 1,
    obs::TraceSession* trace = nullptr);

/// Serial-ER node count on this tree — the P-agnostic reference of Figures
/// 12/13 ("serial" bars).
[[nodiscard]] std::uint64_t serial_er_nodes(const SerialBaseline& serial);

}  // namespace ers::harness
