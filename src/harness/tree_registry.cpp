#include "harness/tree_registry.hpp"

#include <algorithm>

#include "othello/positions.hpp"
#include "util/check.hpp"

namespace ers::harness {
namespace {

core::EngineConfig engine_config(int depth, int serial, bool sort) {
  core::EngineConfig cfg;
  cfg.search_depth = depth;
  cfg.serial_depth = serial;
  cfg.ordering.sort_by_static_value = sort;
  cfg.ordering.max_sort_ply = 6;  // paper §7: sorted down to ply 5 inclusive
  return cfg;
}

ExperimentTree random_tree(std::string name, int degree, int depth, int serial,
                           std::uint64_t seed) {
  return ExperimentTree{std::move(name),
                        UniformRandomTree(degree, depth, seed, -10'000, 10'000),
                        engine_config(depth, serial, /*sort=*/false)};
}

ExperimentTree othello_tree(std::string name, int index, int depth, int serial) {
  return ExperimentTree{
      std::move(name),
      othello::OthelloGame(othello::paper_position(index)),
      engine_config(depth, serial, /*sort=*/true)};
}

}  // namespace

std::vector<ExperimentTree> table3_trees(int scale_depth) {
  scale_depth = std::max(0, scale_depth);  // negative scales would grow trees
  auto scaled = [&](int depth) { return std::max(1, depth - scale_depth); };
  auto scaled_serial = [&](int depth, int serial) {
    return std::clamp(serial - scale_depth, 0, scaled(depth));
  };
  std::vector<ExperimentTree> trees;
  trees.push_back(random_tree("R1", 4, scaled(10), scaled_serial(10, 7), 101));
  trees.push_back(random_tree("R2", 4, scaled(11), scaled_serial(11, 7), 202));
  trees.push_back(random_tree("R3", 8, scaled(7), scaled_serial(7, 5), 303));
  trees.push_back(othello_tree("O1", 1, scaled(7), scaled_serial(7, 5)));
  trees.push_back(othello_tree("O2", 2, scaled(7), scaled_serial(7, 5)));
  trees.push_back(othello_tree("O3", 3, scaled(7), scaled_serial(7, 5)));
  return trees;
}

ExperimentTree tree_by_name(const std::string& name, int scale_depth) {
  for (auto& t : table3_trees(scale_depth))
    if (t.name == name) return t;
  ERS_CHECK(false && "unknown experiment tree name");
  __builtin_unreachable();
}

std::vector<int> figure_processor_counts() { return {1, 2, 4, 8, 12, 16}; }

}  // namespace ers::harness
