#include "harness/experiment.hpp"

#include <variant>

#include "core/parallel_er.hpp"
#include "search/alpha_beta.hpp"
#include "search/er_serial.hpp"
#include "util/check.hpp"

namespace ers::harness {

SerialBaseline run_serial_baselines(const ExperimentTree& tree,
                                    const sim::CostModel& cost) {
  SerialBaseline out;
  std::visit(
      [&](const auto& game) {
        const auto ab = alpha_beta_search(game, tree.engine.search_depth,
                                          tree.engine.ordering);
        const auto er = er_serial_search(game, tree.engine.search_depth,
                                         tree.engine.ordering);
        ERS_CHECK(ab.value == er.value);
        out.value = ab.value;
        out.alpha_beta = ab.stats;
        out.er = er.stats;
      },
      tree.game);
  out.alpha_beta_cost = cost.serial_cost(out.alpha_beta);
  out.er_cost = cost.serial_cost(out.er);
  return out;
}

ParallelPoint run_parallel_point(const ExperimentTree& tree, int processors,
                                 const SerialBaseline& serial,
                                 const sim::CostModel& cost,
                                 const core::SpeculationConfig* speculation,
                                 int shards, obs::TraceSession* trace) {
  core::EngineConfig cfg = tree.engine;
  if (speculation != nullptr) cfg.speculation = *speculation;

  ParallelPoint p;
  p.processors = processors;
  std::visit(
      [&](const auto& game) {
        const auto r = parallel_er_sim(game, cfg, processors, cost, shards,
                                       /*batch=*/1, trace);
        p.value = r.value;
        p.engine = r.engine;
        p.metrics = r.metrics;
        p.mem = r.mem;
        p.waste = r.waste;
      },
      tree.game);
  ERS_CHECK(p.value == serial.value);
  p.makespan = p.metrics.makespan;
  p.nodes_generated = p.engine.search.nodes_generated();
  p.speedup = static_cast<double>(serial.best_cost()) /
              static_cast<double>(p.makespan);
  p.efficiency = p.speedup / processors;
  return p;
}

std::uint64_t serial_er_nodes(const SerialBaseline& serial) {
  return serial.er.nodes_generated();
}

}  // namespace ers::harness
