#pragma once
// The one definition of the problem-heap routing policy (paper §8's
// "distribute the work to reduce processor interaction").
//
// Two pluggable placements (PlacementMode, selected per engine through
// EngineConfig::placement):
//
//   * kParentMod — a node's queue entries live on the shard owning its
//     *parent* (`parent % S`), so the children created by one commit all
//     land on one shard and a worker draining it keeps the depth-first
//     focus of the LIFO tiebreak.  The root (no parent) lives on shard 0.
//     This is the default and the historical behavior.
//
//   * kSubtreeAffinity — a node's entries live on the shard owned by its
//     *top-level subtree*: root child i and every descendant of it map to
//     shard i % S.  Work below distinct root children never shares a home
//     shard (mod S), so with frontier-truncated commit touch sets
//     (engine.hpp, DESIGN.md §13) commits on disjoint subtrees lock
//     disjoint shard sets, and a worker pinned to one shard keeps an
//     entire subtree — parent-routed refills and back-steals stay on the
//     worker's (NUMA) node when the runtime maps shards onto topology
//     (runtime/topology.hpp).
//
// Placement never changes the schedule: global pops take the maximum over
// shard tops under the global comparator, which is the single-heap maximum
// no matter where entries live.  Only shard-local draining and lock
// contention are affected.
//
// Both the engine (core::Engine::home_shard) and the simulator's routed
// contention model (sim::SimExecutor) go through these helpers; before this
// header each re-implemented `parent % S` and could silently drift — a
// drift the tests would only catch as a shard-contention mismatch, not a
// wrong answer.

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "core/types.hpp"

namespace ers::core {

/// Shard owning a node whose parent is `parent` (kNoNode for the root),
/// over `shard_count` shards — the kParentMod placement.
[[nodiscard]] constexpr std::size_t home_shard_of(
    std::uint32_t parent, std::size_t shard_count) noexcept {
  return parent == kNoNode ? 0 : static_cast<std::size_t>(parent) % shard_count;
}

/// Shard owning a node under kSubtreeAffinity: the root stays on shard 0;
/// every other node lives on its top-level subtree's shard.  `subtree` is
/// the child index of the node's root-child ancestor (the node's own index
/// for root children), recorded immutably at node creation.
[[nodiscard]] constexpr std::size_t subtree_shard_of(
    std::uint32_t node, std::uint32_t subtree, std::size_t shard_count) noexcept {
  return node == 0 ? 0 : static_cast<std::size_t>(subtree) % shard_count;
}

/// Fold a shard index onto a (possibly smaller) shard count.  The simulator
/// folds the engine's assignment onto its own lock count; folding is the
/// identity when the two coincide (parallel_er_sim keeps them equal).
[[nodiscard]] constexpr std::size_t fold_shard(std::size_t shard,
                                               std::size_t shard_count) noexcept {
  return shard % shard_count;
}

/// Derived epoch-publication frontier (DESIGN.md §13): how many top plies
/// get published (value, finished) words and are excluded from truncated
/// commit touch sets when EngineConfig::publish_frontier is left at
/// kAdaptiveFrontier.
///
///   * One shard: 0.  There is no cross-shard convergence to relieve, and
///     F = 0 drops the publication CAS traffic entirely.
///   * S >= 2 shards: 2 + floor(log2(S)).  Commits from different shards
///     meet at the top of the tree; branching spreads them out
///     exponentially with depth, so each doubling of shards pushes the
///     contended region about one ply deeper and F grows logarithmically.
///   * Capped at serial_depth - 1: the heavy commits are the serial units
///     at ply == serial_depth, and a commit truncates only when its node
///     sits at ply >= F — a frontier at or past the cutover would exempt
///     nothing.  (At the standard depth-7/serial-5 trees with 4 or 8
///     shards the derivation lands on the historical fixed default, 4.)
///
/// The choice of F never changes committed state or pop order (twin-tested
/// bit-identical per commit), only which plies publish and how much of each
/// touch set stays locked.
[[nodiscard]] constexpr int derived_publish_frontier(int search_depth,
                                                     int serial_depth,
                                                     int heap_shards) noexcept {
  if (heap_shards <= 1) return 0;
  int log2s = 0;
  while ((1 << (log2s + 1)) <= heap_shards) ++log2s;
  const int cap = serial_depth > 0 ? serial_depth - 1 : 0;
  return std::clamp(std::min(2 + log2s, cap), 0, search_depth);
}

}  // namespace ers::core
