#pragma once
// The one definition of the problem-heap routing policy (paper §8's
// "distribute the work to reduce processor interaction").
//
// A node's queue entries live on the shard owning its *parent* — so the
// children created by one commit all land on one shard and a worker
// draining it keeps the depth-first focus of the LIFO tiebreak.  The root
// (no parent) lives on shard 0.
//
// Both the engine (core::Engine::home_shard) and the simulator's routed
// contention model (sim::SimExecutor) go through these helpers; before this
// header each re-implemented `parent % S` and could silently drift — a
// drift the tests would only catch as a shard-contention mismatch, not a
// wrong answer.

#include <cstddef>
#include <cstdint>

#include "core/types.hpp"

namespace ers::core {

/// Shard owning a node whose parent is `parent` (kNoNode for the root),
/// over `shard_count` shards.
[[nodiscard]] constexpr std::size_t home_shard_of(
    std::uint32_t parent, std::size_t shard_count) noexcept {
  return parent == kNoNode ? 0 : static_cast<std::size_t>(parent) % shard_count;
}

/// Fold a shard index onto a (possibly smaller) shard count.  The simulator
/// folds the engine's assignment onto its own lock count; folding is the
/// identity when the two coincide (parallel_er_sim keeps them equal).
[[nodiscard]] constexpr std::size_t fold_shard(std::size_t shard,
                                               std::size_t shard_count) noexcept {
  return shard % shard_count;
}

}  // namespace ers::core
