#pragma once
// Shared types for the parallel ER problem-heap engine (paper §6).

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "search/ordering.hpp"
#include "util/value.hpp"

namespace ers {
class ConcurrentTranspositionTable;  // search/concurrent_ttable.hpp
}
namespace ers::obs {
class TraceSession;  // obs/trace.hpp
}

namespace ers::core {

/// Sentinel for "no node" in the engines' child/parent links.
inline constexpr std::uint32_t kNoNode = std::numeric_limits<std::uint32_t>::max();

/// Problem-heap placement policy (core/shard_policy.hpp): which shard a
/// node's queue entries are homed on.
enum class PlacementMode : std::uint8_t {
  /// `parent % S` — children of one commit colocate on one shard (default).
  kParentMod,
  /// Top-level-subtree affinity — root child i and all its descendants map
  /// to shard i % S, so disjoint subtrees never share a home shard and
  /// frontier-truncated commits (DESIGN.md §13) lock disjoint shard sets.
  kSubtreeAffinity,
};

/// Node roles in the parallel tree (paper §6, Tables 1 and 2).
enum class NodeType : std::uint8_t {
  kENode,      ///< all children generated and examined (one becomes the value)
  kRNode,      ///< children examined sequentially until one refutes the node
  kUndecided,  ///< first child (elder grandchild) evaluated; role pending
};

/// The three speculation mechanisms of §5, individually toggleable for the
/// ablation benches.  The paper's implementation enables all three.
struct SpeculationConfig {
  /// After the e-child of E is evaluated, refute E's remaining children in
  /// parallel (all dispatched at once) rather than one at a time.
  bool parallel_refutation = true;
  /// Keep selecting additional e-children from the speculative queue while
  /// the first is still being evaluated.
  bool multiple_e_children = true;
  /// Allow e-child selection once all but one elder grandchild is evaluated
  /// (paper §6: "as soon as all but one ... have been evaluated").
  bool early_e_child_choice = true;
};

/// How potential speculative work (e-nodes on the speculative queue) is
/// ranked globally.  The paper uses kFewestEChildren and calls it "a rather
/// naive ordering"; finding a better global ranking is its §8 future work,
/// so the alternatives are first-class here and compared in
/// bench_spec_policy.
enum class SpecRankPolicy : std::uint8_t {
  /// Paper §6: fewest e-children first, ties in favor of shallower nodes.
  kFewestEChildren,
  /// Most promising first: rank by the best unpromoted candidate's
  /// tentative value (lower = closer to becoming the node's real e-child),
  /// ties in favor of shallower nodes.
  kBestBound,
  /// Arrival order (no ranking) — the control.
  kFifo,
  /// Bound-driven composite rank (the §8 "better mechanism for globally
  /// ranking speculative work"): primary key is the candidate's remaining
  /// sibling-bound distance — how much room the node's live search window
  /// (from the §13 epoch words) still leaves its best unpromoted child —
  /// so entries whose siblings' published bounds have tightened past them
  /// sink; a per-shard steal-pressure bucket (fed back by the stealing
  /// executor, see Engine::note_steal) demotes entries homed on contended
  /// shards; ties break toward smaller expansion fronts (fewest
  /// e-children) and shallower nodes, the paper's ordering.  Under the
  /// simulator steal pressure is identically zero, so the rank is a pure
  /// deterministic function of committed state.
  kStealAware,
};

/// Steal-aware speculation control (DESIGN.md §17): the dynamic policies
/// layered on top of SpecRankPolicy.  All default off — with every toggle
/// off the engine's pop order is bit-identical to the seed at every shard
/// count (the acceptance invariant the determinism sweeps pin).
struct SpecControlConfig {
  /// Re-rank speculative entries at pop time against the *current*
  /// published bounds: an entry whose recomputed rank worsened since it
  /// was pushed is demoted (re-pushed at its new rank through the
  /// spec_seq staleness path — cancel-on-demote), and an entry whose
  /// window has closed entirely is re-windowed the same way so it only
  /// surfaces once every cheaper candidate is gone.
  bool bound_demote = false;
  /// Fold executor steal pressure into the rank (kStealAware only):
  /// stolen-from shards see their speculative entries demoted, so
  /// speculation concentrates where home workers keep up.  Pressure
  /// decays each combine round.
  bool steal_feedback = false;
  /// Cap live speculative promotions per shard, derived each combine
  /// round from the waste ledger's running speculative-loss share:
  /// budget_max while the share is at or under waste_target, shrinking
  /// proportionally (floored at budget_min) as waste overshoots.
  bool budget = false;
  int budget_min = 1;
  int budget_max = 64;
  double waste_target = 0.10;

  [[nodiscard]] bool any() const noexcept {
    return bound_demote || steal_feedback || budget;
  }
};

/// EngineConfig::publish_frontier sentinel: derive F from the tree shape
/// and shard count at engine construction (core/shard_policy.hpp,
/// derived_publish_frontier).  Any value >= 0 is an explicit override.
inline constexpr int kAdaptiveFrontier = -1;

struct EngineConfig {
  int search_depth = 7;
  /// Ply at which serial ER takes over: nodes at this ply are resolved as a
  /// single (heavy) work unit.  Must be in [0, search_depth].
  int serial_depth = 5;
  /// Number of independently orderable problem-heap shards (paper §8's
  /// "distribute the work to reduce processor interaction").  Work routes to
  /// the shard owning a node's parent, so siblings colocate and a worker
  /// draining one shard keeps depth-first focus.  1 = the paper's single
  /// heap; the global acquire order is identical at every shard count (the
  /// global maximum is the maximum over shard tops under the same
  /// comparator), so sharding never changes the schedule — only which
  /// executor lock/queue serves each pop.
  int heap_shards = 1;
  /// Epoch-publication frontier (DESIGN.md §13).  Nodes at ply <
  /// publish_frontier are "high": every (value, finished) mutation on them
  /// is additionally published through a versioned atomic word, so
  /// cross-shard window/dead reads validate against the published epoch
  /// instead of requiring the reader to hold their shard locks — and a
  /// commit whose node sits at ply >= publish_frontier locks only the
  /// shards of chain nodes near the frontier (the *truncated touch set*),
  /// leaving the root's shard out of almost every commit.  0 disables both
  /// the publication word and the truncation (the PR 5 full-lock path);
  /// the committed-state sequence is bit-identical either way.  The
  /// default, kAdaptiveFrontier, resolves at engine construction to
  /// derived_publish_frontier(search_depth, serial_depth, heap_shards) —
  /// 0 at one shard, 2 + log2(shards) capped at serial_depth - 1 otherwise
  /// (the historical fixed 4 at the standard 7/5 trees with 4–8 shards).
  int publish_frontier = kAdaptiveFrontier;
  /// Problem-heap placement (core/shard_policy.hpp).
  PlacementMode placement = PlacementMode::kParentMod;
  /// Move ordering applied to non-e-node children (paper §7).
  OrderingPolicy ordering;
  SpeculationConfig speculation;
  SpecRankPolicy spec_rank = SpecRankPolicy::kFewestEChildren;
  /// Dynamic speculation control (demotion / steal feedback / budget).
  /// All-off by default: the engine then behaves bit-identically to a
  /// build without the feature.
  SpecControlConfig spec_control;
  /// Shared move-ordering tables (search/ordering.hpp): history counters
  /// and killer slots consulted by expansion-time child sorts and the
  /// serial-ER units.  Not owned; null keeps the paper's pure
  /// static-value sort.  Ignored unless the game is a HashedGame.
  OrderingTables* order_tables = nullptr;
  /// Lock-free transposition table shared by every worker's compute phase
  /// (probe on expansion, probe/store throughout serial subtree units).
  /// Not owned; must outlive the engine.  Ignored unless the game is a
  /// HashedGame.
  ConcurrentTranspositionTable* shared_table = nullptr;
  /// Tracing session for the scheduling events only the engine sees
  /// (speculative spawn/cancel, unit commits, combine batches).  The engine
  /// writes the session's dedicated engine tracer from whichever thread is
  /// the current commit combiner (there is exactly one at a time), and the
  /// per-shard rings (ensure_shards) from under each shard's own lock.  Not
  /// owned; null disables engine-side tracing (the executors trace their
  /// own events independently via the same session).
  obs::TraceSession* trace = nullptr;
};

/// Aggregate counters kept by the engine; nodes_generated feeds Figures
/// 12/13 and the simulator's cost model.
struct EngineStats {
  SearchStats search;               ///< nodes/evals, parallel region + serial units
  std::uint64_t units_processed = 0;        ///< work units completed
  std::uint64_t serial_units = 0;           ///< units resolved by serial ER
  std::uint64_t promotions_mandatory = 0;   ///< first e-child selections
  std::uint64_t promotions_speculative = 0; ///< extra e-children (spec queue)
  std::uint64_t refutations_dispatched = 0; ///< children re-typed r-node
  std::uint64_t cutoffs_at_pop = 0;         ///< units cancelled before compute
  std::uint64_t dead_items_dropped = 0;     ///< queue entries under finished ancestors
  /// Speculation-control counters (SpecControlConfig; all zero with the
  /// controls off).
  std::uint64_t spec_demotions = 0;         ///< entries re-ranked at pop (rank worsened)
  std::uint64_t spec_rewindows = 0;         ///< entries re-pushed with a closed window
  std::uint64_t spec_budget_deferrals = 0;  ///< spec pops skipped on over-budget shards
  std::uint64_t steal_events = 0;           ///< executor steal-pressure feedback calls
};

/// Snapshot of the engine's internal lock accounting under per-shard
/// locking with flat-combining commits (engine.hpp).  Counters accrue
/// whether or not a trace session is attached, from the same clock readings
/// that feed the traced wait/hold spans, so report totals and span totals
/// agree exactly.  The thread runtime folds this into its SchedulerStats;
/// metrics_adapters exports it per shard.
struct EngineLockStats {
  /// Single-shard lock sections (shard-local and, at S=1, global acquires),
  /// indexed by shard.
  std::vector<std::uint64_t> shard_acquisitions;
  std::vector<std::uint64_t> shard_wait_ns;
  std::vector<std::uint64_t> shard_hold_ns;
  /// Multi-shard lock sections: global acquires at S>1 and combiner apply
  /// rounds, which take their whole (ascending) lock set as one section.
  std::uint64_t multi_acquisitions = 0;
  std::uint64_t multi_wait_ns = 0;
  std::uint64_t multi_hold_ns = 0;
  /// Flat-combining commit path.
  std::uint64_t combine_batches = 0;       ///< combiner drain rounds executed
  std::uint64_t combine_records = 0;       ///< publish records applied
  std::uint64_t combine_entries = 0;       ///< commit entries inside those records
  std::uint64_t combine_peer_applied = 0;  ///< records another thread's combiner applied
  std::uint64_t combine_wait_ns = 0;       ///< publisher time blocked before combining/applied
  /// Frontier-truncation / epoch-publication path (DESIGN.md §13).
  std::uint64_t truncated_records = 0;      ///< apply sections run with a frontier-truncated lock set
  std::uint64_t frontier_continuations = 0; ///< backups escalated past the frontier under full-chain locks
  std::uint64_t root_publishes = 0;         ///< epoch publications of a high node's (value, finished)
  std::uint64_t root_publish_retries = 0;   ///< CAS re-validation retries while publishing
  std::uint64_t root_validate_retries = 0;  ///< reader-side epoch validation retries (window_of)

  [[nodiscard]] std::uint64_t total_acquisitions() const noexcept {
    std::uint64_t n = multi_acquisitions;
    for (const std::uint64_t a : shard_acquisitions) n += a;
    return n;
  }
  [[nodiscard]] std::uint64_t total_wait_ns() const noexcept {
    std::uint64_t n = multi_wait_ns + combine_wait_ns;
    for (const std::uint64_t w : shard_wait_ns) n += w;
    return n;
  }
  [[nodiscard]] std::uint64_t total_hold_ns() const noexcept {
    std::uint64_t n = multi_hold_ns;
    for (const std::uint64_t h : shard_hold_ns) n += h;
    return n;
  }
};

/// Memory-occupancy snapshot of the engine's two-tier node storage
/// (DESIGN.md §15): the id-stable hot arena, the id-parallel position
/// arena, and the per-shard cold-record slabs.  Every byte total is
/// monotone — arena chunks and slab chunks are never returned before the
/// engine is destroyed, and freelists recycle *inside* chunks — so
/// peak_bytes is simply the current reserved total.  Exported through
/// obs::register_engine_mem_stats as the engine.mem.* gauges.
struct EngineMemStats {
  std::uint64_t live_nodes = 0;      ///< nodes in the hot arena (never freed)
  std::uint64_t hot_bytes = 0;       ///< hot-record arena chunk bytes
  std::uint64_t position_bytes = 0;  ///< position arena chunk bytes
  std::uint64_t cold_allocated = 0;  ///< cold records ever allocated
  std::uint64_t cold_live = 0;       ///< cold records currently attached
  std::uint64_t cold_reclaimed = 0;  ///< cold records returned (finish/dead)
  std::uint64_t slab_bytes = 0;      ///< cold-slab chunk bytes across shards
  std::uint64_t peak_bytes = 0;      ///< hot + position + slab (monotone)
};

/// Why a subtree's queued/committed work was cancelled — the cause axis of
/// the wasted-work attribution ledger (DESIGN.md §16).  The ledger charges
/// at the engine's kill points, so the causes mirror them exactly:
///   * kBoundChange       — the parent finished through a pop-time cutoff
///                          (its value crossed its bound), killing its
///                          still-unfinished children;
///   * kSiblingResolution — the parent finished through a committed child's
///                          value (normal resolution), so the remaining
///                          speculative siblings were moot;
///   * kDeadDrop          — a queue entry discarded at acquire time because
///                          an ancestor had already finished.  Dead drops
///                          count entries only: the subtree's committed
///                          compute was charged when the subtree died.
///   * kSpecDemoted       — a speculative entry re-ranked at pop time
///                          because its recomputed rank had worsened
///                          (bound tightening or steal pressure; see
///                          SpecControlConfig::bound_demote).  Entry-level
///                          like kDeadDrop: no committed work is charged.
///   * kSpecRewindowed    — a speculative entry whose search window had
///                          closed entirely at pop time, re-pushed at the
///                          back of the rank order.  Entry-level.
enum class WasteCause : std::uint8_t {
  kBoundChange = 0,
  kSiblingResolution = 1,
  kDeadDrop = 2,
  kSpecDemoted = 3,
  kSpecRewindowed = 4,
};
inline constexpr std::size_t kWasteCauseCount = 5;

/// The ledger's ply axis: engine nodes live above the serial frontier
/// (ply in [0, search_depth - serial_depth]), so bands are single plies
/// with one tail band.
inline constexpr std::size_t kWastePlyBands = 4;
[[nodiscard]] constexpr std::size_t waste_band_of(std::uint32_t ply) noexcept {
  return ply < kWastePlyBands - 1 ? ply : kWastePlyBands - 1;
}

/// Wasted-work attribution ledger (DESIGN.md §16): at every subtree kill
/// the engine charges the killed subtree's committed work — unit counts and
/// committed compute ns — to the (cause, ply band) cell of the kill, and
/// charges post-death commits (in-flight work that lands after its subtree
/// died) to the same cell as they arrive, so every committed unit is
/// attributed at most once.  `cancels` counts killed subtree roots for the
/// kill causes and discarded queue entries for kDeadDrop.  compute ns is
/// exact under the simulator's virtual clock and under tracing (it reuses
/// the per-unit span measurement); untraced thread runs report 0 ns and
/// exact unit counts.
struct EngineWasteStats {
  std::uint64_t cancels[kWasteCauseCount][kWastePlyBands] = {};
  std::uint64_t units[kWasteCauseCount][kWastePlyBands] = {};
  std::uint64_t compute_ns[kWasteCauseCount][kWastePlyBands] = {};

  [[nodiscard]] std::uint64_t cause_cancels(WasteCause c) const noexcept {
    return row_total(cancels[static_cast<std::size_t>(c)]);
  }
  [[nodiscard]] std::uint64_t cause_units(WasteCause c) const noexcept {
    return row_total(units[static_cast<std::size_t>(c)]);
  }
  [[nodiscard]] std::uint64_t cause_ns(WasteCause c) const noexcept {
    return row_total(compute_ns[static_cast<std::size_t>(c)]);
  }
  [[nodiscard]] std::uint64_t total_cancels() const noexcept {
    return grid_total(cancels);
  }
  [[nodiscard]] std::uint64_t total_units() const noexcept {
    return grid_total(units);
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return grid_total(compute_ns);
  }

 private:
  [[nodiscard]] static std::uint64_t row_total(
      const std::uint64_t (&row)[kWastePlyBands]) noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t v : row) n += v;
    return n;
  }
  [[nodiscard]] static std::uint64_t grid_total(
      const std::uint64_t (&g)[kWasteCauseCount][kWastePlyBands]) noexcept {
    std::uint64_t n = 0;
    for (const auto& row : g) n += row_total(row);
    return n;
  }
};

/// Stable ledger name of a cause (metric keys and the trace report).
[[nodiscard]] constexpr const char* waste_cause_name(WasteCause c) noexcept {
  switch (c) {
    case WasteCause::kBoundChange: return "bound_change";
    case WasteCause::kSiblingResolution: return "sibling_resolution";
    case WasteCause::kDeadDrop: return "dead_drop";
    case WasteCause::kSpecDemoted: return "spec_demoted";
    case WasteCause::kSpecRewindowed: return "spec_rewindowed";
  }
  return "unknown";
}

/// What a worker should do with an acquired node.  Nodes at or below the
/// serial-depth cutover become serial work units whose semantics depend on
/// the node's role, mirroring Figure 8 exactly: a full ER evaluation for
/// e-nodes, an Eval_first for undecided nodes (elder-grandchild evaluation),
/// and Refute_rest / Eval_first+Refute_rest for refutations.
enum class WorkKind : std::uint8_t {
  kExpand,           ///< apply Table 1 (cheap tree bookkeeping)
  kSerialFull,       ///< full serial-ER evaluation (e-node or horizon leaf)
  kSerialEvalFirst,  ///< evaluate only the first child (undecided node)
  kSerialRefuteRest, ///< finish a partially evaluated node (has tentative)
  kSerialRefute,     ///< refute a fresh node (Eval_first + Refute_rest)
  kPromote,          ///< speculative-queue pop: select another e-child
};

struct WorkItem {
  std::uint32_t node = 0;
  WorkKind kind = WorkKind::kExpand;
  /// Search window captured at acquire time (serial units only).
  Window window;
  /// Tentative value from the node's earlier Eval_first unit
  /// (kSerialRefuteRest only).
  Value tentative = -kValueInf;
  /// Node role frozen at acquire time.  The live Node::type can be
  /// re-written by a concurrent commit while this item is in flight
  /// (dispatch_refutations re-types queued/running children), so compute()
  /// must consult this copy, never the node's field.
  NodeType ntype = NodeType::kUndecided;
  /// Stable pointer to the engine node, captured under the node's shard
  /// lock at acquire time.  compute() runs with no engine lock held, and
  /// indexing the node container there would race with concurrent commits
  /// growing it; arena slots never move, so the pointer is safe while the
  /// item is in flight.
  const void* node_ref = nullptr;
  /// Stable pointer to the node's game position in the engine's id-parallel
  /// position arena (never reclaimed), captured at acquire time for the
  /// same reason as node_ref: the hot node record does not carry the
  /// position, and compute() runs lockless.
  const void* pos_ref = nullptr;
};

}  // namespace ers::core
