#pragma once
// Public entry points for parallel ER search — the library's headline API.
//
//   * parallel_er_threads: run on real std::thread workers (shared-memory
//     runtime, the production path).
//   * parallel_er_sim: run on the deterministic P-processor simulator and
//     report timing metrics (the experiment path; see DESIGN.md §1).

#include <algorithm>
#include <optional>
#include <utility>

#include "core/engine.hpp"
#include "core/types.hpp"
#include "gametree/game.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_executor.hpp"
#include "search/concurrent_ttable.hpp"
#include "sim/executor.hpp"

namespace ers {

template <typename Position>
struct ParallelSearchResult {
  Value value = 0;
  core::EngineStats engine;
  /// The executor's own run report (wall time, scheduler counters, TT
  /// traffic) — what obs::register_thread_report flattens into a metrics
  /// snapshot, and what a traced run's per-worker spans must sum to.
  runtime::ThreadRunReport report;
  /// The root child achieving the value (the move to play); empty when the
  /// whole search ran as one serial unit or the root is a leaf.
  std::optional<Position> best_move;
  /// Wasted-work attribution: committed units/ns later cancelled, by cause
  /// and ply band (DESIGN.md §16; duplicate of report.waste for symmetry
  /// with the sim result).
  core::EngineWasteStats waste;
};

template <typename Position>
struct SimulatedSearchResult {
  Value value = 0;
  core::EngineStats engine;
  sim::SimMetrics metrics;
  /// Node-storage occupancy at completion (DESIGN.md §15) — the
  /// bytes-per-node figures read peak_bytes from here.  (The thread path
  /// carries the same snapshot inside report.mem.)
  core::EngineMemStats mem;
  std::optional<Position> best_move;
  /// Wasted-work attribution ledger (DESIGN.md §16).  Under the simulator
  /// compute_ns is exact — every unit carries its cost-model duration.
  core::EngineWasteStats waste;
};

/// Search `game` to cfg.search_depth with parallel ER on `threads` OS
/// threads.  The engine synchronizes itself with per-shard locks and a
/// flat-combining commit path (DESIGN.md §12); there is no global engine
/// mutex, so workers touching different shards proceed concurrently.
/// `batch` is the scheduler batch size: units each worker pulls and commits
/// per engine lock section (1 = the unbatched scheduler).
/// `shards` partitions the problem heap (cfg.heap_shards wins if larger):
/// with more than one shard the executor runs its work-stealing scheduler —
/// per-worker run queues fed from home shards, randomized stealing between
/// them.  The returned value equals serial negmax at every (batch, shards).
/// `trace` (optional) records the run into per-worker ring buffers for
/// Perfetto export / trace_report (obs/trace_writer.hpp); it covers both
/// the executor's scheduling events and the engine's own hooks.
template <Game G>
[[nodiscard]] ParallelSearchResult<typename G::Position> parallel_er_threads(
    const G& game, const core::EngineConfig& cfg, int threads, int batch = 1,
    int shards = 1, obs::TraceSession* trace = nullptr) {
  core::EngineConfig c = cfg;
  c.heap_shards = std::max(c.heap_shards, shards);
  c.trace = trace;
  if (c.shared_table != nullptr) c.shared_table->new_search();
  core::Engine<G> engine(game, c);
  runtime::ThreadExecutor<core::Engine<G>> exec(threads);
  exec.with_batch_size(batch).with_trace(trace);
  runtime::ThreadRunReport report = exec.run(engine);
  return ParallelSearchResult<typename G::Position>{
      engine.root_value(), engine.stats(), std::move(report),
      engine.best_root_position(), engine.waste_stats()};
}

/// Search `game` with parallel ER on `processors` simulated processors;
/// deterministic for fixed inputs.  metrics.makespan is the simulated
/// parallel time used by the efficiency figures.  `batch` mirrors the
/// thread runtime's scheduler batch size in the cost model: heap accesses
/// are charged per batch, not per unit.
/// `trace` (optional) records the simulated schedule on the virtual clock
/// in the same event schema as the thread runtime — same seed + config
/// produce an identical event stream (tested).
/// `sampler` (optional) is polled on the virtual clock at each retired
/// event, yielding a deterministic health time series (DESIGN.md §16);
/// the caller installs the probe and reads the ring afterwards.
template <Game G>
[[nodiscard]] SimulatedSearchResult<typename G::Position> parallel_er_sim(
    const G& game, const core::EngineConfig& cfg, int processors,
    sim::CostModel cost = {}, int queue_shards = 1, int batch = 1,
    obs::TraceSession* trace = nullptr, obs::Sampler* sampler = nullptr) {
  // The engine's heap partition and the simulator's shard locks must
  // coincide for the routed contention model to mean anything; the engine's
  // global pop order is shard-count-invariant, so this never changes the
  // schedule or the node counts — only the serialization delays.
  core::EngineConfig c = cfg;
  c.heap_shards = std::max(c.heap_shards, queue_shards);
  c.trace = trace;
  if (c.shared_table != nullptr) c.shared_table->new_search();
  core::Engine<G> engine(game, c);
  sim::SimExecutor<core::Engine<G>> exec(processors, cost, c.heap_shards, batch);
  exec.with_trace(trace).with_sampler(sampler);
  const sim::SimMetrics m = exec.run(engine);
  return SimulatedSearchResult<typename G::Position>{
      engine.root_value(), engine.stats(), m, engine.mem_stats(),
      engine.best_root_position(), engine.waste_stats()};
}

}  // namespace ers
