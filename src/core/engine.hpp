#pragma once
// The parallel ER problem-heap engine (paper §6).
//
// This class is the *scheduling state machine* only: it owns the shared
// search tree, the primary priority queue (scheduled work, deepest first)
// and the speculative priority queue (potential e-child selections, fewest
// e-children first, then shallower).  It performs no threading and keeps no
// clock; executors drive it through a three-phase protocol:
//
// The two queues are partitioned into EngineConfig::heap_shards shards
// (paper §8's proposal of distributing the problem heap).  A node's entries
// live on the shard owning its parent, so one commit's pushes land on one
// shard.  Global pops (acquire/acquire_batch) scan the shard tops and are
// bit-identical to the single-heap order at every shard count; shard-local
// pops (acquire_shard/acquire_batch_shard) let an executor drain one shard
// in its local priority order and balance the rest by stealing.
//
//     acquire()  -> WorkItem        pick the next unit (Table 1 dispatch /
//                                   speculative promotion / serial subtree)
//     compute()  -> ComputeResult   the heavy, *pure* part of the unit —
//                                   child generation or a serial-ER subtree
//                                   search.  Touches no engine state, so the
//                                   thread executor runs it outside the lock
//                                   and the simulator charges its cost.
//     commit()                      apply the result: mutate the tree, run
//                                   the paper's combine procedure, apply the
//                                   Table 2 actions, refill the queues.
//
// The protocol also has batch forms — the contention remedy of the paper's
// §6 observation that heap serialization erodes efficiency as processors
// are added:
//
//     acquire_batch(k, out)         pop up to k ready units in one pass (one
//                                   heap access for the whole batch)
//     commit_batch(span)            apply several results back to back under
//                                   a single serialized heap access
//
// A batch commit is exactly a sequence of single commits applied atomically
// in batch order; the combine procedure only requires commits to be
// serialized, never that they interleave at any particular granularity, so
// batching changes the schedule but not the result (the root value is
// schedule-independent).  The single-item calls are thin wrappers over the
// same implementation, so executors that never batch (the baselines, the
// k=1 simulator) are untouched semantically.
//
// acquire/commit (batch or not) must be externally serialized (the
// simulator is single threaded; the thread runtime holds a mutex); compute
// calls may run concurrently with anything.
//
// Work classification follows the paper exactly:
//   * nodes at ply >= serial_depth are leaves of the *parallel* tree and are
//     resolved by one serial-ER search (the heavy unit);
//   * Table 1 governs what a node popped from the primary queue generates;
//   * the combine procedure backs values up until it reaches a node that
//     still has work below it and cannot be cut off; Table 2 (implemented in
//     reconsider()) decides what new work that node schedules;
//   * the speculative queue holds e-nodes that may select another e-child;
//     popping one promotes the node's best unpromoted child.

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <deque>
#include <optional>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "gametree/game.hpp"
#include "obs/trace.hpp"
#include "search/er_serial.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers::core {

template <Game G>
class Engine {
 public:
  using Position = typename G::Position;

  /// Result of the pure compute phase of a work unit.
  struct ComputeResult {
    /// kExpand / kSerialEvalFirst: generated (and ordered) child positions.
    std::vector<Position> child_positions;
    bool positions_computed = false;
    /// Serial units / kExpand on a terminal position: the node's value.
    Value value = 0;
    bool is_leaf = false;
    /// kSerialEvalFirst: the first child's evaluation already resolved the
    /// node (cutoff, single child, or leaf).
    bool is_done = false;
    /// Work performed, for engine totals and the simulator's cost model.
    SearchStats stats;
  };

  Engine(const G&&, EngineConfig) = delete;  // the game must outlive the engine
  Engine(const G& game, EngineConfig cfg) : game_(game), cfg_(cfg) {
    ERS_CHECK(cfg_.search_depth >= 0);
    ERS_CHECK(cfg_.heap_shards >= 1);
    cfg_.serial_depth = std::clamp(cfg_.serial_depth, 0, cfg_.search_depth);
    shards_.resize(static_cast<std::size_t>(cfg_.heap_shards));
    nodes_.push_back(Node(game_.root(), kNoNode, 0, NodeType::kENode, 0));
    push_primary(0);
  }

  /// One unit of a batched commit: the acquired item and its compute result.
  struct CommitEntry {
    WorkItem item;
    ComputeResult result;
  };

  // --- executor protocol -------------------------------------------------

  [[nodiscard]] std::optional<WorkItem> acquire() {
    return acquire_one(kAnyShard);
  }

  /// Shard-local acquire: pop the best ready unit of shard `s` only (its
  /// own priority order; never touches other shards' queues).  The thread
  /// runtime's steal loop drains a worker's home shard through this before
  /// probing victims.
  [[nodiscard]] std::optional<WorkItem> acquire_shard(std::size_t s) {
    return acquire_one(s % shards_.size());
  }

  /// Batch form of acquire(): pop up to `k` ready units in one pass,
  /// appending them to `out`.  Returns the number acquired.  Executors pay
  /// one serialized heap access for the whole call, which is the point.
  std::size_t acquire_batch(std::size_t k, std::vector<WorkItem>& out) {
    return acquire_batch_from(kAnyShard, k, out);
  }

  /// Batch form of acquire_shard(): up to `k` units from shard `s` alone.
  std::size_t acquire_batch_shard(std::size_t s, std::size_t k,
                                  std::vector<WorkItem>& out) {
    return acquire_batch_from(s % shards_.size(), k, out);
  }

  void commit(const WorkItem& item, ComputeResult&& r) {
    commit_one(item, std::move(r));
  }

  /// Batch form of commit(): apply several results back to back — exactly a
  /// sequence of single commits executed atomically in batch order, so the
  /// queues are refilled once per batch instead of once per unit.  Entries
  /// are consumed (results moved from).
  void commit_batch(std::span<CommitEntry> batch) {
    for (CommitEntry& e : batch) commit_one(e.item, std::move(e.result));
  }

  /// Entries currently queued (primary + speculative) across all shards.
  /// An upper bound — lazily-invalidated stale entries are counted — which
  /// is all the thread runtime needs to size its wakeups to the work
  /// actually available.
  [[nodiscard]] std::size_t queued_count() const noexcept {
    std::size_t n = 0;
    for (const Shard& s : shards_) n += s.primary.size() + s.spec.size();
    return n;
  }

  /// Queued entries (upper bound, stale included) in shard `s` alone.
  [[nodiscard]] std::size_t queued_count_shard(std::size_t s) const noexcept {
    const Shard& sh = shards_[s % shards_.size()];
    return sh.primary.size() + sh.spec.size();
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// The shard a node's queue entries live in: the shard owning its parent,
  /// so the children created by one commit all land on one shard and a
  /// worker draining it keeps the depth-first focus of the LIFO tiebreak.
  [[nodiscard]] std::size_t home_shard(std::uint32_t id) const noexcept {
    const std::uint32_t p = nodes_[id].parent;
    return p == kNoNode ? 0 : p % shards_.size();
  }

 private:
  struct PrimaryEntry {
    std::int32_t ply;
    std::uint64_t seq;
    std::uint32_t node;
    /// Deepest first; LIFO among equals, so a processor keeps descending
    /// into the subtree it just expanded (depth-first focus).  At P=1 this
    /// makes the schedule coincide with serial ER's recursion order.
    bool operator<(const PrimaryEntry& o) const noexcept {
      if (ply != o.ply) return ply < o.ply;
      return seq < o.seq;
    }
  };

  struct SpecEntry {
    /// Policy-dependent ranking keys, smaller = scheduled sooner (see
    /// SpecRankPolicy and spec_keys_for).
    std::int64_t key1;
    std::int64_t key2;
    std::uint64_t seq;
    std::uint32_t node;
    std::uint64_t spec_seq;
    bool operator<(const SpecEntry& o) const noexcept {
      if (key1 != o.key1) return key1 > o.key1;
      if (key2 != o.key2) return key2 > o.key2;
      return seq > o.seq;
    }
  };

  /// One slice of the problem heap: the primary and speculative queues for
  /// the nodes homed here.  Entry comparators are global (ply/keys + global
  /// seq), so within a shard the paper's priority order is preserved and
  /// across shards the tops reconstruct the global order exactly.
  struct Shard {
    std::priority_queue<PrimaryEntry> primary;
    std::priority_queue<SpecEntry> spec;
  };

  /// Sentinel for "pop the globally best entry over every shard".
  static constexpr std::size_t kAnyShard = std::numeric_limits<std::size_t>::max();

  std::size_t acquire_batch_from(std::size_t shard, std::size_t k,
                                 std::vector<WorkItem>& out) {
    std::size_t got = 0;
    while (got < k) {
      auto item = acquire_one(shard);
      if (!item) break;
      out.push_back(*item);
      ++got;
    }
    return got;
  }

  /// Pop the best live primary entry — of one shard, or globally.  The
  /// global pop scans the shard tops: each shard is a max-heap under the
  /// same comparator (global seq tiebreak included), so the maximum over
  /// tops *is* the single-heap maximum and the global pop sequence is
  /// bit-identical at every shard count.
  [[nodiscard]] std::optional<PrimaryEntry> pop_primary(std::size_t shard) {
    Shard* best = nullptr;
    if (shard == kAnyShard) {
      for (Shard& s : shards_) {
        if (s.primary.empty()) continue;
        if (best == nullptr || best->primary.top() < s.primary.top()) best = &s;
      }
    } else if (!shards_[shard].primary.empty()) {
      best = &shards_[shard];
    }
    if (best == nullptr) return std::nullopt;
    const PrimaryEntry e = best->primary.top();
    best->primary.pop();
    return e;
  }

  [[nodiscard]] std::optional<SpecEntry> pop_spec(std::size_t shard) {
    Shard* best = nullptr;
    if (shard == kAnyShard) {
      for (Shard& s : shards_) {
        if (s.spec.empty()) continue;
        if (best == nullptr || best->spec.top() < s.spec.top()) best = &s;
      }
    } else if (!shards_[shard].spec.empty()) {
      best = &shards_[shard];
    }
    if (best == nullptr) return std::nullopt;
    const SpecEntry e = best->spec.top();
    best->spec.pop();
    return e;
  }

  [[nodiscard]] std::optional<WorkItem> acquire_one(std::size_t shard) {
    while (auto popped = pop_primary(shard)) {
      const PrimaryEntry e = *popped;
      Node& n = nodes_[e.node];
      if (!n.in_primary) continue;  // stale entry
      n.in_primary = false;
      if (n.finished || is_dead(e.node)) {
        ++stats_.dead_items_dropped;
        trace_instant(obs::EventKind::kSpecCancel, e.node, /*arg=*/0);
        continue;
      }
      // Pop-time cutoff: the node's tentative value may already refute it
      // against the parent's *current* bound.
      if (n.parent != kNoNode && n.value >= beta_of(e.node)) {
        ++stats_.cutoffs_at_pop;
        trace_instant(obs::EventKind::kSpecCancel, e.node, /*arg=*/1);
        finish_and_combine(e.node);
        continue;
      }
      if (n.ply >= cfg_.serial_depth) {
        const Window w = window_of(e.node);
        if (!w.is_open()) {
          // Empty window: an ancestor's bound already refutes the parent.
          // Finish the parent instead of searching nothing.
          ++stats_.cutoffs_at_pop;
          finish_and_combine(n.parent);
          continue;
        }
        n.in_flight = true;
        return WorkItem{e.node, serial_kind(n), w, n.value, n.type, &n};
      }
      n.in_flight = true;
      return WorkItem{e.node, WorkKind::kExpand, full_window(), -kValueInf,
                      n.type, &n};
    }
    while (auto popped = pop_spec(shard)) {
      const SpecEntry e = *popped;
      Node& n = nodes_[e.node];
      if (!n.on_spec || e.spec_seq != n.spec_seq) continue;  // stale
      n.on_spec = false;
      if (n.finished || is_dead(e.node) || !spec_eligible(e.node)) continue;
      return WorkItem{e.node, WorkKind::kPromote, full_window(), -kValueInf,
                      n.type, &n};
    }
    return std::nullopt;
  }

 public:
  /// Pure phase; safe to run concurrently with acquire/commit on other
  /// items.  Reads only fields frozen while the item is in flight.
  [[nodiscard]] ComputeResult compute(const WorkItem& item) const {
    return compute(item, cfg_.shared_table);
  }

  /// As above, with an explicit transposition table overriding the
  /// configured one (the thread runtime's per-worker-table mode hands each
  /// worker its private table).  The table is only read/written here, never
  /// by acquire/commit, so concurrent compute calls share it freely.
  [[nodiscard]] ComputeResult compute(const WorkItem& item,
                                      ConcurrentTranspositionTable* tt) const {
    // Use the pointer captured under the lock: indexing nodes_ here would
    // race with commits growing the deque on other threads.
    const Node& n = *static_cast<const Node*>(item.node_ref);
    ComputeResult out;
    ErSerialSearcher<G> searcher(game_, cfg_.search_depth, cfg_.ordering);
    searcher.with_shared_table(tt);
    switch (item.kind) {
      case WorkKind::kPromote:
        break;  // nothing heavy
      case WorkKind::kSerialFull: {
        const SearchResult r = searcher.run_from(n.pos, n.ply, item.window);
        out.value = r.value;
        out.stats = r.stats;
        break;
      }
      case WorkKind::kSerialEvalFirst: {
        auto r = searcher.eval_first_from(n.pos, n.ply, item.window);
        out.value = r.value;
        out.is_done = r.done || r.children.empty();
        out.child_positions = std::move(r.children);
        out.stats = r.stats;
        break;
      }
      case WorkKind::kSerialRefuteRest: {
        const SearchResult r = searcher.refute_rest_from(
            n.pos, n.ply, item.window, item.tentative, n.child_positions);
        out.value = r.value;
        out.stats = r.stats;
        break;
      }
      case WorkKind::kSerialRefute: {
        const SearchResult r = searcher.refute_from(n.pos, n.ply, item.window);
        out.value = r.value;
        out.stats = r.stats;
        break;
      }
      case WorkKind::kExpand: {
        if (n.expanded) break;  // positions already known (promoted e-child)
        if constexpr (HashedGame<G>) {
          // An exact entry covering the full remaining depth resolves the
          // node without expanding its subtree — this is how one worker's
          // finished subtree short-circuits another's parallel-tree node.
          if (tt != nullptr) {
            ++out.stats.tt_probes;
            TtHit h;
            if (tt->probe(n.pos.tt_key(), h) &&
                h.depth >= cfg_.search_depth - n.ply &&
                h.bound == BoundKind::kExact) {
              ++out.stats.tt_hits;
              out.positions_computed = true;
              out.is_leaf = true;
              out.value = h.value;
              break;
            }
          }
        }
        out.positions_computed = true;
        game_.generate_children(n.pos, out.child_positions);
        if (out.child_positions.empty()) {
          out.is_leaf = true;
          out.value = game_.evaluate(n.pos);
          out.stats.leaves_evaluated += 1;
          if constexpr (HashedGame<G>) {
            if (tt != nullptr) {
              tt->store(n.pos.tt_key(), out.value, cfg_.search_depth - n.ply,
                        BoundKind::kExact);
              ++out.stats.tt_stores;
            }
          }
          break;
        }
        out.stats.interior_expanded += 1;
        // Paper §7: children of e-nodes are never statically sorted.  Use
        // the role frozen at acquire: the live field may be re-typed under
        // the engine lock while this unit runs (WorkItem::ntype).
        if (item.ntype != NodeType::kENode && cfg_.ordering.should_sort(n.ply))
          sort_children_by_static_value(game_, out.child_positions, out.stats);
        break;
      }
    }
    return out;
  }

 private:
  void commit_one(const WorkItem& item, ComputeResult&& r) {
    Node& n = nodes_[item.node];
    n.in_flight = false;
    stats_.search += r.stats;
    ++stats_.units_processed;
    // Commit record with the parent link: trace_report rebuilds the unit
    // dependency graph (and its critical path) from exactly these events.
    trace_instant(obs::EventKind::kUnitCommit, item.node,
                  n.parent == kNoNode ? obs::kNoTraceNode : n.parent);
    switch (item.kind) {
      case WorkKind::kPromote:
        commit_promotion(item.node);
        break;
      case WorkKind::kSerialFull:
      case WorkKind::kSerialRefuteRest:
      case WorkKind::kSerialRefute:
        ++stats_.serial_units;
        n.value = std::max(n.value, r.value);
        finish_and_combine(item.node);
        break;
      case WorkKind::kSerialEvalFirst:
        commit_eval_first(item.node, std::move(r));
        break;
      case WorkKind::kExpand:
        commit_expand(item.node, std::move(r));
        break;
    }
  }

 public:
  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] Value root_value() const noexcept { return nodes_[0].value; }

  /// Position of the root child that achieved the root value — the move to
  /// play.  Empty when the root was resolved inside a single serial unit
  /// (serial_depth == 0) or is a leaf.
  [[nodiscard]] std::optional<Position> best_root_position() const {
    const std::uint32_t b = nodes_[0].best_child;
    if (b == kNoNode) return std::nullopt;
    return nodes_[b].pos;
  }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

  /// True if no work is queued.  An executor observing has_work()==false,
  /// done()==false and no in-flight items has found a scheduling bug.
  [[nodiscard]] bool has_queued_work() const noexcept {
    for (const Shard& s : shards_)
      if (!s.primary.empty() || !s.spec.empty()) return true;
    return false;
  }

  [[nodiscard]] std::size_t tree_size() const noexcept { return nodes_.size(); }

  /// Diagnostic dump of all unfinished, non-dead nodes, grouped under a
  /// per-shard occupancy summary (used by the executors' stall reports; see
  /// tests/core/engine_test.cpp).  The unfinished-node table is partitioned
  /// by home shard so a stall in one shard's scheduling is visible as that
  /// shard's occupancy, not a flat global list.
  void debug_dump_unfinished(std::FILE* out) const {
    std::vector<std::size_t> unfinished(shards_.size(), 0);
    for (std::uint32_t id = 0; id < nodes_.size(); ++id)
      if (!nodes_[id].finished && !is_dead(id)) ++unfinished[home_shard(id)];
    for (std::size_t s = 0; s < shards_.size(); ++s)
      std::fprintf(out,
                   "shard %zu: primary %zu spec %zu unfinished %zu\n", s,
                   shards_[s].primary.size(), shards_[s].spec.size(),
                   unfinished[s]);
    for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
      const Node& n = nodes_[id];
      if (n.finished || is_dead(id)) continue;
      std::fprintf(
          out,
          "node %u shard %zu parent %d ply %d type %d value %d gen %d fin %d "
          "elder %d d %d e_ch %d partial %d expanded %d inprim %d inflight %d "
          "first_e %d e_eval %d seqref %d\n",
          id, home_shard(id), static_cast<int>(n.parent), n.ply,
          static_cast<int>(n.type), n.value, n.generated, n.finished_children,
          n.elder_done, child_count(n), n.e_children, n.partial ? 1 : 0,
          n.expanded ? 1 : 0, n.in_primary ? 1 : 0, n.in_flight ? 1 : 0,
          n.first_e_selected ? 1 : 0, n.e_child_evaluated ? 1 : 0,
          static_cast<int>(n.seq_refuting));
    }
  }

 private:
  struct Node {
    Node(Position position, std::uint32_t parent_id, int ply_at, NodeType ty,
         int index_in_parent)
        : pos(std::move(position)),
          parent(parent_id),
          ply(ply_at),
          child_index(index_in_parent),
          type(ty) {}

    Position pos;
    std::uint32_t parent;
    std::int32_t ply;
    std::int32_t child_index;  ///< index within the parent's child list
    NodeType type;
    Value value = -kValueInf;  ///< monotone tentative value, own perspective

    bool finished = false;      ///< subtree resolved (evaluated or refuted)
    bool expanded = false;      ///< child_positions computed
    bool partial = false;       ///< cutover node: Eval_first unit completed
    bool in_primary = false;    ///< a live entry exists in the primary queue
    bool in_flight = false;     ///< a worker holds this node
    bool on_spec = false;       ///< a live entry exists in the spec queue
    bool elder_counted = false; ///< contributed to parent's elder_done
    bool first_e_selected = false;
    bool e_child_evaluated = false;   ///< some promoted e-child has finished
    bool refutation_dispatched = false;

    std::vector<Position> child_positions;
    std::vector<std::uint32_t> child_nodes;  ///< kNoNode until generated
    std::int32_t generated = 0;          ///< children instantiated as nodes
    std::int32_t finished_children = 0;
    std::int32_t elder_done = 0;  ///< children with tentative value / finished
    std::int32_t e_children = 0;  ///< children promoted to e-node
    std::uint32_t seq_refuting = kNoNode;  ///< sequential-refutation cursor
    std::uint32_t best_child = kNoNode;    ///< child that last raised value
    std::uint64_t spec_seq = 0;
  };

  /// Ranking keys for the speculative queue under the configured policy.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> spec_keys_for(
      std::uint32_t id) const {
    const Node& n = nodes_[id];
    switch (cfg_.spec_rank) {
      case SpecRankPolicy::kFewestEChildren:
        return {n.e_children, n.ply};
      case SpecRankPolicy::kBestBound: {
        const std::uint32_t c = best_promotion_candidate(n);
        return {c == kNoNode ? kValueInf : nodes_[c].value, n.ply};
      }
      case SpecRankPolicy::kFifo:
        return {0, 0};
    }
    return {0, 0};
  }

  // --- queue helpers -----------------------------------------------------

  void push_primary(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.in_primary || n.in_flight || n.finished) return;
    n.in_primary = true;
    shards_[home_shard(id)].primary.push(PrimaryEntry{n.ply, seq_++, id});
  }

  void push_spec(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.on_spec || n.finished) return;
    n.on_spec = true;
    ++n.spec_seq;
    const auto [k1, k2] = spec_keys_for(id);
    shards_[home_shard(id)].spec.push(SpecEntry{k1, k2, seq_++, id, n.spec_seq});
  }

  // --- predicates ---------------------------------------------------------

  /// Which serial unit a cutover node needs, per its current role (see
  /// WorkKind).  A node with a tentative value from an earlier Eval_first
  /// unit continues with Refute_rest whether it was promoted to e-child or
  /// re-typed for refutation — exactly Figure 8's two halves.
  [[nodiscard]] WorkKind serial_kind(const Node& n) const {
    if (n.ply >= cfg_.search_depth) return WorkKind::kSerialFull;  // horizon
    if (n.partial) return WorkKind::kSerialRefuteRest;
    switch (n.type) {
      case NodeType::kENode: return WorkKind::kSerialFull;
      case NodeType::kUndecided: return WorkKind::kSerialEvalFirst;
      case NodeType::kRNode: return WorkKind::kSerialRefute;
    }
    return WorkKind::kSerialFull;
  }

  /// The node's effective search window, folded down from the root exactly
  /// as Figure 8 flips windows at each ply:
  ///     w(child) = ( -beta(parent), -max(alpha(parent), value(parent)) ).
  /// Using the whole ancestor chain (not just -parent.value) preserves the
  /// deep-cutoff information the serial recursion carries implicitly.
  [[nodiscard]] Window window_of(std::uint32_t id) const {
    // Collected on the stack: this runs on every combine-step cutoff check,
    // and search depths are tiny (the horizon bounds the path length).
    std::array<std::uint32_t, 64> path;  // id's ancestors, root last
    std::size_t depth = 0;
    for (std::uint32_t a = nodes_[id].parent; a != kNoNode; a = nodes_[a].parent) {
      ERS_CHECK(depth < path.size());
      path[depth++] = a;
    }
    Window w = full_window();
    while (depth-- > 0) {
      const Value alpha = std::max(w.alpha, nodes_[path[depth]].value);
      w = Window{negate(w.beta), negate(alpha)};
    }
    return w;
  }

  [[nodiscard]] Value beta_of(std::uint32_t id) const {
    return window_of(id).beta;
  }

  /// A node is dead when some proper ancestor has finished (its subtree was
  /// abandoned: speculative loss).
  [[nodiscard]] bool is_dead(std::uint32_t id) const {
    for (std::uint32_t a = nodes_[id].parent; a != kNoNode; a = nodes_[a].parent)
      if (nodes_[a].finished) return true;
    return false;
  }

  [[nodiscard]] int child_count(const Node& n) const {
    return static_cast<int>(n.child_positions.size());
  }

  /// Children that can still be promoted to e-child: dormant (not queued,
  /// not running), undecided, unfinished, with a tentative value.
  [[nodiscard]] bool is_promotion_candidate(std::uint32_t id) const {
    const Node& c = nodes_[id];
    return !c.finished && c.type == NodeType::kUndecided && c.elder_counted &&
           !c.in_primary && !c.in_flight;
  }

  [[nodiscard]] std::uint32_t best_promotion_candidate(const Node& p) const {
    std::uint32_t best = kNoNode;
    for (const std::uint32_t c : p.child_nodes) {
      if (c == kNoNode || !is_promotion_candidate(c)) continue;
      if (best == kNoNode || nodes_[c].value < nodes_[best].value) best = c;
    }
    return best;
  }

  [[nodiscard]] bool spec_eligible(std::uint32_t id) const {
    const Node& n = nodes_[id];
    if (n.type != NodeType::kENode || n.finished || !n.expanded) return false;
    if (!cfg_.speculation.multiple_e_children && n.first_e_selected) return false;
    const int d = child_count(n);
    const int need = cfg_.speculation.early_e_child_choice ? d - 1 : d;
    if (n.elder_done < need) return false;
    return best_promotion_candidate(n) != kNoNode;
  }

  /// Commit an Eval_first unit at a cutover node: store the tentative value
  /// and the frozen child order; the node either resolves immediately (done
  /// or cut off against the parent's current bound) or goes dormant awaiting
  /// promotion/re-typing, feeding the parent's elder-grandchild accounting.
  void commit_eval_first(std::uint32_t id, ComputeResult&& r) {
    Node& n = nodes_[id];
    ++stats_.serial_units;
    n.value = std::max(n.value, r.value);
    n.partial = true;
    n.child_positions = std::move(r.child_positions);
    if (r.is_done || n.value >= beta_of(id)) {
      finish_and_combine(id);
      return;
    }
    if (n.parent == kNoNode || nodes_[n.parent].finished) return;
    const std::uint32_t pid = n.parent;
    count_elder(pid, id);  // n now has a tentative value (Table 2 rows 4/5)
    // If the node was promoted or re-typed for refutation while this unit
    // was in flight, it must continue with a Refute_rest unit now — nothing
    // else will ever reschedule it.
    if (n.type != NodeType::kUndecided) push_primary(id);
    reconsider(pid);
  }

  // --- Table 1: expansion -------------------------------------------------

  void commit_expand(std::uint32_t id, ComputeResult&& r) {
    Node& n = nodes_[id];
    if (r.positions_computed) {
      if (r.is_leaf) {
        // Terminal position above the cutover: a true leaf of the game.
        n.expanded = true;
        n.value = std::max(n.value, r.value);
        finish_and_combine(id);
        return;
      }
      n.expanded = true;
      n.child_positions = std::move(r.child_positions);
      n.child_nodes.assign(n.child_positions.size(), kNoNode);
    }
    ERS_CHECK(n.expanded);
    switch (n.type) {
      case NodeType::kENode: {
        // Generate all (missing) children as undecided (Table 1 row 1).
        const bool e_child_done =
            n.child_nodes[0] != kNoNode && nodes_[n.child_nodes[0]].finished;
        // Create in reverse index order: the primary queue is LIFO among
        // equals, so pops then visit the children left to right.
        for (int i = child_count(n) - 1; i >= 0; --i)
          if (n.child_nodes[i] == kNoNode)
            make_child(id, i, NodeType::kUndecided);
        if (e_child_done) {
          // A promoted e-child arrives with its first child — the elder
          // grandchild evaluated while this node was undecided — already
          // finished.  That child *is* its e-child, so Table 2 row 3
          // applies immediately: refute the remaining children rather than
          // running a second elder-grandchild sweep (this matches serial
          // ER, where the e-child is completed by Refute_rest).
          n.first_e_selected = true;
          if (n.e_children == 0) n.e_children = 1;
          n.e_child_evaluated = true;
          reconsider_e_node(id);
        }
        break;
      }
      case NodeType::kUndecided:
        // Elder-grandchild evaluation: first child only, as an e-node.
        if (n.child_nodes[0] == kNoNode) make_child(id, 0, NodeType::kENode);
        break;
      case NodeType::kRNode:
        if (n.generated == 0) {
          make_child(id, 0, NodeType::kENode);
        } else if (n.generated < child_count(n)) {
          // Refutation proceeds one child at a time (Table 1 row 4).
          make_child(id, n.generated, NodeType::kRNode);
        }
        break;
    }
  }

  void make_child(std::uint32_t parent_id, int index, NodeType type) {
    Node& p = nodes_[parent_id];
    ERS_CHECK(p.child_nodes[index] == kNoNode);
    const auto child_id = static_cast<std::uint32_t>(nodes_.size());
    // nodes_ is a deque: growth never invalidates existing references.
    nodes_.push_back(
        Node(p.child_positions[index], parent_id, p.ply + 1, type, index));
    p.child_nodes[index] = child_id;
    p.generated += 1;
    push_primary(child_id);
  }

  // --- speculative promotion ----------------------------------------------

  void commit_promotion(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.finished || !spec_eligible(id)) return;  // state moved on
    const std::uint32_t child = best_promotion_candidate(n);
    if (child == kNoNode) return;
    promote_to_e_child(id, child, /*mandatory=*/false);
    if (spec_eligible(id)) push_spec(id);  // paper: "E is returned to the queue"
  }

  void promote_to_e_child(std::uint32_t parent_id, std::uint32_t child_id,
                          bool mandatory) {
    Node& p = nodes_[parent_id];
    Node& c = nodes_[child_id];
    ERS_CHECK(c.type == NodeType::kUndecided && !c.finished);
    c.type = NodeType::kENode;
    p.e_children += 1;
    p.first_e_selected = true;
    if (mandatory)
      ++stats_.promotions_mandatory;
    else
      ++stats_.promotions_speculative;
    trace_instant(obs::EventKind::kSpecSpawn, child_id, parent_id);
    push_primary(child_id);
  }

  /// Engine-side trace hook; a no-op without a session (and compiled out
  /// entirely when tracing is disabled).  Runs only under the executor's
  /// serialization of acquire/commit, which is what makes the single
  /// engine tracer safe.
  void trace_instant(obs::EventKind kind, std::uint32_t node,
                     std::uint32_t arg) {
    if constexpr (!obs::kTracingEnabled) {
      (void)kind; (void)node; (void)arg;
      return;
    }
    if (cfg_.trace == nullptr) return;
    cfg_.trace->engine_tracer().instant(
        kind, cfg_.trace->now_ns(), node, arg,
        static_cast<std::uint16_t>(home_shard(node)));
  }

  // --- combine (paper §6) ---------------------------------------------------

  void finish_and_combine(std::uint32_t id) {
    std::uint32_t cur = id;
    for (;;) {
      Node& n = nodes_[cur];
      n.finished = true;
      n.on_spec = false;  // lazily invalidates any spec entry
      if (cur == 0) {
        done_ = true;
        return;
      }
      const std::uint32_t pid = n.parent;
      Node& p = nodes_[pid];
      if (p.finished) return;  // abandoned subtree; result discarded
      if (negate(n.value) > p.value) {
        p.value = negate(n.value);
        p.best_child = cur;  // strict raise: an exactly-evaluated child
      }
      p.finished_children += 1;
      count_elder(pid, cur);  // cur is certainly evaluated-or-finished now
      if (n.type == NodeType::kENode && p.type == NodeType::kENode)
        p.e_child_evaluated = true;
      if (is_node_complete(pid)) {
        cur = pid;  // keep backing up
        continue;
      }
      // Combine stops here: p still has live work.  p just gained (or
      // confirmed) a tentative value, which advances its own parent's
      // elder-grandchild accounting (Table 2 rows 4/5).
      const std::uint32_t gp = p.parent;
      const bool p_new_elder = gp != kNoNode && count_elder(gp, pid);
      reconsider(pid);
      if (p_new_elder && !nodes_[gp].finished) reconsider(gp);
      return;
    }
  }

  /// Mark `child` as contributing to p's elder-grandchild accounting (it has
  /// a tentative value or is finished).  Returns true the first time.
  bool count_elder(std::uint32_t parent_id, std::uint32_t child_id) {
    Node& c = nodes_[child_id];
    if (c.elder_counted) return false;
    c.elder_counted = true;
    nodes_[parent_id].elder_done += 1;
    return true;
  }

  [[nodiscard]] bool is_node_complete(std::uint32_t id) const {
    const Node& n = nodes_[id];
    if (id != 0 && n.value >= beta_of(id)) return true;  // cut off (refuted)
    return n.expanded && n.generated == child_count(n) &&
           n.finished_children == child_count(n);
  }

  /// Table 2: decide what new work `id` schedules after its state changed.
  void reconsider(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.finished) return;
    switch (n.type) {
      case NodeType::kUndecided:
        // Dormant: waits for its parent to promote or re-type it.
        return;
      case NodeType::kRNode:
        // A child combined and the node survives: schedule the next child
        // (Table 1 row 4 runs when it is popped).
        if (n.generated < child_count(n) &&
            n.generated == n.finished_children)
          push_primary(id);
        return;
      case NodeType::kENode:
        reconsider_e_node(id);
        return;
    }
  }

  void reconsider_e_node(std::uint32_t id) {
    Node& n = nodes_[id];
    if (!n.expanded) return;  // not yet popped; Table 1 will handle it
    const int d = child_count(n);
    // Table 2 row 2: mandatory first e-child selection once every elder
    // grandchild is evaluated.
    if (!n.first_e_selected && n.elder_done == d) {
      const std::uint32_t child = best_promotion_candidate(n);
      if (child != kNoNode) promote_to_e_child(id, child, /*mandatory=*/true);
    }
    // Table 2 row 3: once an e-child has been fully evaluated, refute the
    // remaining (undecided) children — all at once under parallel
    // refutation, one at a time otherwise.
    if (n.e_child_evaluated) {
      if (cfg_.speculation.parallel_refutation) {
        if (!n.refutation_dispatched) {
          n.refutation_dispatched = true;
          dispatch_refutations(id, /*all=*/true);
        }
      } else {
        dispatch_refutations(id, /*all=*/false);
      }
    }
    // Table 2 rows 1/4: speculative queue eligibility.
    if (spec_eligible(id)) push_spec(id);
  }

  void dispatch_refutations(std::uint32_t id, bool all) {
    Node& n = nodes_[id];
    if (!all) {
      // Sequential refutation: only one child under refutation at a time.
      if (n.seq_refuting != kNoNode && !nodes_[n.seq_refuting].finished) return;
      n.seq_refuting = kNoNode;
    }
    // Re-type in ascending tentative-value order (serial ER's refutation
    // order after its sort).
    std::vector<std::uint32_t> undecided;
    for (const std::uint32_t c : n.child_nodes) {
      if (c == kNoNode) continue;
      const Node& cn = nodes_[c];
      if (!cn.finished && cn.type == NodeType::kUndecided) undecided.push_back(c);
    }
    if (undecided.empty()) return;
    std::stable_sort(undecided.begin(), undecided.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                       return nodes_[a].value < nodes_[b].value;
                     });
    if (!all) {
      // Sequential refutation: take only the most promising candidate.
      Node& cn = nodes_[undecided.front()];
      cn.type = NodeType::kRNode;
      ++stats_.refutations_dispatched;
      if (!cn.in_primary && !cn.in_flight) push_primary(undecided.front());
      n.seq_refuting = undecided.front();
      return;
    }
    // Parallel refutation: dispatch every candidate.  Push in reverse of
    // the tentative order so LIFO pops refute the most promising first.
    for (auto it = undecided.rbegin(); it != undecided.rend(); ++it) {
      Node& cn = nodes_[*it];
      cn.type = NodeType::kRNode;
      ++stats_.refutations_dispatched;
      // A child that is queued or running continues its current flow; a
      // dormant one needs a fresh pop to make progress.
      if (!cn.in_primary && !cn.in_flight) push_primary(*it);
    }
  }

  const G& game_;
  EngineConfig cfg_;
  std::deque<Node> nodes_;  // stable references: children are created while
                            // parent references are live
  std::vector<Shard> shards_;
  std::uint64_t seq_ = 0;
  bool done_ = false;
  EngineStats stats_;
};

}  // namespace ers::core
