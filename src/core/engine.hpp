#pragma once
// The parallel ER problem-heap engine (paper §6).
//
// This class is the *scheduling state machine* only: it owns the shared
// search tree, the primary priority queue (scheduled work, deepest first)
// and the speculative priority queue (potential e-child selections, fewest
// e-children first, then shallower).  It keeps no clock of its own beyond
// lock accounting; executors drive it through a three-phase protocol:
//
//     acquire()  -> WorkItem        pick the next unit (Table 1 dispatch /
//                                   speculative promotion / serial subtree)
//     compute()  -> ComputeResult   the heavy, *pure* part of the unit —
//                                   child generation or a serial-ER subtree
//                                   search.  Touches no engine state, so the
//                                   thread executor runs it with no engine
//                                   lock held and the simulator charges its
//                                   cost.
//     commit()                      apply the result: mutate the tree, run
//                                   the paper's combine procedure, apply the
//                                   Table 2 actions, refill the queues.
//
// The two queues are partitioned into EngineConfig::heap_shards shards
// (paper §8's proposal of distributing the problem heap).  A node's entries
// live on the shard owning its parent (core/shard_policy.hpp), so one
// commit's pushes land on one shard.  Global pops (acquire/acquire_batch)
// scan the shard tops and are bit-identical to the single-heap order at
// every shard count; shard-local pops (acquire_shard/acquire_batch_shard)
// let an executor drain one shard in its local priority order and balance
// the rest by stealing.
//
// Concurrency model (this PR retires the executor-side global engine
// mutex; DESIGN.md §12):
//
//   * Every shard has its own lock guarding its two queues, its publish
//     list, and the queue-membership state of the nodes homed on it.  A
//     shard-local acquire takes exactly its shard's lock; a global acquire
//     takes all shard locks in ascending index order.
//   * Commits go through a *flat-combining* path: the caller publishes a
//     combine record (the batch of CommitEntry results, or a deferred
//     pop-time cutoff) to a shard's apply list and then either observes a
//     concurrent combiner apply it, or becomes the combiner itself by
//     taking combine_mu_.  The combiner snapshots every shard's publish
//     list, sorts the records by publish ticket, locks the union of the
//     records' *touch sets* in ascending shard order, and applies them
//     back to back.  A record's touch set is every shard owning entries or
//     children of any node on the committed node's ancestor chain — the
//     full footprint of commit + combine + Table 2 — so refills on
//     untouched shards never block, and the ascending order makes the lock
//     hierarchy (combine_mu_, then shard locks ascending) deadlock-free by
//     construction.
//   * Epoch publication (DESIGN.md §13): nodes at ply <
//     EngineConfig::publish_frontier are "high".  Every (value, finished)
//     mutation on a high node is additionally published through a
//     versioned atomic word, so window_of/is_dead read high ancestors
//     lock-free with epoch validation, and a commit whose node lies at or
//     below the frontier locks only the shards of chain nodes within two
//     plies of it (the *truncated touch set*) — shard 0, home of the root,
//     leaves almost every touch set, and commits on disjoint subtrees
//     never meet at a lock.  A backup that climbs past the frontier is
//     deferred and immediately resumed as a *continuation* under the full
//     ancestor-chain lock set, in the exact position the untruncated apply
//     would have run it, so the committed-state sequence is bit-identical
//     with the frontier on or off.
//   * Shard placement is pluggable (EngineConfig::placement,
//     core/shard_policy.hpp): parent-mod (default) or top-level-subtree
//     affinity, which keeps a whole subtree on one shard so truncated
//     commits on disjoint subtrees lock disjoint singleton shard sets and
//     the runtime can pin subtree shards to NUMA nodes.
//   * Node fields read across shard boundaries (ancestor windows, dead
//     checks, promotion candidacy) are relaxed atomics.  Staleness is
//     sound because node values only increase: a stale ancestor value
//     yields a *wider* (weaker) window, so a pop-time cutoff that fires
//     against a stale bound is still valid against the fresh one, and a
//     missed cutoff merely schedules work a later check cancels.
//   * Node storage is two-tier (DESIGN.md §15): the id-stable arena holds a
//     cacheline-sized *hot* record per node (published word, value/finished
//     atomics, parent/ply links) next to an id-parallel position arena,
//     while the expansion payload — frozen child positions, child-node ids,
//     ER phase bookkeeping — lives in a *cold* record allocated from the
//     home shard's slab at expansion and reclaimed (through per-shard
//     size-class freelists) when the node finishes or its subtree dies.
//     Cold records are touched only under the home shard's lock, except the
//     lock-free compute-phase reads on a node's *own* in-flight unit, which
//     the reclaimer's !in_flight guard keeps safe; commit_one releases the
//     record of a unit whose node died in flight once the unit lands.
//   * Pop order stays bit-identical at every shard count: pops use the
//     same global comparator over shard tops as the single heap, pushes
//     happen only inside combiner application (serialized by combine_mu_),
//     and a single-threaded driver publishes and immediately applies each
//     record itself, reproducing the PR-3 mutation order exactly.
//
// The batch protocol forms — the contention remedy of the paper's §6
// observation that heap serialization erodes efficiency as processors are
// added — survive unchanged:
//
//     acquire_batch(k, out)         pop up to k ready units in one locked
//                                   pass over the shard tops
//     commit_batch(span)            publish the results as one combine
//                                   record; applied back to back, so a
//                                   batch commit is exactly a sequence of
//                                   single commits in batch order
//
// Work classification follows the paper exactly:
//   * nodes at ply >= serial_depth are leaves of the *parallel* tree and are
//     resolved by one serial-ER search (the heavy unit);
//   * Table 1 governs what a node popped from the primary queue generates;
//   * the combine procedure backs values up until it reaches a node that
//     still has work below it and cannot be cut off; Table 2 (implemented in
//     reconsider()) decides what new work that node schedules;
//   * the speculative queue holds e-nodes that may select another e-child;
//     popping one promotes the node's best unpromoted child.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <queue>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "core/shard_policy.hpp"
#include "core/types.hpp"
#include "gametree/game.hpp"
#include "obs/trace.hpp"
#include "search/er_serial.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers::core {

/// Relaxed-atomic cell for node fields that are *read* across shard
/// boundaries while their owner's shard lock serializes all writes.  The
/// implicit conversions keep the scheduling code readable; every access is
/// memory_order_relaxed on purpose — cross-shard readers tolerate staleness
/// (see the monotonicity argument in the header comment), and the
/// happens-before edges they do need come from the shard mutexes.
template <typename T>
class Shared {
 public:
  constexpr Shared() noexcept = default;
  constexpr Shared(T v) noexcept : v_(v) {}
  Shared(const Shared&) = delete;
  Shared& operator=(const Shared&) = delete;
  [[nodiscard]] operator T() const noexcept {  // NOLINT(google-explicit-*)
    return v_.load(std::memory_order_relaxed);
  }
  Shared& operator=(T v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<T> v_;
};

template <Game G>
class Engine {
 public:
  using Position = typename G::Position;

  /// Result of the pure compute phase of a work unit.
  struct ComputeResult {
    /// kExpand / kSerialEvalFirst: generated (and ordered) child positions.
    std::vector<Position> child_positions;
    bool positions_computed = false;
    /// Serial units / kExpand on a terminal position: the node's value.
    Value value = 0;
    bool is_leaf = false;
    /// kSerialEvalFirst: the first child's evaluation already resolved the
    /// node (cutoff, single child, or leaf).
    bool is_done = false;
    /// Work performed, for engine totals and the simulator's cost model.
    SearchStats stats;
    /// Compute-phase duration the executor measured (virtual ns under the
    /// simulator, steady-clock ns under the thread runtime; 0 when the
    /// executor does not time units).  The waste ledger charges exactly
    /// this on cancellation, and commit_one mirrors it onto the unit's
    /// kUnitCommit trace event so ledger and trace reconcile bit for bit.
    std::uint64_t compute_ns = 0;
  };

  Engine(const G&&, EngineConfig) = delete;  // the game must outlive the engine
  Engine(const G& game, EngineConfig cfg) : game_(game), cfg_(cfg) {
    ERS_CHECK(cfg_.search_depth >= 0);
    ERS_CHECK(cfg_.heap_shards >= 1);
    cfg_.serial_depth = std::clamp(cfg_.serial_depth, 0, cfg_.search_depth);
    if (cfg_.publish_frontier < 0)
      cfg_.publish_frontier = derived_publish_frontier(
          cfg_.search_depth, cfg_.serial_depth, cfg_.heap_shards);
    for (int s = 0; s < cfg_.heap_shards; ++s) shards_.emplace_back();
    for (Shard& sh : shards_)
      sh.spec_budget.store(
          static_cast<std::uint32_t>(cfg_.spec_control.budget_max),
          std::memory_order_relaxed);
    if constexpr (obs::kTracingEnabled) {
      if (cfg_.trace != nullptr) cfg_.trace->ensure_shards(shards_.size());
    }
    // Construction is single-threaded: seeding the root needs no locks.
    make_node(game_.root(), kNoNode, 0, NodeType::kENode, 0,
              /*subtree=*/0u);
    push_primary(0);
  }

  /// One unit of a batched commit: the acquired item and its compute result.
  struct CommitEntry {
    WorkItem item;
    ComputeResult result;
  };

 private:
  struct PrimaryEntry {
    std::int32_t ply;
    std::uint64_t seq;
    std::uint32_t node;
    /// Deepest first; LIFO among equals, so a processor keeps descending
    /// into the subtree it just expanded (depth-first focus).  At P=1 this
    /// makes the schedule coincide with serial ER's recursion order.
    bool operator<(const PrimaryEntry& o) const noexcept {
      if (ply != o.ply) return ply < o.ply;
      return seq < o.seq;
    }
  };

  struct SpecEntry {
    /// Policy-dependent ranking keys, smaller = scheduled sooner (see
    /// SpecRankPolicy and spec_keys_for).
    std::int64_t key1;
    std::int64_t key2;
    std::uint64_t seq;
    std::uint32_t node;
    std::uint64_t spec_seq;
    bool operator<(const SpecEntry& o) const noexcept {
      if (key1 != o.key1) return key1 > o.key1;
      if (key2 != o.key2) return key2 > o.key2;
      return seq > o.seq;
    }
  };

  /// One published flat-combining operation.  Records live on the
  /// publisher's stack: the publisher blocks (publishing thread) or drains
  /// (combiner) until `applied` is set, so the pointer in a shard's publish
  /// list never dangles.
  struct ApplyRecord {
    enum class Kind : std::uint8_t {
      kCommit,  ///< apply `entries` back to back (a commit_batch)
      kFinish,  ///< deferred pop-time cutoff: finish_and_combine(finish_node)
    };
    Kind kind = Kind::kCommit;
    std::span<CommitEntry> entries{};
    std::uint32_t finish_node = kNoNode;
    /// kFinish: the cutoff was against the node's own bound (traced as a
    /// kSpecCancel), not the empty-window parent finish (untraced, matching
    /// the pre-sharded engine).
    bool traced_cutoff = false;
    std::uint64_t ticket = 0;
    std::atomic<bool>* applied = nullptr;
  };

  /// A pop-time cutoff detected under an acquire's shard locks.  The
  /// finish walks a cross-shard ancestor chain, so the acquire releases
  /// its locks, publishes a kFinish record, combines, and retries — which
  /// single-threaded reproduces the old pop -> finish -> keep-popping
  /// sequence exactly.
  struct DeferredFinish {
    std::uint32_t node = kNoNode;  ///< kNoNode = nothing deferred
    bool traced = false;
  };

  /// Per-shard slab allocator for cold expansion records (ColdRecord,
  /// defined with the node storage below).  No internal lock: every call
  /// happens while the owning shard's queue mutex is held — allocation
  /// inside a combiner's apply section (whose touch set always includes the
  /// expanding node's home shard) and reclamation under the same lock at
  /// finish/dead-drop time.  Blocks are grouped into power-of-two
  /// child-capacity size classes and recycled through per-class freelists,
  /// so steady-state expansion after warmup performs no heap allocation;
  /// chunk memory is never returned to the OS, which keeps every block
  /// address stable for the magic-word poisoning reclaim writes
  /// (use-after-reclaim detection, ERS_DCHECKed in checked_cold).
  class ColdSlab {
   public:
    ColdSlab() = default;
    ColdSlab(const ColdSlab&) = delete;
    ColdSlab& operator=(const ColdSlab&) = delete;

    static constexpr int kClasses = 8;  ///< capacities 1, 2, 4, ..., 128

    /// A block for class `cls` (block_bytes = the class's fixed size, a
    /// multiple of 16): freelist head if one is free, else carved from the
    /// current chunk's bump pointer.
    [[nodiscard]] void* take(int cls, std::size_t block_bytes) {
      if (void* p = free_[static_cast<std::size_t>(cls)]; p != nullptr) {
        free_[static_cast<std::size_t>(cls)] = next_of(p);
        return p;
      }
      if (static_cast<std::size_t>(chunk_end_ - bump_) < block_bytes)
        new_chunk(block_bytes);
      void* p = bump_;
      bump_ += block_bytes;
      return p;
    }

    /// Return a block to its class freelist.  The link lives at byte
    /// offset 8, leaving the record's leading magic word intact as the
    /// reclaim poison (ColdRecord::kDeadMagic).
    void put(int cls, void* p) {
      next_of(p) = free_[static_cast<std::size_t>(cls)];
      free_[static_cast<std::size_t>(cls)] = p;
    }

    /// Bytes of chunk memory reserved.  Monotone — freelists recycle
    /// *inside* chunks and chunks live until the engine dies — so the
    /// current value is also the peak.
    [[nodiscard]] std::uint64_t reserved_bytes() const noexcept {
      return reserved_;
    }

   private:
    static constexpr std::size_t kChunkBytes = std::size_t{1} << 16;  // 64 KiB

    [[nodiscard]] static void*& next_of(void* p) noexcept {
      return *reinterpret_cast<void**>(static_cast<std::byte*>(p) + 8);
    }

    void new_chunk(std::size_t min_bytes) {
      const std::size_t n = std::max(kChunkBytes, min_bytes);
      chunks_.push_back(std::make_unique<std::byte[]>(n));
      bump_ = chunks_.back().get();
      chunk_end_ = bump_ + n;
      reserved_ += n;
    }

    std::array<void*, kClasses> free_{};
    std::byte* bump_ = nullptr;
    std::byte* chunk_end_ = nullptr;
    std::vector<std::unique_ptr<std::byte[]>> chunks_;
    std::uint64_t reserved_ = 0;
  };

  /// One slice of the problem heap: the primary and speculative queues for
  /// the nodes homed here, the shard's lock, and its flat-combining publish
  /// list.  Entry comparators are global (ply/keys + global seq), so within
  /// a shard the paper's priority order is preserved and across shards the
  /// tops reconstruct the global order exactly.
  struct Shard {
    std::priority_queue<PrimaryEntry> primary;
    std::priority_queue<SpecEntry> spec;
    /// Guards the queues and the queue-membership state (in_primary,
    /// in_flight, on_spec, spec_seq, and every plain field) of nodes homed
    /// here.  Writers are acquires on this shard and combiners whose touch
    /// set includes it.
    mutable std::mutex mu;
    /// Guards `pending` only — a leaf lock publishers take without mu so a
    /// publish never waits behind a long apply.
    mutable std::mutex pending_mu;
    std::vector<ApplyRecord*> pending;
    // Counted lock sections attributed to this shard (guarded by mu).
    std::uint64_t lock_acquisitions = 0;
    std::uint64_t lock_wait_ns = 0;
    std::uint64_t lock_hold_ns = 0;
    /// ++ under mu; read lock-free when stats() folds the aggregate.
    std::atomic<std::uint64_t> dead_drops{0};
    /// Waste-ledger kDeadDrop cancels by ply band: queue entries (primary
    /// and speculative) discarded at acquire time because the node's
    /// subtree had already died.  ++ under mu like dead_drops; folded
    /// lock-free by waste_stats().
    std::array<std::atomic<std::uint64_t>, kWastePlyBands> waste_drops{};
    /// Cold-record slab for the nodes homed here, plus its occupancy
    /// counters — all guarded by mu, like the queues (allocation happens
    /// inside apply sections whose touch set includes this shard,
    /// reclamation under an acquire or apply holding this lock).
    ColdSlab slab;
    std::uint64_t cold_allocated = 0;  ///< cold records ever allocated
    std::uint64_t cold_live = 0;       ///< currently attached
    std::uint64_t cold_reclaimed = 0;  ///< returned (finish / dead subtree)
    // Steal-aware speculation control (DESIGN.md §17).  All relaxed
    // atomics: the executor's steal feedback and the stats snapshots read
    // or write them without this shard's lock; the pop-side counters are
    // bumped while mu happens to be held, but nothing relies on that.
    /// Speculative entries re-pushed at pop time because their rank
    /// decayed (sibling bounds tightened / steal pressure rose), by ply
    /// band — the waste ledger's kSpecDemoted cancel row.
    std::array<std::atomic<std::uint64_t>, kWastePlyBands> spec_demotes{};
    /// Entries re-pushed after the published window moved past their best
    /// candidate entirely — the kSpecRewindowed cancel row.
    std::array<std::atomic<std::uint64_t>, kWastePlyBands> spec_rewindows{};
    /// Spec pops skipped because this shard was at its speculation budget.
    std::atomic<std::uint64_t> spec_budget_deferrals{0};
    /// Speculative promotions in flight from this shard: ++ when a
    /// kPromote item is emitted, -- when it commits.
    std::atomic<std::uint32_t> spec_inflight{0};
    /// Live cap on spec_inflight, recomputed each combine round from the
    /// waste ledger's speculative-loss share (refresh_spec_control).
    std::atomic<std::uint32_t> spec_budget{64};
    /// Decaying count of executor steals that took work homed here — the
    /// kStealAware ranker's pressure signal (note_steal feeds it, the
    /// combiner decays it).
    std::atomic<std::uint64_t> steal_pressure{0};
  };

  /// Sentinel for "pop the globally best entry over every shard".
  static constexpr std::size_t kAnyShard = std::numeric_limits<std::size_t>::max();

  struct Node;        // defined with the storage arena below
  struct ColdRecord;  // slab-resident expansion payload, defined with Node

 public:
  /// Caller-owned handle for a commit published without combining
  /// (publish_commit below).  Must outlive the record's application.
  struct PendingCommit {
    PendingCommit() = default;
    PendingCommit(const PendingCommit&) = delete;
    PendingCommit& operator=(const PendingCommit&) = delete;
    std::atomic<bool> applied{false};

   private:
    friend class Engine;
    ApplyRecord record{};
  };

  // --- executor protocol -------------------------------------------------

  [[nodiscard]] std::optional<WorkItem> acquire() {
    WorkItem buf;
    return acquire_fill(kAnyShard, std::span<WorkItem>(&buf, 1)) == 1
               ? std::optional<WorkItem>(buf)
               : std::nullopt;
  }

  /// Shard-local acquire: pop the best ready unit of shard `s` only (its
  /// own priority order; never touches other shards' queues or locks).  The
  /// thread runtime's steal loop drains a worker's home shard through this
  /// before probing victims.
  [[nodiscard]] std::optional<WorkItem> acquire_shard(std::size_t s) {
    WorkItem buf;
    return acquire_fill(fold_shard(s, shards_.size()),
                        std::span<WorkItem>(&buf, 1)) == 1
               ? std::optional<WorkItem>(buf)
               : std::nullopt;
  }

  /// Batch form of acquire(): pop up to `k` ready units in one locked pass,
  /// appending them to `out`.  Returns the number acquired.
  std::size_t acquire_batch(std::size_t k, std::vector<WorkItem>& out) {
    return acquire_batch_from(kAnyShard, k, out);
  }

  /// Batch form of acquire_shard(): up to `k` units from shard `s` alone.
  std::size_t acquire_batch_shard(std::size_t s, std::size_t k,
                                  std::vector<WorkItem>& out) {
    return acquire_batch_from(fold_shard(s, shards_.size()), k, out);
  }

  void commit(const WorkItem& item, ComputeResult&& r) {
    CommitEntry e{item, std::move(r)};
    commit_batch(std::span<CommitEntry>(&e, 1));
  }

  /// Batch form of commit(): publish the results as one flat-combining
  /// record and block until some combiner — usually this thread — applies
  /// it.  Application is exactly a sequence of single commits executed
  /// back to back in batch order; the combine procedure only requires
  /// commits to be serialized, never that they interleave at any particular
  /// granularity, so batching changes the schedule but not the result (the
  /// root value is schedule-independent).  Entries are consumed (results
  /// moved from).  Returns true when a *concurrent* combiner applied the
  /// record — the caller never took a shard lock (the stealing runtime
  /// counts these as flush deferrals).
  bool commit_batch(std::span<CommitEntry> batch) {
    if (batch.empty()) return false;
    std::atomic<bool> applied{false};
    ApplyRecord rec;
    rec.kind = ApplyRecord::Kind::kCommit;
    rec.entries = batch;
    rec.applied = &applied;
    // Uncontended fast path: the combine lock is free, so skip the publish
    // queue entirely — become the combiner and apply this record (after
    // any peers' published ones) in one round.  Behaviorally identical to
    // publish + immediate self-combine, minus a pending-queue round-trip
    // per commit; a sequential driver always takes this branch, so the
    // single-threaded schedule is untouched.
    if (combine_mu_.try_lock()) {
      drain_round_with(&rec);
      combine_mu_.unlock();
      ERS_CHECK(applied.load(std::memory_order_acquire));
      return false;
    }
    publish(rec, home_shard(batch.front().item.node),
            static_cast<std::uint32_t>(batch.size()));
    return combine_until_applied(applied);
  }

  /// Opportunistic combine: become the combiner if nobody else is, drain
  /// every published record, and return true.  False means a peer holds the
  /// combine lock — the caller's published records will ride that peer's
  /// round or a later one (check their PendingCommit::applied).  This is
  /// the non-blocking half of the asynchronous commit path: publish_commit
  /// + try_combine lets an executor keep computing through a contended
  /// commit instead of convoying behind the current combiner.
  bool try_combine() {
    if (!combine_mu_.try_lock()) return false;
    drain_round();
    combine_mu_.unlock();
    return true;
  }

  /// Non-blocking commit: if the combine lock is free, become the combiner
  /// and apply `batch` (after any published peers) in one round, returning
  /// true with the entries consumed.  Returns false — entries untouched —
  /// when a peer holds the lock; the caller publishes them instead
  /// (publish_commit) and keeps working.  The stealing executor's flush
  /// rides this so an uncontended commit costs one try_lock plus the
  /// touch-set shard locks and never a pending-queue round-trip.
  bool try_commit_batch(std::span<CommitEntry> batch) {
    if (batch.empty()) return true;
    if (!combine_mu_.try_lock()) return false;
    std::atomic<bool> applied{false};
    ApplyRecord rec;
    rec.kind = ApplyRecord::Kind::kCommit;
    rec.entries = batch;
    rec.applied = &applied;
    drain_round_with(&rec);
    combine_mu_.unlock();
    ERS_CHECK(applied.load(std::memory_order_acquire));
    return true;
  }

  // --- asynchronous commit path (stealing executor + tests/core) ----------

  /// Publish `batch` as a combine record *without* combining.  `batch` and
  /// `pc` must stay alive until some combiner applies the record —
  /// combine_published() below, or any concurrent commit path.
  void publish_commit(std::span<CommitEntry> batch, PendingCommit& pc) {
    ERS_CHECK(!batch.empty());
    pc.record.kind = ApplyRecord::Kind::kCommit;
    pc.record.entries = batch;
    pc.record.applied = &pc.applied;
    publish(pc.record, home_shard(batch.front().item.node),
            static_cast<std::uint32_t>(batch.size()));
  }

  /// Become the combiner and drain one full round: every record published
  /// so far is applied, in publish-ticket order.
  void combine_published() {
    std::scoped_lock lk(combine_mu_);
    drain_round();
  }

  // --- queue observers ----------------------------------------------------

  /// Entries currently queued (primary + speculative) across all shards.
  /// An upper bound — lazily-invalidated stale entries are counted — which
  /// is all the thread runtime needs to size its wakeups to the work
  /// actually available.  Takes each shard lock briefly (uncounted).
  [[nodiscard]] std::size_t queued_count() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::scoped_lock lk(s.mu);
      n += s.primary.size() + s.spec.size();
    }
    return n;
  }

  /// Queued entries (upper bound, stale included) in shard `s` alone.
  [[nodiscard]] std::size_t queued_count_shard(std::size_t s) const {
    const Shard& sh = shards_[fold_shard(s, shards_.size())];
    std::scoped_lock lk(sh.mu);
    return sh.primary.size() + sh.spec.size();
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// The epoch-publication frontier this engine actually runs with: the
  /// configured value, or — when the config was left at kAdaptiveFrontier —
  /// the derived_publish_frontier resolution done at construction.
  [[nodiscard]] int publish_frontier() const noexcept {
    return cfg_.publish_frontier;
  }

  /// The shard a node's queue entries live in, under the configured
  /// placement (core/shard_policy.hpp): the shard owning its parent
  /// (kParentMod, so one commit's children colocate) or its top-level
  /// subtree's shard (kSubtreeAffinity).  Lock-free: parent links and
  /// subtree tags are immutable.
  [[nodiscard]] std::size_t home_shard(std::uint32_t id) const noexcept {
    const Node& n = nodes_[id];
    return cfg_.placement == PlacementMode::kSubtreeAffinity
               ? subtree_shard_of(id, n.subtree, shards_.size())
               : home_shard_of(n.parent, shards_.size());
  }

  /// Append the ascending, deduplicated set of shards a commit on `id` may
  /// lock: the frontier-truncated set when the commit is eligible, else
  /// every shard owning entries or children of any chain node.  Lock-free
  /// (the chain is immutable); the simulator charges its routed contention
  /// model from exactly this set.
  void commit_touch_shards(std::uint32_t id,
                           std::vector<std::uint32_t>& out) const {
    const std::size_t S = shards_.size();
    std::array<std::uint8_t, kMaxShards> seen{};
    ERS_CHECK(S <= seen.size());
    (void)mark_touch_for_commit(id, seen.data());
    for (std::size_t s = 0; s < S; ++s)
      if (seen[s] != 0) out.push_back(static_cast<std::uint32_t>(s));
  }

  /// Chain ancestors of `id` a commit reads through the epoch-published
  /// word instead of under a lock: ancestors above the frontier, when the
  /// commit's touch set is truncated.  The simulator charges these as
  /// lock-free validated reads (CostModel::per_published_read) rather than
  /// shard occupancy.
  [[nodiscard]] std::size_t published_ancestors(std::uint32_t id) const {
    if (!truncation_eligible(id)) return 0;
    std::size_t n = 0;
    for (std::uint32_t a = nodes_[id].parent; a != kNoNode;
         a = nodes_[a].parent)
      if (nodes_[a].ply < cfg_.publish_frontier) ++n;
    return n;
  }

 private:
  std::size_t acquire_batch_from(std::size_t shard, std::size_t k,
                                 std::vector<WorkItem>& out) {
    const std::size_t base = out.size();
    out.resize(base + k);
    const std::size_t got =
        acquire_fill(shard, std::span<WorkItem>(out).subspan(base));
    out.resize(base + got);
    return got;
  }

  /// Acquire driver: repeat locked popping passes, handling deferred
  /// pop-time cutoffs between passes, until `out` is full or the visible
  /// queues are drained.
  std::size_t acquire_fill(std::size_t shard, std::span<WorkItem> out) {
    std::size_t got = 0;
    for (;;) {
      DeferredFinish d{};
      if (shard == kAnyShard && shards_.size() > 1) {
        // Lock-order invariant (closes the DESIGN.md §12 caveat): the
        // global scan acquires every shard lock in one ascending pass from
        // an empty hold set — the same discipline as a combiner's
        // per-record apply section, whose (possibly frontier-truncated)
        // lock set is an ascending subset also taken from empty hands.
        // Two ascending passes over subsets of one total order cannot
        // cycle, so truncation changes which commits this scan waits for
        // (those touching any shard, no longer just those touching shard
        // 0) but can never deadlock against one.  A continuation
        // escalation (resolve_deferred_backup) keeps the discipline by
        // fully releasing the truncated set before taking the full one.
        // (The matching debug assertion lives in lock_ascending, the one
        // place combiner sections acquire shard locks.)
        const auto t0 = Clock::now();
        for (Shard& sh : shards_) sh.mu.lock();
        const auto t1 = Clock::now();
        got += acquire_under_locks(shard, out.subspan(got), d);
        const auto t2 = Clock::now();
        // Multi-lock counters are relaxed atomics: with truncated touch
        // sets an apply section need not hold shard 0, so the global
        // scan's writes are no longer serialized against the combiner's
        // through any one fixed mutex.
        multi_acquisitions_.fetch_add(1, std::memory_order_relaxed);
        multi_wait_ns_.fetch_add(delta_ns(t0, t1), std::memory_order_relaxed);
        multi_hold_ns_.fetch_add(delta_ns(t1, t2), std::memory_order_relaxed);
        for (auto it = shards_.rbegin(); it != shards_.rend(); ++it)
          it->mu.unlock();
        trace_lock_section(t0, t1, t2, obs::kNoTraceShard);
      } else {
        const std::size_t s = shard == kAnyShard ? 0 : shard;
        Shard& sh = shards_[s];
        const auto t0 = Clock::now();
        sh.mu.lock();
        const auto t1 = Clock::now();
        got += acquire_under_locks(shard, out.subspan(got), d);
        const auto t2 = Clock::now();
        sh.lock_acquisitions += 1;
        sh.lock_wait_ns += delta_ns(t0, t1);
        sh.lock_hold_ns += delta_ns(t1, t2);
        sh.mu.unlock();
        trace_lock_section(t0, t1, t2, static_cast<std::uint16_t>(s));
      }
      if (d.node == kNoNode) return got;  // filled, or queues drained
      apply_deferred_finish(d);
      if (got == out.size()) return got;
    }
  }

  /// One locked popping pass; caller holds the lock(s) covering `shard`.
  /// Mirrors the pre-sharded acquire loop exactly, except that a pop-time
  /// cutoff is reported through `d` for the caller to combine instead of
  /// finishing inline.
  std::size_t acquire_under_locks(std::size_t shard, std::span<WorkItem> out,
                                  DeferredFinish& d) {
    std::size_t got = 0;
    while (got < out.size()) {
      auto popped = pop_primary(shard);
      if (!popped) break;
      const PrimaryEntry e = *popped;
      Node& n = nodes_[e.node];
      if (!n.in_primary) continue;  // stale entry
      n.in_primary = false;
      if (n.finished || is_dead(e.node)) {
        const std::size_t owner = home_shard(e.node);
        shards_[owner].dead_drops.fetch_add(1, std::memory_order_relaxed);
        note_dead_drop(owner, e.node);
        trace_shard_instant(owner, obs::EventKind::kSpecCancel, e.node,
                            /*arg=*/0);
        // The popped entry's home-shard lock is held, so a dead node's own
        // expansion payload can be returned right here.  Only the node's
        // record: its children live on shards this (possibly shard-local)
        // acquire does not hold — deeper dead descendants are reclaimed
        // lazily, at their own pops and commits.
        reclaim_cold(e.node);
        continue;
      }
      // Pop-time cutoff: the node's tentative value may already refute it
      // against the parent's *current* bound.  (A stale bound read is
      // sound: bounds only tighten, so a cutoff seen stale holds fresh.)
      if (n.parent != kNoNode && n.value >= beta_of(e.node)) {
        d = DeferredFinish{e.node, /*traced=*/true};
        return got;
      }
      if (n.ply >= cfg_.serial_depth) {
        const Window w = window_of(e.node);
        if (!w.is_open()) {
          // Empty window: an ancestor's bound already refutes the parent.
          // Finish the parent instead of searching nothing.
          d = DeferredFinish{n.parent, /*traced=*/false};
          return got;
        }
        n.in_flight = true;
        out[got++] = WorkItem{e.node,  serial_kind(n), w, n.value, n.type, &n,
                              &positions_[e.node]};
        continue;
      }
      n.in_flight = true;
      out[got++] = WorkItem{e.node,  WorkKind::kExpand, full_window(),
                            -kValueInf, n.type,          &n,
                            &positions_[e.node]};
    }
    while (got < out.size()) {
      auto popped = pop_spec(shard);
      if (!popped) break;
      const SpecEntry e = *popped;
      Node& n = nodes_[e.node];
      if (!n.on_spec() || e.spec_seq != n.spec_seq()) continue;  // stale
      n.set_on_spec(false);
      if (n.finished || is_dead(e.node)) {
        // A dead speculative entry is a dropped queue item exactly like the
        // primary case above: count and trace it so the waste ledger and
        // trace_report see every discarded entry, not just primary ones.
        const std::size_t owner = home_shard(e.node);
        note_dead_drop(owner, e.node);
        trace_shard_instant(owner, obs::EventKind::kSpecCancel, e.node,
                            /*arg=*/0);
        reclaim_cold(e.node);
        continue;
      }
      if (!spec_eligible(e.node)) continue;
      // Bound-driven demotion (DESIGN.md §17): re-rank the entry against
      // the *current* published bounds and steal pressure before spending
      // a promotion on it.  A strictly decayed rank goes back through
      // push_spec — whose spec_seq bump lazily invalidates any other
      // queued copy, the exact staleness path pop-order determinism
      // already relies on — and is classified for the waste ledger as a
      // re-window (the window moved past the candidate entirely) or a
      // plain demotion.  Strict decay bounds the re-pushes: an entry
      // whose rank is stable, however poor, is promoted rather than spun.
      if (cfg_.spec_control.bound_demote) {
        const auto [k1, k2] = spec_keys_for(e.node);
        if (k1 > e.key1) {
          const std::size_t owner = home_shard(e.node);
          const std::size_t band =
              waste_band_of(static_cast<std::uint32_t>(n.ply));
          const std::uint32_t cand = best_promotion_candidate(n);
          const bool closed =
              cand == kNoNode ||
              negate(static_cast<Value>(nodes_[cand].value)) <=
                  window_of(e.node).alpha;
          auto& row = closed ? shards_[owner].spec_rewindows
                             : shards_[owner].spec_demotes;
          row[band].fetch_add(1, std::memory_order_relaxed);
          const bool steal_driven =
              !closed && cfg_.spec_control.steal_feedback &&
              shards_[owner].steal_pressure.load(
                  std::memory_order_relaxed) != 0;
          trace_shard_instant(owner,
                              closed ? obs::EventKind::kSpecRewindow
                                     : obs::EventKind::kSpecDemote,
                              e.node, steal_driven ? 1u : 0u);
          push_spec(e.node);
          continue;
        }
      }
      shards_[home_shard(e.node)].spec_inflight.fetch_add(
          1, std::memory_order_relaxed);
      out[got++] = WorkItem{e.node,  WorkKind::kPromote, full_window(),
                            -kValueInf, n.type,           &n,
                            &positions_[e.node]};
    }
    return got;
  }

  /// Pop the best live primary entry — of one shard, or globally.  The
  /// global pop scans the shard tops: each shard is a max-heap under the
  /// same comparator (global seq tiebreak included), so the maximum over
  /// tops *is* the single-heap maximum and the global pop sequence is
  /// bit-identical at every shard count.
  [[nodiscard]] std::optional<PrimaryEntry> pop_primary(std::size_t shard) {
    Shard* best = nullptr;
    if (shard == kAnyShard) {
      for (Shard& s : shards_) {
        if (s.primary.empty()) continue;
        if (best == nullptr || best->primary.top() < s.primary.top()) best = &s;
      }
    } else if (!shards_[shard].primary.empty()) {
      best = &shards_[shard];
    }
    if (best == nullptr) return std::nullopt;
    const PrimaryEntry e = best->primary.top();
    best->primary.pop();
    return e;
  }

  /// As pop_primary, over the speculative queues, with two additions: the
  /// scan caches the running best top instead of re-peeking `best`'s heap
  /// on every comparison (top() is not free — it re-derefs the heap array
  /// each call, and the old form peeked both sides per shard), and a shard
  /// at its speculation budget is skipped entirely (counted as a
  /// deferral).  With spec_control off the budget gate never fires and the
  /// pop sequence is bit-identical to the single-heap order, as before.
  [[nodiscard]] std::optional<SpecEntry> pop_spec(std::size_t shard) {
    Shard* best = nullptr;
    const SpecEntry* best_top = nullptr;
    if (shard == kAnyShard) {
      for (Shard& s : shards_) {
        if (s.spec.empty() || spec_over_budget(s)) continue;
        const SpecEntry& top = s.spec.top();
        if (best_top == nullptr || *best_top < top) {
          best = &s;
          best_top = &top;
        }
      }
    } else if (!shards_[shard].spec.empty() &&
               !spec_over_budget(shards_[shard])) {
      best = &shards_[shard];
    }
    if (best == nullptr) return std::nullopt;
    const SpecEntry e = best->spec.top();
    best->spec.pop();
    return e;
  }

  /// True when the speculation budget bars popping from this shard right
  /// now; counts the deferral.  Always false with the budget policy off.
  [[nodiscard]] bool spec_over_budget(Shard& s) {
    if (!cfg_.spec_control.budget) return false;
    if (s.spec_inflight.load(std::memory_order_relaxed) <
        s.spec_budget.load(std::memory_order_relaxed))
      return false;
    s.spec_budget_deferrals.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

 public:
  /// Pure phase; safe to run concurrently with acquire/commit on other
  /// items.  Reads only fields frozen while the item is in flight.
  [[nodiscard]] ComputeResult compute(const WorkItem& item) const {
    return compute(item, cfg_.shared_table);
  }

  /// As above, with an explicit transposition table overriding the
  /// configured one (the thread runtime's per-worker-table mode hands each
  /// worker its private table).  The table is only read/written here, never
  /// by acquire/commit, so concurrent compute calls share it freely.
  [[nodiscard]] ComputeResult compute(const WorkItem& item,
                                      ConcurrentTranspositionTable* tt) const {
    ComputeResult out;
    compute_into(item, tt, out);
    return out;
  }

  /// compute() into a caller-owned result, reusing its buffers: the child
  /// vector is cleared but keeps its capacity, so an executor that recycles
  /// ComputeResults across units makes the expansion path allocation-free
  /// at steady state (the commit side *copies* child positions into the
  /// cold slab, so the buffer always comes back intact).
  void compute_into(const WorkItem& item, ComputeResult& out) const {
    compute_into(item, cfg_.shared_table, out);
  }

  void compute_into(const WorkItem& item, ConcurrentTranspositionTable* tt,
                    ComputeResult& out) const {
    // Use the pointers captured under the shard lock: indexing nodes_ or
    // positions_ here would race with commits growing the arenas on other
    // threads.
    const Node& n = *static_cast<const Node*>(item.node_ref);
    const Position& pos = *static_cast<const Position*>(item.pos_ref);
    out.child_positions.clear();
    out.positions_computed = false;
    out.value = 0;
    out.is_leaf = false;
    out.is_done = false;
    out.stats = {};
    out.compute_ns = 0;
    ErSerialSearcher<G> searcher(game_, cfg_.search_depth, cfg_.ordering);
    searcher.with_shared_table(tt);
    searcher.with_ordering_tables(cfg_.order_tables);
    switch (item.kind) {
      case WorkKind::kPromote:
        break;  // nothing heavy
      case WorkKind::kSerialFull: {
        const SearchResult r = searcher.run_from(pos, n.ply, item.window);
        out.value = r.value;
        out.stats = r.stats;
        break;
      }
      case WorkKind::kSerialEvalFirst: {
        auto r = searcher.eval_first_from(pos, n.ply, item.window);
        out.value = r.value;
        out.is_done = r.done || r.children.empty();
        out.child_positions = std::move(r.children);
        out.stats = r.stats;
        break;
      }
      case WorkKind::kSerialRefuteRest: {
        // The frozen child order lives in the node's cold record, read
        // lock-free here: the node is in flight for exactly this unit, and
        // reclaim_cold never touches an in-flight node's record.
        const ColdRecord* c = n.cold;
        ERS_CHECK(c != nullptr);
        const SearchResult r = searcher.refute_rest_from(
            pos, n.ply, item.window, item.tentative,
            std::span<const Position>(c->positions(), c->count));
        out.value = r.value;
        out.stats = r.stats;
        break;
      }
      case WorkKind::kSerialRefute: {
        const SearchResult r = searcher.refute_from(pos, n.ply, item.window);
        out.value = r.value;
        out.stats = r.stats;
        break;
      }
      case WorkKind::kExpand: {
        if (n.expanded()) break;  // positions already known (promoted e-child)
        [[maybe_unused]] std::uint16_t order_hint = 0;
        if constexpr (HashedGame<G>) {
          // An exact entry covering the full remaining depth resolves the
          // node without expanding its subtree — this is how one worker's
          // finished subtree short-circuits another's parallel-tree node.
          if (tt != nullptr) {
            ++out.stats.tt_probes;
            TtHit h;
            if (tt->probe(pos.tt_key(), h)) {
              // Any validated hit carries the stored best-move
              // fingerprint, reused below to front the TT move.
              order_hint = h.move_hint;
              if (h.depth >= cfg_.search_depth - n.ply &&
                  h.bound == BoundKind::kExact) {
                ++out.stats.tt_hits;
                out.positions_computed = true;
                out.is_leaf = true;
                out.value = h.value;
                break;
              }
            }
          }
        }
        out.positions_computed = true;
        game_.generate_children(pos, out.child_positions);
        if (out.child_positions.empty()) {
          out.is_leaf = true;
          out.value = game_.evaluate(pos);
          out.stats.leaves_evaluated += 1;
          if constexpr (HashedGame<G>) {
            if (tt != nullptr) {
              tt->store(pos.tt_key(), out.value, cfg_.search_depth - n.ply,
                        BoundKind::kExact);
              ++out.stats.tt_stores;
            }
          }
          break;
        }
        out.stats.interior_expanded += 1;
        // Paper §7: children of e-nodes are never statically sorted.  Use
        // the role frozen at acquire: the live field may be re-typed by a
        // concurrent commit while this unit runs (WorkItem::ntype).  With
        // shared ordering tables attached the sort additionally fronts
        // the TT move and killers and breaks ties by history credit —
        // with empty tables this reduces to the identical static
        // permutation (see sort_children_ordered).
        if (item.ntype != NodeType::kENode &&
            cfg_.ordering.should_sort(n.ply)) {
          bool sorted_with_tables = false;
          if constexpr (HashedGame<G>) {
            if (cfg_.order_tables != nullptr) {
              sort_children_ordered(game_, out.child_positions, out.stats,
                                    *cfg_.order_tables, n.ply + 1,
                                    order_hint);
              sorted_with_tables = true;
            }
          }
          if (!sorted_with_tables)
            sort_children_by_static_value(game_, out.child_positions,
                                          out.stats);
        }
        break;
      }
    }
  }

  /// Executor feedback (DESIGN.md §17): a stealing worker took a unit
  /// homed on `node`'s shard.  Bumps that shard's decaying pressure
  /// signal — read by the kStealAware ranker — and the global steal tally.
  /// Lock-free and advisory; a no-op unless steal feedback is enabled, so
  /// the sim executor (which never steals) and disabled configs remain
  /// bit-identical.
  void note_steal(std::uint32_t node) noexcept {
    if (!cfg_.spec_control.steal_feedback) return;
    shards_[home_shard(node)].steal_pressure.fetch_add(
        1, std::memory_order_relaxed);
    steal_events_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- run observers -------------------------------------------------------

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] Value root_value() const noexcept {
    return nodes_[0].value;
  }

  /// Position of the root child that achieved the root value — the move to
  /// play.  Empty when the root was resolved inside a single serial unit
  /// (serial_depth == 0) or is a leaf.
  [[nodiscard]] std::optional<Position> best_root_position() const {
    std::scoped_lock lk(combine_mu_);
    const std::uint32_t b = nodes_[0].best_child;
    if (b == kNoNode) return std::nullopt;
    return positions_[b];  // the position arena is never reclaimed
  }

  /// Aggregate engine counters.  Returns a snapshot by value: the shard-
  /// local dead-drop tallies are folded in and the combiner-owned counters
  /// read under combine_mu_.
  [[nodiscard]] EngineStats stats() const {
    EngineStats out;
    {
      std::scoped_lock lk(combine_mu_);
      out = stats_;
    }
    for (const Shard& s : shards_) {
      out.dead_items_dropped += s.dead_drops.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kWastePlyBands; ++b) {
        out.spec_demotions +=
            s.spec_demotes[b].load(std::memory_order_relaxed);
        out.spec_rewindows +=
            s.spec_rewindows[b].load(std::memory_order_relaxed);
      }
      out.spec_budget_deferrals +=
          s.spec_budget_deferrals.load(std::memory_order_relaxed);
    }
    out.steal_events = steal_events_.load(std::memory_order_relaxed);
    return out;
  }

  /// Snapshot of the wasted-work attribution ledger (DESIGN.md §16): the
  /// combiner-owned kill cells read under combine_mu_, with the shard-side
  /// dead-drop tallies folded into the kDeadDrop cancel row.  Cheap enough
  /// for the sampler to call every tick.
  [[nodiscard]] EngineWasteStats waste_stats() const {
    EngineWasteStats out;
    {
      std::scoped_lock lk(combine_mu_);
      out = waste_;
    }
    const auto dd = static_cast<std::size_t>(WasteCause::kDeadDrop);
    const auto sd = static_cast<std::size_t>(WasteCause::kSpecDemoted);
    const auto sr = static_cast<std::size_t>(WasteCause::kSpecRewindowed);
    for (const Shard& s : shards_)
      for (std::size_t b = 0; b < kWastePlyBands; ++b) {
        out.cancels[dd][b] += s.waste_drops[b].load(std::memory_order_relaxed);
        // Demotions and re-windows are entry-level events: a re-pushed
        // entry costs a queue round-trip, never committed subtree work,
        // so these rows carry cancels only (units/ns stay zero).
        out.cancels[sd][b] +=
            s.spec_demotes[b].load(std::memory_order_relaxed);
        out.cancels[sr][b] +=
            s.spec_rewindows[b].load(std::memory_order_relaxed);
      }
    return out;
  }

  /// Snapshot of the per-shard and flat-combining lock accounting; the
  /// thread runtime folds this into its SchedulerStats totals.
  [[nodiscard]] EngineLockStats lock_stats() const {
    EngineLockStats out;
    const std::size_t S = shards_.size();
    out.shard_acquisitions.resize(S);
    out.shard_wait_ns.resize(S);
    out.shard_hold_ns.resize(S);
    for (std::size_t s = 0; s < S; ++s) {
      const Shard& sh = shards_[s];
      std::scoped_lock lk(sh.mu);
      out.shard_acquisitions[s] = sh.lock_acquisitions;
      out.shard_wait_ns[s] = sh.lock_wait_ns;
      out.shard_hold_ns[s] = sh.lock_hold_ns;
    }
    out.multi_acquisitions =
        multi_acquisitions_.load(std::memory_order_relaxed);
    out.multi_wait_ns = multi_wait_ns_.load(std::memory_order_relaxed);
    out.multi_hold_ns = multi_hold_ns_.load(std::memory_order_relaxed);
    {
      std::scoped_lock lk(combine_mu_);
      out.combine_batches = combine_batches_;
      out.combine_records = combine_records_;
      out.combine_entries = combine_entries_;
      out.truncated_records = truncated_records_;
      out.frontier_continuations = frontier_continuations_;
      out.root_publishes = root_publishes_;
      out.root_publish_retries = root_publish_retries_;
    }
    out.root_validate_retries =
        validate_retries_.load(std::memory_order_relaxed);
    out.combine_peer_applied = peer_applied_.load(std::memory_order_relaxed);
    out.combine_wait_ns = publisher_wait_ns_.load(std::memory_order_relaxed);
    return out;
  }

  /// Memory-occupancy snapshot of the two-tier node storage: hot/position
  /// arena bytes plus the per-shard cold-record counters and slab bytes
  /// (heap-class records — more than 128 children — count in cold_live but
  /// not slab_bytes).  Every total is monotone (see EngineMemStats), so
  /// peak_bytes is the current reserved sum.  Takes each shard lock briefly
  /// (uncounted), like queued_count.
  [[nodiscard]] EngineMemStats mem_stats() const {
    EngineMemStats m;
    m.live_nodes = nodes_.size();
    m.hot_bytes = nodes_.reserved_bytes();
    m.position_bytes = positions_.reserved_bytes();
    for (const Shard& s : shards_) {
      std::scoped_lock lk(s.mu);
      m.cold_allocated += s.cold_allocated;
      m.cold_live += s.cold_live;
      m.cold_reclaimed += s.cold_reclaimed;
      m.slab_bytes += s.slab.reserved_bytes();
    }
    m.peak_bytes = m.hot_bytes + m.position_bytes + m.slab_bytes;
    return m;
  }

  /// Test hooks for the reclamation protocol (tests/core/engine_test.cpp).
  /// debug_cold_ptr returns the node's current cold record — null before
  /// expansion and again after reclamation; debug_assert_cold_live
  /// re-checks a previously captured pointer's magic word, tripping the
  /// same ERS_DCHECK the engine's own checked_cold accessor uses (the
  /// use-after-reclaim death test drives exactly this path — reclaimed
  /// blocks are poisoned, never unmapped, so the read itself is safe).
  [[nodiscard]] const void* debug_cold_ptr(std::uint32_t id) const {
    std::scoped_lock lk(shards_[home_shard(id)].mu);
    return nodes_[id].cold;
  }
  static void debug_assert_cold_live(const void* rec) {
    ERS_DCHECK(rec != nullptr &&
               static_cast<const ColdRecord*>(rec)->magic ==
                   ColdRecord::kLiveMagic);
  }

  /// True if no work is queued.  An executor observing has_queued_work() ==
  /// false, done() == false and no in-flight items has found a scheduling
  /// bug.
  [[nodiscard]] bool has_queued_work() const {
    for (const Shard& s : shards_) {
      std::scoped_lock lk(s.mu);
      if (!s.primary.empty() || !s.spec.empty()) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t tree_size() const noexcept {
    return nodes_.size();
  }

  /// Diagnostic dump of all unfinished, non-dead nodes, grouped under a
  /// per-shard occupancy summary (used by the executors' stall reports; see
  /// tests/core/engine_test.cpp).  Takes every engine lock; callers must
  /// hold none.
  void debug_dump_unfinished(std::FILE* out) const {
    std::scoped_lock clk(combine_mu_);
    for (const Shard& s : shards_) s.mu.lock();
    std::vector<std::size_t> unfinished(shards_.size(), 0);
    for (std::uint32_t id = 0; id < nodes_.size(); ++id)
      if (!nodes_[id].finished && !is_dead(id)) ++unfinished[home_shard(id)];
    for (std::size_t s = 0; s < shards_.size(); ++s)
      std::fprintf(out,
                   "shard %zu: primary %zu spec %zu unfinished %zu\n", s,
                   shards_[s].primary.size(), shards_[s].spec.size(),
                   unfinished[s]);
    for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
      const Node& n = nodes_[id];
      if (n.finished || is_dead(id)) continue;
      std::fprintf(
          out,
          "node %u shard %zu parent %d ply %d type %d value %d gen %d fin %d "
          "elder %d d %d e_ch %d partial %d expanded %d inprim %d inflight %d "
          "first_e %d e_eval %d seqref %d\n",
          id, home_shard(id), static_cast<int>(n.parent), n.ply,
          static_cast<int>(static_cast<NodeType>(n.type)),
          static_cast<int>(static_cast<Value>(n.value)), n.generated(),
          n.finished_children(), n.elder_done(), child_count(n),
          n.e_children(), n.partial() ? 1 : 0, n.expanded() ? 1 : 0,
          n.in_primary ? 1 : 0, n.in_flight ? 1 : 0,
          n.first_e_selected() ? 1 : 0, n.e_child_evaluated() ? 1 : 0,
          static_cast<int>(n.seq_refuting()));
    }
    for (auto it = shards_.rbegin(); it != shards_.rend(); ++it)
      it->mu.unlock();
  }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr std::size_t kMaxShards = 256;
  static constexpr int kSpinsBeforeYield = 256;

  // --- flat-combining machinery -------------------------------------------

  /// Publish a record to shard `shard`'s apply list.  Takes only the
  /// shard's leaf publish lock — never its queue lock — so a publish never
  /// waits behind a long apply or refill.
  void publish(ApplyRecord& rec, std::size_t shard, std::uint32_t arg) {
    rec.ticket = publish_ticket_.fetch_add(1, std::memory_order_relaxed);
    // Gate counter for drain_round_with: incremented *before* the push, so
    // it over-counts transiently (a combiner may snapshot fewer records
    // than the count suggests) but never misses a record already in a
    // list — and a publisher's own drain always sees its own increment,
    // which is what combine_until_applied's post-drain check relies on.
    published_pending_.fetch_add(1, std::memory_order_release);
    {
      std::scoped_lock lk(shards_[shard].pending_mu);
      shards_[shard].pending.push_back(&rec);
    }
    trace_publish(shard, arg);
  }

  /// Block until `applied`: either a concurrent combiner applies the
  /// record (returns true), or this thread takes combine_mu_ and drains
  /// (returns false).  One drain round suffices for the caller's own
  /// record: collection and application happen under a single combine_mu_
  /// hold, so a still-unapplied record is still in some publish list and
  /// the snapshot picks it up.
  bool combine_until_applied(std::atomic<bool>& applied) {
    const auto t0 = Clock::now();
    int spins = 0;
    for (;;) {
      if (applied.load(std::memory_order_acquire)) {
        note_publisher_wait(t0, /*peer=*/true);
        return true;
      }
      if (combine_mu_.try_lock()) {
        if (applied.load(std::memory_order_acquire)) {
          combine_mu_.unlock();
          note_publisher_wait(t0, /*peer=*/true);
          return true;
        }
        note_publisher_wait(t0, /*peer=*/false);
        drain_round();
        combine_mu_.unlock();
        ERS_CHECK(applied.load(std::memory_order_acquire));
        return false;
      }
      if (++spins >= kSpinsBeforeYield) {
        spins = 0;
        std::this_thread::yield();
      } else {
        spin_pause();
      }
    }
  }

  void apply_deferred_finish(const DeferredFinish& d) {
    std::atomic<bool> applied{false};
    ApplyRecord rec;
    rec.kind = ApplyRecord::Kind::kFinish;
    rec.finish_node = d.node;
    rec.traced_cutoff = d.traced;
    rec.applied = &applied;
    publish(rec, home_shard(d.node), /*arg=*/0);
    combine_until_applied(applied);
  }

  /// One flat-combining round; requires combine_mu_.  Snapshot every
  /// shard's publish list, sort by publish ticket, and apply each record
  /// under its own (possibly frontier-truncated) lock section.
  void drain_round() { drain_round_with(nullptr); }

  /// One combine round, optionally carrying the combiner's own unpublished
  /// record: `extra` (if non-null) is ticketed *after* the snapshot and
  /// applied with it, exactly as if it had been published last — the
  /// commit_batch fast path rides this to skip the pending-queue
  /// round-trip when the combine lock is free.  Caller holds combine_mu_.
  ///
  /// Records are applied back to back in ticket order, but each under its
  /// *own* lock section: a record touching only deep shards never waits
  /// for, or holds, the shards of its high ancestors (DESIGN.md §13).
  /// Per-record sections cost one lock pass per record instead of one per
  /// round; the sequential fast path (try_lock + drain_round_with(&rec))
  /// carries exactly one record, so the single-threaded schedule and lock
  /// count are unchanged.
  void drain_round_with(ApplyRecord* extra) {
    scratch_records_.clear();
    // Skip the per-shard pending-list sweep when nothing is published —
    // the common case for an uncontended try_commit_batch, where paying S
    // leaf-lock round-trips per commit would dwarf the apply itself.
    if (published_pending_.load(std::memory_order_acquire) != 0) {
      for (Shard& sh : shards_) {
        std::scoped_lock plk(sh.pending_mu);
        scratch_records_.insert(scratch_records_.end(), sh.pending.begin(),
                                sh.pending.end());
        sh.pending.clear();
      }
      if (!scratch_records_.empty())
        published_pending_.fetch_sub(scratch_records_.size(),
                                     std::memory_order_relaxed);
    }
    if (extra != nullptr) {
      extra->ticket = publish_ticket_.fetch_add(1, std::memory_order_relaxed);
      scratch_records_.push_back(extra);
    }
    if (scratch_records_.empty()) return;
    std::sort(scratch_records_.begin(), scratch_records_.end(),
              [](const ApplyRecord* a, const ApplyRecord* b) {
                return a->ticket < b->ticket;
              });
    std::uint64_t entries = 0;
    const std::size_t nrecords = scratch_records_.size();
    for (ApplyRecord* r : scratch_records_) {
      if (r->kind == ApplyRecord::Kind::kCommit) entries += r->entries.size();
      apply_record_locked(*r);
    }
    combine_batches_ += 1;
    combine_records_ += nrecords;
    combine_entries_ += entries;
    trace_combine_batch(nrecords);
    if (cfg_.spec_control.budget || cfg_.spec_control.steal_feedback)
      refresh_spec_control();
  }

  /// Combiner-side speculation-control refresh (requires combine_mu_):
  /// decay the per-shard steal-pressure signals and recompute the
  /// speculation budget from the waste ledger's running speculative-loss
  /// share — the fraction of committed units that landed in subtrees
  /// later killed by bound changes or sibling resolutions.  When the
  /// share exceeds spec_control.waste_target the budget shrinks
  /// proportionally (never below budget_min); at or under target every
  /// shard runs at budget_max.
  void refresh_spec_control() {
    if (cfg_.spec_control.steal_feedback) {
      for (Shard& sh : shards_) {
        const std::uint64_t p =
            sh.steal_pressure.load(std::memory_order_relaxed);
        if (p != 0)
          sh.steal_pressure.store(p - (p >> 3) - (p < 8 ? 1 : 0),
                                  std::memory_order_relaxed);
      }
    }
    if (!cfg_.spec_control.budget) return;
    std::uint64_t spec_units = 0;
    for (std::size_t b = 0; b < kWastePlyBands; ++b)
      spec_units +=
          waste_.units[static_cast<std::size_t>(WasteCause::kBoundChange)][b] +
          waste_.units[static_cast<std::size_t>(
              WasteCause::kSiblingResolution)][b];
    const std::uint64_t total = stats_.units_processed;
    auto budget = static_cast<std::uint32_t>(cfg_.spec_control.budget_max);
    if (total >= 64) {  // skip the noisy warmup
      const double share =
          static_cast<double>(spec_units) / static_cast<double>(total);
      if (share > cfg_.spec_control.waste_target) {
        const double scaled = cfg_.spec_control.budget_max *
                              cfg_.spec_control.waste_target / share;
        budget = static_cast<std::uint32_t>(std::max(
            static_cast<double>(cfg_.spec_control.budget_min), scaled));
      }
    }
    for (Shard& sh : shards_)
      sh.spec_budget.store(budget, std::memory_order_relaxed);
  }

  /// Compute one record's touch set (truncated per entry where eligible),
  /// lock it ascending, apply, unlock.  Requires combine_mu_.
  void apply_record_locked(ApplyRecord& r) {
    const std::size_t S = shards_.size();
    scratch_touch_.assign(S, 0);
    bool truncated = false;
    if (r.kind == ApplyRecord::Kind::kCommit) {
      for (const CommitEntry& e : r.entries)
        truncated |= mark_touch_for_commit(e.item.node, scratch_touch_.data());
    } else {
      truncated = mark_touch_for_commit(r.finish_node, scratch_touch_.data());
    }
    scratch_locks_.clear();
    for (std::size_t s = 0; s < S; ++s)
      if (scratch_touch_[s] != 0) scratch_locks_.push_back(s);
    if (truncated) ++truncated_records_;
    const auto t0 = Clock::now();
    lock_ascending(scratch_locks_);
    const auto t1 = Clock::now();
    apply_record(r);
    const auto t2 = Clock::now();
    multi_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    multi_wait_ns_.fetch_add(delta_ns(t0, t1), std::memory_order_relaxed);
    multi_hold_ns_.fetch_add(delta_ns(t1, t2), std::memory_order_relaxed);
    unlock_descending(scratch_locks_);
    trace_lock_section(t0, t1, t2, obs::kNoTraceShard);
  }

  void apply_record(ApplyRecord& r) {
    if (r.kind == ApplyRecord::Kind::kCommit) {
      for (CommitEntry& e : r.entries) {
        apply_frontier_ =
            truncation_eligible(e.item.node) ? cfg_.publish_frontier : 0;
        commit_one(e.item, std::move(e.result));
        apply_frontier_ = 0;
        resolve_deferred_backup();
      }
    } else {
      ++stats_.cutoffs_at_pop;
      if (r.traced_cutoff)
        trace_instant(obs::EventKind::kSpecCancel, r.finish_node, /*arg=*/1);
      Node& n = nodes_[r.finish_node];
      // Re-check: another combiner may have finished this node (or an
      // ancestor) since the cutoff was detected at pop time; finishing
      // twice would double-count finished_children at the parent.  The
      // cutoff itself cannot have become invalid — bounds only tighten.
      if (!n.finished && !is_dead(r.finish_node)) {
        apply_frontier_ =
            truncation_eligible(r.finish_node) ? cfg_.publish_frontier : 0;
        finish_and_combine(r.finish_node, WasteCause::kBoundChange);
        apply_frontier_ = 0;
        resolve_deferred_backup();
      }
    }
    r.applied->store(true, std::memory_order_release);
  }

  /// A backup deferred at the frontier (finish_and_combine stopped at
  /// deferred_backup_, whose ply is above apply_frontier_): escalate to the
  /// node's *full* ancestor-chain lock set and resume exactly where the
  /// untruncated apply would have continued, before the record's next
  /// entry.  The escalation releases the truncated set entirely first, so
  /// every shard-lock acquisition in the engine remains one ascending pass
  /// from an empty hold set (see the invariant note in acquire_fill).
  /// Requires combine_mu_; the record's scratch_locks_ are held on entry
  /// and re-held on exit.
  void resolve_deferred_backup() {
    while (deferred_backup_ != kNoNode) {
      const std::uint32_t cont = deferred_backup_;
      deferred_backup_ = kNoNode;
      ++frontier_continuations_;
      unlock_descending(scratch_locks_);
      const std::size_t S = shards_.size();
      cont_touch_.assign(S, 0);
      mark_touch(cont, cont_touch_.data());
      cont_locks_.clear();
      for (std::size_t s = 0; s < S; ++s)
        if (cont_touch_[s] != 0) cont_locks_.push_back(s);
      const auto t0 = Clock::now();
      lock_ascending(cont_locks_);
      const auto t1 = Clock::now();
      // apply_frontier_ == 0: runs to completion, keeping the cause of the
      // finish whose backup was deferred.
      finish_and_combine(cont, deferred_backup_cause_);
      const auto t2 = Clock::now();
      multi_acquisitions_.fetch_add(1, std::memory_order_relaxed);
      multi_wait_ns_.fetch_add(delta_ns(t0, t1), std::memory_order_relaxed);
      multi_hold_ns_.fetch_add(delta_ns(t1, t2), std::memory_order_relaxed);
      unlock_descending(cont_locks_);
      trace_lock_section(t0, t1, t2, obs::kNoTraceShard);
      lock_ascending(scratch_locks_);
    }
  }

  /// Acquire the listed shard locks in ascending index order, starting
  /// from an empty hold set — the lock-order discipline shared with the
  /// global acquire scan (ERS_DCHECKed here; see acquire_fill).
  void lock_ascending(const std::vector<std::size_t>& locks) {
    ERS_DCHECK(combiner_held_shards_ == 0);
    for (std::size_t i = 0; i < locks.size(); ++i) {
      ERS_DCHECK(i == 0 || locks[i] > locks[i - 1]);
      shards_[locks[i]].mu.lock();
    }
#ifndef NDEBUG
    combiner_held_shards_ = locks.size();
#endif
  }

  void unlock_descending(const std::vector<std::size_t>& locks) {
#ifndef NDEBUG
    ERS_DCHECK(combiner_held_shards_ == locks.size());
    combiner_held_shards_ = 0;
#endif
    for (auto it = locks.rbegin(); it != locks.rend(); ++it)
      shards_[*it].mu.unlock();
  }

  /// True when a commit/finish on `id` may run with a frontier-truncated
  /// touch set: the frontier is enabled and the node lies at or below it,
  /// so every chain node above the frontier is reached only through the
  /// epoch-published word (reads) or a deferred continuation (writes).
  [[nodiscard]] bool truncation_eligible(std::uint32_t id) const {
    return cfg_.publish_frontier > 0 &&
           nodes_[id].ply >= cfg_.publish_frontier;
  }

  /// Mark the home shard of `a` and of its children — the shards where a
  /// combiner mutating `a`'s plain fields or pushing `a`/its children
  /// needs the lock.  Under kParentMod that is fold(parent(a)) ∪ fold(a);
  /// under kSubtreeAffinity a node and its children share one subtree
  /// shard, except the root whose children span every shard.
  void mark_node_and_children(std::uint32_t a, std::uint8_t* seen) const {
    const std::size_t S = shards_.size();
    seen[home_shard(a)] = 1;
    if (cfg_.placement == PlacementMode::kSubtreeAffinity) {
      if (a == 0) {
        for (std::size_t s = 0; s < S; ++s) seen[s] = 1;
      } else {
        seen[subtree_shard_of(a, nodes_[a].subtree, S)] = 1;
      }
    } else {
      seen[fold_shard(a, S)] = 1;
    }
  }

  /// Mark every shard a commit/finish on `id` may touch — the home shards
  /// of every chain node and of their children (the full footprint of
  /// commit + combine + Table 2).
  void mark_touch(std::uint32_t id, std::uint8_t* seen) const {
    for (std::uint32_t a = id; a != kNoNode; a = nodes_[a].parent)
      mark_node_and_children(a, seen);
  }

  /// Commit-path marks: the frontier-truncated set when eligible (returns
  /// true), else the full set (returns false).
  ///
  /// Frontier-depth invariant (DESIGN.md §13): with deferral stopping
  /// finish_and_combine at ply < F, an eligible apply touches plain fields
  /// or queues only of chain nodes at ply >= F-2 and their children —
  /// every backup iteration runs at ply(cur) >= F and writes its parent
  /// (ply >= F-1); the stop case additionally writes the grandparent's
  /// elder accounting and reconsiders it, reaching ply >= F-2 and pushes
  /// of its children.  So marking home(a) ∪ child_homes(a) for chain nodes
  /// with ply(a) >= F-2 covers the whole truncated footprint.
  [[nodiscard]] bool mark_touch_for_commit(std::uint32_t id,
                                           std::uint8_t* seen) const {
    if (!truncation_eligible(id)) {
      mark_touch(id, seen);
      return false;
    }
    const std::int32_t floor_ply = cfg_.publish_frontier - 2;
    for (std::uint32_t a = id;
         a != kNoNode && nodes_[a].ply >= floor_ply;
         a = nodes_[a].parent)
      mark_node_and_children(a, seen);
    return true;
  }

  // --- commit application (current combiner only: combine_mu_ plus every
  // --- touched shard lock held) -------------------------------------------

  void commit_one(const WorkItem& item, ComputeResult&& r) {
    Node& n = nodes_[item.node];
    n.in_flight = false;
    stats_.search += r.stats;
    ++stats_.units_processed;
    // Waste ledger (DESIGN.md §16).  A unit landing in a live subtree adds
    // itself to the uncharged-subtree tallies of the node and every
    // ancestor, so a future kill can charge the whole subtree in O(1).  A
    // unit landing after its subtree died is charged immediately to the
    // (cause, band) cell of the nearest cancelled subtree root — and stays
    // out of the running tallies, which only ever hold uncharged work.
    const std::uint32_t wr = nearest_waste_root(item.node);
    if (wr == kNoNode) {
      for (std::uint32_t a = item.node; a != kNoNode; a = nodes_[a].parent) {
        sub_units_[a] += 1;
        sub_ns_[a] += r.compute_ns;
      }
    } else {
      const auto ci = static_cast<std::size_t>(waste_state_[wr] - 1);
      const std::size_t b = waste_band_of(
          static_cast<std::uint32_t>(nodes_[wr].ply));
      waste_.units[ci][b] += 1;
      waste_.compute_ns[ci][b] += r.compute_ns;
    }
    // Commit record with the parent link: trace_report rebuilds the unit
    // dependency graph (and its critical path) from exactly these events.
    // The event carries the executor-measured compute duration, so the
    // trace-side waste reconciliation sums exactly what the ledger charged.
    trace_commit(item.node,
                 n.parent == kNoNode ? obs::kNoTraceNode : n.parent,
                 r.compute_ns);
    switch (item.kind) {
      case WorkKind::kPromote:
        // Pairs with the fetch_add at emission: every acquired kPromote is
        // committed exactly once, even when the state moved on meanwhile.
        shards_[home_shard(item.node)].spec_inflight.fetch_sub(
            1, std::memory_order_relaxed);
        commit_promotion(item.node);
        break;
      case WorkKind::kSerialFull:
      case WorkKind::kSerialRefuteRest:
      case WorkKind::kSerialRefute:
        ++stats_.serial_units;
        n.value = std::max<Value>(n.value, r.value);
        publish_node(item.node);
        finish_and_combine(item.node, WasteCause::kSiblingResolution);
        break;
      case WorkKind::kSerialEvalFirst:
        commit_eval_first(item.node, std::move(r));
        break;
      case WorkKind::kExpand:
        commit_expand(item.node, std::move(r));
        break;
    }
    // A node that finished or died while this unit was in flight kept its
    // cold record alive through the flight (compute may read it lock-free);
    // release it now that the unit has landed.  Nodes finished by this very
    // commit already reclaimed inside finish_and_combine unless they were
    // still in flight then — which is exactly this unit, now landed.
    if (n.cold != nullptr && !n.in_flight && (n.finished || is_dead(item.node)))
      reclaim_cold(item.node);
  }

  /// Ranking keys for the speculative queue under the configured policy.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> spec_keys_for(
      std::uint32_t id) const {
    const Node& n = nodes_[id];
    switch (cfg_.spec_rank) {
      case SpecRankPolicy::kFewestEChildren:
        return {n.e_children(), n.ply};
      case SpecRankPolicy::kBestBound: {
        const std::uint32_t c = best_promotion_candidate(n);
        return {c == kNoNode ? kValueInf : static_cast<Value>(nodes_[c].value),
                n.ply};
      }
      case SpecRankPolicy::kFifo:
        return {0, 0};
      case SpecRankPolicy::kStealAware: {
        // Composite rank (DESIGN.md §17).  Primary: how much headroom the
        // best promotion candidate still has above the node's published
        // alpha — a candidate whose tentative promise the sibling bounds
        // (§13 epoch words) have already overtaken is almost certainly
        // wasted speculation, so it ranks late; a candidate with room to
        // raise the parent ranks early.  Secondary: the home shard's
        // decaying steal-pressure bucket — a shard whose primary work is
        // being stolen is already oversubscribed, so its speculation
        // yields.  Tiebreaks keep the paper's own heuristic (fewest
        // e-children, then shallower ply).  Every input is an epoch-
        // published or relaxed read; under the sim executor steal
        // pressure is identically zero and the rank is deterministic.
        const std::uint32_t c = best_promotion_candidate(n);
        constexpr std::int64_t kDistCap = 0xffff;
        std::int64_t closeness = kDistCap;  // no candidate: rank last
        if (c != kNoNode) {
          const Window w = window_of(id);
          const std::int64_t headroom =
              static_cast<std::int64_t>(
                  negate(static_cast<Value>(nodes_[c].value))) -
              static_cast<std::int64_t>(w.alpha);
          closeness =
              kDistCap - std::clamp<std::int64_t>(headroom, 0, kDistCap);
        }
        std::int64_t pressure = 0;
        if (cfg_.spec_control.steal_feedback) {
          std::uint64_t p = shards_[home_shard(id)].steal_pressure.load(
              std::memory_order_relaxed);
          while (p != 0 && pressure < 15) {  // log2 bucket, clamped
            p >>= 1;
            ++pressure;
          }
        }
        return {(closeness << 16) + (pressure << 8),
                (static_cast<std::int64_t>(n.e_children()) << 8) +
                    std::min<std::int64_t>(n.ply, 255)};
      }
    }
    return {0, 0};
  }

  // --- queue helpers (combiner only, except the single-threaded ctor) -----

  void push_primary(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.in_primary || n.in_flight || n.finished) return;
    n.in_primary = true;
    shards_[home_shard(id)].primary.push(PrimaryEntry{
        n.ply, seq_.fetch_add(1, std::memory_order_relaxed), id});
  }

  void push_spec(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.on_spec() || n.finished) return;
    ColdRecord* c = checked_cold(n);  // spec-eligible nodes are expanded
    c->on_spec = true;
    ++c->spec_seq;
    const auto [k1, k2] = spec_keys_for(id);
    shards_[home_shard(id)].spec.push(SpecEntry{
        k1, k2, seq_.fetch_add(1, std::memory_order_relaxed), id,
        c->spec_seq});
  }

  // --- predicates ---------------------------------------------------------

  /// Which serial unit a cutover node needs, per its current role (see
  /// WorkKind).  A node with a tentative value from an earlier Eval_first
  /// unit continues with Refute_rest whether it was promoted to e-child or
  /// re-typed for refutation — exactly Figure 8's two halves.
  [[nodiscard]] WorkKind serial_kind(const Node& n) const {
    if (n.ply >= cfg_.search_depth) return WorkKind::kSerialFull;  // horizon
    if (n.partial()) return WorkKind::kSerialRefuteRest;
    switch (static_cast<NodeType>(n.type)) {
      case NodeType::kENode: return WorkKind::kSerialFull;
      case NodeType::kUndecided: return WorkKind::kSerialEvalFirst;
      case NodeType::kRNode: return WorkKind::kSerialRefute;
    }
    return WorkKind::kSerialFull;
  }

  /// The node's effective search window, folded down from the root exactly
  /// as Figure 8 flips windows at each ply:
  ///     w(child) = ( -beta(parent), -max(alpha(parent), value(parent)) ).
  /// Using the whole ancestor chain (not just -parent.value) preserves the
  /// deep-cutoff information the serial recursion carries implicitly.
  /// Ancestor values are relaxed-atomic reads: a stale (lower) value gives
  /// a wider window, which is sound (monotone values only narrow windows).
  [[nodiscard]] Window window_of(std::uint32_t id) const {
    // Collected on the stack: this runs on every combine-step cutoff check,
    // and search depths are tiny (the horizon bounds the path length).
    std::array<std::uint32_t, 64> path;  // id's ancestors, root last
    std::size_t depth = 0;
    for (std::uint32_t a = nodes_[id].parent; a != kNoNode; a = nodes_[a].parent) {
      ERS_CHECK(depth < path.size());
      path[depth++] = a;
    }
    const int frontier = cfg_.publish_frontier;
    if (frontier <= 0) {
      Window w = full_window();
      while (depth-- > 0) {
        const Value alpha = std::max<Value>(w.alpha, nodes_[path[depth]].value);
        w = Window{negate(w.beta), negate(alpha)};
      }
      return w;
    }
    // Epoch-validated read (DESIGN.md §13): ancestors above the frontier
    // are read through their published word; if any published epoch moved
    // while folding, retry for a consistent snapshot.  Bounded retries —
    // an abandoned (torn) snapshot is still sound: values are monotone, so
    // any mix of older values yields a wider (weaker) window.
    for (int attempt = 0;; ++attempt) {
      std::uint64_t epoch_sum = 0;
      Window w = full_window();
      for (std::size_t i = depth; i-- > 0;) {
        const std::uint32_t a = path[i];
        Value v;
        if (nodes_[a].ply < frontier) {
          const std::uint64_t word =
              nodes_[a].pub.load(std::memory_order_acquire);
          epoch_sum += pub_epoch(word);
          v = pub_value(word);
        } else {
          v = nodes_[a].value;
        }
        const Value alpha = std::max<Value>(w.alpha, v);
        w = Window{negate(w.beta), negate(alpha)};
      }
      std::uint64_t check_sum = 0;
      for (std::size_t i = depth; i-- > 0;) {
        const std::uint32_t a = path[i];
        if (nodes_[a].ply >= frontier) break;  // high ancestors end rootward
        check_sum += pub_epoch(nodes_[a].pub.load(std::memory_order_acquire));
      }
      if (check_sum == epoch_sum || attempt >= 2) return w;
      validate_retries_.fetch_add(1, std::memory_order_relaxed);
      trace_epoch_retry(id);
    }
  }

  [[nodiscard]] Value beta_of(std::uint32_t id) const {
    return window_of(id).beta;
  }

  /// A node is dead when some proper ancestor has finished (its subtree was
  /// abandoned: speculative loss).  Ancestors above the frontier are read
  /// through their published word (no validation loop: finished is sticky,
  /// so a stale read only delays the drop).  A false negative only lets a
  /// doomed unit run (its commit is discarded); a false positive is
  /// impossible, finished only ever transitions false -> true.
  [[nodiscard]] bool is_dead(std::uint32_t id) const {
    const int frontier = cfg_.publish_frontier;
    for (std::uint32_t a = nodes_[id].parent; a != kNoNode;
         a = nodes_[a].parent) {
      const Node& n = nodes_[a];
      const bool fin =
          frontier > 0 && n.ply < frontier
              ? pub_finished(n.pub.load(std::memory_order_acquire))
              : static_cast<bool>(n.finished);
      if (fin) return true;
    }
    return false;
  }

  [[nodiscard]] int child_count(const Node& n) const {
    return n.cold != nullptr ? static_cast<int>(n.cold->count) : 0;
  }

  /// Children that can still be promoted to e-child: dormant (not queued,
  /// not running), undecided, unfinished, with a tentative value.
  [[nodiscard]] bool is_promotion_candidate(std::uint32_t id) const {
    const Node& c = nodes_[id];
    return !c.finished && c.type == NodeType::kUndecided && c.elder_counted &&
           !c.in_primary && !c.in_flight;
  }

  [[nodiscard]] std::uint32_t best_promotion_candidate(const Node& p) const {
    std::uint32_t best = kNoNode;
    if (p.cold == nullptr) return best;
    const std::uint32_t* kids = p.cold->child_nodes();
    for (std::uint32_t i = 0; i < p.cold->count; ++i) {
      const std::uint32_t c = kids[i];
      if (c == kNoNode || !is_promotion_candidate(c)) continue;
      if (best == kNoNode || static_cast<Value>(nodes_[c].value) <
                                 static_cast<Value>(nodes_[best].value))
        best = c;
    }
    return best;
  }

  [[nodiscard]] bool spec_eligible(std::uint32_t id) const {
    const Node& n = nodes_[id];
    if (n.type != NodeType::kENode || n.finished || !n.expanded()) return false;
    if (!cfg_.speculation.multiple_e_children && n.first_e_selected()) return false;
    const int d = child_count(n);
    const int need = cfg_.speculation.early_e_child_choice ? d - 1 : d;
    if (n.elder_done() < need) return false;
    return best_promotion_candidate(n) != kNoNode;
  }

  /// Commit an Eval_first unit at a cutover node: store the tentative value
  /// and the frozen child order; the node either resolves immediately (done
  /// or cut off against the parent's current bound) or goes dormant awaiting
  /// promotion/re-typing, feeding the parent's elder-grandchild accounting.
  void commit_eval_first(std::uint32_t id, ComputeResult&& r) {
    Node& n = nodes_[id];
    ++stats_.serial_units;
    n.value = std::max<Value>(n.value, r.value);
    publish_node(id);
    // Resolve-before-store: a node that is already done (or cut off against
    // the parent's current bound) never reads its frozen child order, so
    // the done check runs first and a cold record is allocated only for
    // survivors — an immediately-resolved cutover node costs no slab block.
    // (Done-path semantics are unchanged: nothing on it consults the
    // positions, and no pushes happen either way.)
    if (r.is_done || n.value >= beta_of(id)) {
      finish_and_combine(id, WasteCause::kSiblingResolution);
      return;
    }
    attach_cold(id, r.child_positions);  // survivor: freeze the child order
    n.cold->partial = true;
    if (n.parent == kNoNode || nodes_[n.parent].finished) return;
    const std::uint32_t pid = n.parent;
    count_elder(pid, id);  // n now has a tentative value (Table 2 rows 4/5)
    // If the node was promoted or re-typed for refutation while this unit
    // was in flight, it must continue with a Refute_rest unit now — nothing
    // else will ever reschedule it.
    if (n.type != NodeType::kUndecided) push_primary(id);
    reconsider(pid);
  }

  // --- Table 1: expansion -------------------------------------------------

  void commit_expand(std::uint32_t id, ComputeResult&& r) {
    Node& n = nodes_[id];
    if (r.positions_computed) {
      if (r.is_leaf) {
        // Terminal position above the cutover: a true leaf of the game —
        // no expansion payload to store (finished nodes never have their
        // expansion state consulted).
        n.value = std::max<Value>(n.value, r.value);
        publish_node(id);
        finish_and_combine(id, WasteCause::kSiblingResolution);
        return;
      }
      attach_cold(id, r.child_positions);
      n.cold->expanded = true;
    }
    ColdRecord* c = checked_cold(n);
    ERS_CHECK(c->expanded);
    switch (static_cast<NodeType>(n.type)) {
      case NodeType::kENode: {
        // Generate all (missing) children as undecided (Table 1 row 1).
        const bool e_child_done = c->child_nodes()[0] != kNoNode &&
                                  nodes_[c->child_nodes()[0]].finished;
        // Create in reverse index order: the primary queue is LIFO among
        // equals, so pops then visit the children left to right.
        for (int i = child_count(n) - 1; i >= 0; --i)
          if (c->child_nodes()[i] == kNoNode)
            make_child(id, i, NodeType::kUndecided);
        if (e_child_done) {
          // A promoted e-child arrives with its first child — the elder
          // grandchild evaluated while this node was undecided — already
          // finished.  That child *is* its e-child, so Table 2 row 3
          // applies immediately: refute the remaining children rather than
          // running a second elder-grandchild sweep (this matches serial
          // ER, where the e-child is completed by Refute_rest).
          c->first_e_selected = true;
          if (c->e_children == 0) c->e_children = 1;
          c->e_child_evaluated = true;
          reconsider_e_node(id);
        }
        break;
      }
      case NodeType::kUndecided:
        // Elder-grandchild evaluation: first child only, as an e-node.
        if (c->child_nodes()[0] == kNoNode) make_child(id, 0, NodeType::kENode);
        break;
      case NodeType::kRNode:
        if (c->generated == 0) {
          make_child(id, 0, NodeType::kENode);
        } else if (c->generated < static_cast<std::int32_t>(c->count)) {
          // Refutation proceeds one child at a time (Table 1 row 4).
          make_child(id, c->generated, NodeType::kRNode);
        }
        break;
    }
  }

  void make_child(std::uint32_t parent_id, int index, NodeType type) {
    Node& p = nodes_[parent_id];
    ColdRecord* pc = checked_cold(p);
    ERS_CHECK(pc->child_nodes()[index] == kNoNode);
    // Arena slots never move: growth never invalidates existing references,
    // and the id only becomes visible to other shards through the queue
    // push below (under the child's home-shard lock, held by this combiner).
    // Subtree tag: a root child starts its own top-level subtree; every
    // deeper node inherits its parent's (kSubtreeAffinity placement).
    const std::uint32_t subtree =
        parent_id == 0 ? static_cast<std::uint32_t>(index) : p.subtree;
    const std::uint32_t child_id =
        make_node(pc->positions()[index], parent_id, p.ply + 1, type, index,
                  subtree);
    pc->child_nodes()[index] = child_id;
    pc->generated += 1;
    push_primary(child_id);
  }

  // --- speculative promotion ----------------------------------------------

  void commit_promotion(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.finished || !spec_eligible(id)) return;  // state moved on
    const std::uint32_t child = best_promotion_candidate(n);
    if (child == kNoNode) return;
    promote_to_e_child(id, child, /*mandatory=*/false);
    if (spec_eligible(id)) push_spec(id);  // paper: "E is returned to the queue"
  }

  void promote_to_e_child(std::uint32_t parent_id, std::uint32_t child_id,
                          bool mandatory) {
    Node& p = nodes_[parent_id];
    Node& c = nodes_[child_id];
    ERS_CHECK(c.type == NodeType::kUndecided && !c.finished);
    c.type = NodeType::kENode;
    ColdRecord* pc = checked_cold(p);  // promoting parents are expanded
    pc->e_children += 1;
    pc->first_e_selected = true;
    if (mandatory)
      ++stats_.promotions_mandatory;
    else
      ++stats_.promotions_speculative;
    trace_instant(obs::EventKind::kSpecSpawn, child_id, parent_id);
    push_primary(child_id);
  }

  // --- combine (paper §6) ---------------------------------------------------

  /// `cause` labels the waste ledger's charge for every subtree this finish
  /// (and its backup chain) kills: kBoundChange when the finish originated
  /// in a pop-time cutoff, kSiblingResolution when a committed result
  /// resolved the node.
  void finish_and_combine(std::uint32_t id, WasteCause cause) {
    std::uint32_t cur = id;
    for (;;) {
      // Frontier deferral (DESIGN.md §13): a truncated apply section holds
      // no locks above the frontier, so a backup about to finish a high
      // node stops here; apply_record resolves it immediately as a
      // continuation under the full chain lock set, in exactly the
      // position the untruncated apply would have run this iteration —
      // the mutation sequence, and hence the committed-state sequence, is
      // identical with the frontier on or off.
      if (apply_frontier_ > 0 && nodes_[cur].ply < apply_frontier_) {
        ERS_DCHECK(deferred_backup_ == kNoNode);
        deferred_backup_ = cur;
        deferred_backup_cause_ = cause;
        return;
      }
      Node& n = nodes_[cur];
      n.finished = true;
      n.set_on_spec(false);  // lazily invalidates any spec entry
      publish_node(cur);
      // The finish kills cur's subtree: reclaim cur's own cold record and
      // the records of its freshly dead unfinished children (their home
      // shards are in every touch set that covers cur's —
      // mark_node_and_children).  In-flight records are skipped; their
      // commit_one reclaims on landing.  Deeper dead descendants are
      // reclaimed lazily at their own pops and commits.
      reclaim_finished(cur, cause);
      if (cur == 0) {
        done_ = true;
        return;
      }
      const std::uint32_t pid = n.parent;
      Node& p = nodes_[pid];
      if (p.finished) return;  // abandoned subtree; result discarded
      if (negate(n.value) > p.value) {
        p.value = negate(n.value);
        p.best_child = cur;  // strict raise: an exactly-evaluated child
        publish_node(pid);
      }
      p.bump_finished_children();  // no-op for a dead, already-reclaimed p
      count_elder(pid, cur);  // cur is certainly evaluated-or-finished now
      if (n.type == NodeType::kENode && p.type == NodeType::kENode)
        p.set_e_child_evaluated();
      if (is_node_complete(pid)) {
        cur = pid;  // keep backing up
        continue;
      }
      // Combine stops here: p still has live work.  p just gained (or
      // confirmed) a tentative value, which advances its own parent's
      // elder-grandchild accounting (Table 2 rows 4/5).
      const std::uint32_t gp = p.parent;
      const bool p_new_elder = gp != kNoNode && count_elder(gp, pid);
      reconsider(pid);
      if (p_new_elder && !nodes_[gp].finished) reconsider(gp);
      return;
    }
  }

  /// Mark `child` as contributing to p's elder-grandchild accounting (it has
  /// a tentative value or is finished).  Returns true the first time.
  bool count_elder(std::uint32_t parent_id, std::uint32_t child_id) {
    Node& c = nodes_[child_id];
    if (c.elder_counted) return false;
    c.elder_counted = true;
    nodes_[parent_id].bump_elder_done();  // no-op for a dead, reclaimed parent
    return true;
  }

  [[nodiscard]] bool is_node_complete(std::uint32_t id) const {
    const Node& n = nodes_[id];
    if (id != 0 && n.value >= beta_of(id)) return true;  // cut off (refuted)
    return n.expanded() && n.generated() == child_count(n) &&
           n.finished_children() == child_count(n);
  }

  /// Table 2: decide what new work `id` schedules after its state changed.
  void reconsider(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.finished) return;
    switch (static_cast<NodeType>(n.type)) {
      case NodeType::kUndecided:
        // Dormant: waits for its parent to promote or re-type it.
        return;
      case NodeType::kRNode:
        // A child combined and the node survives: schedule the next child
        // (Table 1 row 4 runs when it is popped).
        if (n.generated() < child_count(n) &&
            n.generated() == n.finished_children())
          push_primary(id);
        return;
      case NodeType::kENode:
        reconsider_e_node(id);
        return;
    }
  }

  void reconsider_e_node(std::uint32_t id) {
    Node& n = nodes_[id];
    if (!n.expanded()) return;  // not yet popped; Table 1 will handle it
    ColdRecord* c = checked_cold(n);
    const int d = child_count(n);
    // Table 2 row 2: mandatory first e-child selection once every elder
    // grandchild is evaluated.
    if (!c->first_e_selected && c->elder_done == d) {
      const std::uint32_t child = best_promotion_candidate(n);
      if (child != kNoNode) promote_to_e_child(id, child, /*mandatory=*/true);
    }
    // Table 2 row 3: once an e-child has been fully evaluated, refute the
    // remaining (undecided) children — all at once under parallel
    // refutation, one at a time otherwise.
    if (c->e_child_evaluated) {
      if (cfg_.speculation.parallel_refutation) {
        if (!c->refutation_dispatched) {
          c->refutation_dispatched = true;
          dispatch_refutations(id, /*all=*/true);
        }
      } else {
        dispatch_refutations(id, /*all=*/false);
      }
    }
    // Table 2 rows 1/4: speculative queue eligibility.
    if (spec_eligible(id)) push_spec(id);
  }

  void dispatch_refutations(std::uint32_t id, bool all) {
    Node& n = nodes_[id];
    ColdRecord* rec = checked_cold(n);  // only expanded e-nodes dispatch
    if (!all) {
      // Sequential refutation: only one child under refutation at a time.
      if (rec->seq_refuting != kNoNode && !nodes_[rec->seq_refuting].finished)
        return;
      rec->seq_refuting = kNoNode;
    }
    // Re-type in ascending tentative-value order (serial ER's refutation
    // order after its sort).  Combiner-owned scratch (dispatch never
    // re-enters itself): no per-dispatch allocation at steady state.
    std::vector<std::uint32_t>& undecided = scratch_undecided_;
    undecided.clear();
    const std::uint32_t* kids = rec->child_nodes();
    for (std::uint32_t i = 0; i < rec->count; ++i) {
      const std::uint32_t c = kids[i];
      if (c == kNoNode) continue;
      const Node& cn = nodes_[c];
      if (!cn.finished && cn.type == NodeType::kUndecided) undecided.push_back(c);
    }
    if (undecided.empty()) return;
    std::stable_sort(undecided.begin(), undecided.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                       return static_cast<Value>(nodes_[a].value) <
                              static_cast<Value>(nodes_[b].value);
                     });
    if (!all) {
      // Sequential refutation: take only the most promising candidate.
      Node& cn = nodes_[undecided.front()];
      cn.type = NodeType::kRNode;
      ++stats_.refutations_dispatched;
      if (!cn.in_primary && !cn.in_flight) push_primary(undecided.front());
      rec->seq_refuting = undecided.front();
      return;
    }
    // Parallel refutation: dispatch every candidate.  Push in reverse of
    // the tentative order so LIFO pops refute the most promising first.
    for (auto it = undecided.rbegin(); it != undecided.rend(); ++it) {
      Node& cn = nodes_[*it];
      cn.type = NodeType::kRNode;
      ++stats_.refutations_dispatched;
      // A child that is queued or running continues its current flow; a
      // dormant one needs a fresh pop to make progress.
      if (!cn.in_primary && !cn.in_flight) push_primary(*it);
    }
  }

  // --- epoch publication (DESIGN.md §13) ------------------------------------

  /// The published word packs a high node's cross-shard-visible state into
  /// one atomic: {epoch:31, finished:1, value:32}.  The epoch counts
  /// publications, so a reader summing epochs before and after a multi-word
  /// read can detect any intervening publication (window_of).
  [[nodiscard]] static constexpr std::uint64_t pack_pub(
      Value v, bool finished, std::uint64_t epoch) noexcept {
    return (epoch << 33) |
           (static_cast<std::uint64_t>(finished ? 1 : 0) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
  }
  [[nodiscard]] static constexpr Value pub_value(std::uint64_t w) noexcept {
    return static_cast<Value>(static_cast<std::uint32_t>(w));
  }
  [[nodiscard]] static constexpr bool pub_finished(std::uint64_t w) noexcept {
    return ((w >> 32) & 1) != 0;
  }
  [[nodiscard]] static constexpr std::uint64_t pub_epoch(
      std::uint64_t w) noexcept {
    return w >> 33;
  }

  /// Publish a high node's (value, finished) after a mutation — the
  /// dedicated root/near-root raise path.  A CAS loop with re-validation:
  /// each iteration re-derives the next word from the currently published
  /// one, keeping the published value monotone and finished sticky no
  /// matter how the loop interleaves with future publishers (today there
  /// is exactly one publisher at a time — the combiner — but the protocol
  /// does not rely on that).  No-op for nodes at or below the frontier.
  /// Called by the combiner immediately after every (value, finished)
  /// mutation site, so the word is never behind the locked state by more
  /// than the width of one publish.
  void publish_node(std::uint32_t id) {
    Node& n = nodes_[id];
    if (cfg_.publish_frontier <= 0 || n.ply >= cfg_.publish_frontier) return;
    const Value v = n.value;
    const bool fin = n.finished;
    std::uint64_t cur = n.pub.load(std::memory_order_relaxed);
    for (;;) {
      const Value nv = std::max<Value>(v, pub_value(cur));
      const bool nf = fin || pub_finished(cur);
      const std::uint64_t next = pack_pub(nv, nf, pub_epoch(cur) + 1);
      if (n.pub.compare_exchange_weak(cur, next, std::memory_order_release,
                                      std::memory_order_relaxed))
        break;
      ++root_publish_retries_;
    }
    ++root_publishes_;
    trace_instant(obs::EventKind::kEpochPublish, id,
                  static_cast<std::uint32_t>(pub_epoch(
                      n.pub.load(std::memory_order_relaxed))));
  }

  /// Reader-side validation-retry trace hook (window_of is const and runs
  /// on acquiring threads, so this writes the calling worker's own ring,
  /// like trace_publish).
  void trace_epoch_retry(std::uint32_t node) const {
    if constexpr (!obs::kTracingEnabled) {
      (void)node;
      return;
    }
    if (cfg_.trace == nullptr || cfg_.trace->virtual_clock()) return;
    if (obs::Tracer* t = obs::TraceSession::thread_tracer(); t != nullptr)
      t->instant(obs::EventKind::kEpochRetry, cfg_.trace->now_ns(), node,
                 /*arg=*/0);
  }

  // --- tracing & timing hooks ----------------------------------------------

  /// Combiner-side trace hook (the engine tracer); a no-op without a
  /// session and compiled out entirely when tracing is disabled.  Safe
  /// because there is exactly one combiner at a time and combiner handoff
  /// synchronizes through combine_mu_.  The single-threaded simulator
  /// re-points the engine tracer to its current virtual worker before
  /// driving commits, exactly as before.
  void trace_instant(obs::EventKind kind, std::uint32_t node,
                     std::uint32_t arg) {
    if constexpr (!obs::kTracingEnabled) {
      (void)kind; (void)node; (void)arg;
      return;
    }
    if (cfg_.trace == nullptr) return;
    cfg_.trace->engine_tracer().instant(
        kind, cfg_.trace->now_ns(), node, arg,
        static_cast<std::uint16_t>(home_shard(node)));
  }

  /// Ledger side of a dead queue-entry drop (primary or speculative);
  /// caller holds `owner`'s shard lock, like dead_drops.
  void note_dead_drop(std::size_t owner, std::uint32_t node) {
    const std::size_t b =
        waste_band_of(static_cast<std::uint32_t>(nodes_[node].ply));
    shards_[owner].waste_drops[b].fetch_add(1, std::memory_order_relaxed);
  }

  /// kUnitCommit with the executor-measured compute duration in `dur`
  /// (trace-side waste reconciliation sums these; see commit_one).
  /// Combiner-side like trace_instant.
  void trace_commit(std::uint32_t node, std::uint32_t arg, std::uint64_t dur) {
    if constexpr (!obs::kTracingEnabled) {
      (void)node; (void)arg; (void)dur;
      return;
    }
    if (cfg_.trace == nullptr) return;
    cfg_.trace->engine_tracer().record(
        obs::EventKind::kUnitCommit, cfg_.trace->now_ns(), dur, node, arg,
        static_cast<std::uint16_t>(home_shard(node)));
  }

  void trace_combine_batch(std::size_t records) {
    if constexpr (!obs::kTracingEnabled) {
      (void)records;
      return;
    }
    if (cfg_.trace == nullptr) return;
    cfg_.trace->engine_tracer().instant(obs::EventKind::kCombineBatch,
                                        cfg_.trace->now_ns(), obs::kNoTraceNode,
                                        static_cast<std::uint32_t>(records));
  }

  /// Acquire-side trace hook: the per-shard ring, written only while
  /// holding that shard's queue lock.
  void trace_shard_instant(std::size_t shard, obs::EventKind kind,
                           std::uint32_t node, std::uint32_t arg) {
    if constexpr (!obs::kTracingEnabled) {
      (void)shard; (void)kind; (void)node; (void)arg;
      return;
    }
    if (cfg_.trace == nullptr) return;
    cfg_.trace->shard_tracer(shard).instant(
        kind, cfg_.trace->now_ns(), node, arg,
        static_cast<std::uint16_t>(shard));
  }

  /// Publish-side trace hook: the calling worker's own ring (thread runtime
  /// only — the simulator and untraced runs have no thread tracer).
  void trace_publish(std::size_t shard, std::uint32_t arg) {
    if constexpr (!obs::kTracingEnabled) {
      (void)shard; (void)arg;
      return;
    }
    if (cfg_.trace == nullptr || cfg_.trace->virtual_clock()) return;
    if (obs::Tracer* t = obs::TraceSession::thread_tracer(); t != nullptr)
      t->instant(obs::EventKind::kCombinePublish, cfg_.trace->now_ns(),
                 obs::kNoTraceNode, arg, static_cast<std::uint16_t>(shard));
  }

  /// Counted lock sections mirror their (wait, hold) nanoseconds onto the
  /// calling worker's trace ring from the *same* clock readings the
  /// counters use, so traced span totals equal folded stats totals exactly
  /// (tests/obs).  Virtual-clock sessions suppress the spans: the simulator
  /// models lock time in its cost model, and steady-clock spans would
  /// corrupt its virtual timeline.
  void trace_lock_section(Clock::time_point t0, Clock::time_point t1,
                          Clock::time_point t2, std::uint16_t shard) {
    if constexpr (!obs::kTracingEnabled) {
      (void)t0; (void)t1; (void)t2; (void)shard;
      return;
    }
    if (cfg_.trace == nullptr || cfg_.trace->virtual_clock()) return;
    obs::Tracer* t = obs::TraceSession::thread_tracer();
    if (t == nullptr) return;
    t->span(obs::EventKind::kLockWaitSpan, cfg_.trace->to_ns(t0),
            cfg_.trace->to_ns(t1), obs::kNoTraceNode, 0, shard);
    t->span(obs::EventKind::kLockHoldSpan, cfg_.trace->to_ns(t1),
            cfg_.trace->to_ns(t2), obs::kNoTraceNode, 0, shard);
  }

  /// Publisher wait accounting: time blocked before either a peer applied
  /// the record or this thread became the combiner.  The combiner's own
  /// apply time is *not* wait — it is counted (and traced) by drain_round
  /// as a multi-lock section.
  void note_publisher_wait(Clock::time_point t0, bool peer) {
    const auto t1 = Clock::now();
    publisher_wait_ns_.fetch_add(delta_ns(t0, t1), std::memory_order_relaxed);
    if (peer) peer_applied_.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kTracingEnabled) {
      if (cfg_.trace != nullptr && !cfg_.trace->virtual_clock()) {
        if (obs::Tracer* t = obs::TraceSession::thread_tracer(); t != nullptr)
          t->span(obs::EventKind::kLockWaitSpan, cfg_.trace->to_ns(t0),
                  cfg_.trace->to_ns(t1));
      }
    }
  }

  [[nodiscard]] static std::uint64_t delta_ns(Clock::time_point a,
                                              Clock::time_point b) noexcept {
    return b <= a ? 0
                  : static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            b - a)
                            .count());
  }

  static void spin_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
  }

  // --- node storage (two-tier; DESIGN.md §15) -------------------------------

  /// Cold expansion record: everything a node needs only between its
  /// expansion and its finish — the frozen child positions, the child-node
  /// ids, and the ER phase bookkeeping.  Lives in the home shard's ColdSlab
  /// (Node::cold), touched only under that shard's lock except for the
  /// lock-free compute-phase reads on the node's *own* in-flight unit
  /// (kExpand's expanded check, kSerialRefuteRest's frozen child order),
  /// which the reclaimer's !in_flight guard keeps safe.  The child arrays
  /// are laid out inline after this header, sized at expansion:
  ///
  ///     [ColdRecord][cap × Position][cap × child-node id]   (bytes_for)
  struct ColdRecord {
    static constexpr std::uint32_t kLiveMagic = 0xC01DFEEDu;
    static constexpr std::uint32_t kDeadMagic = 0xDEADC01Du;

    std::uint32_t magic = kLiveMagic;  ///< poisoned to kDeadMagic on reclaim
    std::uint8_t size_class = 0;  ///< slab class; kHeapClass = operator new
    bool expanded = false;        ///< child positions computed (Table 1 ran)
    bool partial = false;         ///< cutover node: Eval_first completed
    bool on_spec = false;         ///< a live entry exists in the spec queue
    bool first_e_selected = false;
    bool e_child_evaluated = false;  ///< some promoted e-child has finished
    bool refutation_dispatched = false;
    std::uint32_t capacity = 0;  ///< child slots allocated
    std::uint32_t count = 0;     ///< child positions stored
    std::int32_t generated = 0;  ///< children instantiated as nodes
    std::int32_t finished_children = 0;
    std::int32_t elder_done = 0;  ///< children with tentative value / finished
    std::int32_t e_children = 0;  ///< children promoted to e-node
    std::uint32_t seq_refuting = kNoNode;  ///< sequential-refutation cursor
    std::uint64_t spec_seq = 0;

    [[nodiscard]] Position* positions() noexcept {
      return reinterpret_cast<Position*>(reinterpret_cast<std::byte*>(this) +
                                         positions_offset());
    }
    [[nodiscard]] const Position* positions() const noexcept {
      return reinterpret_cast<const Position*>(
          reinterpret_cast<const std::byte*>(this) + positions_offset());
    }
    [[nodiscard]] std::uint32_t* child_nodes() noexcept {
      return reinterpret_cast<std::uint32_t*>(
          reinterpret_cast<std::byte*>(this) + nodes_offset(capacity));
    }
    [[nodiscard]] const std::uint32_t* child_nodes() const noexcept {
      return reinterpret_cast<const std::uint32_t*>(
          reinterpret_cast<const std::byte*>(this) + nodes_offset(capacity));
    }

    [[nodiscard]] static constexpr std::size_t align_up(
        std::size_t v, std::size_t a) noexcept {
      return (v + a - 1) & ~(a - 1);
    }
    [[nodiscard]] static constexpr std::size_t positions_offset() noexcept {
      return align_up(sizeof(ColdRecord), alignof(Position));
    }
    [[nodiscard]] static constexpr std::size_t nodes_offset(
        std::uint32_t cap) noexcept {
      return align_up(positions_offset() + cap * sizeof(Position),
                      alignof(std::uint32_t));
    }
    /// Total block bytes for `cap` child slots, rounded to 16 so slab bump
    /// pointers stay aligned for any Position type.
    [[nodiscard]] static constexpr std::size_t bytes_for(
        std::uint32_t cap) noexcept {
      return align_up(nodes_offset(cap) + cap * sizeof(std::uint32_t), 16);
    }
  };

  /// Hot per-node record: one cache line.  Everything the lock-free readers
  /// touch (window_of/is_dead epoch walks, promotion candidacy, pop
  /// filtering) lives here; the expansion payload hangs off `cold` and is
  /// reclaimed when the node finishes or its subtree dies (ColdRecord
  /// above).  The game position lives in the engine's id-parallel position
  /// arena, not in the node.
  struct Node {
    Node(std::uint32_t parent_id, int ply_at, NodeType ty,
         int index_in_parent, std::uint32_t subtree_tag)
        : parent(parent_id),
          ply(ply_at),
          child_index(index_in_parent),
          subtree(subtree_tag),
          type(ty) {}

    /// Epoch-published (value, finished) word for high nodes (ply <
    /// publish_frontier; see pack_pub).  Written by publish_node after
    /// every mutation; read lock-free by window_of/is_dead.  Stays at its
    /// initial state when the frontier is disabled or the node is deep.
    std::atomic<std::uint64_t> pub{pack_pub(-kValueInf, false, 0)};
    /// Cold expansion record in the home shard's slab — null before
    /// expansion and again after reclamation.  Written under the home
    /// shard's lock; the only lock-free readers are compute() calls on this
    /// node's own in-flight unit, which exclude every writer (attach and
    /// reclaim both refuse in-flight nodes).
    ColdRecord* cold = nullptr;

    std::uint32_t parent;      ///< immutable; lock-free chain walks rely on it
    std::int32_t ply;          ///< immutable
    std::int32_t child_index;  ///< immutable; index within the parent's child list
    std::uint32_t subtree;     ///< immutable; root-child ancestor's child index
                               ///< (0 for the root) — kSubtreeAffinity placement
    std::uint32_t best_child = kNoNode;  ///< child that last raised value

    // Cross-shard-readable fields (relaxed atomics, written under the
    // owner's home-shard lock; see the header's concurrency model).
    Shared<Value> value{-kValueInf};  ///< monotone tentative value, own perspective
    Shared<NodeType> type;
    Shared<bool> finished{false};     ///< subtree resolved (evaluated or refuted)
    Shared<bool> in_primary{false};   ///< a live entry exists in the primary queue
    Shared<bool> in_flight{false};    ///< a worker holds this node
    Shared<bool> elder_counted{false};///< contributed to parent's elder_done

    // Cold-state readers, tolerant of a reclaimed (null) record: they
    // answer as a node with no expansion state — exactly what a dead or
    // finished node should look like to the scheduling predicates.
    [[nodiscard]] bool expanded() const noexcept {
      return cold != nullptr && cold->expanded;
    }
    [[nodiscard]] bool partial() const noexcept {
      return cold != nullptr && cold->partial;
    }
    [[nodiscard]] bool on_spec() const noexcept {
      return cold != nullptr && cold->on_spec;
    }
    [[nodiscard]] bool first_e_selected() const noexcept {
      return cold != nullptr && cold->first_e_selected;
    }
    [[nodiscard]] bool e_child_evaluated() const noexcept {
      return cold != nullptr && cold->e_child_evaluated;
    }
    [[nodiscard]] std::int32_t generated() const noexcept {
      return cold != nullptr ? cold->generated : 0;
    }
    [[nodiscard]] std::int32_t finished_children() const noexcept {
      return cold != nullptr ? cold->finished_children : 0;
    }
    [[nodiscard]] std::int32_t elder_done() const noexcept {
      return cold != nullptr ? cold->elder_done : 0;
    }
    [[nodiscard]] std::int32_t e_children() const noexcept {
      return cold != nullptr ? cold->e_children : 0;
    }
    [[nodiscard]] std::uint32_t seq_refuting() const noexcept {
      return cold != nullptr ? cold->seq_refuting : kNoNode;
    }
    [[nodiscard]] std::uint64_t spec_seq() const noexcept {
      return cold != nullptr ? cold->spec_seq : 0;
    }
    // Writers that can legitimately run after the record died with the
    // subtree (a finish clearing spec membership, a dead parent's child
    // accounting) degrade to no-ops on null.
    void set_on_spec(bool v) noexcept {
      if (cold != nullptr) cold->on_spec = v;
    }
    void set_e_child_evaluated() noexcept {
      if (cold != nullptr) cold->e_child_evaluated = true;
    }
    void bump_elder_done() noexcept {
      if (cold != nullptr) cold->elder_done += 1;
    }
    void bump_finished_children() noexcept {
      if (cold != nullptr) cold->finished_children += 1;
    }
  };
  static_assert(sizeof(Node) <= 64,
                "hot node record must fit one cache line — move anything "
                "bigger into ColdRecord");

  /// The node's cold record, which must be live: the accessor for commit
  /// paths only reachable while the record exists (expanded nodes that are
  /// neither finished nor dead).  The magic re-check turns a
  /// use-after-reclaim into an immediate ERS_DCHECK failure instead of a
  /// silent read of recycled memory.
  [[nodiscard]] static ColdRecord* checked_cold(const Node& n) {
    ColdRecord* c = n.cold;
    ERS_DCHECK(c != nullptr && c->magic == ColdRecord::kLiveMagic);
    return c;
  }

  /// Chunked stable-address storage, shared by the hot node records and the
  /// id-parallel position arena.  One writer — the current combiner —
  /// appends; concurrent readers index slots they learned about through a
  /// shard lock, which is what publishes both the chunk pointer and the
  /// constructed element (ids only escape via queue entries pushed under
  /// shard locks after construction, and parents are constructed before
  /// children).  A deque would be the natural container, but its internal
  /// chunk map reallocates on growth and a concurrent operator[] would
  /// race; here the chunk-pointer table is preallocated and never moves.
  /// Nodes hold atomics, so slots are placement-new constructed in place
  /// and never moved or copied.
  template <typename T>
  class StableArena {
   public:
    StableArena() : chunks_(kMaxChunks) {}
    ~StableArena() {
      const std::size_t n = size_.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < n; ++i) slot(i)->~T();
    }
    StableArena(const StableArena&) = delete;
    StableArena& operator=(const StableArena&) = delete;

    template <typename... Args>
    std::uint32_t emplace(Args&&... args) {
      const std::size_t i = size_.load(std::memory_order_relaxed);
      const std::size_t c = i >> kChunkShift;
      ERS_CHECK(c < chunks_.size());
      if (chunks_[c] == nullptr) chunks_[c] = std::make_unique<Chunk>();
      ::new (static_cast<void*>(slot(i))) T(std::forward<Args>(args)...);
      size_.store(i + 1, std::memory_order_relaxed);
      return static_cast<std::uint32_t>(i);
    }

    [[nodiscard]] T& operator[](std::size_t i) const { return *slot(i); }
    [[nodiscard]] std::size_t size() const noexcept {
      return size_.load(std::memory_order_relaxed);
    }
    /// Chunk bytes reserved so far — monotone (chunks are never freed
    /// before destruction), so current == peak.
    [[nodiscard]] std::uint64_t reserved_bytes() const noexcept {
      const std::size_t n = size_.load(std::memory_order_relaxed);
      const std::size_t chunks = (n + kChunkSlots - 1) >> kChunkShift;
      return static_cast<std::uint64_t>(chunks) * sizeof(Chunk);
    }

   private:
    static constexpr std::size_t kChunkShift = 10;  // 1024 slots per chunk
    static constexpr std::size_t kChunkSlots = std::size_t{1} << kChunkShift;
    static constexpr std::size_t kMaxChunks = std::size_t{1} << 14;  // 16.7M slots
    struct Chunk {
      alignas(T) std::byte raw[sizeof(T) * kChunkSlots];
    };
    [[nodiscard]] T* slot(std::size_t i) const {
      return reinterpret_cast<T*>(chunks_[i >> kChunkShift]->raw) +
             (i & (kChunkSlots - 1));
    }
    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::atomic<std::size_t> size_{0};
  };

  /// Create a node: the hot record and its id-parallel position slot, in
  /// sync (the two arenas always have equal size).
  std::uint32_t make_node(const Position& pos, std::uint32_t parent, int ply,
                          NodeType ty, int index_in_parent,
                          std::uint32_t subtree) {
    const std::uint32_t id =
        nodes_.emplace(parent, ply, ty, index_in_parent, subtree);
    const std::uint32_t pid = positions_.emplace(pos);
    ERS_CHECK(pid == id);
    // Waste-ledger side arrays stay id-parallel with the arenas.  Callers
    // are the single-threaded constructor and combiner commits, the same
    // writers the arenas have; the arrays are only ever read by the
    // combiner (commit_one / reclaim_finished, under combine_mu_).
    sub_units_.push_back(0);
    sub_ns_.push_back(0);
    waste_state_.push_back(0);
    return id;
  }

  // --- cold-record allocation / reclamation ---------------------------------

  /// ColdRecord::size_class sentinel: more children than the largest slab
  /// class — the block comes straight from operator new/delete.
  static constexpr std::uint8_t kHeapClass = 0xFF;

  /// Smallest power-of-two slab class holding `cap` children, or kHeapClass.
  [[nodiscard]] static std::uint8_t size_class_for(std::uint32_t cap) noexcept {
    std::uint8_t cls = 0;
    std::uint32_t c = 1;
    while (c < cap) {
      c <<= 1;
      ++cls;
    }
    return cls < ColdSlab::kClasses ? cls : kHeapClass;
  }

  /// Allocate (and placement-construct) a cold record with room for
  /// `children` child slots from the node's home-shard slab.  Requires the
  /// home shard's lock — every caller is inside an apply section whose
  /// touch set includes it.
  [[nodiscard]] ColdRecord* alloc_cold(std::uint32_t id, std::size_t children) {
    static_assert(alignof(Position) <= alignof(std::max_align_t),
                  "slab chunks only guarantee fundamental alignment");
    static_assert(std::is_trivially_destructible_v<ColdRecord>);
    ERS_DCHECK(children >= 1);
    const auto need = static_cast<std::uint32_t>(children);
    const std::uint8_t cls = size_class_for(need);
    const std::uint32_t cap = cls == kHeapClass ? need : (1u << cls);
    const std::size_t bytes = ColdRecord::bytes_for(cap);
    Shard& sh = shards_[home_shard(id)];
    void* mem =
        cls == kHeapClass ? ::operator new(bytes) : sh.slab.take(cls, bytes);
    auto* rec = ::new (mem) ColdRecord();
    rec->size_class = cls;
    rec->capacity = cap;
    ++sh.cold_allocated;
    ++sh.cold_live;
    return rec;
  }

  /// Freeze `kids` as `id`'s child order in a fresh cold record.  The
  /// positions are *copied* — the compute buffer keeps its capacity and is
  /// recycled by the executor (compute_into).
  void attach_cold(std::uint32_t id, std::vector<Position>& kids) {
    Node& n = nodes_[id];
    ERS_DCHECK(n.cold == nullptr);
    ColdRecord* c = alloc_cold(id, kids.size());
    Position* ps = c->positions();
    std::uint32_t* cn = c->child_nodes();
    for (std::size_t i = 0; i < kids.size(); ++i) {
      ::new (static_cast<void*>(ps + i)) Position(kids[i]);
      cn[i] = kNoNode;
    }
    c->count = static_cast<std::uint32_t>(kids.size());
    n.cold = c;
  }

  /// Return `id`'s cold record to its home-shard slab: destroy the stored
  /// positions, poison the magic word (use-after-reclaim detection), and
  /// push the block onto its size-class freelist.  Requires the home
  /// shard's lock.  Refuses in-flight nodes — their compute phase may be
  /// reading the record lock-free — and commit_one re-runs the reclaim
  /// once the unit lands.  No-op when there is nothing attached.
  void reclaim_cold(std::uint32_t id) {
    Node& n = nodes_[id];
    ColdRecord* c = n.cold;
    if (c == nullptr || n.in_flight) return;
    ERS_DCHECK(c->magic == ColdRecord::kLiveMagic);
    n.cold = nullptr;
    Shard& sh = shards_[home_shard(id)];
    const std::uint8_t cls = c->size_class;
    Position* ps = c->positions();
    for (std::uint32_t i = 0; i < c->count; ++i) ps[i].~Position();
    c->magic = ColdRecord::kDeadMagic;  // poison survives in the freelist
    if (cls == kHeapClass)
      ::operator delete(c);
    else
      sh.slab.put(cls, c);
    --sh.cold_live;
    ++sh.cold_reclaimed;
  }

  /// Reclaim what a freshly finished node no longer needs: its own cold
  /// record and the records of the unfinished children its finish just
  /// killed (finished children already reclaimed at their own finish).
  /// Caller holds the finishing node's touch-set locks, which cover every
  /// child's home shard (mark_node_and_children).
  ///
  /// Waste ledger (DESIGN.md §16): each killed unfinished child is a
  /// cancelled subtree root, charged here — once — with its accumulated
  /// uncharged subtree work and marked in waste_state_ so post-death
  /// commits route to the same (cause, band) cell.  The charge is skipped
  /// entirely when the finishing node already lies inside a cancelled
  /// subtree (nearest_waste_root hit): everything below was attributed
  /// when that subtree died.  Charging a child subtracts its tallies from
  /// every ancestor's, so a later kill higher up charges strictly
  /// never-before-charged work — no unit is attributed twice.
  void reclaim_finished(std::uint32_t id, WasteCause cause) {
    const ColdRecord* c = nodes_[id].cold;
    if (c == nullptr) return;
    const bool already_charged = nearest_waste_root(id) != kNoNode;
    const std::uint32_t* kids = c->child_nodes();
    const std::uint32_t cnt = c->count;
    for (std::uint32_t i = 0; i < cnt; ++i) {
      const std::uint32_t ch = kids[i];
      if (ch == kNoNode || nodes_[ch].finished) continue;
      if (!already_charged && waste_state_[ch] == 0) charge_waste(ch, cause);
      reclaim_cold(ch);
    }
    reclaim_cold(id);
  }

  /// Charge cancelled subtree root `ch` to the ledger and mark it.  The
  /// matching trace event is kSpecCancel with arg = cause + 2 (2 = bound
  /// change, 3 = sibling resolution; the acquire-side drop args 0/1 come
  /// first) — trace_report's speculation-waste section reconciles against
  /// exactly these.  Requires combine_mu_ (the side tallies are
  /// combiner-owned).
  void charge_waste(std::uint32_t ch, WasteCause cause) {
    const auto ci = static_cast<std::size_t>(cause);
    const std::size_t b =
        waste_band_of(static_cast<std::uint32_t>(nodes_[ch].ply));
    const std::uint64_t u = sub_units_[ch];
    const std::uint64_t ns = sub_ns_[ch];
    waste_.cancels[ci][b] += 1;
    waste_.units[ci][b] += u;
    waste_.compute_ns[ci][b] += ns;
    waste_state_[ch] = static_cast<std::uint8_t>(ci + 1);
    // The subtree's work is now attributed; remove it from every ancestor's
    // uncharged tally so an enclosing kill cannot charge it again.
    for (std::uint32_t a = nodes_[ch].parent; a != kNoNode;
         a = nodes_[a].parent) {
      sub_units_[a] -= u;
      sub_ns_[a] -= ns;
    }
    trace_instant(obs::EventKind::kSpecCancel, ch,
                  static_cast<std::uint32_t>(cause) + 2);
  }

  /// Deepest cancelled-subtree root on `id`'s ancestor chain (self
  /// included), or kNoNode when the node's subtree is live.  Every dead
  /// node has one: the first kill on any root-to-node path marked the
  /// boundary child it crossed.
  [[nodiscard]] std::uint32_t nearest_waste_root(std::uint32_t id) const {
    for (std::uint32_t a = id; a != kNoNode; a = nodes_[a].parent)
      if (waste_state_[a] != 0) return a;
    return kNoNode;
  }

  // --- members --------------------------------------------------------------

  const G& game_;
  EngineConfig cfg_;
  StableArena<Node> nodes_;  ///< stable slots: children are created while
                             ///< parent references are live
  /// Id-parallel position arena: positions_[id] is node id's game position.
  /// Never reclaimed — best_root_position() reads the winning child after
  /// the search and compute() reads in-flight positions lock-free — which
  /// keeps hot records pointer-light and spares the reclamation protocol
  /// from ever proving a position unreachable.
  StableArena<Position> positions_;
  std::deque<Shard> shards_;  ///< deque: Shard is immovable (owns mutexes)
  /// Global push sequence for the LIFO/FIFO tiebreaks.  A relaxed atomic:
  /// pushes normally happen during single-threaded construction or inside
  /// combiner application (combine_mu_-serialized), but the speculation
  /// controller also re-pushes demoted entries at spec-pop time holding
  /// only the popped entry's shard locks, so the ticket counter must be
  /// race-free there.  Under the sim executor a single driver performs
  /// every push, so ticket order — and with it the pop schedule — stays
  /// deterministic.
  std::atomic<std::uint64_t> seq_{0};
  Shared<bool> done_{false};
  /// Combiner-owned aggregates (guarded by combine_mu_).
  EngineStats stats_;
  /// Wasted-work attribution ledger (DESIGN.md §16): the kill-cause cells
  /// are combiner-owned; waste_stats() folds the shard-side dead-drop
  /// tallies in on snapshot.
  EngineWasteStats waste_;
  /// Id-parallel ledger side arrays (combiner-owned, like the arenas'
  /// writes): per-node *uncharged* committed subtree work, and the
  /// cancelled-subtree mark (0 = live, else WasteCause + 1).
  std::vector<std::uint64_t> sub_units_;
  std::vector<std::uint64_t> sub_ns_;
  std::vector<std::uint8_t> waste_state_;
  std::uint64_t combine_batches_ = 0;
  std::uint64_t combine_records_ = 0;
  std::uint64_t combine_entries_ = 0;
  /// Epoch/frontier path counters (combiner-owned, guarded by combine_mu_).
  std::uint64_t truncated_records_ = 0;
  std::uint64_t frontier_continuations_ = 0;
  std::uint64_t root_publishes_ = 0;
  std::uint64_t root_publish_retries_ = 0;
  /// Reader-side epoch validation retries (window_of runs on any thread).
  mutable std::atomic<std::uint64_t> validate_retries_{0};
  /// Executor steal feedback accepted (note_steal; lock-free callers).
  std::atomic<std::uint64_t> steal_events_{0};
  /// Combiner entry state for the frontier deferral (combine_mu_ held):
  /// the deferral floor for the entry being applied (0 = no truncation)
  /// and the high node whose backup was deferred at that floor.
  std::int32_t apply_frontier_ = 0;
  std::uint32_t deferred_backup_ = kNoNode;
  /// Kill cause of the finish whose backup sits in deferred_backup_.
  WasteCause deferred_backup_cause_ = WasteCause::kSiblingResolution;
#ifndef NDEBUG
  /// Shard locks the current combiner section holds (lock_ascending /
  /// unlock_descending bookkeeping for the lock-order ERS_DCHECKs).
  std::size_t combiner_held_shards_ = 0;
#endif
  /// Multi-lock section counters.  Relaxed atomics: with frontier-truncated
  /// touch sets an apply section need not include shard 0, so the global
  /// acquire scan and the combiner no longer serialize through any one
  /// fixed shard mutex (see the invariant note in acquire_fill).
  std::atomic<std::uint64_t> multi_acquisitions_{0};
  std::atomic<std::uint64_t> multi_wait_ns_{0};
  std::atomic<std::uint64_t> multi_hold_ns_{0};
  /// Publisher-side counters (publishers hold no engine lock).
  std::atomic<std::uint64_t> publish_ticket_{0};
  std::atomic<std::uint64_t> published_pending_{0};
  std::atomic<std::uint64_t> peer_applied_{0};
  std::atomic<std::uint64_t> publisher_wait_ns_{0};
  /// The combiner lock: at most one thread drains/applies at a time.
  /// Lock hierarchy: combine_mu_, then shard queue locks in ascending
  /// index order; pending_mu is a leaf taken on its own.
  mutable std::mutex combine_mu_;
  /// Combiner scratch buffers (touched only under combine_mu_).
  std::vector<ApplyRecord*> scratch_records_;
  std::vector<std::uint8_t> scratch_touch_;
  std::vector<std::size_t> scratch_locks_;
  /// dispatch_refutations' undecided-children list (combiner-owned):
  /// reused across commits so refutation dispatch never allocates.
  std::vector<std::uint32_t> scratch_undecided_;
  /// Continuation-escalation scratch (resolve_deferred_backup) — separate
  /// from the record's own buffers, which must survive the escalation.
  std::vector<std::uint8_t> cont_touch_;
  std::vector<std::size_t> cont_locks_;
};

}  // namespace ers::core
