#pragma once
// Deterministic cost model for the simulated executor.
//
// The Sequent's wall clock is replaced by abstract time units charged per
// primitive operation.  Absolute numbers are meaningless (as the paper
// itself notes about cross-machine comparisons); what the model preserves is
// the *relative* weight of tree operations, static evaluations, and shared
// problem-heap accesses — the three quantities whose balance produces the
// paper's efficiency/starvation/contention behavior.

#include <cstdint>

#include "core/types.hpp"
#include "gametree/game.hpp"

namespace ers::sim {

struct CostModel {
  std::uint64_t per_interior = 2;   ///< expanding one interior node (move gen)
  std::uint64_t per_leaf = 8;       ///< one static evaluation at the horizon
  std::uint64_t per_sort_eval = 8;  ///< one static evaluation done for ordering
  std::uint64_t per_unit_base = 1;  ///< fixed bookkeeping per work unit
  /// Cost of one serialized access to the shared problem heap — the
  /// interference knob: raising these reproduces the paper's growing
  /// contention loss at higher processor counts.  Charged once per
  /// *batch* (SimExecutor's batch size), not once per unit, mirroring the
  /// thread runtime's batched scheduler where one lock acquisition pulls or
  /// commits a whole run buffer.  At batch = 1 each unit pays one acquire
  /// and one commit, the paper's setup.  With a sharded heap (SimExecutor's
  /// queue_shards > 1) each access occupies only the shard that the
  /// engine's parent-owner routing assigns the popped/committed node, so
  /// accesses to different shards overlap in time — the delay shrinks, the
  /// price per access does not.
  std::uint64_t per_heap_acquire = 1;
  std::uint64_t per_heap_commit = 1;
  /// Per-shard lock footprint of a cross-shard commit under the per-shard
  /// locking engine (DESIGN.md §12): each *additional* shard in the
  /// committed node's ancestor touch set extends the commit's serialized
  /// section by this much, and the section blocks every touched shard for
  /// its whole duration — modeling the flat-combining apply round, which
  /// locks its union touch set in ascending order.  0 (the default) keeps
  /// the single-shard commit model — and every existing simulated figure —
  /// bit-identical; benches raise it to study cross-shard commit pressure.
  std::uint64_t per_shard_lock = 0;
  /// Epoch-validated read of a published high ancestor (DESIGN.md §13): a
  /// frontier-truncated commit leaves its high ancestors out of the locked
  /// touch set and instead charges one of these per published ancestor on
  /// the chain — to the committing processor only, since the read is
  /// lock-free and blocks no shard.  0 (the default) keeps every existing
  /// simulated figure bit-identical; only meaningful alongside
  /// per_shard_lock > 0, since the figures it offsets are the cross-shard
  /// lock sections truncation removed.
  std::uint64_t per_published_read = 0;
  /// Transposition-table traffic.  Probes and stores are lock-free (one
  /// cache line each), so unlike queue ops they are charged to the issuing
  /// processor only — cheap, but not free, which keeps a table-heavy search
  /// from simulating faster than the work it actually did.
  std::uint64_t per_tt_probe = 1;
  std::uint64_t per_tt_store = 1;
  /// Allocator cost of materializing one interior node's child storage
  /// (DESIGN.md §15).  The two-tier engine allocates one slab block per
  /// expansion (freelist-recycled); the old layout paid two mallocs.  0
  /// (the default) keeps every existing simulated figure bit-identical;
  /// raise it to study allocator pressure on the expansion path.
  std::uint64_t per_node_alloc = 0;

  /// Cost of the computation a unit performed, from its work counters.
  [[nodiscard]] std::uint64_t of(const SearchStats& s) const noexcept {
    return per_unit_base + per_interior * s.interior_expanded +
           per_leaf * s.leaves_evaluated + per_sort_eval * s.sort_evals +
           per_tt_probe * s.tt_probes + per_tt_store * s.tt_stores +
           per_node_alloc * s.interior_expanded;
  }

  /// Cost of an entire serial search with the same accounting — the
  /// numerator of the efficiency/speedup computations.
  [[nodiscard]] std::uint64_t serial_cost(const SearchStats& s) const noexcept {
    return of(s);
  }
};

}  // namespace ers::sim
