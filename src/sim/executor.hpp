#pragma once
// Deterministic discrete-event simulation of P processors driving a
// problem-heap engine (DESIGN.md §1: the substitute for the paper's Sequent
// Symmetry).
//
// The executor works with any engine exposing the protocol of
// core::Engine — acquire()/compute()/commit()/done() — so the same harness
// simulates parallel ER and the MWF baseline.  Engines exposing the batch
// forms (acquire_batch/commit_batch) can additionally be driven with a
// scheduler batch size > 1, mirroring the thread runtime's batched
// scheduler in the cost model.
//
// Model:
//  * P identical virtual processors.  A processor is either idle (starving)
//    or busy with one batch of up to `batch` work units.
//  * acquire+compute+commit form one batch.  The heavy compute part costs
//    the sum of CostModel::of(unit stats) over the batch; the acquire and
//    the commit each perform one access to the shared problem heap
//    (CostModel::per_heap_acquire / per_heap_commit), serialized per shard
//    lock (one lock at queue_shards = 1), modeling the paper's interference
//    loss.  Batching therefore pays the serialized heap price once per
//    batch instead of once per unit — exactly the thread runtime's remedy.
//    CostModel::per_shard_lock > 0 additionally makes commits occupy their
//    whole ancestor-chain touch set, the footprint of the engine's
//    flat-combining apply round (DESIGN.md §12).
//    Engine state changes are applied atomically in event order, so the
//    schedule is deterministic and the search result is exact; the lock
//    models *time*, not state races.
//  * The run ends the moment the engine reports done (root combined); work
//    still in flight at that point is abandoned speculative work, exactly as
//    on the real machine.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <queue>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/shard_policy.hpp"
#include "obs/histogram.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "sim/cost_model.hpp"
#include "util/check.hpp"

namespace ers::sim {

struct SimMetrics {
  std::uint64_t makespan = 0;        ///< simulated completion time
  std::uint64_t busy_time = 0;       ///< total processor-time spent computing
  std::uint64_t idle_time = 0;       ///< total processor-time starving
  std::uint64_t lock_wait_time = 0;  ///< total time blocked on shard locks
  std::uint64_t units = 0;           ///< work units completed
  std::uint64_t heap_accesses = 0;   ///< serialized heap ops (acquire+commit)
  /// Serialized accesses per shard (sums to heap_accesses): the simulated
  /// shard-contention profile, comparable with the thread runtime's
  /// per-shard lock counters.
  std::vector<std::uint64_t> shard_accesses;
  /// Distribution views of the run (obs/histogram.hpp), mirroring the
  /// thread scheduler's triple: per-unit compute cost, per-batch commit
  /// latency (completion to processor freed: lock wait + apply), and
  /// acquired batch sizes.  Deterministic under the virtual clock.
  obs::Histogram compute_hist;
  obs::Histogram commit_hist;
  obs::Histogram batch_hist;
  int processors = 0;

  /// Fraction of processor-time that did useful work.
  [[nodiscard]] double utilization() const noexcept {
    const double total =
        static_cast<double>(makespan) * static_cast<double>(processors);
    return total > 0 ? static_cast<double>(busy_time) / total : 0.0;
  }
};

template <typename EngineT>
class SimExecutor {
 public:
  /// `queue_shards` models the paper's §8 proposal of distributing the
  /// problem heap to reduce processor interaction: heap accesses spread
  /// over S independently-locked shards instead of one global lock.  The
  /// schedule (which unit runs when, state-wise) is unchanged — only the
  /// serialization *delay* shrinks.  S = 1 is the paper's implementation.
  /// For engines exposing the sharded-heap protocol (core::Engine's
  /// home_shard), an access is routed to the shard the engine's policy
  /// actually assigns the popped/committed node — the same parent-owner
  /// routing the thread runtime uses — so sim and threads report comparable
  /// shard-contention numbers.  Engines without shards keep the idealized
  /// earliest-available-shard model.
  /// `batch` is the scheduler batch size: units pulled (and committed) per
  /// serialized heap access; 1 is the paper's unbatched scheduler.
  SimExecutor(int processors, CostModel cost = {}, int queue_shards = 1,
              int batch = 1)
      : processors_(processors), cost_(cost), shards_(queue_shards),
        batch_(batch) {
    ERS_CHECK(processors >= 1);
    ERS_CHECK(queue_shards >= 1);
    ERS_CHECK(batch >= 1);
  }

  /// Attach a trace session: the simulator emits the *same* event schema as
  /// the thread runtime (lock wait/hold, compute spans, acquire/commit
  /// batches, starvation as sleep spans) stamped on its virtual clock — one
  /// simulated cost unit per "ns" — so a simulated and a real run of the
  /// same tree open side by side in one Perfetto view.  The session is
  /// switched to its virtual clock, which also timestamps the engine's own
  /// trace hooks.  Deterministic: same engine + config ⇒ identical events.
  SimExecutor& with_trace(obs::TraceSession* session) noexcept {
    trace_ = obs::kTracingEnabled ? session : nullptr;
    return *this;
  }

  /// Attach a sampler driven in virtual-clock mode: the executor polls it at
  /// every event it retires (and once at the makespan), so the time series
  /// is a pure function of the schedule — deterministic, bit for bit
  /// (sampler_test.cpp).  The probe runs synchronously on the simulator
  /// thread at the poll points; do not start() the sampler's own thread.
  SimExecutor& with_sampler(obs::Sampler* sampler) noexcept {
    sampler_ = sampler;
    return *this;
  }

  /// Run the engine to completion; returns the simulated metrics.
  SimMetrics run(EngineT& engine) {
    using ItemT = std::decay_t<decltype(*engine.acquire())>;
    using ComputeT = decltype(engine.compute(*engine.acquire()));

    struct Entry {
      ItemT item;
      ComputeT result;
    };
    struct Completion {
      std::uint64_t t;
      std::uint64_t seq;
      std::uint64_t started;
      int worker;
      std::vector<Entry> batch;
    };
    struct Later {
      bool operator()(const Completion& a, const Completion& b) const noexcept {
        return a.t != b.t ? a.t > b.t : a.seq > b.seq;
      }
    };
    std::priority_queue<Completion, std::vector<Completion>, Later> inflight;

    struct IdleWorker {
      std::uint64_t since;
      int id;
      bool operator>(const IdleWorker& o) const noexcept {
        return since != o.since ? since > o.since : id > o.id;
      }
    };
    std::priority_queue<IdleWorker, std::vector<IdleWorker>, std::greater<>> idle;
    for (int w = 0; w < processors_; ++w) idle.push(IdleWorker{0, w});

    SimMetrics m;
    m.processors = processors_;
    m.shard_accesses.assign(static_cast<std::size_t>(shards_), 0);
    if (trace_ != nullptr) {
      trace_->ensure_workers(processors_);
      trace_->use_virtual_clock();
    }
    std::uint64_t now = 0;
    std::vector<std::uint64_t> lock_free(static_cast<std::size_t>(shards_), 0);
    std::vector<std::size_t> touch_set;  // commit touch-set scratch
    // A heap access occupies one shard for `op_cost` serialized time units.
    // `shard` == kUnrouted (engines without a sharded heap) falls back to
    // the earliest-available shard — the idealized balanced distribution.
    // `used` (optional) reports which shard actually served the access.
    auto lock_acquire = [&](std::uint64_t at, std::uint64_t op_cost,
                            std::size_t shard, std::size_t* used = nullptr) {
      auto it = shard == kUnrouted
                    ? std::min_element(lock_free.begin(), lock_free.end())
                    : lock_free.begin() + static_cast<std::ptrdiff_t>(shard);
      const std::uint64_t start = std::max(at, *it);
      *it = start + op_cost;
      ++m.heap_accesses;
      ++m.shard_accesses[static_cast<std::size_t>(it - lock_free.begin())];
      if (used != nullptr)
        *used = static_cast<std::size_t>(it - lock_free.begin());
      return start;
    };
    std::uint64_t seq = 0;

    auto dispatch = [&] {
      while (!idle.empty()) {
        // The worker that will take the batch is known before the pop (the
        // longest-starved one); point the engine's trace hooks at it so
        // acquire-time cancellations are attributed to the right track.
        const IdleWorker w = idle.top();
        if (trace_ != nullptr) {
          trace_->set_current_worker(w.id);
          trace_->set_virtual_now(now);
        }
        std::vector<ItemT> items;
        acquire_into(engine, static_cast<std::size_t>(batch_), items);
        if (items.empty()) break;
        idle.pop();
        m.idle_time += now - w.since;
        // One serialized heap access for the whole acquired batch, routed
        // to the shard serving the pop (the best item's home shard).
        std::size_t used_shard = 0;
        const std::uint64_t start =
            lock_acquire(now, cost_.per_heap_acquire,
                         route_shard(engine, items.front()), &used_shard);
        m.lock_wait_time += start - now;
        obs::Tracer* tr =
            trace_ == nullptr ? nullptr : &trace_->worker(w.id);
        if (tr != nullptr) {
          if (now > w.since)
            tr->span(obs::EventKind::kSleepSpan, w.since, now);
          if (start > now)
            tr->span(obs::EventKind::kLockWaitSpan, now, start);
          tr->span(obs::EventKind::kLockHoldSpan, start,
                   start + cost_.per_heap_acquire);
          tr->instant(obs::EventKind::kAcquireBatch, start,
                      node_of(items.front()),
                      static_cast<std::uint32_t>(items.size()),
                      static_cast<std::uint16_t>(used_shard));
        }
        std::vector<Entry> batch;
        batch.reserve(items.size());
        std::uint64_t compute_cost = 0;
        std::uint64_t t = start + cost_.per_heap_acquire;
        m.batch_hist.record(items.size());
        for (ItemT& item : items) {
          auto result = engine.compute(item);
          const std::uint64_t c = cost_.of(result.stats);
          compute_cost += c;
          m.compute_hist.record(c);
          // The unit's virtual compute duration rides the result into
          // commit_one: the engine's waste ledger charges exactly this on
          // cancellation, making sim-side waste ns exact (not sampled).
          if constexpr (requires { result.compute_ns; }) result.compute_ns = c;
          if (tr != nullptr) {
            tr->span(obs::EventKind::kComputeSpan, t, t + c, node_of(item));
            trace_tt(*tr, t + c, node_of(item), result);
          }
          t += c;
          batch.push_back(Entry{std::move(item), std::move(result)});
        }
        const std::uint64_t done_at =
            start + cost_.per_heap_acquire + compute_cost;
        inflight.push(
            Completion{done_at, seq++, start, w.id, std::move(batch)});
      }
    };

    dispatch();
    while (!engine.done()) {
      ERS_CHECK(!inflight.empty() && "problem-heap engine stalled");
      Completion ev = std::move(const_cast<Completion&>(inflight.top()));
      inflight.pop();
      now = ev.t;
      // One serialized access commits the whole batch, routed to the shard
      // owning the first committed node's parent.  When the cost model
      // charges per_shard_lock, the commit instead occupies the node's full
      // ancestor-chain touch set — the shards the flat-combining apply
      // round locks together — each additional shard extending the section,
      // so cross-shard commits delay refills on those shards exactly as the
      // real combiner does.
      std::size_t used_shard = 0;
      std::uint64_t commit_cost = cost_.per_heap_commit;
      std::uint64_t start;
      // Epoch-validated reads of published high ancestors (the part of the
      // chain a frontier-truncated commit does NOT lock) are charged to the
      // committing processor only: they extend this worker's busy window but
      // never the shard lock sections, mirroring the lock-free validated
      // read in Engine::publish_node/window_of.
      std::uint64_t pub_cost = 0;
      if constexpr (requires { engine.published_ancestors(0u); }) {
        if (cost_.per_published_read > 0 && cost_.per_shard_lock > 0)
          pub_cost = cost_.per_published_read *
                     engine.published_ancestors(ev.batch.front().item.node);
      }
      touch_set.clear();
      if (cost_.per_shard_lock > 0)
        collect_touch_shards(engine, ev.batch.front().item, touch_set);
      if (touch_set.size() > 1) {
        used_shard = route_shard(engine, ev.batch.front().item);
        commit_cost += cost_.per_shard_lock *
                       static_cast<std::uint64_t>(touch_set.size() - 1);
        start = now;
        for (const std::size_t s : touch_set)
          start = std::max(start, lock_free[s]);
        for (const std::size_t s : touch_set) lock_free[s] = start + commit_cost;
        ++m.heap_accesses;
        ++m.shard_accesses[used_shard];
      } else {
        start = lock_acquire(now, commit_cost,
                             route_shard(engine, ev.batch.front().item),
                             &used_shard);
      }
      m.lock_wait_time += start - now;
      if (trace_ != nullptr) {
        obs::Tracer& tr = trace_->worker(ev.worker);
        if (start > now)
          tr.span(obs::EventKind::kLockWaitSpan, now, start);
        tr.span(obs::EventKind::kLockHoldSpan, start, start + commit_cost);
        tr.instant(obs::EventKind::kCommitBatch, start,
                   node_of(ev.batch.front().item),
                   static_cast<std::uint32_t>(ev.batch.size()),
                   static_cast<std::uint16_t>(used_shard));
        trace_->set_current_worker(ev.worker);
        trace_->set_virtual_now(start);
      }
      const std::uint64_t freed_at = start + commit_cost + pub_cost;
      // Busy time is credited at commit so that work still in flight when
      // the root combines can be clamped to the makespan below.
      m.busy_time += (ev.t - ev.started) + commit_cost + pub_cost;
      commit_all(engine, ev.batch);
      m.units += ev.batch.size();
      m.commit_hist.record(freed_at - ev.t);
      m.makespan = std::max(m.makespan, freed_at);
      idle.push(IdleWorker{freed_at, ev.worker});
      now = freed_at;
      // Sample after the commit landed: a tick due at virtual time T sees
      // the engine exactly as of the last event retired at or before T.
      if (sampler_ != nullptr) sampler_->poll(now);
      dispatch();
    }
    if (sampler_ != nullptr) sampler_->poll(m.makespan);

    // Work still in flight when the search completed is abandoned
    // speculative work: it kept its processor busy only until the makespan.
    while (!inflight.empty()) {
      const Completion& ev = inflight.top();
      if (m.makespan > ev.started) m.busy_time += m.makespan - ev.started;
      inflight.pop();
    }
    // Remaining in-flight work is abandoned; idle processors starve until
    // the makespan.
    while (!idle.empty()) {
      const IdleWorker w = idle.top();
      idle.pop();
      if (m.makespan > w.since) {
        m.idle_time += m.makespan - w.since;
        if (trace_ != nullptr)
          trace_->worker(w.id).span(obs::EventKind::kSleepSpan, w.since,
                                    m.makespan);
      }
    }
    return m;
  }

 private:
  /// "No routing information": use the earliest-available shard instead.
  static constexpr std::size_t kUnrouted = std::numeric_limits<std::size_t>::max();

  /// The shard an access touches under the engine's real routing policy —
  /// home_shard folded onto this executor's shard count (they coincide when
  /// driven through parallel_er_sim, which passes queue_shards into the
  /// engine config).
  template <typename E, typename ItemT>
  [[nodiscard]] std::size_t route_shard(const E& engine,
                                        const ItemT& item) const {
    if constexpr (requires { engine.home_shard(item.node); }) {
      return core::fold_shard(engine.home_shard(item.node),
                              static_cast<std::size_t>(shards_));
    } else {
      (void)engine;
      (void)item;
      return kUnrouted;
    }
  }

  /// The ascending, deduplicated set of executor shards a commit on the
  /// item's node would lock under the engine's flat-combining apply path —
  /// the engine's touch set folded onto this executor's shard count.  Empty
  /// for engines without the sharded commit protocol.
  template <typename E, typename ItemT>
  void collect_touch_shards(const E& engine, const ItemT& item,
                            std::vector<std::size_t>& out) const {
    if constexpr (requires {
                    engine.commit_touch_shards(
                        item.node, std::declval<std::vector<std::uint32_t>&>());
                  }) {
      std::vector<std::uint32_t> raw;
      engine.commit_touch_shards(item.node, raw);
      for (const std::uint32_t s : raw)
        out.push_back(core::fold_shard(s, static_cast<std::size_t>(shards_)));
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
    } else {
      (void)engine;
      (void)item;
    }
  }

  /// Pull up to k items, preferring the engine's batch form.  Engines
  /// exposing only the single-item protocol (the scripted DES fake, the
  /// baselines) are popped one at a time — identical semantics.
  template <typename E, typename ItemT>
  static void acquire_into(E& engine, std::size_t k, std::vector<ItemT>& out) {
    if constexpr (requires { engine.acquire_batch(k, out); }) {
      engine.acquire_batch(k, out);
    } else {
      while (out.size() < k) {
        auto item = engine.acquire();
        if (!item) break;
        out.push_back(std::move(*item));
      }
    }
  }

  template <typename E, typename EntryT>
  static void commit_all(E& engine, std::vector<EntryT>& batch) {
    for (EntryT& e : batch) engine.commit(e.item, std::move(e.result));
  }

  /// Engine node id of a work item, for trace events; kNoTraceNode for
  /// engines whose items carry no node id.
  template <typename Item>
  [[nodiscard]] static std::uint32_t node_of(const Item& item) noexcept {
    if constexpr (requires { item.node; })
      return static_cast<std::uint32_t>(item.node);
    else
      return obs::kNoTraceNode;
  }

  /// Per-unit transposition-table traffic as trace instants, mirroring the
  /// thread runtime's schema (same kinds, same arg meaning).
  template <typename Result>
  static void trace_tt(obs::Tracer& tr, std::uint64_t ts, std::uint32_t node,
                       const Result& r) {
    if constexpr (requires { r.stats.tt_probes; }) {
      if (r.stats.tt_probes > 0)
        tr.instant(obs::EventKind::kTtProbe, ts, node,
                   static_cast<std::uint32_t>(r.stats.tt_probes));
      if (r.stats.tt_hits > 0)
        tr.instant(obs::EventKind::kTtHit, ts, node,
                   static_cast<std::uint32_t>(r.stats.tt_hits));
    } else {
      (void)tr;
      (void)ts;
      (void)node;
    }
  }

  int processors_;
  CostModel cost_;
  int shards_;
  int batch_;
  obs::TraceSession* trace_ = nullptr;  ///< not owned; null = untraced
  obs::Sampler* sampler_ = nullptr;     ///< not owned; polled in virtual mode
};

}  // namespace ers::sim
