#pragma once
// Principal-variation splitting (paper §4.4; Marsland & Campbell).
//
// The candidate principal variation (leftmost branch) is followed serially
// until the remaining depth equals the processor tree's height; that node is
// searched with tree-splitting.  On the way back up, each PV node first
// finishes its leftmost child (recursively, with all processors), then runs
// the remaining siblings through the tree-splitting master loop with the
// bound the PV child established — so most of the tree is searched with a
// cutoff-capable window, at the price of idle processors along the PV spine.

#include <cstdint>

#include "baselines/tree_splitting.hpp"
#include "gametree/game.hpp"
#include "search/ordering.hpp"
#include "sim/cost_model.hpp"

namespace ers::baselines {

template <Game G>
class PvSplitSimulator {
 public:
  PvSplitSimulator(const G& game, int depth, ProcessorTree procs,
                   OrderingPolicy ordering = {}, sim::CostModel cost = {})
      : game_(game), depth_(depth), procs_(procs), ordering_(ordering),
        cost_(cost), splitter_(game, depth, procs, ordering, cost) {}

  [[nodiscard]] SplitOutcome run() {
    // A degenerate processor tree (height 0: one processor) is just serial
    // alpha-beta; the PV recursion assumes at least one master level.
    if (procs_.height <= 0)
      return splitter_.search(game_.root(), 0, 0, 0, -kValueInf, kValueInf);
    return pv_search(game_.root(), 0, 0, -kValueInf, kValueInf);
  }

 private:
  SplitOutcome pv_search(const typename G::Position& pos, int ply,
                         std::uint64_t start, Value alpha, Value beta) {
    // At (or below) the processor tree's height, hand over to tree-splitting.
    if (depth_ - ply <= procs_.height)
      return splitter_.search(pos, ply, procs_.height, start, alpha, beta);

    std::vector<typename G::Position> kids;
    if (ply < depth_) game_.generate_children(pos, kids);
    SplitOutcome out;
    if (kids.empty()) {
      out.value = game_.evaluate(pos);
      out.stats.leaves_evaluated = 1;
      out.finish = start + cost_.of(out.stats);
      return out;
    }
    out.stats.interior_expanded = 1;
    if (ordering_.should_sort(ply))
      sort_children_by_static_value(game_, kids, out.stats);
    std::uint64_t now = start + cost_.of(out.stats);

    // 1. Evaluate the PV child with the full machine.
    const SplitOutcome pv =
        pv_search(kids[0], ply + 1, now, negate(beta), negate(alpha));
    out.stats += pv.stats;
    now = pv.finish;
    Value m = std::max(alpha, negate(pv.value));
    if (m >= beta) {
      out.value = m;
      out.finish = now;
      return out;
    }

    // 2. Distribute the remaining siblings over the processor tree's slave
    //    subtrees (the paper: "the tree-splitting algorithm is then run on
    //    [the remaining siblings] simultaneously").
    std::vector<typename G::Position> rest(kids.begin() + 1, kids.end());
    if (!rest.empty()) {
      now = splitter_.master_loop(rest, ply + 1, procs_.height - 1, now, m,
                                  beta, out.stats);
    }
    out.value = m;
    out.finish = now;
    return out;
  }

  const G& game_;
  int depth_;
  ProcessorTree procs_;
  OrderingPolicy ordering_;
  sim::CostModel cost_;
  TreeSplitSimulator<G> splitter_;
};

template <Game G>
[[nodiscard]] SplitOutcome pv_splitting_search(const G& game, int depth,
                                               ProcessorTree procs,
                                               OrderingPolicy ordering = {},
                                               sim::CostModel cost = {}) {
  return PvSplitSimulator<G>(game, depth, procs, ordering, cost).run();
}

}  // namespace ers::baselines
