#pragma once
// Parallel ABDADA runner: iterative deepening at the root, N identical
// workers per depth, coordination purely through the shared tables
// (DESIGN.md §14).
//
// Unlike every other parallel driver in this repo, this one never touches
// the problem heap: there is no engine, no acquire/commit, no shards.  Each
// depth iteration spawns `threads` std::threads that all run the same
// AbdadaSearcher from the same root with the same aspiration window (seeded
// by the previous depth's value, search/aspiration.hpp); the shared
// ConcurrentTranspositionTable spreads finished subtrees between them and
// the NprocTable spreads the workers across siblings.  The first worker to
// resolve the window claims the depth result and raises a stop flag; the
// rest unwind and their partial work is discarded (their stores up to the
// flag remain in the table and are sound).
//
// Thanks to the searcher's depth-exact TT gating, every claimed depth value
// equals serial alpha-beta at that depth regardless of thread count or
// interleaving, so the estimate chain — and the final value — is
// deterministic.  Node counts are not: that is the quantity the benches
// compare against ER.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "gametree/game.hpp"
#include "obs/trace.hpp"
#include "search/abdada.hpp"
#include "search/aspiration.hpp"
#include "search/concurrent_ttable.hpp"
#include "search/nproc_table.hpp"
#include "search/ordering.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers::baselines {

struct AbdadaOptions {
  int threads = 1;
  Value aspiration_delta = 25;  ///< half-width of the root guess window
  int table_log2 = 20;          ///< shared TT size (2^n 16-byte slots)
  int nproc_log2 = 16;          ///< nproc side table (2^n counters, 256 KiB)
  OrderingPolicy ordering;
  obs::TraceSession* trace = nullptr;
};

/// One iterative-deepening step's claimed outcome.
struct AbdadaDepthResult {
  int depth = 0;
  Value value = 0;
  int searches = 1;  ///< aspiration searches by the claiming worker
  bool failed_low = false;
  bool failed_high = false;
};

struct AbdadaParallelResult {
  Value value = 0;                      ///< final-depth root value
  SearchStats stats;                    ///< summed over all workers/depths
  std::vector<SearchStats> per_thread;  ///< per-worker totals (duplication!)
  std::vector<AbdadaDepthResult> per_depth;
  int researches = 0;  ///< aspiration re-searches over all depths
  std::uint64_t elapsed_ns = 0;
};

/// Run parallel ABDADA on `game` to `max_depth`.  Owns a fresh shared TT
/// and nproc table for the whole deepening run (TT generations age between
/// depths via new_search()).  Works for any Game; without a HashedGame the
/// tables are inert and the workers redundantly alpha-beta (the degenerate
/// case the 1-thread identity tests use).
template <Game G>
[[nodiscard]] AbdadaParallelResult abdada_parallel_search(
    const G& game, int max_depth, const AbdadaOptions& opt = {}) {
  ERS_CHECK(opt.threads >= 1);
  ERS_CHECK(max_depth >= 0);
  AbdadaParallelResult out;
  out.per_thread.resize(static_cast<std::size_t>(opt.threads));

  ConcurrentTranspositionTable tt(opt.table_log2);
  NprocTable nproc(opt.nproc_log2);
  if (opt.trace != nullptr) opt.trace->ensure_workers(opt.threads);

  const auto t0 = std::chrono::steady_clock::now();
  Value estimate = 0;
  for (int depth = max_depth == 0 ? 0 : 1; depth <= max_depth; ++depth) {
    if constexpr (HashedGame<G>) tt.new_search();
    std::atomic<bool> stop{false};
    std::atomic<bool> claimed{false};
    AbdadaDepthResult dr;
    dr.depth = depth;

    auto work = [&](int tid) {
      AbdadaSearcher<G> searcher(game, depth, opt.ordering);
      if constexpr (HashedGame<G>)
        searcher.with_shared_table(&tt).with_nproc_table(&nproc);
      searcher.with_stop(&stop);
      if (opt.trace != nullptr) searcher.with_trace(opt.trace, tid);

      SearchStats local;
      AspirationOutcome o;
      if (depth <= 1) {
        // Nothing to aspire around yet: full window.
        const SearchResult r = searcher.run_from(game.root(), 0);
        local += r.stats;
        o.value = r.value;
      } else {
        o = aspiration_drive(
            [&](Window w) {
              const SearchResult r = searcher.run_from(game.root(), 0, w);
              local += r.stats;
              return r.value;
            },
            estimate, opt.aspiration_delta);
      }
      out.per_thread[static_cast<std::size_t>(tid)] += local;
      if (!searcher.aborted() && !claimed.exchange(true)) {
        dr.value = o.value;
        dr.searches = o.searches;
        dr.failed_low = o.failed_low;
        dr.failed_high = o.failed_high;
        stop.store(true, std::memory_order_relaxed);
      }
    };

    if (opt.threads == 1) {
      work(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(opt.threads));
      for (int t = 0; t < opt.threads; ++t) pool.emplace_back(work, t);
      for (auto& th : pool) th.join();
    }
    // Aborts happen only after a claim raised the stop flag, so some worker
    // always claims.
    ERS_CHECK(claimed.load());
    ERS_DCHECK(nproc.all_idle());
    estimate = dr.value;
    out.researches += dr.searches - 1;
    out.per_depth.push_back(dr);
  }
  out.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  out.value = estimate;
  for (const auto& s : out.per_thread) out.stats += s;
  return out;
}

}  // namespace ers::baselines
