#pragma once
// Parallel aspiration search (paper §4.1; Baudet 1978).
//
// The full value range is split into P disjoint windows; each processor runs
// serial alpha-beta over the whole tree with its own window and the
// processors never communicate.  Exactly one processor's window contains the
// root value; fail-hard semantics make its in-window result self-certifying,
// so the search completes when that processor finishes.  Since every
// processor still examines at least the minimal tree, speedup saturates
// around 5-6 no matter how many processors are used — the behavior the
// comparison bench must reproduce.

#include <cstdint>
#include <vector>

#include "gametree/game.hpp"
#include "search/alpha_beta.hpp"
#include "sim/cost_model.hpp"
#include "util/check.hpp"

namespace ers::baselines {

struct AspirationWindowOutcome {
  Window window;
  Value result = 0;
  bool exact = false;  ///< result strictly inside the window
  SearchStats stats;
  std::uint64_t cost = 0;
};

struct ParallelAspirationResult {
  Value value = 0;
  /// Simulated parallel time: the finishing time of the processor whose
  /// window contained the value (its result alone certifies the answer).
  std::uint64_t makespan = 0;
  /// Time until *every* processor finished (for starvation accounting).
  std::uint64_t last_finish = 0;
  std::uint64_t total_nodes = 0;
  std::vector<AspirationWindowOutcome> processors;
};

/// Run parallel aspiration with `processors` disjoint windows spanning
/// [-value_bound, value_bound].  The outermost windows are open-ended so the
/// partition covers the whole value axis.
template <Game G>
[[nodiscard]] ParallelAspirationResult parallel_aspiration_search(
    const G& game, int depth, int processors, Value value_bound,
    OrderingPolicy ordering = {}, const sim::CostModel& cost = {}) {
  ERS_CHECK(processors >= 1);
  ERS_CHECK(value_bound > 0);

  ParallelAspirationResult out;
  out.processors.reserve(processors);

  // Boundaries c_0..c_P split [-bound, bound]; processor i gets the window
  // (c_i - 1, c_{i+1}), which certifies exactly the integers in
  // [c_i, c_{i+1} - 1] — a partition with no holes at the boundaries.
  const std::int64_t full_span = 2 * static_cast<std::int64_t>(value_bound);
  auto boundary = [&](int i) {
    return static_cast<Value>(-value_bound + (full_span * i) / processors);
  };
  for (int i = 0; i < processors; ++i) {
    Window w;
    w.alpha = i == 0 ? -kValueInf : static_cast<Value>(boundary(i) - 1);
    w.beta = i == processors - 1 ? kValueInf : boundary(i + 1);
    AlphaBetaSearcher<G> searcher(game, depth, ordering);
    const SearchResult r = searcher.run(w);
    AspirationWindowOutcome o;
    o.window = w;
    o.result = r.value;
    o.exact = r.value > w.alpha && r.value < w.beta;
    o.stats = r.stats;
    o.cost = cost.of(r.stats);
    out.total_nodes += r.stats.nodes_generated();
    out.processors.push_back(o);
  }

  bool found = false;
  for (const auto& o : out.processors) {
    out.last_finish = std::max(out.last_finish, o.cost);
    if (o.exact) {
      ERS_CHECK(!found && "value lies in exactly one window");
      found = true;
      out.value = o.result;
      out.makespan = o.cost;
    }
  }
  ERS_CHECK(found && "the window partition must cover the root value");
  return out;
}

}  // namespace ers::baselines
