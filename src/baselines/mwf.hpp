#pragma once
// Mandatory Work First (paper §4.2; Akl, Barnard & Doran 1982) as a
// problem-heap engine, driven by the same sim::SimExecutor as parallel ER so
// the comparison bench measures both under identical cost assumptions.
//
// Phase structure (expressed as scheduling gates rather than barriers):
//  * The minimal tree of alpha-beta *without deep cutoffs* (1- and 2-nodes,
//    §2.2's second rule set) is mandatory: a 1-node schedules all its
//    children (first child a 1-node, the rest 2-nodes); a 2-node schedules
//    only its first child (a 1-node).
//  * The right children of 2-nodes are speculative.  Right child s_i starts
//    only after the 2-node's immediate left sibling has finished (so a
//    refutation bound exists) and all earlier siblings s_j, j < i, have
//    finished; it is then searched by serial alpha-beta as a single unit.
//  * Nodes at the serial-depth cutover are resolved by one serial
//    alpha-beta unit, like the ER engine's parallel-tree leaves.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "gametree/game.hpp"
#include "search/alpha_beta.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers::baselines {

struct MwfStats {
  SearchStats search;
  std::uint64_t units_processed = 0;
  std::uint64_t speculative_units = 0;  ///< right children of 2-nodes searched
  std::uint64_t cutoffs_at_pop = 0;
  std::uint64_t dead_items_dropped = 0;
};

template <Game G>
class MwfEngine {
 public:
  using Position = typename G::Position;

  struct Config {
    int search_depth = 7;
    int serial_depth = 5;
    OrderingPolicy ordering;
  };

  struct ComputeResult {
    std::vector<Position> child_positions;
    bool positions_computed = false;
    Value value = 0;
    bool is_leaf = false;
    SearchStats stats;
  };

  struct Item {
    std::uint32_t node = 0;
    bool serial_unit = false;
    Window window;
    /// Stable node pointer captured at acquire (see core::WorkItem).
    const void* node_ref = nullptr;
  };

  MwfEngine(const G&&, Config) = delete;
  MwfEngine(const G& game, Config cfg) : game_(game), cfg_(cfg) {
    ERS_CHECK(cfg_.search_depth >= 0);
    cfg_.serial_depth = std::clamp(cfg_.serial_depth, 0, cfg_.search_depth);
    nodes_.push_back(Node(game_.root(), core::kNoNode, 0, 0, /*type1=*/true,
                          /*spec=*/false));
    push(0);
  }

  [[nodiscard]] std::optional<Item> acquire() {
    while (!queue_.empty()) {
      const Entry e = queue_.top();
      queue_.pop();
      Node& n = nodes_[e.node];
      if (!n.queued) continue;
      n.queued = false;
      if (n.finished || is_dead(e.node)) {
        ++stats_.dead_items_dropped;
        continue;
      }
      if (n.parent != core::kNoNode && n.value >= beta_of(e.node)) {
        ++stats_.cutoffs_at_pop;
        finish_and_combine(e.node);
        continue;
      }
      const bool serial = n.speculative || n.ply >= cfg_.serial_depth;
      return Item{e.node, serial, Window{-kValueInf, beta_of(e.node)}, &n};
    }
    return std::nullopt;
  }

  [[nodiscard]] ComputeResult compute(const Item& item) const {
    const Node& n = *static_cast<const Node*>(item.node_ref);
    ComputeResult out;
    if (item.serial_unit) {
      AlphaBetaSearcher<G> searcher(game_, cfg_.search_depth, cfg_.ordering);
      const SearchResult r = searcher.run_from(n.pos, n.ply, item.window);
      out.value = r.value;
      out.stats = r.stats;
      return out;
    }
    out.positions_computed = true;
    game_.generate_children(n.pos, out.child_positions);
    if (out.child_positions.empty()) {
      out.is_leaf = true;
      out.value = game_.evaluate(n.pos);
      out.stats.leaves_evaluated = 1;
      return out;
    }
    out.stats.interior_expanded = 1;
    if (cfg_.ordering.should_sort(n.ply))
      sort_children_by_static_value(game_, out.child_positions, out.stats);
    return out;
  }

  void commit(const Item& item, ComputeResult&& r) {
    Node& n = nodes_[item.node];
    stats_.search += r.stats;
    ++stats_.units_processed;
    if (item.serial_unit) {
      if (n.speculative) ++stats_.speculative_units;
      n.value = std::max(n.value, r.value);
      finish_and_combine(item.node);
      return;
    }
    if (r.is_leaf) {
      n.value = std::max(n.value, r.value);
      finish_and_combine(item.node);
      return;
    }
    n.child_positions = std::move(r.child_positions);
    n.child_nodes.assign(n.child_positions.size(), core::kNoNode);
    n.expanded = true;
    if (n.type1) {
      // Rule ii: every child is in the minimal tree — first child a 1-node,
      // the rest 2-nodes.  Create in reverse so LIFO pops go left-to-right.
      for (int i = static_cast<int>(n.child_positions.size()) - 1; i >= 0; --i)
        make_child(item.node, i, /*type1=*/i == 0, /*spec=*/false);
    } else {
      // Rule iii: only the first child (a 1-node) is mandatory.
      make_child(item.node, 0, /*type1=*/true, /*spec=*/false);
    }
  }

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] Value root_value() const noexcept { return nodes_[0].value; }
  [[nodiscard]] const MwfStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool has_queued_work() const noexcept { return !queue_.empty(); }

 private:
  struct Node {
    Node(Position position, std::uint32_t parent_id, int ply_at, int index,
         bool is_type1, bool is_speculative)
        : pos(std::move(position)), parent(parent_id), ply(ply_at),
          child_index(index), type1(is_type1), speculative(is_speculative) {}

    Position pos;
    std::uint32_t parent;
    std::int32_t ply;
    std::int32_t child_index;
    bool type1;
    bool speculative;  ///< right child of a 2-node: one serial unit
    Value value = -kValueInf;
    bool finished = false;
    bool expanded = false;
    bool queued = false;
    std::vector<Position> child_positions;
    std::vector<std::uint32_t> child_nodes;
    std::int32_t generated = 0;
    std::int32_t finished_children = 0;
  };

  struct Entry {
    std::int32_t ply;
    std::uint64_t seq;
    std::uint32_t node;
    bool operator<(const Entry& o) const noexcept {
      if (ply != o.ply) return ply < o.ply;  // deepest first
      return seq < o.seq;                    // LIFO among equals
    }
  };

  void push(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.queued || n.finished) return;
    n.queued = true;
    queue_.push(Entry{n.ply, seq_++, id});
  }

  void make_child(std::uint32_t parent_id, int index, bool type1, bool spec) {
    Node& p = nodes_[parent_id];
    ERS_CHECK(p.child_nodes[index] == core::kNoNode);
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(
        Node(p.child_positions[index], parent_id, p.ply + 1, index, type1, spec));
    p.child_nodes[index] = id;
    p.generated += 1;
    push(id);
  }

  [[nodiscard]] Value beta_of(std::uint32_t id) const {
    const Node& n = nodes_[id];
    // MWF forgoes deep cutoffs: the bound comes from the parent alone.
    return n.parent == core::kNoNode ? kValueInf
                                     : negate(nodes_[n.parent].value);
  }

  [[nodiscard]] bool is_dead(std::uint32_t id) const {
    for (std::uint32_t a = nodes_[id].parent; a != core::kNoNode;
         a = nodes_[a].parent)
      if (nodes_[a].finished) return true;
    return false;
  }

  [[nodiscard]] bool is_complete(std::uint32_t id) const {
    const Node& n = nodes_[id];
    if (id != 0 && n.value >= beta_of(id)) return true;  // refuted
    return n.expanded &&
           n.generated == static_cast<int>(n.child_positions.size()) &&
           n.finished_children == n.generated;
  }

  void finish_and_combine(std::uint32_t id) {
    std::uint32_t cur = id;
    for (;;) {
      Node& n = nodes_[cur];
      n.finished = true;
      if (cur == 0) {
        done_ = true;
        return;
      }
      const std::uint32_t pid = n.parent;
      Node& p = nodes_[pid];
      if (p.finished) return;  // abandoned speculative subtree
      p.value = std::max(p.value, negate(n.value));
      p.finished_children += 1;
      if (is_complete(pid)) {
        cur = pid;
        continue;
      }
      // The parent lives on: release any speculative right child whose gate
      // this completion opened.
      maybe_release_right_child(pid);
      // A finished child is also the "left sibling" gate of the 2-node to
      // its right.
      if (n.child_index + 1 < static_cast<int>(p.child_nodes.size())) {
        const std::uint32_t right = p.child_nodes[n.child_index + 1];
        if (right != core::kNoNode && !nodes_[right].finished)
          maybe_release_right_child(right);
      }
      return;
    }
  }

  /// Gate check for 2-node `id` (paper §4.2): its next right child may start
  /// once the node's immediate left sibling has finished and all earlier
  /// children have finished.
  void maybe_release_right_child(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.type1 || !n.expanded || n.finished) return;
    if (n.generated >= static_cast<int>(n.child_positions.size())) return;
    if (n.finished_children < n.generated) return;  // earlier child running
    if (!left_sibling_finished(id)) return;
    make_child(id, n.generated, /*type1=*/false, /*spec=*/true);
  }

  [[nodiscard]] bool left_sibling_finished(std::uint32_t id) const {
    const Node& n = nodes_[id];
    if (n.parent == core::kNoNode || n.child_index == 0) return true;
    const std::uint32_t sib = nodes_[n.parent].child_nodes[n.child_index - 1];
    return sib != core::kNoNode && nodes_[sib].finished;
  }

  const G& game_;
  Config cfg_;
  std::deque<Node> nodes_;
  std::priority_queue<Entry> queue_;
  std::uint64_t seq_ = 0;
  bool done_ = false;
  MwfStats stats_;
};

}  // namespace ers::baselines
