#pragma once
// The tree-splitting algorithm (paper §4.3; Fishburn 1981) on a simulated
// processor tree, plus the master/slave scheduling core reused by
// PV-splitting (§4.4).
//
// A master owns a game-tree node: it generates the children, hands each to
// a free slave (children beyond the slave count queue up), narrows the
// alpha-beta window of later assignments as earlier slaves report back, and
// cuts off the remainder when the window closes.  Interior processors are
// masters of their own slaves one level down; leaf processors run serial
// alpha-beta.  The simulation is a per-master event loop over slave
// completion times, so window-update *timing* — the source of tree
// splitting's speculative loss — is modeled faithfully.

#include <cstdint>
#include <queue>
#include <vector>

#include "gametree/game.hpp"
#include "search/alpha_beta.hpp"
#include "sim/cost_model.hpp"
#include "util/check.hpp"

namespace ers::baselines {

/// Shape of the processor tree: `branching` slaves per master, `height`
/// levels of masters (height 0 = a single leaf processor).
struct ProcessorTree {
  int branching = 2;
  int height = 2;

  [[nodiscard]] int total_leaf_processors() const noexcept {
    int p = 1;
    for (int i = 0; i < height; ++i) p *= branching;
    return p;
  }
};

struct SplitOutcome {
  Value value = 0;             ///< fail-hard result for the searched node
  std::uint64_t finish = 0;    ///< simulated absolute completion time
  SearchStats stats;           ///< nodes examined below this node
};

template <Game G>
class TreeSplitSimulator {
 public:
  TreeSplitSimulator(const G& game, int depth, ProcessorTree procs,
                     OrderingPolicy ordering = {}, sim::CostModel cost = {})
      : game_(game), depth_(depth), procs_(procs), ordering_(ordering),
        cost_(cost) {}

  /// Tree-splitting search of the whole game to the configured depth.
  [[nodiscard]] SplitOutcome run() {
    return search(game_.root(), 0, procs_.height, 0, -kValueInf, kValueInf);
  }

  /// Search `pos` (at absolute ply `ply`, starting at simulated time
  /// `start`) with a processor subtree of the given height.
  [[nodiscard]] SplitOutcome search(const typename G::Position& pos, int ply,
                                    int proc_height, std::uint64_t start,
                                    Value alpha, Value beta) {
    if (proc_height == 0) return leaf_processor(pos, ply, start, alpha, beta);

    std::vector<typename G::Position> kids;
    if (ply < depth_) game_.generate_children(pos, kids);
    SplitOutcome out;
    if (kids.empty()) {
      out.value = game_.evaluate(pos);
      out.stats.leaves_evaluated = 1;
      out.finish = start + cost_.of(out.stats);
      return out;
    }
    out.stats.interior_expanded = 1;
    if (ordering_.should_sort(ply))
      sort_children_by_static_value(game_, kids, out.stats);
    const std::uint64_t ready = start + cost_.of(out.stats);

    out.value = alpha;
    out.finish =
        master_loop(kids, ply + 1, proc_height - 1, ready, out.value, beta,
                    out.stats);
    return out;
  }

  /// The master/slave event loop shared with PV-splitting: distribute
  /// `kids` over `procs_.branching` slave subtrees of height
  /// `slave_height`, narrowing windows as results arrive.  `m` carries the
  /// running maximum in/out; returns the completion time.
  std::uint64_t master_loop(const std::vector<typename G::Position>& kids,
                            int child_ply, int slave_height,
                            std::uint64_t start, Value& m, Value beta,
                            SearchStats& stats) {
    struct Pending {
      std::uint64_t finish;
      std::size_t child;
      Value value;
      bool operator>(const Pending& o) const noexcept {
        return finish != o.finish ? finish > o.finish : child > o.child;
      }
    };
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>> running;
    std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                        std::greater<>>
        free_slaves;
    for (int s = 0; s < procs_.branching; ++s) free_slaves.push(start);

    std::size_t next_child = 0;
    std::uint64_t now = start;
    auto assign = [&](std::uint64_t at) {
      const SplitOutcome r = search(kids[next_child], child_ply, slave_height,
                                    at, negate(beta), negate(m));
      stats += r.stats;
      running.push(Pending{r.finish, next_child, r.value});
      ++next_child;
    };

    // Seed every slave, then process completions in time order, assigning
    // queued children to freed slaves with the freshest window.
    while (next_child < kids.size() && !free_slaves.empty()) {
      const std::uint64_t at = free_slaves.top();
      free_slaves.pop();
      assign(at);
    }
    while (!running.empty()) {
      const Pending done = running.top();
      running.pop();
      now = std::max(now, done.finish);
      const Value t = negate(done.value);
      if (t > m) m = t;
      if (m >= beta) return now;  // cutoff: abandon the remaining slaves
      if (next_child < kids.size()) assign(now);
    }
    return now;
  }

 private:
  SplitOutcome leaf_processor(const typename G::Position& pos, int ply,
                              std::uint64_t start, Value alpha, Value beta) {
    AlphaBetaSearcher<G> searcher(game_, depth_, ordering_);
    const SearchResult r = searcher.run_from(pos, ply, Window{alpha, beta});
    SplitOutcome out;
    out.value = r.value;
    out.stats = r.stats;
    out.finish = start + cost_.of(r.stats);
    return out;
  }

  const G& game_;
  int depth_;
  ProcessorTree procs_;
  OrderingPolicy ordering_;
  sim::CostModel cost_;
};

/// Convenience wrapper: full tree-splitting run.
template <Game G>
[[nodiscard]] SplitOutcome tree_splitting_search(const G& game, int depth,
                                                 ProcessorTree procs,
                                                 OrderingPolicy ordering = {},
                                                 sim::CostModel cost = {}) {
  return TreeSplitSimulator<G>(game, depth, procs, ordering, cost).run();
}

}  // namespace ers::baselines
