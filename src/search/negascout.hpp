#pragma once
// NegaScout / principal-variation search (Reinefeld's refinement of
// Pearl's Scout).  Included as a serial baseline because it is the
// *serial* embodiment of ER's evaluate/refute view (§5): the first child is
// evaluated with a full window, every later child is first *refuted* with a
// null window (alpha, alpha+1) and only re-searched when the refutation
// fails.  Marsland & Popowich's parallel PV-splitting variant (§4.4
// footnote) verifies PV siblings with exactly these minimal windows.

#include <vector>

#include "gametree/game.hpp"
#include "search/ordering.hpp"
#include "util/value.hpp"

namespace ers {

template <Game G>
class NegaScoutSearcher {
 public:
  NegaScoutSearcher(const G& game, int depth, OrderingPolicy ordering = {})
      : game_(game), depth_(depth), ordering_(ordering) {}
  NegaScoutSearcher(const G&&, int, OrderingPolicy = {}) = delete;

  [[nodiscard]] SearchResult run(Window w = full_window()) {
    stats_ = {};
    researches_ = 0;
    const Value v = visit(game_.root(), w.alpha, w.beta, 0);
    return SearchResult{v, stats_};
  }

  /// Null-window refutations that failed and forced a re-search.
  [[nodiscard]] std::uint64_t researches() const noexcept { return researches_; }

 private:
  Value visit(const typename G::Position& p, Value alpha, Value beta, int ply) {
    std::vector<typename G::Position> kids;
    if (ply < depth_) game_.generate_children(p, kids);
    if (kids.empty()) {
      ++stats_.leaves_evaluated;
      return game_.evaluate(p);
    }
    ++stats_.interior_expanded;
    if (ordering_.should_sort(ply))
      sort_children_by_static_value(game_, kids, stats_);

    Value m = alpha;
    for (std::size_t i = 0; i < kids.size(); ++i) {
      Value t;
      if (i == 0) {
        t = negate(visit(kids[i], negate(beta), negate(m), ply + 1));
      } else {
        // Refute with a null window first.
        t = negate(visit(kids[i], negate(m) - 1, negate(m), ply + 1));
        if (t > m && t < beta && depth_ - ply > 1) {
          // Refutation failed: this child may be best; re-search with the
          // real window.  (At the last ply the null-window value is exact.)
          ++researches_;
          t = negate(visit(kids[i], negate(beta), negate(t), ply + 1));
        }
      }
      if (t > m) m = t;
      if (m >= beta) return m;
    }
    return m;
  }

  const G& game_;
  int depth_;
  OrderingPolicy ordering_;
  SearchStats stats_;
  std::uint64_t researches_ = 0;
};

template <Game G>
[[nodiscard]] SearchResult negascout_search(const G& game, int depth,
                                            OrderingPolicy ordering = {}) {
  return NegaScoutSearcher<G>(game, depth, ordering).run();
}

}  // namespace ers
