#pragma once
// Move-ordering policy (paper §7): "children were sorted according to values
// returned by the static evaluator.  Sorting was not performed below ply
// five.  Successors of e-nodes were also not sorted."
//
// A child with a *lower* static value (from its own side-to-move view) is
// better for the parent, so ordering sorts ascending.

#include <algorithm>
#include <vector>

#include "gametree/game.hpp"
#include "util/value.hpp"

namespace ers {

struct OrderingPolicy {
  bool sort_by_static_value = false;
  /// Sort the children of nodes at ply < max_sort_ply (root is ply 0).
  int max_sort_ply = 5;

  [[nodiscard]] bool should_sort(int ply) const noexcept {
    return sort_by_static_value && ply < max_sort_ply;
  }
};

/// Reusable buffers for sort_children_by_static_value, so steady-state
/// sorting performs no heap allocations: both vectors keep their capacity
/// across calls.  One instance per worker (or thread_local).
template <Game G>
struct OrderingScratch {
  std::vector<std::pair<Value, std::size_t>> keyed;
  std::vector<typename G::Position> sorted;
};

/// Sort `children` ascending by static value; charges one sort and one
/// static evaluation per child to `stats`.  Allocation-free once the
/// scratch buffers have grown to the branching factor.
template <Game G>
void sort_children_by_static_value(const G& game,
                                   std::vector<typename G::Position>& children,
                                   SearchStats& stats,
                                   OrderingScratch<G>& scratch) {
  if (children.size() < 2) return;
  stats.child_sorts += 1;
  stats.sort_evals += children.size();
  auto& keyed = scratch.keyed;
  keyed.clear();
  keyed.reserve(children.size());
  for (std::size_t i = 0; i < children.size(); ++i)
    keyed.emplace_back(game.evaluate(children[i]), i);
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  auto& sorted = scratch.sorted;
  sorted.clear();
  sorted.reserve(children.size());
  for (const auto& [v, i] : keyed) sorted.push_back(std::move(children[i]));
  // Swap (not move-assign) so children's old buffer becomes the next call's
  // sorted scratch — both capacities stay in rotation.
  std::swap(children, sorted);
}

/// Convenience overload with per-thread scratch, for call sites without a
/// worker-owned OrderingScratch.
template <Game G>
void sort_children_by_static_value(const G& game,
                                   std::vector<typename G::Position>& children,
                                   SearchStats& stats) {
  static thread_local OrderingScratch<G> scratch;
  sort_children_by_static_value(game, children, stats, scratch);
}

}  // namespace ers
