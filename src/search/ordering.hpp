#pragma once
// Move-ordering policy (paper §7): "children were sorted according to values
// returned by the static evaluator.  Sorting was not performed below ply
// five.  Successors of e-nodes were also not sorted."
//
// A child with a *lower* static value (from its own side-to-move view) is
// better for the parent, so ordering sorts ascending.
//
// Beyond the paper (DESIGN.md §17): shared ordering *tables* — a lock-free
// butterfly history table and per-ply killer slots — refine the static sort
// when attached.  Both key on a position's 64-bit hash (HashedGame), so
// they are game-agnostic and shareable across every worker: all counters
// are relaxed atomics and deliberately advisory (a lost update costs a
// slightly worse sort, never correctness).

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "gametree/game.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers {

/// 14-bit best-move fingerprint of a child position's hash key — what the
/// transposition tables store as TtHit::move_hint and what ordering matches
/// against each child.  0 doubles as "no hint", so the 1-in-16384 child
/// whose fingerprint is 0 simply never gets fronted (it still sorts by
/// value/history like any other move).
[[nodiscard]] constexpr std::uint16_t move_fingerprint(
    std::uint64_t key) noexcept {
  return static_cast<std::uint16_t>(key & 0x3fff);
}

/// Lock-free butterfly history table: relaxed-atomic counters indexed by a
/// position-key slice, rewarding moves (child positions) that caused beta
/// cutoffs anywhere in the tree.  Generation-aged like the transposition
/// tables: new_search() bumps a generation and stale slots read as 0 and
/// are overwritten on the next credit, so one long-lived table serves many
/// searches without unbounded counter growth.  Updates are load/store (not
/// CAS): racing writers may lose increments, which only perturbs an
/// advisory ordering signal.
class HistoryTable {
 public:
  /// 2^size_log2 slots of 4 bytes (default 2^15 = 128 KiB).
  explicit HistoryTable(int size_log2 = 15)
      : mask_((std::uint64_t{1} << size_log2) - 1),
        slots_(std::size_t{1} << size_log2) {
    ERS_CHECK(size_log2 >= 4 && size_log2 <= 24);
  }

  /// Credit `amount` (typically remaining_depth^2) to the move reaching
  /// the position hashed by `key`.
  void add(std::uint64_t key, std::uint32_t amount) noexcept {
    std::atomic<std::uint32_t>& s = slots_[key & mask_];
    const std::uint8_t gen = generation_.load(std::memory_order_relaxed);
    const std::uint32_t cur = s.load(std::memory_order_relaxed);
    const std::uint32_t base = slot_gen(cur) == gen ? slot_count(cur) : 0;
    const std::uint32_t next =
        base + amount >= kCountMask ? kCountMask : base + amount;
    s.store(pack(gen, next), std::memory_order_relaxed);
  }

  /// The move's accumulated credit this generation (0 if stale or unseen).
  [[nodiscard]] std::uint32_t probe(std::uint64_t key) const noexcept {
    const std::uint32_t cur =
        slots_[key & mask_].load(std::memory_order_relaxed);
    return slot_gen(cur) == generation_.load(std::memory_order_relaxed)
               ? slot_count(cur)
               : 0;
  }

  /// Age every slot out in O(1); safe concurrently with add/probe.
  void new_search() noexcept {
    generation_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  // Slot word: generation (high 8 bits) | saturating counter (low 24).
  static constexpr std::uint32_t kCountMask = 0x00ffffff;
  static constexpr std::uint32_t pack(std::uint8_t gen,
                                      std::uint32_t count) noexcept {
    return (static_cast<std::uint32_t>(gen) << 24) | (count & kCountMask);
  }
  static constexpr std::uint8_t slot_gen(std::uint32_t w) noexcept {
    return static_cast<std::uint8_t>(w >> 24);
  }
  static constexpr std::uint32_t slot_count(std::uint32_t w) noexcept {
    return w & kCountMask;
  }

  std::uint64_t mask_;
  std::vector<std::atomic<std::uint32_t>> slots_;
  std::atomic<std::uint8_t> generation_{0};
};

/// Per-ply killer slots: the last two distinct cutoff moves at each ply,
/// stored as full 64-bit position keys in relaxed atomics.  Shared across
/// workers; racing records interleave harmlessly (the slots always hold
/// *some* recent cutoff keys).
class KillerTable {
 public:
  static constexpr int kMaxPlies = 64;

  void record(int ply, std::uint64_t key) noexcept {
    if (key == 0) return;
    auto& [first, second] = slots_[clamp(ply)];
    const std::uint64_t f = first.load(std::memory_order_relaxed);
    if (f == key) return;
    second.store(f, std::memory_order_relaxed);
    first.store(key, std::memory_order_relaxed);
  }

  [[nodiscard]] bool is_killer(int ply, std::uint64_t key) const noexcept {
    if (key == 0) return false;
    const auto& [first, second] = slots_[clamp(ply)];
    return first.load(std::memory_order_relaxed) == key ||
           second.load(std::memory_order_relaxed) == key;
  }

  void clear() noexcept {
    for (auto& [first, second] : slots_) {
      first.store(0, std::memory_order_relaxed);
      second.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Pair {
    std::atomic<std::uint64_t> first{0};
    std::atomic<std::uint64_t> second{0};
  };
  [[nodiscard]] static std::size_t clamp(int ply) noexcept {
    return static_cast<std::size_t>(
        ply < 0 ? 0 : (ply >= kMaxPlies ? kMaxPlies - 1 : ply));
  }
  std::array<Pair, kMaxPlies> slots_;
};

/// The shared ordering intelligence one search (or one co-operating fleet
/// of workers) hangs off its searchers: history + killers, aged together.
/// Killers are cleared rather than aged — a new search's ply-k cutoffs have
/// nothing to do with the last one's.
struct OrderingTables {
  HistoryTable history;
  KillerTable killers;

  void new_search() noexcept {
    history.new_search();
    killers.clear();
  }
};

struct OrderingPolicy {
  bool sort_by_static_value = false;
  /// Sort the children of nodes at ply < max_sort_ply (root is ply 0).
  int max_sort_ply = 5;

  [[nodiscard]] bool should_sort(int ply) const noexcept {
    return sort_by_static_value && ply < max_sort_ply;
  }
};

/// Reusable buffers for the child sorts, so steady-state sorting performs
/// no heap allocations: both vectors keep their capacity across calls.
/// One instance per worker (or thread_local).  Keys are int64 so the
/// table-aware sort can compose (tier, static value, history) into one
/// comparison word; the pure static sort uses the same buffer with plain
/// Value keys.
template <Game G>
struct OrderingScratch {
  std::vector<std::pair<std::int64_t, std::size_t>> keyed;
  std::vector<typename G::Position> sorted;
};

/// Sort `children` ascending by static value; charges one sort and one
/// static evaluation per child to `stats`.  Allocation-free once the
/// scratch buffers have grown to the branching factor.
template <Game G>
void sort_children_by_static_value(const G& game,
                                   std::vector<typename G::Position>& children,
                                   SearchStats& stats,
                                   OrderingScratch<G>& scratch) {
  if (children.size() < 2) return;
  stats.child_sorts += 1;
  stats.sort_evals += children.size();
  auto& keyed = scratch.keyed;
  keyed.clear();
  keyed.reserve(children.size());
  for (std::size_t i = 0; i < children.size(); ++i)
    keyed.emplace_back(game.evaluate(children[i]), i);
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  auto& sorted = scratch.sorted;
  sorted.clear();
  sorted.reserve(children.size());
  for (const auto& [v, i] : keyed) sorted.push_back(std::move(children[i]));
  // Swap (not move-assign) so children's old buffer becomes the next call's
  // sorted scratch — both capacities stay in rotation.
  std::swap(children, sorted);
}

/// Convenience overload with per-thread scratch, for call sites without a
/// worker-owned OrderingScratch.
template <Game G>
void sort_children_by_static_value(const G& game,
                                   std::vector<typename G::Position>& children,
                                   SearchStats& stats) {
  static thread_local OrderingScratch<G> scratch;
  sort_children_by_static_value(game, children, stats, scratch);
}

/// Table-aware child sort: the paper's ascending static-value order refined
/// by the shared tables — the TT move (fingerprint match against
/// `tt_hint`) sorts first, killers of this ply next, and within a tier
/// higher history credit breaks toward the front.  Composes the three
/// signals into one int64 key
///
///     tier * 2^53  +  static_value * 2^20  -  min(history, 2^20 - 1)
///
/// so one stable_sort preserves the static order exactly where the tables
/// are silent: with empty tables and no hint every key is
/// `2*2^53 + value*2^20`, a strictly monotone transform of the static
/// key, and the sort (both stable) permutes identically.  Degrades to the
/// plain static sort for non-hashed games.
template <Game G>
void sort_children_ordered(const G& game,
                           std::vector<typename G::Position>& children,
                           SearchStats& stats, OrderingScratch<G>& scratch,
                           const OrderingTables& tables, int ply,
                           std::uint16_t tt_hint = 0) {
  if constexpr (!HashedGame<G>) {
    (void)tables; (void)ply; (void)tt_hint;
    sort_children_by_static_value(game, children, stats, scratch);
  } else {
    if (children.size() < 2) return;
    stats.child_sorts += 1;
    stats.sort_evals += children.size();
    auto& keyed = scratch.keyed;
    keyed.clear();
    keyed.reserve(children.size());
    bool fronted = false;
    for (std::size_t i = 0; i < children.size(); ++i) {
      const std::uint64_t key = children[i].tt_key();
      std::int64_t tier = 2;
      if (tt_hint != 0 && move_fingerprint(key) == tt_hint) {
        tier = 0;
        fronted = true;
      } else if (tables.killers.is_killer(ply, key)) {
        tier = 1;
        stats.order_killer_hits += 1;
      }
      const std::uint32_t hist = tables.history.probe(key);
      if (hist != 0) stats.order_history_hits += 1;
      const std::int64_t value = std::clamp<std::int64_t>(
          game.evaluate(children[i]), -(std::int64_t{1} << 30),
          std::int64_t{1} << 30);
      keyed.emplace_back(
          (tier << 53) + (value << 20) -
              std::min<std::int64_t>(hist, (std::int64_t{1} << 20) - 1),
          i);
    }
    if (fronted) stats.order_tt_first += 1;
    std::stable_sort(
        keyed.begin(), keyed.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    auto& sorted = scratch.sorted;
    sorted.clear();
    sorted.reserve(children.size());
    for (const auto& [v, i] : keyed) sorted.push_back(std::move(children[i]));
    std::swap(children, sorted);
  }
}

/// Convenience overload with per-thread scratch.
template <Game G>
void sort_children_ordered(const G& game,
                           std::vector<typename G::Position>& children,
                           SearchStats& stats, const OrderingTables& tables,
                           int ply, std::uint16_t tt_hint = 0) {
  static thread_local OrderingScratch<G> scratch;
  sort_children_ordered(game, children, stats, scratch, tables, ply, tt_hint);
}

}  // namespace ers
