#pragma once
// ABDADA's nproc side table: how many workers are currently inside each
// position (search/abdada.hpp, DESIGN.md §14).
//
// ABDADA coordinates parallel search through shared search state instead of
// a problem heap: before a worker descends into a younger sibling it asks
// "is anyone already searching this node?" and defers the move if so.  The
// classical formulation keeps the counter inside the transposition-table
// entry; following MAGPIE's endgame solver, this implementation keeps a
// *separate*, much smaller table instead — the TT is sized for capacity
// (16 MiB default) while the nproc counters are touched on every interior
// node of every worker, so a dedicated 256 KiB array keeps the hot counters
// resident in cache regardless of how large the TT grows.
//
// The table is direct-mapped with NO keys: a slot is one 32-bit relaxed
// atomic counter and distinct positions that hash to the same slot alias
// each other.  Aliasing is harmless by construction — the counters are
// purely *advisory* scheduling state.  A false "busy" defers a move that
// would have been searched (it is revisited in ABDADA's second phase); a
// count temporarily inflated by a colliding ancestor does the same.  No
// value ever flows through this table, so no memory-ordering stronger than
// relaxed is needed and a stale read costs at most a deferral.
//
// enter/leave are strictly paired per node visit (abdada.hpp brackets its
// child loops with them), so counters return to zero when the search
// quiesces; all_idle() checks exactly that and is the invariant the tsan
// hammer test asserts under contention.

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ers {

class NprocTable {
 public:
  /// 2^size_log2 counters of 4 bytes (default 2^16 = 256 KiB, MAGPIE's
  /// cache-friendly sizing).
  explicit NprocTable(int size_log2 = 16)
      : mask_((std::uint64_t{1} << size_log2) - 1),
        slots_(std::size_t{1} << size_log2) {
    ERS_CHECK(size_log2 >= 4 && size_log2 <= 24);
  }

  /// A worker began searching the position with this key.
  void enter(std::uint64_t key) noexcept {
    slots_[index(key)].fetch_add(1, std::memory_order_relaxed);
  }

  /// The worker finished searching it.  Must pair with a prior enter().
  void leave(std::uint64_t key) noexcept {
    [[maybe_unused]] const std::uint32_t prev =
        slots_[index(key)].fetch_sub(1, std::memory_order_relaxed);
    ERS_DCHECK(prev > 0);
  }

  /// True when some worker is (or a colliding position's worker appears to
  /// be) inside this position right now.  Advisory: the answer can be stale
  /// by the time the caller acts on it, which only defers or duplicates
  /// work, never corrupts it.
  [[nodiscard]] bool busy(std::uint64_t key) const noexcept {
    return slots_[index(key)].load(std::memory_order_relaxed) > 0;
  }

  /// Every counter zero — no worker inside any position.  O(capacity);
  /// meaningful only while no search is running (test invariant).
  [[nodiscard]] bool all_idle() const noexcept {
    for (const auto& s : slots_)
      if (s.load(std::memory_order_relaxed) != 0) return false;
    return true;
  }

  void clear() noexcept {
    for (auto& s : slots_) s.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  [[nodiscard]] std::size_t index(std::uint64_t key) const noexcept {
    // The low TT-index bits would alias the TT's own slot pattern; fold the
    // high half in so the two tables collide independently.
    return static_cast<std::size_t>((key ^ (key >> 32)) & mask_);
  }

  std::uint64_t mask_;
  std::vector<std::atomic<std::uint32_t>> slots_;
};

}  // namespace ers
