#include "search/minimal_tree.hpp"

#include "util/check.hpp"

namespace ers {
namespace {

void classify(const ExplicitTree& t, ExplicitTree::Position p,
              CriticalNodeType type, MinimalTreeKind kind,
              std::vector<CriticalNodeType>& out) {
  out[p] = type;
  const std::size_t n = t.num_children(p);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = t.child(p, i);
    switch (type) {
      case CriticalNodeType::kType1:
        // Rule ii: first child type 1, remaining children type 2.
        classify(t, c, i == 0 ? CriticalNodeType::kType1 : CriticalNodeType::kType2,
                 kind, out);
        break;
      case CriticalNodeType::kType2:
        // Rule iii: only the first child is critical (type 3 with deep
        // cutoffs, type 1 in the shallow-only classification).
        if (i == 0) {
          classify(t, c,
                   kind == MinimalTreeKind::kWithDeepCutoffs
                       ? CriticalNodeType::kType3
                       : CriticalNodeType::kType1,
                   kind, out);
        }
        break;
      case CriticalNodeType::kType3:
        // Rule iv: all children of a type 3 node are type 2.
        classify(t, c, CriticalNodeType::kType2, kind, out);
        break;
      case CriticalNodeType::kNotCritical:
        break;
    }
  }
}

}  // namespace

std::vector<CriticalNodeType> classify_critical_nodes(const ExplicitTree& tree,
                                                      MinimalTreeKind kind) {
  std::vector<CriticalNodeType> out(tree.size(), CriticalNodeType::kNotCritical);
  classify(tree, tree.root(), CriticalNodeType::kType1, kind, out);
  return out;
}

std::uint64_t count_critical_leaves(const ExplicitTree& tree,
                                    MinimalTreeKind kind) {
  const auto types = classify_critical_nodes(tree, kind);
  std::uint64_t n = 0;
  for (ExplicitTree::Position p = 0; p < tree.size(); ++p)
    if (tree.is_leaf(p) && types[p] != CriticalNodeType::kNotCritical) ++n;
  return n;
}

std::uint64_t minimal_leaf_count(int degree, int height) {
  ERS_CHECK(degree >= 1 && height >= 0);
  auto ipow = [](std::uint64_t b, int e) {
    std::uint64_t r = 1;
    while (e-- > 0) r *= b;
    return r;
  };
  const auto d = static_cast<std::uint64_t>(degree);
  return ipow(d, (height + 1) / 2) + ipow(d, height / 2) - 1;
}

}  // namespace ers
