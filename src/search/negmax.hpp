#pragma once
// Full-width negmax search (paper §2): the value oracle against which every
// pruning algorithm is checked, and the "whole tree" cost reference.

#include <vector>

#include "gametree/game.hpp"
#include "search/ordering.hpp"
#include "util/value.hpp"

namespace ers {

template <Game G>
class NegmaxSearcher {
 public:
  explicit NegmaxSearcher(const G& game, int depth) : game_(game), depth_(depth) {}
  NegmaxSearcher(const G&&, int) = delete;  // the game must outlive the searcher

  [[nodiscard]] SearchResult run() {
    stats_ = {};
    const Value v = visit(game_.root(), 0);
    return SearchResult{v, stats_};
  }

 private:
  Value visit(const typename G::Position& p, int ply) {
    std::vector<typename G::Position> kids;
    if (ply < depth_) game_.generate_children(p, kids);
    if (kids.empty()) {
      ++stats_.leaves_evaluated;
      return game_.evaluate(p);
    }
    ++stats_.interior_expanded;
    Value m = -kValueInf;
    for (const auto& k : kids) m = std::max(m, negate(visit(k, ply + 1)));
    return m;
  }

  const G& game_;
  int depth_;
  SearchStats stats_;
};

/// Depth-limited negmax value of the game's root.
template <Game G>
[[nodiscard]] SearchResult negmax_search(const G& game, int depth) {
  return NegmaxSearcher<G>(game, depth).run();
}

}  // namespace ers
