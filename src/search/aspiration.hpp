#pragma once
// Serial aspiration search: guess a window around an estimate of the root
// value, search with it, and re-search with a widened window on failure.
// This is the serial building block of Baudet's *parallel* aspiration search
// (paper §4.1), where the full window is split into disjoint intervals
// instead of being guessed.
//
// The window/retry protocol is independent of the searcher, so it lives in
// aspiration_drive(): aspiration_search() instantiates it over serial
// alpha-beta, and the ABDADA runner (baselines/abdada_par.hpp) drives its
// own root iterations through the same function.

#include <type_traits>
#include <utility>

#include "gametree/game.hpp"
#include "search/alpha_beta.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers {

/// What the aspiration protocol decided, independent of who searched.
struct AspirationOutcome {
  Value value = 0;
  int searches = 1;  ///< 1 = the aspiration window held
  bool failed_low = false;
  bool failed_high = false;
};

struct AspirationResult {
  Value value = 0;
  SearchStats stats;     ///< accumulated over all (re-)searches
  int searches = 1;      ///< 1 = the aspiration window held
  bool failed_low = false;
  bool failed_high = false;
};

/// Drive any *fail-hard* windowed search through the aspiration protocol:
/// invoke `search` with the guess window (estimate-delta, estimate+delta)
/// and, if the result fails low/high, once more with the matching half-open
/// window.  Always resolves to the exact negmax value (given a sound
/// searcher).  `search` is called one or two times; accumulate stats inside
/// the callable.
template <typename SearchFn>
  requires std::is_invocable_r_v<Value, SearchFn&, Window>
[[nodiscard]] AspirationOutcome aspiration_drive(SearchFn&& search,
                                                 Value estimate, Value delta) {
  ERS_CHECK(delta > 0);
  AspirationOutcome out;

  const Window guess{estimate - delta, estimate + delta};
  Value v = search(guess);

  if (v <= guess.alpha) {
    // Fail low: true value <= alpha.  Re-search below.
    out.failed_low = true;
    ++out.searches;
    v = search(Window{-kValueInf, guess.alpha + 1});
  } else if (v >= guess.beta) {
    // Fail high: true value >= beta.  Re-search above.
    out.failed_high = true;
    ++out.searches;
    v = search(Window{guess.beta - 1, kValueInf});
  }
  out.value = v;
  return out;
}

/// Search `game` to `depth` with window (estimate-delta, estimate+delta),
/// re-searching with the appropriate half-open window on failure.  Always
/// returns the exact negmax value.
template <Game G>
[[nodiscard]] AspirationResult aspiration_search(const G& game, int depth,
                                                 Value estimate, Value delta,
                                                 OrderingPolicy ordering = {}) {
  AspirationResult out;
  AlphaBetaSearcher<G> searcher(game, depth, ordering);
  const AspirationOutcome o = aspiration_drive(
      [&](Window w) {
        const SearchResult r = searcher.run(w);
        out.stats += r.stats;
        return r.value;
      },
      estimate, delta);
  out.value = o.value;
  out.searches = o.searches;
  out.failed_low = o.failed_low;
  out.failed_high = o.failed_high;
  return out;
}

}  // namespace ers
