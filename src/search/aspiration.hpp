#pragma once
// Serial aspiration search: guess a window around an estimate of the root
// value, search with it, and re-search with a widened window on failure.
// This is the serial building block of Baudet's *parallel* aspiration search
// (paper §4.1), where the full window is split into disjoint intervals
// instead of being guessed.

#include "gametree/game.hpp"
#include "search/alpha_beta.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers {

struct AspirationResult {
  Value value = 0;
  SearchStats stats;     ///< accumulated over all (re-)searches
  int searches = 1;      ///< 1 = the aspiration window held
  bool failed_low = false;
  bool failed_high = false;
};

/// Search `game` to `depth` with window (estimate-delta, estimate+delta),
/// re-searching with the appropriate half-open window on failure.  Always
/// returns the exact negmax value.
template <Game G>
[[nodiscard]] AspirationResult aspiration_search(const G& game, int depth,
                                                 Value estimate, Value delta,
                                                 OrderingPolicy ordering = {}) {
  ERS_CHECK(delta > 0);
  AspirationResult out;
  AlphaBetaSearcher<G> searcher(game, depth, ordering);

  const Window guess{estimate - delta, estimate + delta};
  SearchResult r = searcher.run(guess);
  out.stats += r.stats;

  if (r.value <= guess.alpha) {
    // Fail low: true value <= alpha.  Re-search below.
    out.failed_low = true;
    ++out.searches;
    r = searcher.run(Window{-kValueInf, guess.alpha + 1});
    out.stats += r.stats;
  } else if (r.value >= guess.beta) {
    // Fail high: true value >= beta.  Re-search above.
    out.failed_high = true;
    ++out.searches;
    r = searcher.run(Window{guess.beta - 1, kValueInf});
    out.stats += r.stats;
  }
  out.value = r.value;
  return out;
}

}  // namespace ers
