#pragma once
// Iterative deepening with aspiration windows — the standard driver a game
// program wraps around a fixed-depth search (extension beyond the paper,
// which searches fixed depths; §4.1's aspiration idea supplies the windows).
//
// Depth d+1 is searched with the window (v_d - delta, v_d + delta) around
// the previous iteration's value, re-searching with the appropriate open
// window on failure; delta == 0 disables aspiration (full windows).

#include <vector>

#include "gametree/game.hpp"
#include "search/alpha_beta.hpp"
#include "search/aspiration.hpp"
#include "util/check.hpp"

namespace ers {

struct IterativeResult {
  Value value = 0;            ///< value at the deepest completed iteration
  int depth_reached = 0;
  SearchStats stats;          ///< accumulated over all iterations
  std::vector<Value> per_depth;  ///< value after each iteration (1..depth)
  int researches = 0;         ///< aspiration failures that forced re-search
};

template <Game G>
[[nodiscard]] IterativeResult iterative_deepening_search(
    const G& game, int max_depth, OrderingPolicy ordering = {},
    Value aspiration_delta = 0) {
  ERS_CHECK(max_depth >= 0);
  ERS_CHECK(aspiration_delta >= 0);
  IterativeResult out;
  for (int depth = 0; depth <= max_depth; ++depth) {
    if (depth == 0 || aspiration_delta == 0) {
      const SearchResult r = alpha_beta_search(game, depth, ordering);
      out.stats += r.stats;
      out.value = r.value;
    } else {
      const AspirationResult r = aspiration_search(
          game, depth, out.value, aspiration_delta, ordering);
      out.stats += r.stats;
      out.value = r.value;
      out.researches += r.searches - 1;
    }
    out.depth_reached = depth;
    if (depth > 0) out.per_depth.push_back(out.value);
  }
  return out;
}

}  // namespace ers
