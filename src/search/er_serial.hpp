#pragma once
// Serial ER (paper §5, Figure 8).
//
// ER views search as *evaluating* one child per node (the e-child) and
// *refuting* the rest.  Before committing to an e-child of node E, ER
// evaluates the first child of every child of E (E's "elder grandchildren"),
// then sorts E's children by the resulting tentative values and finishes
// them in that order: the first unfinished child effectively becomes the
// e-child, and the improved bound it produces refutes the others.
//
// Structure, following Figure 8:
//   er(P)          — the paper's ER: Eval_first every child, sort by
//                    tentative value, then Refute_rest the unfinished ones.
//   eval_first(P)  — evaluate P's first child (recursively, with er), giving
//                    P a tentative value; P is done if that already cuts off
//                    or P has a single child.
//   refute_rest(P) — finish P: try to refute its remaining children in
//                    order, re-descending with eval_first/refute_rest.
//
// Deviation from the printed pseudocode (documented in DESIGN.md §1):
// Refute_rest begins with `value := max(value, alpha)` rather than
// `value := alpha`; the literal assignment discards the tentative value from
// Eval_first and can produce an unsound spurious cutoff in the parent.  The
// regression test RefuteRestKeepsTentativeValue pins a tree where the
// literal pseudocode returns a wrong root value.
//
// Move ordering (paper §7): children of non-e-nodes may be statically
// sorted; e-node children never are — ER orders them by the (better)
// search-derived tentative values, which is why serial ER can beat
// alpha-beta in wall time even while visiting more nodes (the O1 anomaly).
//
// Shared transposition table (HashedGame only): with_shared_table() attaches
// a lock-free ConcurrentTranspositionTable that the search probes and stores
// as it goes — ER full evaluations (er) probe on entry and store their
// classified fail-hard result on exit; Eval_first accepts only *conclusive*
// hits (exact, or a bound that already resolves the window) since its normal
// result is tentative and must not be stored; Refute_rest stores its final
// value (it completes the node).  This is how parallel ER workers share
// search knowledge: every serial subtree unit reads and feeds the one table.

#include <algorithm>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "gametree/game.hpp"
#include "search/concurrent_ttable.hpp"
#include "search/ordering.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers {

template <Game G>
class ErSerialSearcher {
 public:
  ErSerialSearcher(const G& game, int depth, OrderingPolicy ordering = {})
      : game_(game), depth_(depth), ordering_(ordering) {}
  ErSerialSearcher(const G&&, int, OrderingPolicy = {}) = delete;

  /// Probe/store `table` during the search (shared-memory runtime: one table
  /// serves every worker's serial units).  Ignored unless G is a HashedGame.
  /// Pass nullptr to detach.
  ErSerialSearcher& with_shared_table(ConcurrentTranspositionTable* table) noexcept {
    tt_ = table;
    return *this;
  }

  /// Consult (and train) shared history/killer tables during expansion-time
  /// child sorts — the TT move sorts first when a probe carries a hint,
  /// killers of the child ply next, history credit breaks ties (DESIGN.md
  /// §17).  Ignored unless G is a HashedGame.  Pass nullptr to detach.
  ErSerialSearcher& with_ordering_tables(OrderingTables* tables) noexcept {
    tables_ = tables;
    return *this;
  }

  [[nodiscard]] SearchResult run() { return run_from(game_.root(), 0); }

  /// Search the subtree rooted at `pos` (which sits at absolute ply
  /// `start_ply`; the horizon stays at the searcher's configured depth) with
  /// an initial window.  Fail-hard with respect to `w`.  This entry point is
  /// what the parallel engine uses below its serial-depth cutover.
  [[nodiscard]] SearchResult run_from(typename G::Position pos, int start_ply,
                                      Window w = full_window()) {
    stats_ = {};
    best_root_.reset();
    root_ply_ = start_ply;
    Rec root(std::move(pos));
    const Value v = er(root, w.alpha, w.beta, start_ply);
    return SearchResult{v, stats_};
  }

  /// The root child that achieved the returned value (the move to play);
  /// empty if the root was a leaf.  Valid after run()/run_from().
  [[nodiscard]] const std::optional<typename G::Position>& best_root_position()
      const noexcept {
    return best_root_;
  }

  /// Result of an Eval_first-only unit (parallel engine, cutover nodes).
  struct PartialResult {
    Value value = 0;
    bool done = false;  ///< cutoff achieved or single child: node resolved
    std::vector<typename G::Position> children;  ///< generated child order
    SearchStats stats;
  };

  /// Figure 8's Eval_first applied at (pos, start_ply): generate (and
  /// order) the children, fully evaluate the first one, and report the
  /// node's tentative value plus the frozen child order so a later
  /// refute_rest_from continues consistently.
  [[nodiscard]] PartialResult eval_first_from(typename G::Position pos,
                                              int start_ply, Window w) {
    stats_ = {};
    Rec root(std::move(pos));
    PartialResult out;
    out.value = eval_first(root, w.alpha, w.beta, start_ply);
    out.done = root.done;
    out.children.reserve(root.kids.size());
    for (Rec& k : root.kids) out.children.push_back(std::move(k.pos));
    out.stats = stats_;
    return out;
  }

  /// Figure 8's Refute_rest applied at (pos, start_ply): finish a node whose
  /// first child already contributed `tentative`; `children` must be the
  /// exact list returned by eval_first_from (the expansion is not recounted).
  /// Takes a span so the parallel engine can pass its slab-frozen child
  /// array without materializing a vector.
  [[nodiscard]] SearchResult refute_rest_from(
      typename G::Position pos, int start_ply, Window w, Value tentative,
      std::span<const typename G::Position> children) {
    stats_ = {};
    ERS_CHECK(!children.empty());
    Rec root(std::move(pos));
    root.expanded = true;
    root.kids.reserve(children.size());
    for (const auto& c : children) root.kids.emplace_back(c);
    root.value = tentative;
    const Value v = refute_rest(root, w.alpha, w.beta, start_ply);
    return SearchResult{v, stats_};
  }

  /// Serial refutation of a fresh node: Eval_first, then (if not already
  /// done) Refute_rest — the r-node path of Figure 8's main loop.
  [[nodiscard]] SearchResult refute_from(typename G::Position pos,
                                         int start_ply, Window w) {
    stats_ = {};
    Rec root(std::move(pos));
    Value v = eval_first(root, w.alpha, w.beta, start_ply);
    if (!root.done) v = refute_rest(root, w.alpha, w.beta, start_ply);
    return SearchResult{v, stats_};
  }

 private:
  /// Per-node search record: Figure 8's `node` with the child list cached so
  /// eval_first and refute_rest see one consistent, once-generated ordering.
  struct Rec {
    explicit Rec(typename G::Position position) : pos(std::move(position)) {}

    typename G::Position pos;
    Value value = -kValueInf;  ///< tentative value, own side's perspective
    bool done = false;
    bool expanded = false;
    std::vector<Rec> kids;
  };

  /// Generate (once) and possibly statically order the children of `r`.
  /// Returns true if `r` is a leaf at this ply.
  bool expand(Rec& r, int ply, bool is_e_node) {
    if (r.expanded) return r.kids.empty();
    r.expanded = true;
    // Reused scratch: every element is moved out into r.kids below before
    // expand can be re-entered (the recursion happens after this returns),
    // so one buffer per thread suffices and steady-state expansion does not
    // touch the heap.
    static thread_local std::vector<typename G::Position> kids;
    kids.clear();
    kids.reserve(branching_hint_of(game_));
    if (ply < depth_) game_.generate_children(r.pos, kids);
    if (kids.empty()) {
      ++stats_.leaves_evaluated;
      return true;
    }
    ++stats_.interior_expanded;
    if (!is_e_node && ordering_.should_sort(ply)) {
      bool sorted_with_tables = false;
      if constexpr (HashedGame<G>) {
        if (tables_ != nullptr) {
          // The parent's stored best-move fingerprint fronts the TT move;
          // any stored entry carries it, regardless of depth coverage.
          std::uint16_t hint = 0;
          TtHit h;
          if (tt_ != nullptr && tt_->probe(r.pos.tt_key(), h))
            hint = h.move_hint;
          sort_children_ordered(game_, kids, stats_, *tables_, ply + 1, hint);
          sorted_with_tables = true;
        }
      }
      if (!sorted_with_tables)
        sort_children_by_static_value(game_, kids, stats_);
    }
    // Warm the table lines of the whole sibling set now: by the time
    // er/eval_first descends into each child and probes it, its slot is in
    // cache.  (The probe-site prefetch in tt_probe fires too late to hide
    // any latency — it is immediately followed by the load.)
    if constexpr (HashedGame<G>) {
      if (tt_ != nullptr)
        for (const auto& k : kids) tt_->prefetch(k.tt_key());
    }
    r.kids.reserve(kids.size());
    for (auto& k : kids) r.kids.emplace_back(std::move(k));
    return false;
  }

  // --- shared-table plumbing (no-ops without a table / non-hashed game) ---

  /// Probe the shared table for `p`; true only when the entry validates and
  /// covers the remaining depth.
  bool tt_probe(const Rec& p, int remaining, TtHit& out) {
    if constexpr (HashedGame<G>) {
      if (tt_ == nullptr) return false;
      const std::uint64_t key = p.pos.tt_key();
      tt_->prefetch(key);
      ++stats_.tt_probes;
      if (tt_->probe(key, out) && out.depth >= remaining) {
        ++stats_.tt_hits;
        return true;
      }
    }
    return false;
  }

  /// Store a completed fail-hard result for `p`, classified against the
  /// window it was searched with; `best_key` is the key of the child that
  /// produced the value (0 = none), stored as the entry's move hint except
  /// on fail-lows, where no single move is responsible.
  void tt_store(const Rec& p, Value v, int remaining, Value alpha, Value beta,
                std::uint64_t best_key = 0) {
    if constexpr (HashedGame<G>) {
      if (tt_ == nullptr) return;
      const std::uint16_t hint =
          v > alpha && best_key != 0 ? move_fingerprint(best_key) : 0;
      tt_->store(p.pos.tt_key(), v, remaining, classify_bound(v, alpha, beta),
                 hint);
      ++stats_.tt_stores;
    }
  }

  /// Credit the child that refuted its parent (a beta cutoff) to the shared
  /// ordering tables: a killer slot at the child's ply and history credit
  /// scaled by the parent's remaining depth.
  void note_cutoff(const Rec& child, int child_ply, int remaining) {
    if constexpr (HashedGame<G>) {
      if (tables_ == nullptr) return;
      const std::uint64_t key = child.pos.tt_key();
      tables_->killers.record(child_ply, key);
      const auto r =
          static_cast<std::uint32_t>(remaining < 0 ? 0 : remaining);
      tables_->history.add(key, r * r + 1);
    } else {
      (void)child; (void)child_ply; (void)remaining;
    }
  }

  /// Figure 8, function ER — a *full* fail-hard evaluation of p within
  /// (alpha, beta) — wrapped with shared-table probe and store.
  Value er(Rec& p, Value alpha, Value beta, int ply) {
    const int remaining = depth_ - ply;
    TtHit h;
    if (tt_probe(p, remaining, h)) {
      switch (h.bound) {
        case BoundKind::kExact:
          return h.value;
        case BoundKind::kLower:
          if (h.value >= beta) return h.value;
          if (h.value > alpha) alpha = h.value;
          break;
        case BoundKind::kUpper:
          if (h.value <= alpha) return h.value;
          if (h.value < beta) beta = h.value;
          break;
      }
    }
    if (expand(p, ply, /*is_e_node=*/true)) {
      const Value v = game_.evaluate(p.pos);
      tt_store(p, v, remaining, -kValueInf, kValueInf);  // terminal: exact
      return v;
    }
    const Value v = er_children(p, alpha, beta, ply);
    tt_store(p, v, remaining, alpha, beta, best_child_key_);
    return v;
  }

  /// The child's position key, 0 for non-hashed games.
  [[nodiscard]] static std::uint64_t key_of(const Rec& r) noexcept {
    if constexpr (HashedGame<G>)
      return r.pos.tt_key();
    else
      return 0;
  }

  /// ER's two phases over an expanded interior node.  Sets best_child_key_
  /// (read by the caller immediately on return — recursion below reuses it)
  /// to the child that produced the final value, for the TT move hint.
  Value er_children(Rec& p, Value alpha, Value beta, int ply) {
    std::uint64_t best_key = 0;
    p.value = alpha;
    // Phase 1: evaluate every child's first child (the elder grandchildren).
    for (Rec& c : p.kids) {
      const Value t = negate(eval_first(c, negate(beta), negate(p.value), ply + 1));
      if (c.done) {
        if (t > p.value) {
          p.value = t;
          best_key = key_of(c);
          if (ply == root_ply_) best_root_ = c.pos;
        }
        if (p.value >= beta) {
          note_cutoff(c, ply + 1, depth_ - ply);
          best_child_key_ = best_key;
          return p.value;
        }
      }
    }
    // Phase 2: sort by tentative value (ascending: lowest child value is the
    // most promising e-child) and finish the unfinished children in order.
    std::stable_sort(p.kids.begin(), p.kids.end(),
                     [](const Rec& a, const Rec& b) { return a.value < b.value; });
    for (Rec& c : p.kids) {
      if (c.done) continue;
      const Value t = negate(refute_rest(c, negate(beta), negate(p.value), ply + 1));
      if (t > p.value) {
        p.value = t;
        best_key = key_of(c);
        if (ply == root_ply_) best_root_ = c.pos;
      }
      if (p.value >= beta) {
        note_cutoff(c, ply + 1, depth_ - ply);
        break;
      }
    }
    best_child_key_ = best_key;
    return p.value;
  }

  /// Figure 8, function Eval_first: give `p` a tentative value by fully
  /// evaluating (with ER) its first child.  A table hit resolves the node
  /// only when *conclusive* — exact, or a bound that already decides the
  /// window — because Eval_first's normal product is a tentative value and
  /// an inconclusive bound cannot substitute for one.
  Value eval_first(Rec& p, Value alpha, Value beta, int ply) {
    TtHit h;
    if (tt_probe(p, depth_ - ply, h)) {
      const bool conclusive =
          h.bound == BoundKind::kExact ||
          (h.bound == BoundKind::kLower && h.value >= beta) ||
          (h.bound == BoundKind::kUpper && h.value <= alpha);
      if (conclusive) {
        p.value = h.value;
        p.done = true;
        return p.value;
      }
    }
    if (expand(p, ply, /*is_e_node=*/false)) {
      p.done = true;
      p.value = game_.evaluate(p.pos);
      tt_store(p, p.value, depth_ - ply, -kValueInf, kValueInf);
      return p.value;
    }
    p.value = alpha;
    const Value t = negate(er(p.kids.front(), negate(beta), negate(p.value), ply + 1));
    if (t > p.value) p.value = t;
    p.done = p.value >= beta || p.kids.size() == 1;
    if (p.value >= beta) note_cutoff(p.kids.front(), ply + 1, depth_ - ply);
    return p.value;
  }

  /// Figure 8, function Refute_rest, wrapped with a shared-table store:
  /// Refute_rest *completes* a node, so its fail-hard result is a storable
  /// bound against the window it finished under.  (No probe here beyond the
  /// conclusive check: the node was already probed by er/eval_first, but a
  /// concurrent worker may have finished it in the meantime.)
  Value refute_rest(Rec& p, Value alpha, Value beta, int ply) {
    const int remaining = depth_ - ply;
    TtHit h;
    if (tt_probe(p, remaining, h)) {
      if (h.bound == BoundKind::kExact ||
          (h.bound == BoundKind::kLower && h.value >= beta) ||
          (h.bound == BoundKind::kUpper && h.value <= alpha))
        return h.value;
    }
    const Value v = refute_rest_children(p, alpha, beta, ply);
    tt_store(p, v, remaining, alpha, beta, best_child_key_);
    return v;
  }

  /// Figure 8, function Refute_rest: examine p's remaining children until p
  /// is refuted (value >= beta) or exhausted.
  Value refute_rest_children(Rec& p, Value alpha, Value beta, int ply) {
    ERS_DCHECK(p.expanded && !p.kids.empty());
    // The tentative value (if it survives max against alpha) came from the
    // first child, making it the hint candidate until a later child raises.
    std::uint64_t best_key = p.value > alpha ? key_of(p.kids.front()) : 0;
    // Keep the tentative value from Eval_first (see header comment).
    p.value = std::max(p.value, alpha);
    // The parent's bound may have tightened since Eval_first ran; the
    // tentative value alone can already refute p.
    if (p.value >= beta) {
      note_cutoff(p.kids.front(), ply + 1, depth_ - ply);
      best_child_key_ = best_key;
      return p.value;
    }
    for (std::size_t i = 1; i < p.kids.size(); ++i) {
      Rec& c = p.kids[i];
      Value t = negate(eval_first(c, negate(beta), negate(p.value), ply + 1));
      if (!c.done)
        t = negate(refute_rest(c, negate(beta), negate(p.value), ply + 1));
      if (t > p.value) {
        p.value = t;
        best_key = key_of(c);
      }
      if (p.value >= beta) {
        note_cutoff(c, ply + 1, depth_ - ply);
        break;
      }
    }
    best_child_key_ = best_key;
    return p.value;
  }

  const G& game_;
  int depth_;
  OrderingPolicy ordering_;
  ConcurrentTranspositionTable* tt_ = nullptr;
  OrderingTables* tables_ = nullptr;
  SearchStats stats_;
  std::optional<typename G::Position> best_root_;
  int root_ply_ = 0;
  /// Key of the child that produced the last er_children /
  /// refute_rest_children result — valid only immediately after those
  /// calls return (deeper recursion overwrites it), which is exactly when
  /// er/refute_rest read it for the TT move hint.
  std::uint64_t best_child_key_ = 0;
};

template <Game G>
[[nodiscard]] SearchResult er_serial_search(const G& game, int depth,
                                            OrderingPolicy ordering = {}) {
  return ErSerialSearcher<G>(game, depth, ordering).run();
}

}  // namespace ers
