#pragma once
// Knuth–Moore minimal-tree analysis (paper §2.2).
//
// Two classifications are provided:
//  * kWithDeepCutoffs — critical nodes of types 1/2/3 (rules i–v), the
//    minimal tree of full alpha-beta;
//  * kShallowOnly — types 1/2 only (second rule set), the minimal tree of
//    alpha-beta without deep cutoffs, which is what MWF searches first.
//
// Note on the closed form: the paper prints d^ceil(h/2) + d^floor(h/2) + 1;
// the Knuth–Moore count is d^ceil(h/2) + d^floor(h/2) - 1 (tested here by
// exhaustive enumeration), so this module implements the "-1" form.

#include <cstdint>
#include <vector>

#include "gametree/explicit_tree.hpp"

namespace ers {

enum class CriticalNodeType : std::uint8_t {
  kNotCritical = 0,
  kType1 = 1,
  kType2 = 2,
  kType3 = 3,
};

enum class MinimalTreeKind {
  kWithDeepCutoffs,  ///< rules i–v: types 1, 2 and 3
  kShallowOnly,      ///< types 1 and 2 only
};

/// Classify every node of `tree`; index by ExplicitTree::Position.
[[nodiscard]] std::vector<CriticalNodeType> classify_critical_nodes(
    const ExplicitTree& tree, MinimalTreeKind kind);

/// Number of critical *leaves* in the minimal tree of `tree`.
[[nodiscard]] std::uint64_t count_critical_leaves(const ExplicitTree& tree,
                                                  MinimalTreeKind kind);

/// Closed-form count of minimal-tree leaves for a complete d-ary tree of
/// height h (with deep cutoffs): d^ceil(h/2) + d^floor(h/2) - 1.
[[nodiscard]] std::uint64_t minimal_leaf_count(int degree, int height);

}  // namespace ers
