#pragma once
// Lock-free shared transposition table for the parallel search runtimes.
//
// The paper's ER workers share one problem heap but no *search knowledge*:
// two workers reaching the same position through different move orders each
// search it from scratch.  Real parallel game engines close that gap with a
// concurrent shared table; this one is designed so the hot path (probe/store
// from every worker on every node) takes no lock and touches exactly one
// cache line per operation.
//
// Design (documented in DESIGN.md, "Shared transposition table"):
//
//   * Fixed-size, power-of-two, direct-mapped array of 16-byte slots.  Each
//     slot is two relaxed 64-bit atomics: `xkey = key ^ data` and `data`
//     (Hyatt's lockless-hashing trick).  A reader validates an entry by
//     checking `xkey ^ data == key`: a torn read that mixes words from two
//     different writes of the *same* key validates only if the data words
//     are identical (harmless), and a mix across *different* keys validates
//     with probability ~2^-64 — the same false-match risk any 64-bit-keyed
//     table accepts.
//
//   * `data` packs (value, depth, generation, bound) into one word; bound 0
//     is reserved so an all-zero slot can never validate.
//
//   * All accesses use relaxed memory ordering.  This is sound because an
//     entry is pure data validated by the XOR check — no reader dereferences
//     anything through it or relies on happens-before with other memory; a
//     stale or lost entry only costs a re-search, never correctness.
//
//   * Replacement is depth-preferred within the current generation and
//     generation-aged across searches: a fresh store never loses to a stale
//     (older-generation) entry, and within a generation deeper entries win.
//     Races make the policy advisory (two writers may interleave decisions);
//     the XOR validation keeps every outcome safe.
//
//   * The table keeps NO shared counters: probe/hit/store statistics are
//     accumulated in each searcher's thread-local SearchStats (tt_probes /
//     tt_hits / tt_stores) and merged under the engine's commit lock.

#include <atomic>
#include <cstdint>
#include <vector>

#include "search/ttable.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers {

class ConcurrentTranspositionTable {
 public:
  /// 2^size_log2 slots of 16 bytes (default 2^20 = 16 MiB).
  explicit ConcurrentTranspositionTable(int size_log2 = 20)
      : mask_((std::uint64_t{1} << size_log2) - 1),
        slots_(std::size_t{1} << size_log2) {
    ERS_CHECK(size_log2 >= 4 && size_log2 <= 30);
  }

  /// Validated lookup; fills `out` and returns true on a hit.  Lock-free,
  /// wait-free, never blocks a writer.
  [[nodiscard]] bool probe(std::uint64_t key, TtHit& out) const noexcept {
    const Slot& s = slots_[key & mask_];
    const std::uint64_t data = s.data.load(std::memory_order_relaxed);
    const std::uint64_t xkey = s.xkey.load(std::memory_order_relaxed);
    if ((data & kBoundMask) == 0 || (xkey ^ data) != key) return false;
    out.value = unpack_value(data);
    out.depth = unpack_depth(data);
    out.bound = unpack_bound(data);
    out.move_hint = unpack_hint(data);
    return true;
  }

  /// Store with depth-preferred + generation-aged replacement.  Same-key
  /// stores always refresh; a different key evicts unless the incumbent is
  /// deeper AND from the current generation.  `move_hint` is the best
  /// child's 14-bit key fingerprint (TtHit::move_hint; 0 = none).
  void store(std::uint64_t key, Value value, int depth, BoundKind bound,
             std::uint16_t move_hint = 0) noexcept {
    ERS_DCHECK(depth >= 0);
    Slot& s = slots_[key & mask_];
    const std::uint8_t gen = generation_.load(std::memory_order_relaxed);
    const std::uint64_t cur = s.data.load(std::memory_order_relaxed);
    if ((cur & kBoundMask) != 0) {
      const std::uint64_t cur_key = s.xkey.load(std::memory_order_relaxed) ^ cur;
      if (cur_key != key && unpack_gen(cur) == gen &&
          unpack_depth(cur) > clamp_depth(depth))
        return;  // keep the deeper same-generation entry
    }
    const std::uint64_t data = pack(value, depth, bound, gen, move_hint);
    s.data.store(data, std::memory_order_relaxed);
    s.xkey.store(key ^ data, std::memory_order_relaxed);
  }

  /// Hint the slot for `key` into cache ahead of a probe/store pair.
  void prefetch(std::uint64_t key) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[key & mask_]);
#else
    (void)key;
#endif
  }

  /// Start a new search epoch: entries from earlier generations become
  /// second-class citizens for replacement (their *values* stay probeable —
  /// a position's value at a given remaining depth does not depend on which
  /// root reached it).  O(1); safe to call concurrently with searches.
  void new_search() noexcept {
    generation_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Wipe every entry.  NOT safe concurrently with probe/store — call only
  /// while no search is running.
  void clear() noexcept {
    for (Slot& s : slots_) {
      s.data.store(0, std::memory_order_relaxed);
      s.xkey.store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Occupied-slot count — O(capacity), diagnostics only.
  [[nodiscard]] std::size_t occupancy() const noexcept {
    std::size_t n = 0;
    for (const Slot& s : slots_)
      if ((s.data.load(std::memory_order_relaxed) & kBoundMask) != 0) ++n;
    return n;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> xkey{0};  ///< key ^ data
    std::atomic<std::uint64_t> data{0};
  };
  static_assert(sizeof(Slot) == 16);

  // data word layout:
  //   bits  0-1   bound + 1        (0 = empty slot; never produced by pack)
  //   bits  2-9   remaining depth  (clamped to 255)
  //   bits 10-17  generation       (wraps mod 256; aging heuristic only)
  //   bits 18-31  best-move fingerprint (TtHit::move_hint; 0 = none)
  //   bits 32-63  value            (int32 bit pattern)
  static constexpr std::uint64_t kBoundMask = 0x3;
  static constexpr int kHintShift = 18;
  static constexpr std::uint64_t kHintMask = 0x3fff;

  static constexpr int clamp_depth(int depth) noexcept {
    return depth > 255 ? 255 : depth;
  }
  static constexpr std::uint64_t pack(Value v, int depth, BoundKind b,
                                      std::uint8_t gen,
                                      std::uint16_t hint) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) << 32) |
           ((static_cast<std::uint64_t>(hint) & kHintMask) << kHintShift) |
           (static_cast<std::uint64_t>(gen) << 10) |
           (static_cast<std::uint64_t>(clamp_depth(depth)) << 2) |
           (static_cast<std::uint64_t>(b) + 1);
  }
  static constexpr Value unpack_value(std::uint64_t data) noexcept {
    return static_cast<Value>(static_cast<std::uint32_t>(data >> 32));
  }
  static constexpr int unpack_depth(std::uint64_t data) noexcept {
    return static_cast<int>((data >> 2) & 0xff);
  }
  static constexpr std::uint8_t unpack_gen(std::uint64_t data) noexcept {
    return static_cast<std::uint8_t>((data >> 10) & 0xff);
  }
  static constexpr BoundKind unpack_bound(std::uint64_t data) noexcept {
    return static_cast<BoundKind>((data & kBoundMask) - 1);
  }
  static constexpr std::uint16_t unpack_hint(std::uint64_t data) noexcept {
    return static_cast<std::uint16_t>((data >> kHintShift) & kHintMask);
  }

  std::uint64_t mask_;
  std::vector<Slot> slots_;
  std::atomic<std::uint8_t> generation_{0};
};

}  // namespace ers
