#pragma once
// Transposition table and a TT-backed alpha-beta (engine substrate beyond
// the paper's scope; Othello transposes heavily, so real programs — e.g.
// Rosenbloom's — keep one).
//
// The table is a fixed-size, depth-preferred direct-mapped cache.  Entries
// record fail-hard bounds (kExact / kLower / kUpper) so probed values are
// only trusted when their stored depth covers the remaining search depth
// and their bound resolves against the current window.
//
// The searcher is generic over any Game plus a Hasher mapping positions to
// 64-bit keys (othello::zobrist_hash, or UniformRandomTree's path hash).

#include <cstdint>
#include <vector>

#include "gametree/game.hpp"
#include "search/ordering.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers {

enum class BoundKind : std::uint8_t { kExact, kLower, kUpper };

class TranspositionTable {
 public:
  struct Entry {
    std::uint64_t key = 0;
    Value value = 0;
    std::int16_t depth = -1;  ///< remaining depth the value is valid for
    BoundKind bound = BoundKind::kExact;
    bool used = false;
  };

  /// `size_log2` buckets of 2^size_log2 entries (direct mapped).
  explicit TranspositionTable(int size_log2 = 18)
      : mask_((std::uint64_t{1} << size_log2) - 1),
        entries_(std::size_t{1} << size_log2) {
    ERS_CHECK(size_log2 >= 4 && size_log2 <= 28);
  }

  [[nodiscard]] const Entry* probe(std::uint64_t key) const {
    const Entry& e = entries_[key & mask_];
    return e.used && e.key == key ? &e : nullptr;
  }

  /// Depth-preferred store: never evict a deeper entry for the same slot
  /// unless the keys match (fresher result for the same position).
  void store(std::uint64_t key, Value value, int depth, BoundKind bound) {
    Entry& e = entries_[key & mask_];
    if (e.used && e.key != key && e.depth > depth) return;
    e = Entry{key, value, static_cast<std::int16_t>(depth), bound, true};
  }

  void clear() {
    for (auto& e : entries_) e.used = false;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  void count_probe(bool hit) noexcept {
    ++probes_;
    if (hit) ++hits_;
  }

 private:
  std::uint64_t mask_;
  std::vector<Entry> entries_;
  std::uint64_t probes_ = 0;
  std::uint64_t hits_ = 0;
};

/// Fail-hard alpha-beta with a transposition table.  Hasher is a callable
/// mapping a position to a 64-bit key; positions that compare equal must
/// hash equal (hash collisions of distinct positions are accepted as the
/// usual TT risk and bounded by the 64-bit key check).
template <Game G, typename Hasher>
class TtAlphaBetaSearcher {
 public:
  TtAlphaBetaSearcher(const G& game, int depth, Hasher hasher,
                      TranspositionTable* table, OrderingPolicy ordering = {})
      : game_(game), depth_(depth), hasher_(std::move(hasher)), table_(table),
        ordering_(ordering) {
    ERS_CHECK(table_ != nullptr);
  }

  [[nodiscard]] SearchResult run(Window w = full_window()) {
    stats_ = {};
    const Value v = visit(game_.root(), w.alpha, w.beta, 0);
    return SearchResult{v, stats_};
  }

 private:
  Value visit(const typename G::Position& p, Value alpha, Value beta, int ply) {
    const int remaining = depth_ - ply;
    const std::uint64_t key = hasher_(p);
    if (const auto* e = table_->probe(key); e != nullptr && e->depth >= remaining) {
      table_->count_probe(true);
      switch (e->bound) {
        case BoundKind::kExact:
          return e->value;
        case BoundKind::kLower:
          if (e->value >= beta) return e->value;
          if (e->value > alpha) alpha = e->value;
          break;
        case BoundKind::kUpper:
          if (e->value <= alpha) return e->value;
          if (e->value < beta) beta = e->value;
          break;
      }
    } else {
      table_->count_probe(false);
    }

    std::vector<typename G::Position> kids;
    if (ply < depth_) game_.generate_children(p, kids);
    if (kids.empty()) {
      ++stats_.leaves_evaluated;
      const Value v = game_.evaluate(p);
      table_->store(key, v, remaining, BoundKind::kExact);
      return v;
    }
    ++stats_.interior_expanded;
    if (ordering_.should_sort(ply))
      sort_children_by_static_value(game_, kids, stats_);

    const Value alpha_orig = alpha;
    Value m = alpha;
    for (const auto& k : kids) {
      const Value t = negate(visit(k, negate(beta), negate(m), ply + 1));
      if (t > m) m = t;
      if (m >= beta) break;
    }
    const BoundKind bound = m >= beta  ? BoundKind::kLower
                            : m <= alpha_orig ? BoundKind::kUpper
                                              : BoundKind::kExact;
    table_->store(key, m, remaining, bound);
    return m;
  }

  const G& game_;
  int depth_;
  Hasher hasher_;
  TranspositionTable* table_;
  OrderingPolicy ordering_;
  SearchStats stats_;
};

template <Game G, typename Hasher>
[[nodiscard]] SearchResult tt_alpha_beta_search(const G& game, int depth,
                                                Hasher hasher,
                                                TranspositionTable* table,
                                                OrderingPolicy ordering = {}) {
  return TtAlphaBetaSearcher<G, Hasher>(game, depth, std::move(hasher), table,
                                        ordering)
      .run();
}

}  // namespace ers
