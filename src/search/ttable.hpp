#pragma once
// Transposition table and a TT-backed alpha-beta (engine substrate beyond
// the paper's scope; Othello transposes heavily, so real programs — e.g.
// Rosenbloom's — keep one).
//
// The table is a fixed-size, depth-preferred direct-mapped cache.  Entries
// record fail-hard bounds (kExact / kLower / kUpper) so probed values are
// only trusted when their stored depth covers the remaining search depth
// and their bound resolves against the current window.
//
// Replacement is generation-aged: new_search()/clear() bump a generation
// counter, and depth preference only protects entries of the *current*
// generation — a deep entry left over from a previous run() can never
// permanently block fresh shallower stores.  Probes ignore generations
// (a position's value at a given remaining depth is search-independent),
// so warm tables still accelerate repeated searches.
//
// The searcher is generic over any Game plus a Hasher mapping positions to
// 64-bit keys (othello::zobrist_hash, or UniformRandomTree's path hash) and
// over the table type: the single-threaded TranspositionTable below, or the
// lock-free ConcurrentTranspositionTable (search/concurrent_ttable.hpp)
// when several searchers share one table across threads.

#include <cstdint>
#include <vector>

#include "gametree/game.hpp"
#include "search/ordering.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers {

enum class BoundKind : std::uint8_t { kExact, kLower, kUpper };

/// A validated probe result, in the shape shared by every table type.
struct TtHit {
  Value value = 0;
  int depth = -1;  ///< remaining depth the value is valid for
  BoundKind bound = BoundKind::kExact;
  /// Best-move fingerprint: the low 14 bits of the best child's hash key,
  /// or 0 when the store recorded none (fail-low results, tables that do
  /// not carry hints).  Ordering matches it against each child's own
  /// key fingerprint to front the TT move — a fingerprint, not an index,
  /// so a hint is never misapplied across move-generation orders.
  std::uint16_t move_hint = 0;
};

/// Fail-hard bound classification of a search result `v` obtained within
/// the window (alpha, beta) — what a table entry for it should claim.
[[nodiscard]] constexpr BoundKind classify_bound(Value v, Value alpha,
                                                 Value beta) noexcept {
  return v >= beta    ? BoundKind::kLower
         : v <= alpha ? BoundKind::kUpper
                      : BoundKind::kExact;
}

class TranspositionTable {
 public:
  struct Entry {
    std::uint64_t key = 0;
    Value value = 0;
    std::int16_t depth = -1;  ///< remaining depth the value is valid for
    BoundKind bound = BoundKind::kExact;
    bool used = false;
    std::uint8_t gen = 0;  ///< generation the entry was stored in
    std::uint16_t move_hint = 0;  ///< best-move fingerprint (0 = none)
  };

  /// `size_log2` buckets of 2^size_log2 entries (direct mapped).
  explicit TranspositionTable(int size_log2 = 18)
      : mask_((std::uint64_t{1} << size_log2) - 1),
        entries_(std::size_t{1} << size_log2) {
    ERS_CHECK(size_log2 >= 4 && size_log2 <= 28);
  }

  [[nodiscard]] const Entry* probe(std::uint64_t key) const {
    const Entry& e = entries_[key & mask_];
    return e.used && e.key == key ? &e : nullptr;
  }

  /// Uniform probe shape shared with ConcurrentTranspositionTable.
  [[nodiscard]] bool probe(std::uint64_t key, TtHit& out) const {
    const Entry* e = probe(key);
    if (e == nullptr) return false;
    out.value = e->value;
    out.depth = e->depth;
    out.bound = e->bound;
    out.move_hint = e->move_hint;
    return true;
  }

  /// Depth-preferred store: never evict a deeper *current-generation* entry
  /// for the same slot unless the keys match (fresher result for the same
  /// position).  Entries from earlier generations are always replaceable.
  void store(std::uint64_t key, Value value, int depth, BoundKind bound,
             std::uint16_t move_hint = 0) {
    Entry& e = entries_[key & mask_];
    if (e.used && e.key != key && e.gen == gen_ && e.depth > depth) return;
    e = Entry{key,  value, static_cast<std::int16_t>(depth),
              bound, true,  gen_,
              move_hint};
  }

  /// Start a new search epoch: older entries stay probeable but lose their
  /// depth-preference protection against fresh stores.
  void new_search() noexcept { ++gen_; }

  void clear() {
    for (auto& e : entries_) e.used = false;
    ++gen_;
  }

  void prefetch(std::uint64_t key) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&entries_[key & mask_]);
#else
    (void)key;
#endif
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  void count_probe(bool hit) noexcept {
    ++probes_;
    if (hit) ++hits_;
  }

 private:
  std::uint64_t mask_;
  std::vector<Entry> entries_;
  std::uint64_t probes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint8_t gen_ = 0;
};

/// Fail-hard alpha-beta with a transposition table.  Hasher is a callable
/// mapping a position to a 64-bit key; positions that compare equal must
/// hash equal (hash collisions of distinct positions are accepted as the
/// usual TT risk and bounded by the 64-bit key check).
///
/// TableT is TranspositionTable (single-threaded) or
/// ConcurrentTranspositionTable (shared across threads; each searcher keeps
/// its own SearchStats, so concurrent runs over one table need no shared
/// counters).
template <Game G, typename Hasher, typename TableT = TranspositionTable>
class TtAlphaBetaSearcher {
 public:
  TtAlphaBetaSearcher(const G& game, int depth, Hasher hasher, TableT* table,
                      OrderingPolicy ordering = {})
      : game_(game), depth_(depth), hasher_(std::move(hasher)), table_(table),
        ordering_(ordering) {
    ERS_CHECK(table_ != nullptr);
  }

  [[nodiscard]] SearchResult run(Window w = full_window()) {
    stats_ = {};
    table_->new_search();
    const Value v = visit(game_.root(), w.alpha, w.beta, 0);
    return SearchResult{v, stats_};
  }

 private:
  Value visit(const typename G::Position& p, Value alpha, Value beta, int ply) {
    const int remaining = depth_ - ply;
    const std::uint64_t key = hasher_(p);
    table_->prefetch(key);
    ++stats_.tt_probes;
    TtHit h;
    const bool usable = table_->probe(key, h) && h.depth >= remaining;
    if constexpr (requires(TableT& t) { t.count_probe(true); })
      table_->count_probe(usable);
    if (usable) {
      ++stats_.tt_hits;
      switch (h.bound) {
        case BoundKind::kExact:
          return h.value;
        case BoundKind::kLower:
          if (h.value >= beta) return h.value;
          if (h.value > alpha) alpha = h.value;
          break;
        case BoundKind::kUpper:
          if (h.value <= alpha) return h.value;
          if (h.value < beta) beta = h.value;
          break;
      }
    }

    std::vector<typename G::Position> kids;
    if (ply < depth_) game_.generate_children(p, kids);
    if (kids.empty()) {
      ++stats_.leaves_evaluated;
      const Value v = game_.evaluate(p);
      table_->store(key, v, remaining, BoundKind::kExact);
      ++stats_.tt_stores;
      return v;
    }
    ++stats_.interior_expanded;
    if (ordering_.should_sort(ply))
      sort_children_by_static_value(game_, kids, stats_);

    const Value alpha_orig = alpha;
    Value m = alpha;
    for (const auto& k : kids) {
      const Value t = negate(visit(k, negate(beta), negate(m), ply + 1));
      if (t > m) m = t;
      if (m >= beta) break;
    }
    table_->store(key, m, remaining, classify_bound(m, alpha_orig, beta));
    ++stats_.tt_stores;
    return m;
  }

  const G& game_;
  int depth_;
  Hasher hasher_;
  TableT* table_;
  OrderingPolicy ordering_;
  SearchStats stats_;
};

template <Game G, typename Hasher, typename TableT>
[[nodiscard]] SearchResult tt_alpha_beta_search(const G& game, int depth,
                                                Hasher hasher, TableT* table,
                                                OrderingPolicy ordering = {}) {
  return TtAlphaBetaSearcher<G, Hasher, TableT>(game, depth, std::move(hasher),
                                                table, ordering)
      .run();
}

}  // namespace ers
