#pragma once
// Serial alpha-beta (paper §2.1), fail-hard, in the Knuth–Moore negmax
// formulation, plus the "shallow" variant without deep cutoffs whose minimal
// tree (1- and 2-nodes only) is what the MWF baseline exploits (§2.2, §4.2).

#include <optional>
#include <vector>

#include "gametree/game.hpp"
#include "search/ordering.hpp"
#include "util/value.hpp"

namespace ers {

template <Game G>
class AlphaBetaSearcher {
 public:
  AlphaBetaSearcher(const G& game, int depth, OrderingPolicy ordering = {})
      : game_(game), depth_(depth), ordering_(ordering) {}
  AlphaBetaSearcher(const G&&, int, OrderingPolicy = {}) = delete;

  /// Search with the given initial window (full width by default).  With a
  /// full-width window the result equals negmax; with a narrower window the
  /// usual fail-hard semantics apply (result <= alpha means "true value
  /// <= alpha", result >= beta means "true value >= beta").
  [[nodiscard]] SearchResult run(Window w = full_window()) {
    return run_from(game_.root(), 0, w);
  }

  /// Search the subtree rooted at `pos` (at absolute ply `start_ply`; the
  /// horizon stays at the configured depth) with the given window.  Used by
  /// the parallel baselines' slave processors.
  [[nodiscard]] SearchResult run_from(const typename G::Position& pos,
                                      int start_ply, Window w = full_window()) {
    stats_ = {};
    best_root_.reset();
    root_ply_ = start_ply;
    const Value v = visit(pos, w.alpha, w.beta, start_ply);
    return SearchResult{v, stats_};
  }

  /// The root child that achieved the returned value (the move to play);
  /// empty if the root was a leaf.  Valid after run()/run_from().
  [[nodiscard]] const std::optional<typename G::Position>& best_root_position()
      const noexcept {
    return best_root_;
  }

 private:
  Value visit(const typename G::Position& p, Value alpha, Value beta, int ply) {
    std::vector<typename G::Position> kids;
    if (ply < depth_) game_.generate_children(p, kids);
    if (kids.empty()) {
      ++stats_.leaves_evaluated;
      return game_.evaluate(p);
    }
    ++stats_.interior_expanded;
    if (ordering_.should_sort(ply))
      sort_children_by_static_value(game_, kids, stats_);
    Value m = alpha;
    for (const auto& k : kids) {
      const Value t = negate(visit(k, negate(beta), negate(m), ply + 1));
      if (t > m) {
        m = t;
        if (ply == root_ply_) best_root_ = k;
      }
      if (m >= beta) return m;
    }
    return m;
  }

  const G& game_;
  int depth_;
  OrderingPolicy ordering_;
  SearchStats stats_;
  std::optional<typename G::Position> best_root_;
  int root_ply_ = 0;
};

template <Game G>
[[nodiscard]] SearchResult alpha_beta_search(const G& game, int depth,
                                             OrderingPolicy ordering = {},
                                             Window w = full_window()) {
  return AlphaBetaSearcher<G>(game, depth, ordering).run(w);
}

/// Alpha-beta *without deep cutoffs*: each node keeps only its local bound,
/// so a node's window derives solely from its parent (shallow cutoffs), never
/// from remoter ancestors.  Searches exactly the 1-/2-node minimal tree of
/// §2.2 on a best-first-ordered tree.
template <Game G>
class ShallowAlphaBetaSearcher {
 public:
  ShallowAlphaBetaSearcher(const G& game, int depth, OrderingPolicy ordering = {})
      : game_(game), depth_(depth), ordering_(ordering) {}
  ShallowAlphaBetaSearcher(const G&&, int, OrderingPolicy = {}) = delete;

  [[nodiscard]] SearchResult run() { return run_from(game_.root(), 0); }

  /// Subtree search with an inherited local bound (see class comment); the
  /// MWF baseline uses this for its speculative right-child units.
  [[nodiscard]] SearchResult run_from(const typename G::Position& pos,
                                      int start_ply, Value beta = kValueInf) {
    stats_ = {};
    const Value v = visit(pos, beta, start_ply);
    return SearchResult{v, stats_};
  }

 private:
  // `beta` is the only inherited bound (the negation of the parent's local
  // maximum); the local maximum starts at -inf rather than at an ancestral
  // alpha, which is precisely what forgoes deep cutoffs.
  Value visit(const typename G::Position& p, Value beta, int ply) {
    std::vector<typename G::Position> kids;
    if (ply < depth_) game_.generate_children(p, kids);
    if (kids.empty()) {
      ++stats_.leaves_evaluated;
      return game_.evaluate(p);
    }
    ++stats_.interior_expanded;
    if (ordering_.should_sort(ply))
      sort_children_by_static_value(game_, kids, stats_);
    Value m = -kValueInf;
    for (const auto& k : kids) {
      const Value t = negate(visit(k, negate(m), ply + 1));
      if (t > m) m = t;
      if (m >= beta) return m;
    }
    return m;
  }

  const G& game_;
  int depth_;
  OrderingPolicy ordering_;
  SearchStats stats_;
};

template <Game G>
[[nodiscard]] SearchResult alpha_beta_shallow_search(const G& game, int depth,
                                                     OrderingPolicy ordering = {}) {
  return ShallowAlphaBetaSearcher<G>(game, depth, ordering).run();
}

}  // namespace ers
