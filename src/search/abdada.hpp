#pragma once
// ABDADA — Alpha-Beta Distribuée avec Droit d'Aînesse (Weill 1996) — on the
// shared-TT substrate (DESIGN.md §14).
//
// Where the paper's ER coordinates parallel workers through a problem heap,
// ABDADA coordinates them through shared search state alone: every worker
// runs the *same* recursive negamax from the root, and two shared tables
// keep them out of each other's way.
//
//   * The ConcurrentTranspositionTable (search/concurrent_ttable.hpp) lets a
//     worker reuse any subtree another worker already finished.
//   * A small NprocTable (search/nproc_table.hpp) counts how many workers
//     are currently *inside* each node.  The "droit d'aînesse" (birthright):
//     the eldest son of every node is always searched, but a younger sibling
//     requested *exclusively* is skipped if some worker is already inside it
//     — the move index is pushed onto a stack-allocated deferred array and
//     the node moves on.  A second phase revisits the deferred moves
//     non-exclusively.  Workers therefore spread across siblings naturally:
//     the first arrival takes the move, later arrivals take the next one.
//
// Skips are signalled by returning kAbdadaOnEvaluation, a sentinel strictly
// outside the value domain, which the parent checks *before* negating.
//
// Deviations from Weill's pseudocode (all documented in DESIGN.md §14):
//   * nproc counters live in a separate fixed-size side table (following
//     MAGPIE's endgame solver), not inside TT entries, so the hot counters
//     stay cache-resident and the lock-free TT layout is untouched.
//   * TT cutoffs are gated on entry.depth == remaining, not >=.  A deeper
//     entry is a sound bound for a *different* evaluation (deeper horizon);
//     accepting it makes the root value depend on worker interleaving.
//     Exact-depth gating keeps every cutoff value-preserving, so the root
//     value equals serial alpha-beta at the same depth, for any thread
//     count and any schedule — the determinism the tests pin down.
//   * Positions are copied, not played/unplayed in place: every game in
//     this library exposes immutable positions with incrementally
//     maintained hashes (othello::Board updates its Zobrist key per move),
//     so "unplay" is dropping the copy.
//
// Without a table (or for a non-HashedGame such as tictactoe/connect4) the
// recursion degenerates to plain fail-hard alpha-beta — exclusivity and
// deferral are TT-keyed and compile out.

#include <algorithm>
#include <array>
#include <atomic>
#include <optional>
#include <vector>

#include "gametree/game.hpp"
#include "obs/trace.hpp"
#include "search/concurrent_ttable.hpp"
#include "search/nproc_table.hpp"
#include "search/ordering.hpp"
#include "util/check.hpp"
#include "util/value.hpp"

namespace ers {

/// "Some worker is already evaluating this node": returned raw (never
/// negated) by the ABDADA recursion when an exclusive request finds the
/// node busy.  Strictly outside [-kValueInf, kValueInf] so it can never
/// collide with a real search value; callers must test for it before
/// negating a child result.
inline constexpr Value kAbdadaOnEvaluation = kValueInf + 2;

template <Game G>
class AbdadaSearcher {
 public:
  AbdadaSearcher(const G& game, int depth, OrderingPolicy ordering = {})
      : game_(game), depth_(depth), ordering_(ordering) {}
  AbdadaSearcher(const G&&, int, OrderingPolicy = {}) = delete;

  /// Probe/store `table` during the search (ignored unless G is a
  /// HashedGame).  Every ABDADA worker must share one table — it is the
  /// medium the workers coordinate through.
  AbdadaSearcher& with_shared_table(ConcurrentTranspositionTable* table) noexcept {
    tt_ = table;
    return *this;
  }

  /// Attach the shared worker-occupancy side table.  Without it every
  /// exclusivity check reports "free" and deferral never triggers (correct,
  /// but workers duplicate each other's work).
  AbdadaSearcher& with_nproc_table(NprocTable* table) noexcept {
    nproc_ = table;
    return *this;
  }

  /// Consult (and train) shared history/killer tables in the move loop —
  /// TT move first when the probe carries a hint, killers and history
  /// refining the static sort (DESIGN.md §17).  Purely advisory: the
  /// depth-exact TT gating keeps the root value equal to serial alpha-beta
  /// under any ordering, so sharing tables across workers never perturbs
  /// the result.  Ignored unless G is a HashedGame; nullptr detaches.
  AbdadaSearcher& with_ordering_tables(OrderingTables* tables) noexcept {
    tables_ = tables;
    return *this;
  }

  /// Cooperative abort: checked at every node entry.  Once set, the search
  /// unwinds without storing to the table; aborted() reports it and the
  /// returned value must be discarded.
  AbdadaSearcher& with_stop(const std::atomic<bool>* stop) noexcept {
    stop_ = stop;
    return *this;
  }

  /// Emit abdada_defer / abdada_revisit instants onto `session`'s tracer
  /// for `worker`.
  AbdadaSearcher& with_trace(obs::TraceSession* session, int worker) {
    session_ = session;
    tracer_ = session != nullptr ? &session->worker(worker) : nullptr;
    return *this;
  }

  [[nodiscard]] SearchResult run(Window w = full_window()) {
    return run_from(game_.root(), 0, w);
  }

  /// Search the subtree rooted at `pos` (at absolute ply `start_ply`; the
  /// horizon stays at the configured depth).  Fail-hard with respect to `w`.
  [[nodiscard]] SearchResult run_from(typename G::Position pos, int start_ply,
                                      Window w = full_window()) {
    stats_ = {};
    best_root_.reset();
    aborted_ = false;
    root_ply_ = start_ply;
    // Size the per-ply child-buffer pool up front: visit() keeps references
    // into its level's buffer across the recursive calls, so the outer
    // vector must never reallocate mid-recursion.  One buffer per level in
    // [start_ply, depth_]; each keeps its capacity across iterative-
    // deepening re-runs, making steady-state child generation heap-free.
    const std::size_t levels =
        static_cast<std::size_t>(std::max(0, depth_ - start_ply)) + 1;
    if (kids_pool_.size() < levels) kids_pool_.resize(levels);
    for (auto& buf : kids_pool_) buf.reserve(branching_hint_of(game_));
    const Value v = visit(pos, w.alpha, w.beta, start_ply, /*exclusive=*/false);
    ERS_DCHECK(v != kAbdadaOnEvaluation);
    return SearchResult{v, stats_};
  }

  /// True if the stop flag fired during the last run: the result is
  /// meaningless and nothing was stored after the flag was observed.
  [[nodiscard]] bool aborted() const noexcept { return aborted_; }

  /// The root child that achieved the returned value (the move to play);
  /// empty if the root was a leaf.  Valid after run()/run_from().
  [[nodiscard]] const std::optional<typename G::Position>& best_root_position()
      const noexcept {
    return best_root_;
  }

 private:
  /// Deferred younger siblings per node, on the stack (MAGPIE sizes its
  /// array the same way; Othello tops out near 60 legal moves, random trees
  /// far lower).  If a node somehow exceeds this, later moves are searched
  /// immediately instead of deferred — a scheduling fallback, not an error.
  static constexpr std::size_t kMaxDeferred = 64;

  Value visit(const typename G::Position& p, Value alpha, Value beta, int ply,
              bool exclusive) {
    if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) {
      // Unwind fast: the value is garbage, but aborted_ poisons every
      // store on the way out and the caller discards the result.
      aborted_ = true;
      return 0;
    }
    const int remaining = depth_ - ply;
    [[maybe_unused]] std::uint64_t key = 0;
    [[maybe_unused]] std::uint16_t tt_hint = 0;
    if constexpr (HashedGame<G>) {
      if (tt_ != nullptr || nproc_ != nullptr) key = p.tt_key();
      if (tt_ != nullptr) {
        tt_->prefetch(key);
        ++stats_.tt_probes;
        TtHit h;
        // Depth-exact gating — see the header comment on determinism.  The
        // move hint is kept from *any* validated entry: a different-depth
        // value cannot cut off, but its best move still orders this node.
        if (tt_->probe(key, h)) {
          tt_hint = h.move_hint;
          if (h.depth == remaining) {
            ++stats_.tt_hits;
            switch (h.bound) {
              case BoundKind::kExact:
                return h.value;
              case BoundKind::kLower:
                if (h.value >= beta) return h.value;
                if (h.value > alpha) alpha = h.value;
                break;
              case BoundKind::kUpper:
                if (h.value <= alpha) return h.value;
                if (h.value < beta) beta = h.value;
                break;
            }
          }
        }
      }
      // Exclusivity, after the probe: a finished answer beats a deferral.
      if (exclusive && nproc_ != nullptr && nproc_->busy(key)) {
        ++stats_.moves_deferred;
        if (tracer_ != nullptr)
          tracer_->instant(obs::EventKind::kAbdadaDefer, session_->now_ns(),
                           obs::kNoTraceNode, static_cast<std::uint32_t>(ply));
        return kAbdadaOnEvaluation;
      }
    }

    const std::size_t level = static_cast<std::size_t>(ply - root_ply_);
    ERS_DCHECK(level < kids_pool_.size());  // pool sized in run_from
    std::vector<typename G::Position>& kids = kids_pool_[level];
    kids.clear();
    if (ply < depth_) game_.generate_children(p, kids);
    if (kids.empty()) {
      ++stats_.leaves_evaluated;
      const Value v = game_.evaluate(p);
      tt_store(key, v, remaining, -kValueInf, kValueInf);  // terminal: exact
      return v;
    }
    ++stats_.interior_expanded;
    if (ordering_.should_sort(ply)) {
      bool sorted_with_tables = false;
      if constexpr (HashedGame<G>) {
        if (tables_ != nullptr) {
          sort_children_ordered(game_, kids, stats_, *tables_, ply + 1,
                                tt_hint);
          sorted_with_tables = true;
        }
      }
      if (!sorted_with_tables)
        sort_children_by_static_value(game_, kids, stats_);
    }
    prefetch_children(kids);

    if constexpr (HashedGame<G>)
      if (nproc_ != nullptr) nproc_->enter(key);

    // Phase one: the eldest son unconditionally, younger siblings
    // exclusively — a busy younger sibling is deferred, not waited on.
    Value m = alpha;
    std::uint64_t best_key = 0;
    std::array<std::uint32_t, kMaxDeferred> deferred;
    std::size_t n_deferred = 0;
    for (std::size_t i = 0; i < kids.size() && m < beta; ++i) {
      const bool excl = i > 0 && n_deferred < kMaxDeferred;
      const Value raw = visit(kids[i], negate(beta), negate(m), ply + 1, excl);
      if (raw == kAbdadaOnEvaluation) {
        deferred[n_deferred++] = static_cast<std::uint32_t>(i);
        continue;
      }
      const Value t = negate(raw);
      if (t > m) {
        m = t;
        best_key = key_of(kids[i]);
        if (ply == root_ply_) best_root_ = kids[i];
      }
    }
    // Phase two: revisit what phase one skipped, non-exclusively this time
    // (by now the busy worker has likely finished and stored).  A cutoff
    // from phase one retires the deferrals unseen.
    for (std::size_t d = 0; d < n_deferred && m < beta; ++d) {
      const std::size_t i = deferred[d];
      ++stats_.moves_revisited;
      if (tracer_ != nullptr)
        tracer_->instant(obs::EventKind::kAbdadaRevisit, session_->now_ns(),
                         obs::kNoTraceNode, static_cast<std::uint32_t>(ply + 1));
      const Value t =
          negate(visit(kids[i], negate(beta), negate(m), ply + 1, false));
      if (t > m) {
        m = t;
        best_key = key_of(kids[i]);
        if (ply == root_ply_) best_root_ = kids[i];
      }
    }

    if constexpr (HashedGame<G>)
      if (nproc_ != nullptr) nproc_->leave(key);

    if constexpr (HashedGame<G>) {
      // Train the shared ordering tables on the refuting move, like
      // er_serial's note_cutoff: killer slot at the child's ply, history
      // credit scaled by remaining depth.
      if (m >= beta && best_key != 0 && tables_ != nullptr && !aborted_) {
        tables_->killers.record(ply + 1, best_key);
        const auto r = static_cast<std::uint32_t>(remaining < 0 ? 0 : remaining);
        tables_->history.add(best_key, r * r + 1);
      }
    }
    tt_store(key, m, remaining, alpha, beta, m > alpha ? best_key : 0);
    return m;
  }

  /// The position's key, 0 for non-hashed games.
  [[nodiscard]] static std::uint64_t key_of(
      [[maybe_unused]] const typename G::Position& p) noexcept {
    if constexpr (HashedGame<G>)
      return p.tt_key();
    else
      return 0;
  }

  /// Store a completed fail-hard result, classified against the window it
  /// was searched with; `best_key` (0 = none) becomes the entry's move
  /// hint.  Poisoned by abort: a value computed from a half-unwound
  /// subtree must never reach the shared table.
  void tt_store([[maybe_unused]] std::uint64_t key, [[maybe_unused]] Value v,
                [[maybe_unused]] int remaining, [[maybe_unused]] Value alpha,
                [[maybe_unused]] Value beta,
                [[maybe_unused]] std::uint64_t best_key = 0) {
    if constexpr (HashedGame<G>) {
      if (tt_ == nullptr || aborted_) return;
      tt_->store(key, v, remaining, classify_bound(v, alpha, beta),
                 best_key != 0 ? move_fingerprint(best_key) : std::uint16_t{0});
      ++stats_.tt_stores;
    }
  }

  /// Warm the TT lines of every freshly generated child before the child
  /// loop touches them — by the time phase one probes a sibling, its slot
  /// is in cache (the prefetch-wiring satellite; er_serial.hpp does the
  /// same at expansion).
  void prefetch_children(
      [[maybe_unused]] const std::vector<typename G::Position>& kids) const {
    if constexpr (HashedGame<G>) {
      if (tt_ == nullptr) return;
      for (const auto& k : kids) tt_->prefetch(k.tt_key());
    }
  }

  const G& game_;
  int depth_;
  OrderingPolicy ordering_;
  ConcurrentTranspositionTable* tt_ = nullptr;
  OrderingTables* tables_ = nullptr;
  NprocTable* nproc_ = nullptr;
  const std::atomic<bool>* stop_ = nullptr;
  obs::TraceSession* session_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  SearchStats stats_;
  std::optional<typename G::Position> best_root_;
  /// Per-level child buffers, indexed by ply - root_ply_ (see run_from).
  std::vector<std::vector<typename G::Position>> kids_pool_;
  int root_ply_ = 0;
  bool aborted_ = false;
};

/// One-shot serial ABDADA (no tables): plain fail-hard alpha-beta with
/// ABDADA's traversal — the 1-thread identity baseline.
template <Game G>
[[nodiscard]] SearchResult abdada_serial_search(const G& game, int depth,
                                                OrderingPolicy ordering = {}) {
  return AbdadaSearcher<G>(game, depth, ordering).run();
}

}  // namespace ers
